//! # tensat
//!
//! A from-scratch Rust reproduction of **TENSAT** — *Equality Saturation
//! for Tensor Graph Superoptimization* (Yang et al., MLSys 2021) — together
//! with every substrate the system depends on: an e-graph engine, the
//! tensor-graph IR with shape inference and an analytical cost model, the
//! TASO rewrite-rule set, an ILP solver for extraction, the TASO-style
//! sequential baseline, and replicas of the paper's benchmark models.
//!
//! This crate is a facade that re-exports the workspace crates under one
//! name. See the README for the architecture overview and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction details.
//!
//! ## Quick start
//!
//! ```
//! use tensat::prelude::*;
//!
//! // Build a tensor graph: two matmuls sharing an input.
//! let mut g = GraphBuilder::new();
//! let x = g.input("x", &[32, 64]);
//! let w1 = g.weight("w1", &[64, 64]);
//! let w2 = g.weight("w2", &[64, 64]);
//! let m1 = g.matmul(x, w1);
//! let m2 = g.matmul(x, w2);
//! let graph = g.finish(&[m1, m2]);
//!
//! // Optimize it with equality saturation + ILP extraction.
//! let result = Optimizer::new(OptimizerConfig::default()).optimize(&graph).unwrap();
//! assert!(result.optimized_cost <= result.original_cost);
//! println!("speedup: {:.1}%", result.speedup_percent());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tensat_core as core;
pub use tensat_egraph as egraph;
pub use tensat_ilp as ilp;
pub use tensat_ir as ir;
pub use tensat_models as models;
pub use tensat_rules as rules;
pub use tensat_taso as taso;
pub use tensat_verify as verify;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use tensat_core::{
        explore, explore_with, extract_greedy, extract_greedy_dag, extract_ilp, CycleFilter,
        ExplorationConfig, ExplorationMode, ExplorationStrategy, ExtractionMode, ExtractionOutcome,
        ExtractionStrategy, GreedyDag, Guided, GuidedConfig, IlpConfig, IlpExtraction,
        OptimizationResult, Optimizer, OptimizerConfig, Saturate, TasoBacktracking, TasoConfig,
        TreeGreedy,
    };
    pub use tensat_egraph::{EGraph, Id, Pattern, RecExpr, Rewrite, Runner, Symbol};
    pub use tensat_ir::{
        Activation, Cost, CostModel, GraphBuilder, Padding, TensorAnalysis, TensorEGraph,
        TensorLang,
    };
    pub use tensat_models::{build_benchmark, ModelScale, BENCHMARKS};
    pub use tensat_rules::{multi_rules, parse_pattern, single_rules, MultiPatternRule};
    pub use tensat_taso::{BacktrackingConfig, BacktrackingSearch};
}
