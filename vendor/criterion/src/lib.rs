//! A vendored, dependency-free subset of the [`criterion`] benchmarking API,
//! so the workspace's benches build and run in fully offline environments
//! where crates.io is unreachable.
//!
//! Only the surface the workspace uses is implemented: [`Criterion`] with
//! [`Criterion::bench_function`] and [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — wall-clock medians over a small
//! number of fixed-size batches, reported to stdout — but the shape of the
//! API matches the real crate so benches can be pointed back at crates.io
//! criterion without source changes once network access is available.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for a parameterized benchmark, e.g. `greedy/8`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a parameter, `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A benchmark id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
    sample_count: u32,
}

impl Bencher {
    fn new(sample_count: u32, iters_per_sample: u32) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample,
            sample_count,
        }
    }

    /// Time `routine`, running it in several batches and recording the mean
    /// duration per iteration of each batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, not recorded.
        black_box(routine());
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample);
        }
    }

    fn report(&self, id: &str) {
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or_default();
        let (lo, hi) = (
            sorted.first().copied().unwrap_or_default(),
            sorted.last().copied().unwrap_or_default(),
        );
        println!("{id:<50} time: [{lo:>10.2?} {median:>10.2?} {hi:>10.2?}]");
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_count: u32,
    iters_per_sample: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_count: 10,
            iters_per_sample: 3,
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(1) as u32;
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_count, self.iters_per_sample);
        f(&mut b);
        b.report(id);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group with an input parameter.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.sample_count, self.criterion.iters_per_sample);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Run one benchmark in the group without an extra input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.criterion.sample_count, self.criterion.iters_per_sample);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Finish the group (a no-op here; reports are printed eagerly).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a group runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` that runs the given [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("sum_to_100", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn group_and_main_macros_compile_and_run() {
        criterion_group!(benches, tiny_bench);
        benches();
    }

    #[test]
    fn group_api_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 4), &4u32, |b, &n| {
            b.iter(|| n * 2);
            runs += 1;
        });
        group.finish();
        assert_eq!(runs, 1);
    }
}
