//! A vendored, dependency-free subset of the [`proptest`] property-testing
//! API, so the workspace's property tests build and run in fully offline
//! environments where crates.io is unreachable.
//!
//! Only the surface actually used by the workspace is implemented:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`] /
//!   [`Strategy::prop_flat_map`] / [`Strategy::boxed`]
//! * range strategies for the primitive integer and float types
//! * tuple strategies (arity 2–4), [`any`], [`collection::vec`]
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`], and
//!   [`prop_assert_eq!`] macros
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! seeds: each test runs a fixed number of cases from a deterministic
//! per-test seed, so failures are reproducible across runs and machines.
//!
//! [`proptest`]: https://crates.io/crates/proptest

// The `proptest!` doc example necessarily shows `#[test]` inside the macro
// invocation — that is the macro's real usage, not a mistakenly nested test.
#![forbid(unsafe_code)]
#![allow(clippy::test_attr_in_doctest)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Number of random cases each `proptest!` test executes.
pub const DEFAULT_CASES: u32 = 64;

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// A small deterministic RNG (SplitMix64) used to drive value generation.
///
/// Deterministic seeding keeps test runs reproducible without any external
/// entropy source, which also keeps this crate dependency-free.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create an RNG seeded from an arbitrary string (e.g. the test name).
    pub fn from_seed_str(seed: &str) -> Self {
        // FNV-1a over the seed string, folded into the SplitMix64 state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in seed.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of random values of type [`Strategy::Value`].
///
/// This mirrors `proptest::strategy::Strategy` minus shrinking: a strategy
/// only needs to produce a value from an RNG.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy the
    /// closure derives from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy; see [`Strategy::boxed`].
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

// Strategies are generated through shared references inside collections.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: ranges, `any`, `Just`
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "generate anything" strategy; see [`any`].
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> std::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Any")
    }
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

// ---------------------------------------------------------------------------
// Union (prop_oneof!)
// ---------------------------------------------------------------------------

/// Uniform choice among several strategies with a common value type; the
/// result of [`prop_oneof!`].
pub struct Union<T>(Vec<Box<dyn Strategy<Value = T>>>);

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} branches)", self.0.len())
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// Build a [`Union`] from boxed branches; used by [`prop_oneof!`].
pub fn union_of<T>(branches: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
    assert!(
        !branches.is_empty(),
        "prop_oneof! needs at least one branch"
    );
    Union(branches)
}

/// Uniformly choose among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::union_of(vec![$(Box::new($strategy)),+])
    };
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Strategies for collections (only `vec` is provided).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A size specification for [`vec()`]: a fixed size or a (half-open or
    /// inclusive) range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generate a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Mirror of the `proptest::prop` module path used via the prelude
/// (e.g. `prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

// ---------------------------------------------------------------------------
// Test runner macros
// ---------------------------------------------------------------------------

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests. Each function runs [`DEFAULT_CASES`] cases with
/// inputs drawn from the strategies named after `in`:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::TestRng::from_seed_str(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..$crate::DEFAULT_CASES {
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)*
                $body
            }
        }
    )*};
}

/// The commonly used subset of the API, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed_str("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(-4i64..=4), &mut rng);
            assert!((-4..=4).contains(&v));
            let u = Strategy::generate(&(0u8..4), &mut rng);
            assert!(u < 4);
            let f = Strategy::generate(&(0.0f64..10.0), &mut rng);
            assert!((0.0..10.0).contains(&f));
        }
    }

    #[test]
    fn determinism() {
        let gen = |seed: &str| {
            let mut rng = TestRng::from_seed_str(seed);
            (0..10).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(gen("a"), gen("a"));
        assert_ne!(gen("a"), gen("b"));
    }

    proptest! {
        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(any::<u32>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn oneof_and_flat_map(
            n in (1usize..4).prop_flat_map(|n| prop::collection::vec(prop_oneof![
                (0i64..10).prop_map(|x| x),
                (-10i64..0).prop_map(|x| x),
            ], n..=n))
        ) {
            prop_assert!(!n.is_empty() && n.len() < 4);
            prop_assert!(n.iter().all(|x| (-10..10).contains(x)));
        }
    }
}
