//! A symbolic shape domain for static rule verification.
//!
//! [`infer`](crate::infer) computes *concrete* [`TensorData`](crate::TensorData) bottom-up; the
//! types here mirror it over shapes whose dimensions are **linear
//! expressions in named dimension variables** ([`SymDim`]). A rewrite-rule
//! verifier instantiates each pattern variable with a symbolic value (fresh
//! dims at a chosen rank), runs [`sym_infer`] over both sides of the rule,
//! and lets a [`DimEnv`] collect the equalities the operators require. If
//! the two output shapes resolve to syntactically identical expressions,
//! the rule is shape-preserving for *every* dimension valuation at that
//! rank configuration — infinitely many concrete shapes at once, which is
//! what makes this a static analysis rather than a test.
//!
//! The domain is deliberately partial: operators whose output shape is not
//! a linear function of the input dims (convolution spatial arithmetic,
//! reshape element counts, ...) report [`SymError::Undecidable`] and the
//! caller falls back to checking concrete bindings (see `tensat-verify`).
//! Two other simplifications are sound for that use:
//!
//! * `weights_only` is not tracked — it never affects validity or shapes.
//! * Range side conditions over symbolic dims (e.g. `split` requiring
//!   `0 < pos < total`) are assumed satisfiable. This can only make the
//!   verifier consider *more* bindings than concretely exist, and every
//!   counterexample it derives is re-confirmed with the concrete
//!   [`infer`](crate::infer) before being reported.

use crate::lang::{decode_identifier, decode_permutation, TensorLang};
use std::collections::BTreeMap;
use tensat_egraph::{Id, Language, Symbol};

/// A dimension as a linear expression `konst + Σ coeffᵢ·varᵢ` over named
/// dimension variables. Kept in a normal form (no zero coefficients, terms
/// sorted by variable id), so structural equality is semantic equality of
/// the linear expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymDim {
    konst: i64,
    terms: BTreeMap<u32, i64>,
}

impl SymDim {
    /// A constant dimension.
    pub fn constant(v: i64) -> Self {
        SymDim {
            konst: v,
            terms: BTreeMap::new(),
        }
    }

    /// The dimension variable `v` (coefficient 1, no constant part).
    pub fn var(v: u32) -> Self {
        SymDim {
            konst: 0,
            terms: [(v, 1)].into(),
        }
    }

    /// The constant value if this expression has no variable terms.
    pub fn as_const(&self) -> Option<i64> {
        self.terms.is_empty().then_some(self.konst)
    }

    /// True if this is the zero expression.
    pub fn is_zero(&self) -> bool {
        self.konst == 0 && self.terms.is_empty()
    }

    /// The sum of two dimension expressions.
    pub fn add(&self, other: &SymDim) -> SymDim {
        let mut out = self.clone();
        out.konst += other.konst;
        for (&v, &c) in &other.terms {
            let e = out.terms.entry(v).or_insert(0);
            *e += c;
            if *e == 0 {
                out.terms.remove(&v);
            }
        }
        out
    }

    /// The difference of two dimension expressions.
    pub fn sub(&self, other: &SymDim) -> SymDim {
        self.add(&other.scale(-1))
    }

    /// The expression scaled by an integer constant.
    pub fn scale(&self, k: i64) -> SymDim {
        if k == 0 {
            return SymDim::constant(0);
        }
        SymDim {
            konst: self.konst * k,
            terms: self.terms.iter().map(|(&v, &c)| (v, c * k)).collect(),
        }
    }

    /// The variable ids occurring in this expression.
    pub fn vars(&self) -> impl Iterator<Item = u32> + '_ {
        self.terms.keys().copied()
    }
}

impl std::fmt::Display for SymDim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        if self.konst != 0 || self.terms.is_empty() {
            write!(f, "{}", self.konst)?;
            first = false;
        }
        for (v, c) in &self.terms {
            if !first {
                write!(f, "{}", if *c < 0 { " - " } else { " + " })?;
            } else if *c < 0 {
                write!(f, "-")?;
            }
            first = false;
            if c.abs() != 1 {
                write!(f, "{}·", c.abs())?;
            }
            write!(f, "d{v}")?;
        }
        Ok(())
    }
}

/// Symbolic tensor metadata: the [`SymDim`] shape and the concat history
/// that [`infer`](crate::infer) tracks for `split` (`weights_only` is
/// irrelevant to validity and shapes, so the symbolic domain drops it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymTensor {
    /// The symbolic shape.
    pub shape: Vec<SymDim>,
    /// Concat axis and first-part size, if the tensor was most recently
    /// produced by a concatenation (mirrors
    /// [`TensorInfo::split_at`](crate::TensorInfo)).
    pub split_at: Option<(usize, SymDim)>,
}

impl SymTensor {
    /// A tensor with the given shape and no concat history.
    pub fn new(shape: Vec<SymDim>) -> Self {
        SymTensor {
            shape,
            split_at: None,
        }
    }
}

/// A symbolic analysis value — the abstract counterpart of
/// [`TensorData`](crate::TensorData). Parameter leaves may be *known*
/// (`Scalar`/`Str`, from pattern literals) or *opaque*
/// (`ScalarVar`/`StrVar`, from pattern variables); consumers that need the
/// actual parameter value report [`SymError::Undecidable`] on the opaque
/// forms. There is no `Invalid` variant: inadmissibility surfaces as
/// [`SymError::Contradiction`] instead, so "no valuation is well-typed" is
/// distinguishable from "well-typed under these constraints".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymValue {
    /// A known integer parameter (a `Num` literal in the pattern).
    Scalar(i64),
    /// An opaque integer parameter (a pattern variable of scalar kind).
    ScalarVar(u32),
    /// A known string parameter (a `Str` literal in the pattern).
    Str(Symbol),
    /// An opaque string parameter (a pattern variable of string kind).
    StrVar(u32),
    /// A tensor value.
    Tensor(SymTensor),
    /// A tensor tuple (the result of `split`).
    Tuple(Box<SymTensor>, Box<SymTensor>),
}

impl SymValue {
    /// The tensor if this is a tensor value.
    pub fn as_tensor(&self) -> Option<&SymTensor> {
        match self {
            SymValue::Tensor(t) => Some(t),
            _ => None,
        }
    }
}

/// Why symbolic inference could not produce a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymError {
    /// No dimension valuation makes the interpreted nodes well-typed under
    /// the constraints collected so far (the concrete
    /// [`infer`](crate::infer) would return `Invalid` for every one).
    Contradiction(String),
    /// The domain cannot express the operator's semantics symbolically
    /// (non-linear shape arithmetic, or an opaque parameter in a
    /// shape-determining position). The caller must fall back to concrete
    /// checking.
    Undecidable(String),
}

impl std::fmt::Display for SymError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymError::Contradiction(m) => write!(f, "contradiction: {m}"),
            SymError::Undecidable(m) => write!(f, "undecidable: {m}"),
        }
    }
}

/// A unification environment over dimension variables: fresh-variable
/// supply plus the substitution produced by the equality constraints the
/// interpreted operators require.
#[derive(Debug, Clone, Default)]
pub struct DimEnv {
    bindings: BTreeMap<u32, SymDim>,
    next: u32,
}

impl DimEnv {
    /// An empty environment.
    pub fn new() -> Self {
        DimEnv::default()
    }

    /// A fresh, unconstrained dimension variable.
    pub fn fresh(&mut self) -> SymDim {
        let v = self.next;
        self.next += 1;
        SymDim::var(v)
    }

    /// The expression with every bound variable substituted out.
    ///
    /// Bindings form no cycles (unification always solves for a variable
    /// in terms of *other* variables), so recursive expansion terminates.
    pub fn resolve(&self, dim: &SymDim) -> SymDim {
        let mut out = SymDim::constant(dim.konst);
        for (&v, &c) in &dim.terms {
            match self.bindings.get(&v) {
                Some(expr) => out = out.add(&self.resolve(expr).scale(c)),
                None => out = out.add(&SymDim::var(v).scale(c)),
            }
        }
        out
    }

    /// Requires `a == b`, extending the substitution when the residual
    /// equation can be solved for a unit-coefficient variable.
    ///
    /// # Errors
    ///
    /// [`SymError::Contradiction`] when the resolved difference is a
    /// non-zero constant; [`SymError::Undecidable`] when the residual
    /// equation has no unit-coefficient variable to solve for.
    pub fn unify(&mut self, a: &SymDim, b: &SymDim) -> Result<(), SymError> {
        let diff = self.resolve(a).sub(&self.resolve(b));
        if diff.is_zero() {
            return Ok(());
        }
        if diff.terms.is_empty() {
            return Err(SymError::Contradiction(format!(
                "dimension mismatch: {} ≠ {}",
                self.resolve(a),
                self.resolve(b)
            )));
        }
        // Solve `diff = 0` for some variable with coefficient ±1.
        match diff.terms.iter().find(|(_, c)| c.abs() == 1) {
            Some((&v, &c)) => {
                let mut rest = diff.clone();
                rest.terms.remove(&v);
                // 0 = rest + c·v  ⇒  v = -rest/c = rest·(-1/c).
                self.bindings.insert(v, rest.scale(-c));
                Ok(())
            }
            None => Err(SymError::Undecidable(format!(
                "cannot solve {} = {} over the integers",
                self.resolve(a),
                self.resolve(b)
            ))),
        }
    }

    /// The number of variable bindings the collected equality constraints
    /// have produced so far. A verifier compares counts before and after
    /// interpreting a pattern to detect constraints that pattern *added*:
    /// a rule's target demanding equalities its sources did not already
    /// establish means the target is invalid for generic bindings.
    pub fn constraint_count(&self) -> usize {
        self.bindings.len()
    }

    /// Evaluates the expression under a valuation of the *free* (unbound)
    /// variables, resolving bound variables first.
    pub fn evaluate(&self, dim: &SymDim, valuation: &dyn Fn(u32) -> i64) -> i64 {
        let r = self.resolve(dim);
        r.konst + r.terms.iter().map(|(&v, &c)| c * valuation(v)).sum::<i64>()
    }
}

/// Symbolically infers the output of a single node, mirroring
/// [`infer`](crate::infer) case by case over the [`SymValue`] domain.
/// Equalities the operator requires (matching elementwise shapes, matmul
/// inner dimensions, concat non-axis dimensions, ...) are pushed into
/// `env`; kind violations and unsatisfiable equalities come back as
/// [`SymError::Contradiction`], semantics outside the linear domain as
/// [`SymError::Undecidable`].
///
/// # Errors
///
/// See [`SymError`] for the two failure modes.
pub fn sym_infer(
    node: &TensorLang,
    get: &dyn Fn(Id) -> SymValue,
    env: &mut DimEnv,
) -> Result<SymValue, SymError> {
    use TensorLang as L;

    let tensor = |id: Id| -> Result<SymTensor, SymError> {
        match get(id) {
            SymValue::Tensor(t) => Ok(t),
            other => Err(SymError::Contradiction(format!(
                "expected tensor child, found {other:?}"
            ))),
        }
    };
    // A scalar parameter whose concrete value shape inference depends on.
    let scalar_known = |id: Id| -> Result<i64, SymError> {
        match get(id) {
            SymValue::Scalar(v) => Ok(v),
            SymValue::ScalarVar(_) => Err(SymError::Undecidable(
                "opaque integer parameter in a shape-determining position".into(),
            )),
            other => Err(SymError::Contradiction(format!(
                "expected integer child, found {other:?}"
            ))),
        }
    };
    let string_known = |id: Id| -> Result<Symbol, SymError> {
        match get(id) {
            SymValue::Str(s) => Ok(s),
            SymValue::StrVar(_) => Err(SymError::Undecidable(
                "opaque string parameter in a shape-determining position".into(),
            )),
            other => Err(SymError::Contradiction(format!(
                "expected string child, found {other:?}"
            ))),
        }
    };
    // Positions `infer` ignores apart from validity (DataKind::Any): any
    // symbolic value is admissible, nothing to check.
    let any = |_id: Id| {};

    match node {
        L::Num(v) => Ok(SymValue::Scalar(*v)),
        L::Str(s) => Ok(SymValue::Str(*s)),
        L::Input([id]) | L::Weight([id]) => {
            let sym = string_known(*id)?;
            match decode_identifier(sym) {
                Ok((_, shape)) => Ok(SymValue::Tensor(SymTensor::new(
                    shape.into_iter().map(SymDim::constant).collect(),
                ))),
                Err(e) => Err(SymError::Contradiction(e)),
            }
        }
        L::Ewadd([a, b]) | L::Ewmul([a, b]) => {
            let ta = tensor(*a)?;
            let tb = tensor(*b)?;
            if ta.shape.len() != tb.shape.len() {
                return Err(SymError::Contradiction(
                    "elementwise op on mismatched ranks".into(),
                ));
            }
            for (x, y) in ta.shape.iter().zip(&tb.shape) {
                env.unify(x, y)?;
            }
            Ok(SymValue::Tensor(SymTensor::new(ta.shape)))
        }
        L::Matmul([act, a, b]) => {
            any(*act);
            let ta = tensor(*a)?;
            let tb = tensor(*b)?;
            let (ra, rb) = (ta.shape.len(), tb.shape.len());
            if ra < 2 || rb < 2 {
                return Err(SymError::Contradiction(
                    "matmul operands must have rank >= 2".into(),
                ));
            }
            let (m, k1) = (&ta.shape[ra - 2], &ta.shape[ra - 1]);
            let (k2, n) = (&tb.shape[rb - 2], &tb.shape[rb - 1]);
            env.unify(k1, k2)?;
            let batch: Vec<SymDim> = if ra == rb {
                for (x, y) in ta.shape[..ra - 2].iter().zip(&tb.shape[..rb - 2]) {
                    env.unify(x, y)?;
                }
                ta.shape[..ra - 2].to_vec()
            } else if rb == 2 {
                ta.shape[..ra - 2].to_vec()
            } else if ra == 2 {
                tb.shape[..rb - 2].to_vec()
            } else {
                return Err(SymError::Contradiction("matmul rank mismatch".into()));
            };
            let mut shape = batch;
            shape.push(m.clone());
            shape.push(n.clone());
            let rank = shape.len();
            let mut out = SymTensor::new(shape);
            // Concat-position propagation, exactly as in `infer`.
            if let Some((ax, pos)) = &tb.split_at {
                if ax + 1 == rb {
                    out.split_at = Some((rank - 1, pos.clone()));
                }
            }
            if out.split_at.is_none() {
                if let Some((ax, pos)) = &ta.split_at {
                    if ax + 2 == ra {
                        out.split_at = Some((rank - 2, pos.clone()));
                    }
                }
            }
            Ok(SymValue::Tensor(out))
        }
        L::Relu([x]) | L::Tanh([x]) | L::Sigmoid([x]) => {
            let t = tensor(*x)?;
            Ok(SymValue::Tensor(SymTensor {
                shape: t.shape,
                split_at: t.split_at,
            }))
        }
        L::Transpose([x, perm]) => {
            let t = tensor(*x)?;
            let perm = decode_permutation(string_known(*perm)?).map_err(SymError::Contradiction)?;
            if perm.len() != t.shape.len() {
                return Err(SymError::Contradiction(
                    "transpose permutation rank mismatch".into(),
                ));
            }
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            if sorted != (0..t.shape.len()).collect::<Vec<_>>() {
                return Err(SymError::Contradiction(
                    "transpose permutation is not a permutation".into(),
                ));
            }
            let shape: Vec<SymDim> = perm.iter().map(|&i| t.shape[i].clone()).collect();
            Ok(SymValue::Tensor(SymTensor::new(shape)))
        }
        L::Concat2(_) | L::Concat3(_) | L::Concat4(_) | L::Concat5(_) => {
            let ch = node.children();
            let axis = scalar_known(ch[0])?;
            if axis < 0 {
                return Err(SymError::Contradiction("negative concat axis".into()));
            }
            let axis = axis as usize;
            let mut parts = Vec::with_capacity(ch.len() - 1);
            for id in &ch[1..] {
                parts.push(tensor(*id)?);
            }
            let first = parts[0].clone();
            if axis >= first.shape.len() {
                return Err(SymError::Contradiction("concat axis out of range".into()));
            }
            let mut total = SymDim::constant(0);
            for p in &parts {
                if p.shape.len() != first.shape.len() {
                    return Err(SymError::Contradiction("concat rank mismatch".into()));
                }
                for (d, (a, b)) in first.shape.iter().zip(&p.shape).enumerate() {
                    if d != axis {
                        env.unify(a, b)?;
                    }
                }
                total = total.add(&p.shape[axis]);
            }
            let mut shape = first.shape.clone();
            shape[axis] = total;
            let mut out = SymTensor::new(shape);
            out.split_at = Some((axis, first.shape[axis].clone()));
            Ok(SymValue::Tensor(out))
        }
        L::Split([axis, x]) => {
            let axis = scalar_known(*axis)?;
            if axis < 0 {
                return Err(SymError::Contradiction("negative split axis".into()));
            }
            let axis = axis as usize;
            let t = tensor(*x)?;
            match &t.split_at {
                Some((concat_axis, first_size)) if *concat_axis == axis => {
                    // The range condition 0 < first < total is assumed
                    // satisfiable (see the module docs); over the positive
                    // valuations the verifier uses it always holds for
                    // concat-produced positions.
                    let total = &t.shape[axis];
                    let mut s0 = t.shape.clone();
                    let mut s1 = t.shape.clone();
                    s0[axis] = first_size.clone();
                    s1[axis] = total.sub(first_size);
                    Ok(SymValue::Tuple(
                        Box::new(SymTensor::new(s0)),
                        Box::new(SymTensor::new(s1)),
                    ))
                }
                _ => Err(SymError::Contradiction(
                    "split without a matching concat on that axis".into(),
                )),
            }
        }
        L::Split0([x]) => match get(*x) {
            SymValue::Tuple(first, _) => Ok(SymValue::Tensor(*first)),
            other => Err(SymError::Contradiction(format!(
                "split0 expects a tuple, found {other:?}"
            ))),
        },
        L::Split1([x]) => match get(*x) {
            SymValue::Tuple(_, second) => Ok(SymValue::Tensor(*second)),
            other => Err(SymError::Contradiction(format!(
                "split1 expects a tuple, found {other:?}"
            ))),
        },
        L::Noop([a, b]) => {
            let _ = tensor(*a)?;
            let _ = tensor(*b)?;
            Ok(SymValue::Tensor(SymTensor::new(vec![])))
        }
        // Outside the linear domain: convolution and pooling do strided
        // spatial arithmetic, reshape compares element products, merge
        // multiplies a dimension by a parameter, and enlarge takes spatial
        // maxima. The verifier falls back to concrete bindings for rules
        // that mention these.
        L::Conv(_)
        | L::Poolmax(_)
        | L::Poolavg(_)
        | L::Reshape(_)
        | L::Merge(_)
        | L::Enlarge(_) => Err(SymError::Undecidable(format!(
            "`{}` has non-linear shape semantics",
            node.op_name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::encode_permutation;

    #[test]
    fn linear_arithmetic_normalizes() {
        let a = SymDim::var(0);
        let b = SymDim::var(1);
        let e1 = a.add(&b).add(&SymDim::constant(3));
        let e2 = b.add(&SymDim::constant(3)).add(&a);
        assert_eq!(e1, e2);
        assert!(a.sub(&a).is_zero());
        assert_eq!(a.add(&a), a.scale(2));
        assert_eq!(e1.sub(&b).sub(&SymDim::constant(3)), a);
    }

    #[test]
    fn unify_solves_and_contradicts() {
        let mut env = DimEnv::new();
        let a = env.fresh();
        let b = env.fresh();
        // a + 2 == b  ⇒  resolvable.
        env.unify(&a.add(&SymDim::constant(2)), &b).unwrap();
        assert_eq!(env.resolve(&b), env.resolve(&a).add(&SymDim::constant(2)));
        // Now a + 2 == a + 5 must contradict.
        let err = env
            .unify(&a.add(&SymDim::constant(2)), &a.add(&SymDim::constant(5)))
            .unwrap_err();
        assert!(matches!(err, SymError::Contradiction(_)));
        // 2a == 3 over the integers with no unit coefficient: undecidable.
        let mut env = DimEnv::new();
        let a = env.fresh();
        let err = env.unify(&a.scale(2), &SymDim::constant(3)).unwrap_err();
        assert!(matches!(err, SymError::Undecidable(_)));
    }

    #[test]
    fn evaluate_uses_valuation_for_free_vars() {
        let mut env = DimEnv::new();
        let a = env.fresh();
        let b = env.fresh();
        env.unify(&a, &b.add(&SymDim::constant(4))).unwrap();
        // a is bound to b + 4; valuation only supplies b.
        let v = env.evaluate(&a, &|_| 7);
        assert_eq!(v, 11);
    }

    #[test]
    fn sym_matmul_unifies_inner_dims() {
        let mut env = DimEnv::new();
        let (m, k1, k2, n) = (env.fresh(), env.fresh(), env.fresh(), env.fresh());
        let a = SymValue::Tensor(SymTensor::new(vec![m.clone(), k1.clone()]));
        let b = SymValue::Tensor(SymTensor::new(vec![k2.clone(), n.clone()]));
        let act = SymValue::Scalar(0);
        let vals = [act, a, b];
        let get = |id: Id| vals[usize::from(id)].clone();
        let node = TensorLang::Matmul([Id::from(0usize), Id::from(1usize), Id::from(2usize)]);
        let out = sym_infer(&node, &get, &mut env).unwrap();
        let t = out.as_tensor().unwrap();
        assert_eq!(env.resolve(&t.shape[0]), env.resolve(&m));
        assert_eq!(env.resolve(&t.shape[1]), env.resolve(&n));
        // The inner dims were unified.
        assert_eq!(env.resolve(&k1), env.resolve(&k2));
    }

    #[test]
    fn sym_concat_sums_axis_and_records_split() {
        let mut env = DimEnv::new();
        let (r, c1, c2) = (env.fresh(), env.fresh(), env.fresh());
        let w1 = SymValue::Tensor(SymTensor::new(vec![r.clone(), c1.clone()]));
        let w2 = SymValue::Tensor(SymTensor::new(vec![r.clone(), c2.clone()]));
        let vals = [SymValue::Scalar(1), w1, w2];
        let get = |id: Id| vals[usize::from(id)].clone();
        let node = TensorLang::Concat2([Id::from(0usize), Id::from(1usize), Id::from(2usize)]);
        let out = sym_infer(&node, &get, &mut env).unwrap();
        let t = out.as_tensor().unwrap();
        assert_eq!(t.shape[1], c1.add(&c2));
        assert_eq!(t.split_at, Some((1, c1.clone())));
        // Splitting it back recovers both parts.
        let vals2 = [SymValue::Scalar(1), out];
        let get2 = |id: Id| vals2[usize::from(id)].clone();
        let split = TensorLang::Split([Id::from(0usize), Id::from(1usize)]);
        let tup = sym_infer(&split, &get2, &mut env).unwrap();
        match tup {
            SymValue::Tuple(s0, s1) => {
                assert_eq!(env.resolve(&s0.shape[1]), env.resolve(&c1));
                assert_eq!(env.resolve(&s1.shape[1]), env.resolve(&c2));
            }
            other => panic!("expected tuple, got {other:?}"),
        }
    }

    #[test]
    fn sym_transpose_requires_known_permutation() {
        let mut env = DimEnv::new();
        let (a, b) = (env.fresh(), env.fresh());
        let x = SymValue::Tensor(SymTensor::new(vec![a.clone(), b.clone()]));
        let perm = SymValue::Str(encode_permutation(&[1, 0]));
        let vals = [x.clone(), perm];
        let get = |id: Id| vals[usize::from(id)].clone();
        let node = TensorLang::Transpose([Id::from(0usize), Id::from(1usize)]);
        let out = sym_infer(&node, &get, &mut env).unwrap();
        assert_eq!(out.as_tensor().unwrap().shape, vec![b, a]);

        let vals = [x, SymValue::StrVar(0)];
        let get = |id: Id| vals[usize::from(id)].clone();
        assert!(matches!(
            sym_infer(&node, &get, &mut env),
            Err(SymError::Undecidable(_))
        ));
    }

    #[test]
    fn non_linear_operators_are_undecidable() {
        let mut env = DimEnv::new();
        let id = Id::from(0usize);
        for node in [
            TensorLang::Conv([id; 6]),
            TensorLang::Poolmax([id; 7]),
            TensorLang::Reshape([id; 2]),
            TensorLang::Merge([id; 2]),
            TensorLang::Enlarge([id; 2]),
        ] {
            let get = |_: Id| SymValue::Scalar(0);
            assert!(matches!(
                sym_infer(&node, &get, &mut env),
                Err(SymError::Undecidable(_))
            ));
        }
    }
}
