//! The analytical operator cost model.
//!
//! TASO and TENSAT use the *measured* runtime of each operator on the
//! target GPU as its cost, and the cost of a graph is the sum of its
//! operator costs (paper §5). This reproduction has no GPU, so the cost
//! model is analytical: a roofline over FLOPs and memory traffic plus a
//! per-kernel launch overhead, with the two properties that drive every
//! profitable rewrite in the paper:
//!
//! 1. *Kernel launch amortisation* — merging two operators into one larger
//!    operator saves a launch overhead (and usually improves the roofline),
//!    so the concat/split merging rewrites (paper Fig. 8, 9, 11) pay off.
//! 2. *Weight pre-computation* — any operator whose output depends only on
//!    weights costs nothing at inference time (paper Fig. 10), so concats
//!    of weight kernels are free.

use crate::shape::{infer, infer_recexpr, TensorData};
use crate::{TensorAnalysis, TensorLang};
use std::cmp::Ordering;
use std::ops::{Add, AddAssign};
use tensat_egraph::{EGraph, Id, Language, RecExpr};

/// A composite, Pareto-comparable extraction cost.
///
/// The paper optimizes a single scalar (summed operator runtime); real
/// deployment also cares about memory footprint and kernel-launch count, so
/// the extraction seam carries all three and lets strategies trade them
/// off. Comparisons used by extraction are *lexicographic* — latency first,
/// peak memory, then launches — so latency remains the paper-faithful
/// primary objective and the other fields only break ties deterministically.
/// [`Cost::dominates`] gives the Pareto order for frontier surfacing.
///
/// The lexicographic order is total (each field compares with
/// [`f64::total_cmp`], under which NaN orders above `+inf` and therefore
/// never wins a minimum), so `PartialOrd::partial_cmp` never returns `None`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cost {
    /// Summed operator latency in microseconds — the paper's objective.
    pub latency: f64,
    /// Approximate peak memory in bytes: the sum of materialized operator
    /// outputs (free/metadata-only nodes materialize nothing new).
    pub peak_memory: f64,
    /// Number of kernel launches (one per non-free operator).
    pub launches: f64,
}

impl Cost {
    /// The additive identity (a free node / empty graph).
    pub const ZERO: Cost = Cost {
        latency: 0.0,
        peak_memory: 0.0,
        launches: 0.0,
    };

    /// The cost of an ill-typed node: never selected by any extractor.
    pub const INFINITE: Cost = Cost {
        latency: f64::INFINITY,
        peak_memory: f64::INFINITY,
        launches: f64::INFINITY,
    };

    /// True if every component is finite.
    pub fn is_finite(&self) -> bool {
        self.latency.is_finite() && self.peak_memory.is_finite() && self.launches.is_finite()
    }

    /// The total lexicographic order used by extraction: latency, then
    /// peak memory, then launches, each via [`f64::total_cmp`].
    pub fn total_order(&self, other: &Cost) -> Ordering {
        self.latency
            .total_cmp(&other.latency)
            .then_with(|| self.peak_memory.total_cmp(&other.peak_memory))
            .then_with(|| self.launches.total_cmp(&other.launches))
    }

    /// Pareto dominance: no component worse, at least one strictly better.
    pub fn dominates(&self, other: &Cost) -> bool {
        self.latency <= other.latency
            && self.peak_memory <= other.peak_memory
            && self.launches <= other.launches
            && (self.latency < other.latency
                || self.peak_memory < other.peak_memory
                || self.launches < other.launches)
    }
}

impl PartialOrd for Cost {
    /// Always `Some`: the lexicographic [`Cost::total_order`] is total.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.total_order(other))
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(mut self, rhs: Cost) -> Cost {
        self += rhs;
        self
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.latency += rhs.latency;
        self.peak_memory += rhs.peak_memory;
        self.launches += rhs.launches;
    }
}

/// Analytical GPU cost model. Costs are in microseconds.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Peak arithmetic throughput in FLOPs per microsecond.
    pub flops_per_us: f64,
    /// Peak memory bandwidth in bytes per microsecond.
    pub bytes_per_us: f64,
    /// Fixed overhead per kernel launch, in microseconds.
    pub launch_overhead_us: f64,
    /// Bytes per tensor element (fp32).
    pub bytes_per_element: f64,
    /// Additional cost charged for a fused activation, in microseconds
    /// (small but non-zero so fused and unfused graphs are distinguishable).
    pub fused_activation_us: f64,
}

impl Default for CostModel {
    /// Parameters loosely modelled on an NVIDIA T4: ~8 TFLOPS fp32,
    /// ~300 GB/s, ~5 µs launch overhead.
    fn default() -> Self {
        CostModel {
            flops_per_us: 8.0e6,
            bytes_per_us: 300.0e3,
            launch_overhead_us: 5.0,
            bytes_per_element: 4.0,
            fused_activation_us: 0.1,
        }
    }
}

impl CostModel {
    /// A cost model with a different launch overhead (used by ablations).
    pub fn with_launch_overhead(mut self, us: f64) -> Self {
        self.launch_overhead_us = us;
        self
    }

    fn roofline(&self, flops: f64, bytes: f64) -> f64 {
        self.launch_overhead_us + (flops / self.flops_per_us).max(bytes / self.bytes_per_us)
    }

    fn memory_only(&self, bytes: f64) -> f64 {
        self.launch_overhead_us + bytes / self.bytes_per_us
    }

    /// The cost (µs) of a single operator node, given a function yielding
    /// the [`TensorData`] of each child.
    ///
    /// Zero-cost nodes: parameter leaves, `input`/`weight`, `noop`,
    /// metadata-only ops (`split`, `split0`, `split1`, `reshape`, `merge`),
    /// and any operator whose output is computable from weights alone.
    pub fn node_cost(&self, node: &TensorLang, get: &dyn Fn(Id) -> TensorData) -> f64 {
        use TensorLang as L;

        // Parameter leaves and graph plumbing are free.
        match node {
            L::Num(_) | L::Str(_) | L::Input(_) | L::Weight(_) | L::Noop(_) => return 0.0,
            L::Split(_) | L::Split0(_) | L::Split1(_) | L::Reshape(_) | L::Merge(_) => return 0.0,
            _ => {}
        }

        let out = infer(node, get);
        // Ill-typed nodes are given an effectively infinite cost so that
        // extraction never selects them.
        let out_info = match &out {
            TensorData::Tensor(t) => t.clone(),
            TensorData::Tuple(a, _) => (**a).clone(),
            _ => return f64::INFINITY,
        };
        // Anything computable from weights alone is pre-computed before
        // inference and costs nothing at run time.
        if out_info.weights_only {
            return 0.0;
        }

        let out_elems = out_info.elements().max(0) as f64;
        let child_tensor =
            |id: Id| -> Option<f64> { get(id).as_tensor().map(|t| t.elements().max(0) as f64) };
        let sum_input_elems =
            |ids: &[Id]| -> f64 { ids.iter().filter_map(|&id| child_tensor(id)).sum() };

        match node {
            L::Ewadd([a, b]) | L::Ewmul([a, b]) => {
                let bytes = (sum_input_elems(&[*a, *b]) + out_elems) * self.bytes_per_element;
                self.roofline(out_elems, bytes)
            }
            L::Relu([x]) | L::Tanh([x]) | L::Sigmoid([x]) => {
                let bytes = (sum_input_elems(&[*x]) + out_elems) * self.bytes_per_element;
                self.roofline(out_elems, bytes)
            }
            L::Matmul([act, a, b]) => {
                let ta = get(*a);
                let tb = get(*b);
                let sa = match (ta.shape(), tb.shape()) {
                    (Some(sa), Some(_)) => sa.to_vec(),
                    _ => return f64::INFINITY,
                };
                let k = sa[sa.len() - 1] as f64;
                let mut flops = 2.0 * out_elems * k;
                if get(*act).as_scalar().unwrap_or(0) != 0 {
                    flops += out_elems;
                }
                let bytes = (sum_input_elems(&[*a, *b]) + out_elems) * self.bytes_per_element;
                let fused = if get(*act).as_scalar().unwrap_or(0) != 0 {
                    self.fused_activation_us
                } else {
                    0.0
                };
                self.roofline(flops, bytes) + fused
            }
            L::Conv([_sh, _sw, _pad, act, x, w]) => {
                let tw = get(*w);
                let sw_shape = match tw.shape() {
                    Some(s) if s.len() == 4 => s.to_vec(),
                    _ => return f64::INFINITY,
                };
                let (ci, kh, kw) = (sw_shape[1] as f64, sw_shape[2] as f64, sw_shape[3] as f64);
                let mut flops = 2.0 * out_elems * ci * kh * kw;
                if get(*act).as_scalar().unwrap_or(0) != 0 {
                    flops += out_elems;
                }
                let bytes = (sum_input_elems(&[*x, *w]) + out_elems) * self.bytes_per_element;
                let fused = if get(*act).as_scalar().unwrap_or(0) != 0 {
                    self.fused_activation_us
                } else {
                    0.0
                };
                self.roofline(flops, bytes) + fused
            }
            L::Poolmax([x, kh, kw, ..]) | L::Poolavg([x, kh, kw, ..]) => {
                let k = get(*kh).as_scalar().unwrap_or(1) as f64
                    * get(*kw).as_scalar().unwrap_or(1) as f64;
                let flops = out_elems * k;
                let bytes = (sum_input_elems(&[*x]) + out_elems) * self.bytes_per_element;
                self.roofline(flops, bytes)
            }
            L::Transpose([x, _]) => {
                let bytes = (sum_input_elems(&[*x]) + out_elems) * self.bytes_per_element;
                self.memory_only(bytes)
            }
            L::Enlarge([x, _]) => {
                let bytes = (sum_input_elems(&[*x]) + out_elems) * self.bytes_per_element;
                self.memory_only(bytes)
            }
            L::Concat2(_) | L::Concat3(_) | L::Concat4(_) | L::Concat5(_) => {
                let rest = &node.children()[1..];
                let bytes = (sum_input_elems(rest) + out_elems) * self.bytes_per_element;
                self.memory_only(bytes)
            }
            // Handled above (zero cost) — unreachable here.
            L::Num(_)
            | L::Str(_)
            | L::Input(_)
            | L::Weight(_)
            | L::Noop(_)
            | L::Split(_)
            | L::Split0(_)
            | L::Split1(_)
            | L::Reshape(_)
            | L::Merge(_) => 0.0,
        }
    }

    /// The composite [`Cost`] of a single operator node. Latency is
    /// [`CostModel::node_cost`]; a node with zero latency (parameter leaf,
    /// metadata-only op, weights-only subgraph) is wholly free — it
    /// materializes nothing new and launches no kernel — while every other
    /// node charges its output bytes as peak memory and one kernel launch.
    pub fn node_cost_composite(&self, node: &TensorLang, get: &dyn Fn(Id) -> TensorData) -> Cost {
        let latency = self.node_cost(node, get);
        if latency == 0.0 {
            return Cost::ZERO;
        }
        if latency.is_infinite() {
            return Cost::INFINITE;
        }
        let out_elems = match &infer(node, get) {
            TensorData::Tensor(t) => t.elements().max(0),
            TensorData::Tuple(a, _) => a.elements().max(0),
            _ => return Cost::INFINITE,
        };
        Cost {
            latency,
            peak_memory: out_elems as f64 * self.bytes_per_element,
            launches: 1.0,
        }
    }

    /// The cost (µs) of an e-node inside an e-graph, reading children data
    /// from the e-class analysis.
    pub fn enode_cost(
        &self,
        egraph: &EGraph<TensorLang, TensorAnalysis>,
        enode: &TensorLang,
    ) -> f64 {
        let get = |id: Id| egraph.eclass(id).data.clone();
        self.node_cost(enode, &get)
    }

    /// The composite [`Cost`] of an e-node inside an e-graph.
    pub fn enode_cost_composite(
        &self,
        egraph: &EGraph<TensorLang, TensorAnalysis>,
        enode: &TensorLang,
    ) -> Cost {
        let get = |id: Id| egraph.eclass(id).data.clone();
        self.node_cost_composite(enode, &get)
    }

    /// The total cost (µs) of a concrete tensor graph. Structurally
    /// identical nodes are counted once (the graph is a DAG; shared
    /// sub-computations run once), matching how TASO costs graphs.
    pub fn graph_cost(&self, expr: &RecExpr<TensorLang>) -> f64 {
        self.graph_cost_composite(expr).latency
    }

    /// Alias of [`CostModel::graph_cost`] under the name the extraction
    /// seam reports it as: the *DAG* cost, each node charged once.
    pub fn dag_cost(&self, expr: &RecExpr<TensorLang>) -> f64 {
        self.graph_cost(expr)
    }

    /// The composite DAG cost of a concrete tensor graph (each structurally
    /// distinct node charged once).
    pub fn graph_cost_composite(&self, expr: &RecExpr<TensorLang>) -> Cost {
        let data = infer_recexpr(expr);
        let get_all = |id: Id| data[usize::from(id)].clone();
        let mut seen: std::collections::HashSet<&TensorLang> = Default::default();
        let mut total = Cost::ZERO;
        for (_, node) in expr.iter() {
            if seen.insert(node) {
                total += self.node_cost_composite(node, &get_all);
            }
        }
        total
    }

    /// The *tree* cost (µs) of a concrete tensor graph: each node charged
    /// once **per use**, i.e. what the cost would be if shared subgraphs
    /// were recomputed at every reference. This is the objective the
    /// tree-greedy extractor actually minimizes; reporting it next to
    /// [`CostModel::dag_cost`] keeps extractor comparisons honest.
    pub fn tree_cost(&self, expr: &RecExpr<TensorLang>) -> f64 {
        let data = infer_recexpr(expr);
        let get_all = |id: Id| data[usize::from(id)].clone();
        // Multiplicity pass: the root is used once; every node passes its
        // own multiplicity to each child reference. Children precede
        // parents in a RecExpr, so iterate in reverse.
        let n = expr.len();
        let mut mult = vec![0.0f64; n];
        if n > 0 {
            mult[n - 1] = 1.0;
        }
        let mut total = 0.0;
        for (i, node) in expr.nodes().iter().enumerate().rev() {
            let m = mult[i];
            if m == 0.0 {
                continue;
            }
            total += m * self.node_cost(node, &get_all);
            for &c in node.children() {
                mult[usize::from(c)] += m;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::lang::Activation;

    #[test]
    fn weights_only_subgraphs_are_free() {
        let mut g = GraphBuilder::new();
        let w1 = g.weight("w1", &[64, 64]);
        let w2 = g.weight("w2", &[64, 64]);
        let cat = g.concat2(1, w1, w2);
        let expr = g.finish(&[cat]);
        let cm = CostModel::default();
        assert_eq!(cm.graph_cost(&expr), 0.0);
    }

    #[test]
    fn merged_matmul_is_cheaper_than_two() {
        // Two matmuls sharing an input versus one matmul on concatenated
        // weights followed by split: the merged form must be cheaper (this
        // is the economics behind the paper's Fig. 8/Fig. 2 rewrite).
        let cm = CostModel::default();

        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let w1 = g.weight("w1", &[256, 256]);
        let w2 = g.weight("w2", &[256, 256]);
        let m1 = g.matmul(x, w1);
        let m2 = g.matmul(x, w2);
        let two = g.finish(&[m1, m2]);

        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let w1 = g.weight("w1", &[256, 256]);
        let w2 = g.weight("w2", &[256, 256]);
        let cat = g.concat2(1, w1, w2);
        let mm = g.matmul(x, cat);
        let split = g.split(1, mm);
        let s0 = g.split0(split);
        let s1 = g.split1(split);
        let merged = g.finish(&[s0, s1]);

        let c_two = cm.graph_cost(&two);
        let c_merged = cm.graph_cost(&merged);
        assert!(
            c_merged < c_two,
            "merged {c_merged} should be cheaper than separate {c_two}"
        );
    }

    #[test]
    fn fused_activation_is_cheaper_than_separate_relu() {
        let cm = CostModel::default();
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let w = g.weight("w", &[256, 256]);
        let m = g.matmul(x, w);
        let r = g.relu(m);
        let unfused = g.finish(&[r]);

        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let w = g.weight("w", &[256, 256]);
        let m = g.matmul_act(Activation::Relu, x, w);
        let fused = g.finish(&[m]);

        assert!(cm.graph_cost(&fused) < cm.graph_cost(&unfused));
    }

    #[test]
    fn shared_subgraphs_counted_once() {
        let cm = CostModel::default();
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let w = g.weight("w", &[256, 256]);
        let m = g.matmul(x, w);
        let s = g.ewadd(m, m);
        let expr = g.finish(&[s]);
        let cost_shared = cm.graph_cost(&expr);

        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let w = g.weight("w", &[256, 256]);
        let m = g.matmul(x, w);
        let expr_single = g.finish(&[m]);
        let cost_single = cm.graph_cost(&expr_single);

        // The shared version adds only an elementwise op on top of a single
        // matmul (the matmul is not double counted), so it must cost less
        // than two matmuls and more than one.
        assert!(cost_shared < cost_single * 2.0);
        assert!(cost_shared > cost_single);
    }

    #[test]
    fn invalid_nodes_cost_infinity() {
        let cm = CostModel::default();
        let mut g = GraphBuilder::new();
        let a = g.input("a", &[8, 100]);
        let b = g.weight("b", &[128, 64]);
        let m = g.matmul(a, b); // inner dims mismatch
        let expr = g.finish(&[m]);
        assert!(cm.graph_cost(&expr).is_infinite());
        assert!(!cm.graph_cost_composite(&expr).is_finite());
    }

    #[test]
    fn composite_order_is_total_and_latency_first() {
        let a = Cost {
            latency: 1.0,
            peak_memory: 100.0,
            launches: 9.0,
        };
        let b = Cost {
            latency: 2.0,
            peak_memory: 1.0,
            launches: 1.0,
        };
        // Lexicographic: latency dominates regardless of the other fields.
        assert!(a < b);
        // Ties broken by memory, then launches.
        let c = Cost {
            latency: 1.0,
            peak_memory: 50.0,
            launches: 100.0,
        };
        assert!(c < a);
        // NaN is ordered (above +inf), never equal to itself being a trap.
        let nan = Cost {
            latency: f64::NAN,
            peak_memory: 0.0,
            launches: 0.0,
        };
        assert_eq!(nan.partial_cmp(&Cost::INFINITE), Some(Ordering::Greater));
        assert!(a < nan);
        // Pareto dominance is distinct from the lexicographic order: `a`
        // is lexicographically smaller than `b` but does not dominate it.
        assert!(!a.dominates(&b));
        assert!(Cost::ZERO.dominates(&a));
        assert!(!a.dominates(&a));
    }

    #[test]
    fn composite_cost_components_are_consistent() {
        let cm = CostModel::default();
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let w = g.weight("w", &[256, 256]);
        let m = g.matmul(x, w);
        let r = g.relu(m);
        let expr = g.finish(&[r]);
        let composite = cm.graph_cost_composite(&expr);
        // Latency agrees with the scalar model.
        assert_eq!(composite.latency, cm.graph_cost(&expr));
        // Two non-free operators: matmul and relu.
        assert_eq!(composite.launches, 2.0);
        // Each materializes a [64, 256] fp32 output.
        assert_eq!(composite.peak_memory, 2.0 * 64.0 * 256.0 * 4.0);
    }

    #[test]
    fn tree_cost_charges_shared_subgraphs_per_use() {
        let cm = CostModel::default();
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let w = g.weight("w", &[256, 256]);
        let m = g.matmul(x, w);
        let s = g.ewadd(m, m);
        let expr = g.finish(&[s]);

        let dag = cm.dag_cost(&expr);
        let tree = cm.tree_cost(&expr);
        // The matmul is shared by both ewadd operands: tree pays it twice.
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let w = g.weight("w", &[256, 256]);
        let m = g.matmul(x, w);
        let single = g.finish(&[m]);
        let matmul_cost = cm.graph_cost(&single);
        assert!((tree - dag - matmul_cost).abs() < 1e-9);

        // On a sharing-free graph the two costs agree.
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let w = g.weight("w", &[256, 256]);
        let m = g.matmul(x, w);
        let r = g.relu(m);
        let linear = g.finish(&[r]);
        assert!((cm.tree_cost(&linear) - cm.dag_cost(&linear)).abs() < 1e-9);
    }
}
