//! The analytical operator cost model.
//!
//! TASO and TENSAT use the *measured* runtime of each operator on the
//! target GPU as its cost, and the cost of a graph is the sum of its
//! operator costs (paper §5). This reproduction has no GPU, so the cost
//! model is analytical: a roofline over FLOPs and memory traffic plus a
//! per-kernel launch overhead, with the two properties that drive every
//! profitable rewrite in the paper:
//!
//! 1. *Kernel launch amortisation* — merging two operators into one larger
//!    operator saves a launch overhead (and usually improves the roofline),
//!    so the concat/split merging rewrites (paper Fig. 8, 9, 11) pay off.
//! 2. *Weight pre-computation* — any operator whose output depends only on
//!    weights costs nothing at inference time (paper Fig. 10), so concats
//!    of weight kernels are free.

use crate::shape::{infer, infer_recexpr, TensorData};
use crate::{TensorAnalysis, TensorLang};
use tensat_egraph::{EGraph, Id, Language, RecExpr};

/// Analytical GPU cost model. Costs are in microseconds.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Peak arithmetic throughput in FLOPs per microsecond.
    pub flops_per_us: f64,
    /// Peak memory bandwidth in bytes per microsecond.
    pub bytes_per_us: f64,
    /// Fixed overhead per kernel launch, in microseconds.
    pub launch_overhead_us: f64,
    /// Bytes per tensor element (fp32).
    pub bytes_per_element: f64,
    /// Additional cost charged for a fused activation, in microseconds
    /// (small but non-zero so fused and unfused graphs are distinguishable).
    pub fused_activation_us: f64,
}

impl Default for CostModel {
    /// Parameters loosely modelled on an NVIDIA T4: ~8 TFLOPS fp32,
    /// ~300 GB/s, ~5 µs launch overhead.
    fn default() -> Self {
        CostModel {
            flops_per_us: 8.0e6,
            bytes_per_us: 300.0e3,
            launch_overhead_us: 5.0,
            bytes_per_element: 4.0,
            fused_activation_us: 0.1,
        }
    }
}

impl CostModel {
    /// A cost model with a different launch overhead (used by ablations).
    pub fn with_launch_overhead(mut self, us: f64) -> Self {
        self.launch_overhead_us = us;
        self
    }

    fn roofline(&self, flops: f64, bytes: f64) -> f64 {
        self.launch_overhead_us + (flops / self.flops_per_us).max(bytes / self.bytes_per_us)
    }

    fn memory_only(&self, bytes: f64) -> f64 {
        self.launch_overhead_us + bytes / self.bytes_per_us
    }

    /// The cost (µs) of a single operator node, given a function yielding
    /// the [`TensorData`] of each child.
    ///
    /// Zero-cost nodes: parameter leaves, `input`/`weight`, `noop`,
    /// metadata-only ops (`split`, `split0`, `split1`, `reshape`, `merge`),
    /// and any operator whose output is computable from weights alone.
    pub fn node_cost(&self, node: &TensorLang, get: &dyn Fn(Id) -> TensorData) -> f64 {
        use TensorLang as L;

        // Parameter leaves and graph plumbing are free.
        match node {
            L::Num(_) | L::Str(_) | L::Input(_) | L::Weight(_) | L::Noop(_) => return 0.0,
            L::Split(_) | L::Split0(_) | L::Split1(_) | L::Reshape(_) | L::Merge(_) => return 0.0,
            _ => {}
        }

        let out = infer(node, get);
        // Ill-typed nodes are given an effectively infinite cost so that
        // extraction never selects them.
        let out_info = match &out {
            TensorData::Tensor(t) => t.clone(),
            TensorData::Tuple(a, _) => (**a).clone(),
            _ => return f64::INFINITY,
        };
        // Anything computable from weights alone is pre-computed before
        // inference and costs nothing at run time.
        if out_info.weights_only {
            return 0.0;
        }

        let out_elems = out_info.elements().max(0) as f64;
        let child_tensor =
            |id: Id| -> Option<f64> { get(id).as_tensor().map(|t| t.elements().max(0) as f64) };
        let sum_input_elems =
            |ids: &[Id]| -> f64 { ids.iter().filter_map(|&id| child_tensor(id)).sum() };

        match node {
            L::Ewadd([a, b]) | L::Ewmul([a, b]) => {
                let bytes = (sum_input_elems(&[*a, *b]) + out_elems) * self.bytes_per_element;
                self.roofline(out_elems, bytes)
            }
            L::Relu([x]) | L::Tanh([x]) | L::Sigmoid([x]) => {
                let bytes = (sum_input_elems(&[*x]) + out_elems) * self.bytes_per_element;
                self.roofline(out_elems, bytes)
            }
            L::Matmul([act, a, b]) => {
                let ta = get(*a);
                let tb = get(*b);
                let sa = match (ta.shape(), tb.shape()) {
                    (Some(sa), Some(_)) => sa.to_vec(),
                    _ => return f64::INFINITY,
                };
                let k = sa[sa.len() - 1] as f64;
                let mut flops = 2.0 * out_elems * k;
                if get(*act).as_scalar().unwrap_or(0) != 0 {
                    flops += out_elems;
                }
                let bytes = (sum_input_elems(&[*a, *b]) + out_elems) * self.bytes_per_element;
                let fused = if get(*act).as_scalar().unwrap_or(0) != 0 {
                    self.fused_activation_us
                } else {
                    0.0
                };
                self.roofline(flops, bytes) + fused
            }
            L::Conv([_sh, _sw, _pad, act, x, w]) => {
                let tw = get(*w);
                let sw_shape = match tw.shape() {
                    Some(s) if s.len() == 4 => s.to_vec(),
                    _ => return f64::INFINITY,
                };
                let (ci, kh, kw) = (sw_shape[1] as f64, sw_shape[2] as f64, sw_shape[3] as f64);
                let mut flops = 2.0 * out_elems * ci * kh * kw;
                if get(*act).as_scalar().unwrap_or(0) != 0 {
                    flops += out_elems;
                }
                let bytes = (sum_input_elems(&[*x, *w]) + out_elems) * self.bytes_per_element;
                let fused = if get(*act).as_scalar().unwrap_or(0) != 0 {
                    self.fused_activation_us
                } else {
                    0.0
                };
                self.roofline(flops, bytes) + fused
            }
            L::Poolmax([x, kh, kw, ..]) | L::Poolavg([x, kh, kw, ..]) => {
                let k = get(*kh).as_scalar().unwrap_or(1) as f64
                    * get(*kw).as_scalar().unwrap_or(1) as f64;
                let flops = out_elems * k;
                let bytes = (sum_input_elems(&[*x]) + out_elems) * self.bytes_per_element;
                self.roofline(flops, bytes)
            }
            L::Transpose([x, _]) => {
                let bytes = (sum_input_elems(&[*x]) + out_elems) * self.bytes_per_element;
                self.memory_only(bytes)
            }
            L::Enlarge([x, _]) => {
                let bytes = (sum_input_elems(&[*x]) + out_elems) * self.bytes_per_element;
                self.memory_only(bytes)
            }
            L::Concat2(_) | L::Concat3(_) | L::Concat4(_) | L::Concat5(_) => {
                let rest = &node.children()[1..];
                let bytes = (sum_input_elems(rest) + out_elems) * self.bytes_per_element;
                self.memory_only(bytes)
            }
            // Handled above (zero cost) — unreachable here.
            L::Num(_)
            | L::Str(_)
            | L::Input(_)
            | L::Weight(_)
            | L::Noop(_)
            | L::Split(_)
            | L::Split0(_)
            | L::Split1(_)
            | L::Reshape(_)
            | L::Merge(_) => 0.0,
        }
    }

    /// The cost (µs) of an e-node inside an e-graph, reading children data
    /// from the e-class analysis.
    pub fn enode_cost(
        &self,
        egraph: &EGraph<TensorLang, TensorAnalysis>,
        enode: &TensorLang,
    ) -> f64 {
        let get = |id: Id| egraph.eclass(id).data.clone();
        self.node_cost(enode, &get)
    }

    /// The total cost (µs) of a concrete tensor graph. Structurally
    /// identical nodes are counted once (the graph is a DAG; shared
    /// sub-computations run once), matching how TASO costs graphs.
    pub fn graph_cost(&self, expr: &RecExpr<TensorLang>) -> f64 {
        let data = infer_recexpr(expr);
        let get_all = |id: Id| data[usize::from(id)].clone();
        let mut seen: std::collections::HashSet<&TensorLang> = Default::default();
        let mut total = 0.0;
        for (_, node) in expr.iter() {
            if seen.insert(node) {
                total += self.node_cost(node, &get_all);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::lang::Activation;

    #[test]
    fn weights_only_subgraphs_are_free() {
        let mut g = GraphBuilder::new();
        let w1 = g.weight("w1", &[64, 64]);
        let w2 = g.weight("w2", &[64, 64]);
        let cat = g.concat2(1, w1, w2);
        let expr = g.finish(&[cat]);
        let cm = CostModel::default();
        assert_eq!(cm.graph_cost(&expr), 0.0);
    }

    #[test]
    fn merged_matmul_is_cheaper_than_two() {
        // Two matmuls sharing an input versus one matmul on concatenated
        // weights followed by split: the merged form must be cheaper (this
        // is the economics behind the paper's Fig. 8/Fig. 2 rewrite).
        let cm = CostModel::default();

        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let w1 = g.weight("w1", &[256, 256]);
        let w2 = g.weight("w2", &[256, 256]);
        let m1 = g.matmul(x, w1);
        let m2 = g.matmul(x, w2);
        let two = g.finish(&[m1, m2]);

        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let w1 = g.weight("w1", &[256, 256]);
        let w2 = g.weight("w2", &[256, 256]);
        let cat = g.concat2(1, w1, w2);
        let mm = g.matmul(x, cat);
        let split = g.split(1, mm);
        let s0 = g.split0(split);
        let s1 = g.split1(split);
        let merged = g.finish(&[s0, s1]);

        let c_two = cm.graph_cost(&two);
        let c_merged = cm.graph_cost(&merged);
        assert!(
            c_merged < c_two,
            "merged {c_merged} should be cheaper than separate {c_two}"
        );
    }

    #[test]
    fn fused_activation_is_cheaper_than_separate_relu() {
        let cm = CostModel::default();
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let w = g.weight("w", &[256, 256]);
        let m = g.matmul(x, w);
        let r = g.relu(m);
        let unfused = g.finish(&[r]);

        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let w = g.weight("w", &[256, 256]);
        let m = g.matmul_act(Activation::Relu, x, w);
        let fused = g.finish(&[m]);

        assert!(cm.graph_cost(&fused) < cm.graph_cost(&unfused));
    }

    #[test]
    fn shared_subgraphs_counted_once() {
        let cm = CostModel::default();
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let w = g.weight("w", &[256, 256]);
        let m = g.matmul(x, w);
        let s = g.ewadd(m, m);
        let expr = g.finish(&[s]);
        let cost_shared = cm.graph_cost(&expr);

        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let w = g.weight("w", &[256, 256]);
        let m = g.matmul(x, w);
        let expr_single = g.finish(&[m]);
        let cost_single = cm.graph_cost(&expr_single);

        // The shared version adds only an elementwise op on top of a single
        // matmul (the matmul is not double counted), so it must cost less
        // than two matmuls and more than one.
        assert!(cost_shared < cost_single * 2.0);
        assert!(cost_shared > cost_single);
    }

    #[test]
    fn invalid_nodes_cost_infinity() {
        let cm = CostModel::default();
        let mut g = GraphBuilder::new();
        let a = g.input("a", &[8, 100]);
        let b = g.weight("b", &[128, 64]);
        let m = g.matmul(a, b); // inner dims mismatch
        let expr = g.finish(&[m]);
        assert!(cm.graph_cost(&expr).is_infinite());
    }
}
