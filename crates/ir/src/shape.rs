//! Shape inference for [`TensorLang`] nodes.
//!
//! Every node's output is summarized by a [`TensorData`] value: parameter
//! leaves evaluate to scalars/strings, operators to tensor metadata (shape,
//! whether the value depends only on weights, and where the most recent
//! concatenation happened — the information TENSAT stores in its e-class
//! analysis for shape checking, paper §4 and §6).

use crate::lang::{decode_identifier, decode_permutation, decode_shape, Padding, TensorLang};
use tensat_egraph::{Id, Language, RecExpr, Symbol};

/// Metadata describing a concrete tensor value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorInfo {
    /// The tensor shape (dimension sizes).
    pub shape: Vec<i64>,
    /// True if the value depends only on weight tensors, so it can be
    /// pre-computed before inference (drives the "concat of weights is
    /// free" rewrites of the paper's appendix).
    pub weights_only: bool,
    /// If the tensor was most recently produced by a concatenation, the
    /// axis and the size of the first part — the position at which `split`
    /// will cut (paper Table 2, note e).
    pub split_at: Option<(usize, i64)>,
}

impl TensorInfo {
    /// Creates tensor info with no concat history.
    pub fn new(shape: Vec<i64>, weights_only: bool) -> Self {
        TensorInfo {
            shape,
            weights_only,
            split_at: None,
        }
    }

    /// The number of elements in the tensor.
    pub fn elements(&self) -> i64 {
        self.shape.iter().product()
    }
}

/// Analysis data attached to every node / e-class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorData {
    /// The node is not well-typed (shape mismatch, bad parameters, ...).
    /// Carries a human-readable reason for diagnostics.
    Invalid(String),
    /// An integer parameter.
    Scalar(i64),
    /// A string parameter.
    Str(Symbol),
    /// A tensor value.
    Tensor(TensorInfo),
    /// A tensor tuple (the result of `split`).
    Tuple(Box<TensorInfo>, Box<TensorInfo>),
}

impl TensorData {
    /// Invalid data with a reason.
    pub fn invalid(reason: impl Into<String>) -> Self {
        TensorData::Invalid(reason.into())
    }

    /// True if this is a well-typed tensor (not a tuple or parameter).
    pub fn is_tensor(&self) -> bool {
        matches!(self, TensorData::Tensor(_))
    }

    /// True unless this is [`TensorData::Invalid`].
    pub fn is_valid(&self) -> bool {
        !matches!(self, TensorData::Invalid(_))
    }

    /// The tensor info if this is a tensor.
    pub fn as_tensor(&self) -> Option<&TensorInfo> {
        match self {
            TensorData::Tensor(t) => Some(t),
            _ => None,
        }
    }

    /// The scalar value if this is a scalar.
    pub fn as_scalar(&self) -> Option<i64> {
        match self {
            TensorData::Scalar(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value if this is a string.
    pub fn as_str_sym(&self) -> Option<Symbol> {
        match self {
            TensorData::Str(s) => Some(*s),
            _ => None,
        }
    }

    /// The tensor shape if this is a tensor.
    pub fn shape(&self) -> Option<&[i64]> {
        self.as_tensor().map(|t| t.shape.as_slice())
    }

    /// The coarse kind of this value, or `None` if it is invalid.
    pub fn kind(&self) -> Option<DataKind> {
        match self {
            TensorData::Invalid(_) => None,
            TensorData::Scalar(_) => Some(DataKind::Scalar),
            TensorData::Str(_) => Some(DataKind::Str),
            TensorData::Tensor(_) => Some(DataKind::Tensor),
            TensorData::Tuple(..) => Some(DataKind::Tuple),
        }
    }

    /// True if this value is valid and of the given kind ([`DataKind::Any`]
    /// accepts every valid value). This is exactly the admissibility test
    /// the corresponding [`infer`] child accessor performs, so it can be
    /// used as an e-class analysis guard during e-matching.
    pub fn matches_kind(&self, kind: DataKind) -> bool {
        match kind {
            DataKind::Any => self.is_valid(),
            k => self.kind() == Some(k),
        }
    }

    /// The interned kind tag of this value — the per-class byte the e-graph
    /// stores in its dense tag side table
    /// ([`Analysis::kind_tag`](tensat_egraph::Analysis::kind_tag)), one tag
    /// per variant. Both [`TensorData::is_valid`] and
    /// [`TensorData::matches_kind`] are pure functions of the variant, so a
    /// kind-only shape guard is decided entirely by this tag (see
    /// [`DataKind::tag_mask`]).
    pub fn kind_tag(&self) -> u8 {
        match self {
            TensorData::Invalid(_) => 0,
            TensorData::Scalar(_) => 1,
            TensorData::Str(_) => 2,
            TensorData::Tensor(_) => 3,
            TensorData::Tuple(..) => 4,
        }
    }
}

/// Tag mask admitting every *valid* [`TensorData`] variant (everything but
/// `Invalid`); see [`TensorData::kind_tag`] and [`DataKind::tag_mask`].
pub const VALID_TAG_MASK: u32 = (1 << 1) | (1 << 2) | (1 << 3) | (1 << 4);

/// The coarse kind of [`TensorData`] an operator child position requires —
/// the static part of [`infer`]'s per-child admissibility checks, exposed so
/// rewrite rules can compile their shape conditions down to per-variable
/// e-matching guards (see [`child_data_kinds`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DataKind {
    /// An integer parameter ([`TensorData::Scalar`]).
    Scalar,
    /// A string parameter ([`TensorData::Str`]).
    Str,
    /// A tensor value ([`TensorData::Tensor`]).
    Tensor,
    /// A tensor tuple ([`TensorData::Tuple`], produced by `split`).
    Tuple,
    /// Any valid value: the position is ignored by shape inference (e.g. the
    /// activation code of `matmul`), so only overall validity is required.
    Any,
}

impl DataKind {
    /// The mask of [`TensorData::kind_tag`] values `t` for which data with
    /// tag `t` satisfies [`TensorData::matches_kind`] for this kind — i.e.
    /// is valid *and* of this kind ([`DataKind::Any`] admits every valid
    /// tag). Intersecting these masks compiles a whole kind-constraint set
    /// down to one tag-mask e-matching guard
    /// ([`tensat_egraph::Guard::tags`]); the equivalence with the dynamic
    /// check is pinned by a unit test in `tensat-rules`.
    pub fn tag_mask(self) -> u32 {
        match self {
            DataKind::Scalar => 1 << 1,
            DataKind::Str => 1 << 2,
            DataKind::Tensor => 1 << 3,
            DataKind::Tuple => 1 << 4,
            DataKind::Any => VALID_TAG_MASK,
        }
    }
}

/// For each child position of `node`, the [`DataKind`] that [`infer`]
/// requires of that child's data — `infer` returns
/// [`TensorData::Invalid`] whenever a child's data fails its position's
/// kind (and always when a child is invalid). This table must mirror the
/// accessors `infer` actually calls; `shape.rs` keeps the two adjacent so
/// they evolve together.
pub fn child_data_kinds(node: &TensorLang) -> &'static [DataKind] {
    use DataKind::{Any, Scalar, Str, Tensor, Tuple};
    use TensorLang as L;
    match node {
        L::Num(_) | L::Str(_) => &[],
        L::Input(_) | L::Weight(_) => &[Str],
        L::Ewadd(_) | L::Ewmul(_) | L::Enlarge(_) | L::Noop(_) => &[Tensor, Tensor],
        L::Matmul(_) => &[Any, Tensor, Tensor],
        L::Conv(_) => &[Scalar, Scalar, Scalar, Any, Tensor, Tensor],
        L::Relu(_) | L::Tanh(_) | L::Sigmoid(_) => &[Tensor],
        L::Poolmax(_) | L::Poolavg(_) => &[Tensor, Scalar, Scalar, Scalar, Scalar, Scalar, Any],
        L::Transpose(_) | L::Reshape(_) => &[Tensor, Str],
        L::Concat2(_) => &[Scalar, Tensor, Tensor],
        L::Concat3(_) => &[Scalar, Tensor, Tensor, Tensor],
        L::Concat4(_) => &[Scalar, Tensor, Tensor, Tensor, Tensor],
        L::Concat5(_) => &[Scalar, Tensor, Tensor, Tensor, Tensor, Tensor],
        L::Split(_) => &[Scalar, Tensor],
        L::Split0(_) | L::Split1(_) => &[Tuple],
        L::Merge(_) => &[Tensor, Scalar],
    }
}

fn spatial_out(size: i64, kernel: i64, stride: i64, pad: Padding) -> Option<i64> {
    if stride <= 0 || kernel <= 0 || size <= 0 {
        return None;
    }
    match pad {
        Padding::Same => Some((size + stride - 1) / stride),
        Padding::Valid => {
            if size < kernel {
                None
            } else {
                Some((size - kernel) / stride + 1)
            }
        }
    }
}

/// Infers the output [`TensorData`] of a single node given a function that
/// yields the data of each child.
pub fn infer(node: &TensorLang, get: &dyn Fn(Id) -> TensorData) -> TensorData {
    use TensorLang as L;

    let tensor = |id: Id| -> Result<TensorInfo, TensorData> {
        match get(id) {
            TensorData::Tensor(t) => Ok(t),
            TensorData::Invalid(r) => Err(TensorData::Invalid(r)),
            other => Err(TensorData::invalid(format!(
                "expected tensor child, found {other:?}"
            ))),
        }
    };
    let scalar = |id: Id| -> Result<i64, TensorData> {
        match get(id) {
            TensorData::Scalar(v) => Ok(v),
            other => Err(TensorData::invalid(format!(
                "expected integer child, found {other:?}"
            ))),
        }
    };
    let string = |id: Id| -> Result<Symbol, TensorData> {
        match get(id) {
            TensorData::Str(s) => Ok(s),
            other => Err(TensorData::invalid(format!(
                "expected string child, found {other:?}"
            ))),
        }
    };

    // A small macro-free helper to early-return invalid data.
    macro_rules! ok {
        ($e:expr) => {
            match $e {
                Ok(v) => v,
                Err(d) => return d,
            }
        };
    }

    match node {
        L::Num(v) => TensorData::Scalar(*v),
        L::Str(s) => TensorData::Str(*s),
        L::Input([id]) | L::Weight([id]) => {
            let sym = ok!(string(*id));
            match decode_identifier(sym) {
                Ok((_, shape)) => {
                    TensorData::Tensor(TensorInfo::new(shape, matches!(node, L::Weight(_))))
                }
                Err(e) => TensorData::invalid(e),
            }
        }
        L::Ewadd([a, b]) | L::Ewmul([a, b]) => {
            let ta = ok!(tensor(*a));
            let tb = ok!(tensor(*b));
            if ta.shape != tb.shape {
                return TensorData::invalid(format!(
                    "elementwise op on mismatched shapes {:?} vs {:?}",
                    ta.shape, tb.shape
                ));
            }
            TensorData::Tensor(TensorInfo::new(
                ta.shape,
                ta.weights_only && tb.weights_only,
            ))
        }
        L::Matmul([_act, a, b]) => {
            let ta = ok!(tensor(*a));
            let tb = ok!(tensor(*b));
            let (ra, rb) = (ta.shape.len(), tb.shape.len());
            if ra < 2 || rb < 2 {
                return TensorData::invalid("matmul operands must have rank >= 2");
            }
            let (m, k1) = (ta.shape[ra - 2], ta.shape[ra - 1]);
            let (k2, n) = (tb.shape[rb - 2], tb.shape[rb - 1]);
            if k1 != k2 {
                return TensorData::invalid(format!(
                    "matmul inner dimensions differ: {k1} vs {k2}"
                ));
            }
            // Batch dimensions must be identical (or one side may be 2-D,
            // in which case it is broadcast over the other's batch dims).
            let batch: Vec<i64> = if ra == rb {
                if ta.shape[..ra - 2] != tb.shape[..rb - 2] {
                    return TensorData::invalid("matmul batch dimensions differ");
                }
                ta.shape[..ra - 2].to_vec()
            } else if rb == 2 {
                ta.shape[..ra - 2].to_vec()
            } else if ra == 2 {
                tb.shape[..rb - 2].to_vec()
            } else {
                return TensorData::invalid("matmul rank mismatch");
            };
            let mut shape = batch;
            shape.push(m);
            shape.push(n);
            let rank = shape.len();
            let mut info = TensorInfo::new(shape, ta.weights_only && tb.weights_only);
            // Propagate concat positions through the matmul so a later
            // `split` can recover the halves (paper Table 2, note e): a
            // concat of the RHS along its columns splits the output along
            // its columns; a concat of the LHS along its rows splits the
            // output along its rows.
            if let Some((ax, pos)) = tb.split_at {
                if ax + 1 == rb {
                    info.split_at = Some((rank - 1, pos));
                }
            }
            if info.split_at.is_none() {
                if let Some((ax, pos)) = ta.split_at {
                    if ax + 2 == ra {
                        info.split_at = Some((rank - 2, pos));
                    }
                }
            }
            TensorData::Tensor(info)
        }
        L::Conv([sh, sw, pad, _act, x, w]) => {
            let sh = ok!(scalar(*sh));
            let sw = ok!(scalar(*sw));
            let pad = Padding::from_code(ok!(scalar(*pad)));
            let tx = ok!(tensor(*x));
            let tw = ok!(tensor(*w));
            if tx.shape.len() != 4 || tw.shape.len() != 4 {
                return TensorData::invalid("conv expects NCHW input and OIHW weight");
            }
            let (n, c, h, wd) = (tx.shape[0], tx.shape[1], tx.shape[2], tx.shape[3]);
            let (co, ci, kh, kw) = (tw.shape[0], tw.shape[1], tw.shape[2], tw.shape[3]);
            if ci == 0 || c % ci != 0 {
                return TensorData::invalid(format!(
                    "conv groups invalid: input channels {c} not divisible by weight in-channels {ci}"
                ));
            }
            let groups = c / ci;
            if groups == 0 || co % groups != 0 {
                return TensorData::invalid("conv output channels not divisible by groups");
            }
            let oh = match spatial_out(h, kh, sh, pad) {
                Some(v) => v,
                None => return TensorData::invalid("conv spatial size underflow"),
            };
            let ow = match spatial_out(wd, kw, sw, pad) {
                Some(v) => v,
                None => return TensorData::invalid("conv spatial size underflow"),
            };
            let mut info = TensorInfo::new(vec![n, co, oh, ow], tx.weights_only && tw.weights_only);
            // A concat of the weights along output channels splits the conv
            // output along its channel axis; a concat of the inputs along
            // the batch axis splits the output along the batch axis.
            if let Some((0, pos)) = tw.split_at {
                info.split_at = Some((1, pos));
            } else if let Some((0, pos)) = tx.split_at {
                info.split_at = Some((0, pos));
            }
            TensorData::Tensor(info)
        }
        L::Relu([x]) | L::Tanh([x]) | L::Sigmoid([x]) => {
            let t = ok!(tensor(*x));
            let mut info = TensorInfo::new(t.shape, t.weights_only);
            info.split_at = t.split_at;
            TensorData::Tensor(info)
        }
        L::Poolmax([x, kh, kw, sh, sw, pad, _act]) | L::Poolavg([x, kh, kw, sh, sw, pad, _act]) => {
            let t = ok!(tensor(*x));
            let kh = ok!(scalar(*kh));
            let kw = ok!(scalar(*kw));
            let sh = ok!(scalar(*sh));
            let sw = ok!(scalar(*sw));
            let pad = Padding::from_code(ok!(scalar(*pad)));
            if t.shape.len() != 4 {
                return TensorData::invalid("pooling expects an NCHW input");
            }
            let oh = match spatial_out(t.shape[2], kh, sh, pad) {
                Some(v) => v,
                None => return TensorData::invalid("pool spatial size underflow"),
            };
            let ow = match spatial_out(t.shape[3], kw, sw, pad) {
                Some(v) => v,
                None => return TensorData::invalid("pool spatial size underflow"),
            };
            TensorData::Tensor(TensorInfo::new(
                vec![t.shape[0], t.shape[1], oh, ow],
                t.weights_only,
            ))
        }
        L::Transpose([x, perm]) => {
            let t = ok!(tensor(*x));
            let perm = match decode_permutation(ok!(string(*perm))) {
                Ok(p) => p,
                Err(e) => return TensorData::invalid(e),
            };
            if perm.len() != t.shape.len() {
                return TensorData::invalid("transpose permutation rank mismatch");
            }
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            if sorted != (0..t.shape.len()).collect::<Vec<_>>() {
                return TensorData::invalid("transpose permutation is not a permutation");
            }
            let shape: Vec<i64> = perm.iter().map(|&i| t.shape[i]).collect();
            TensorData::Tensor(TensorInfo::new(shape, t.weights_only))
        }
        L::Enlarge([x, reference]) => {
            let t = ok!(tensor(*x));
            let r = ok!(tensor(*reference));
            if t.shape.len() != 4 || r.shape.len() != 4 {
                return TensorData::invalid("enlarge expects OIHW kernels");
            }
            if r.shape[2] < t.shape[2] || r.shape[3] < t.shape[3] {
                return TensorData::invalid("enlarge reference kernel is smaller than input");
            }
            TensorData::Tensor(TensorInfo::new(
                vec![t.shape[0], t.shape[1], r.shape[2], r.shape[3]],
                t.weights_only && r.weights_only,
            ))
        }
        L::Concat2(_) | L::Concat3(_) | L::Concat4(_) | L::Concat5(_) => {
            let ch = node.children();
            let (axis_id, rest) = (ch[0], &ch[1..]);
            let axis = ok!(scalar(axis_id));
            if axis < 0 {
                return TensorData::invalid("negative concat axis");
            }
            let axis = axis as usize;
            let mut parts = Vec::with_capacity(rest.len());
            for id in rest {
                parts.push(ok!(tensor(*id)));
            }
            let first = &parts[0];
            if axis >= first.shape.len() {
                return TensorData::invalid("concat axis out of range");
            }
            let mut total = 0;
            let mut weights_only = true;
            for p in &parts {
                if p.shape.len() != first.shape.len() {
                    return TensorData::invalid("concat rank mismatch");
                }
                for (d, (&a, &b)) in first.shape.iter().zip(&p.shape).enumerate() {
                    if d != axis && a != b {
                        return TensorData::invalid(format!(
                            "concat non-axis dimension mismatch at dim {d}: {a} vs {b}"
                        ));
                    }
                }
                total += p.shape[axis];
                weights_only &= p.weights_only;
            }
            let mut shape = first.shape.clone();
            shape[axis] = total;
            let mut info = TensorInfo::new(shape, weights_only);
            info.split_at = Some((axis, first.shape[axis]));
            TensorData::Tensor(info)
        }
        L::Split([axis, x]) => {
            let axis = ok!(scalar(*axis));
            if axis < 0 {
                return TensorData::invalid("negative split axis");
            }
            let axis = axis as usize;
            let t = ok!(tensor(*x));
            match t.split_at {
                Some((concat_axis, first_size)) if concat_axis == axis => {
                    let total = t.shape[axis];
                    if first_size <= 0 || first_size >= total {
                        return TensorData::invalid("split position out of range");
                    }
                    let mut s0 = t.shape.clone();
                    let mut s1 = t.shape.clone();
                    s0[axis] = first_size;
                    s1[axis] = total - first_size;
                    TensorData::Tuple(
                        Box::new(TensorInfo::new(s0, t.weights_only)),
                        Box::new(TensorInfo::new(s1, t.weights_only)),
                    )
                }
                _ => TensorData::invalid("split without a matching concat on that axis"),
            }
        }
        L::Split0([x]) => match get(*x) {
            TensorData::Tuple(first, _) => TensorData::Tensor(*first),
            TensorData::Invalid(r) => TensorData::Invalid(r),
            other => TensorData::invalid(format!("split0 expects a tuple, found {other:?}")),
        },
        L::Split1([x]) => match get(*x) {
            TensorData::Tuple(_, second) => TensorData::Tensor(*second),
            TensorData::Invalid(r) => TensorData::Invalid(r),
            other => TensorData::invalid(format!("split1 expects a tuple, found {other:?}")),
        },
        L::Merge([w, count]) => {
            let t = ok!(tensor(*w));
            let count = ok!(scalar(*count));
            if t.shape.len() != 4 || count <= 0 {
                return TensorData::invalid("merge expects an OIHW weight and positive count");
            }
            let mut shape = t.shape.clone();
            shape[1] *= count;
            TensorData::Tensor(TensorInfo::new(shape, t.weights_only))
        }
        L::Reshape([x, shape]) => {
            let t = ok!(tensor(*x));
            let target = match decode_shape(ok!(string(*shape))) {
                Ok(s) => s,
                Err(e) => return TensorData::invalid(e),
            };
            let from: i64 = t.shape.iter().product();
            let to: i64 = target.iter().product();
            if from != to {
                return TensorData::invalid(format!(
                    "reshape element count mismatch: {from} vs {to}"
                ));
            }
            TensorData::Tensor(TensorInfo::new(target, t.weights_only))
        }
        L::Noop([a, b]) => {
            let ta = ok!(tensor(*a));
            let tb = ok!(tensor(*b));
            TensorData::Tensor(TensorInfo::new(vec![], ta.weights_only && tb.weights_only))
        }
    }
}

/// Infers [`TensorData`] for every node of a [`RecExpr`], bottom-up.
pub fn infer_recexpr(expr: &RecExpr<TensorLang>) -> Vec<TensorData> {
    let mut data: Vec<TensorData> = Vec::with_capacity(expr.len());
    for (_, node) in expr.iter() {
        let get = |id: Id| data[usize::from(id)].clone();
        let d = infer(node, &get);
        data.push(d);
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{encode_identifier, encode_permutation, Activation};
    use tensat_egraph::RecExpr;

    fn data_of(expr: &RecExpr<TensorLang>) -> TensorData {
        infer_recexpr(expr).last().unwrap().clone()
    }

    fn input(expr: &mut RecExpr<TensorLang>, name: &str, shape: &[i64]) -> Id {
        let s = expr.add(TensorLang::Str(encode_identifier(name, shape)));
        expr.add(TensorLang::Input([s]))
    }

    fn weight(expr: &mut RecExpr<TensorLang>, name: &str, shape: &[i64]) -> Id {
        let s = expr.add(TensorLang::Str(encode_identifier(name, shape)));
        expr.add(TensorLang::Weight([s]))
    }

    #[test]
    fn input_and_weight_shapes() {
        let mut e = RecExpr::default();
        input(&mut e, "x", &[8, 128]);
        let d = data_of(&e);
        assert_eq!(d.shape().unwrap(), &[8, 128]);
        assert!(!d.as_tensor().unwrap().weights_only);

        let mut e = RecExpr::default();
        weight(&mut e, "w", &[128, 64]);
        assert!(data_of(&e).as_tensor().unwrap().weights_only);
    }

    #[test]
    fn matmul_shape_and_mismatch() {
        let mut e = RecExpr::default();
        let a = input(&mut e, "a", &[8, 128]);
        let b = weight(&mut e, "b", &[128, 64]);
        let act = e.add(TensorLang::Num(Activation::None.code()));
        e.add(TensorLang::Matmul([act, a, b]));
        assert_eq!(data_of(&e).shape().unwrap(), &[8, 64]);

        let mut e = RecExpr::default();
        let a = input(&mut e, "a", &[8, 100]);
        let b = weight(&mut e, "b", &[128, 64]);
        let act = e.add(TensorLang::Num(0));
        e.add(TensorLang::Matmul([act, a, b]));
        assert!(!data_of(&e).is_valid());
    }

    #[test]
    fn batched_matmul() {
        let mut e = RecExpr::default();
        let a = input(&mut e, "a", &[4, 8, 128]);
        let b = weight(&mut e, "b", &[128, 64]);
        let act = e.add(TensorLang::Num(0));
        e.add(TensorLang::Matmul([act, a, b]));
        assert_eq!(data_of(&e).shape().unwrap(), &[4, 8, 64]);
    }

    #[test]
    fn conv_same_and_valid_padding() {
        let mut e = RecExpr::default();
        let x = input(&mut e, "x", &[1, 64, 56, 56]);
        let w = weight(&mut e, "w", &[128, 64, 3, 3]);
        let one = e.add(TensorLang::Num(1));
        let same = e.add(TensorLang::Num(Padding::Same.code()));
        let act = e.add(TensorLang::Num(0));
        e.add(TensorLang::Conv([one, one, same, act, x, w]));
        assert_eq!(data_of(&e).shape().unwrap(), &[1, 128, 56, 56]);

        let mut e = RecExpr::default();
        let x = input(&mut e, "x", &[1, 64, 56, 56]);
        let w = weight(&mut e, "w", &[128, 64, 3, 3]);
        let two = e.add(TensorLang::Num(2));
        let valid = e.add(TensorLang::Num(Padding::Valid.code()));
        let act = e.add(TensorLang::Num(0));
        e.add(TensorLang::Conv([two, two, valid, act, x, w]));
        assert_eq!(data_of(&e).shape().unwrap(), &[1, 128, 27, 27]);
    }

    #[test]
    fn grouped_conv_shapes() {
        // 32 groups: input 256 channels, weight in-channels 8.
        let mut e = RecExpr::default();
        let x = input(&mut e, "x", &[1, 256, 14, 14]);
        let w = weight(&mut e, "w", &[256, 8, 3, 3]);
        let one = e.add(TensorLang::Num(1));
        let same = e.add(TensorLang::Num(Padding::Same.code()));
        let act = e.add(TensorLang::Num(0));
        e.add(TensorLang::Conv([one, one, same, act, x, w]));
        assert_eq!(data_of(&e).shape().unwrap(), &[1, 256, 14, 14]);

        // Bad grouping: 256 not divisible by 7.
        let mut e = RecExpr::default();
        let x = input(&mut e, "x", &[1, 256, 14, 14]);
        let w = weight(&mut e, "w", &[256, 7, 3, 3]);
        let one = e.add(TensorLang::Num(1));
        let same = e.add(TensorLang::Num(1));
        let act = e.add(TensorLang::Num(0));
        e.add(TensorLang::Conv([one, one, same, act, x, w]));
        assert!(!data_of(&e).is_valid());
    }

    #[test]
    fn concat_then_split_recovers_parts() {
        let mut e = RecExpr::default();
        let a = weight(&mut e, "a", &[128, 64]);
        let b = weight(&mut e, "b", &[128, 32]);
        let one = e.add(TensorLang::Num(1));
        let cat = e.add(TensorLang::Concat2([one, a, b]));
        let split = e.add(TensorLang::Split([one, cat]));
        let s0 = e.add(TensorLang::Split0([split]));
        let data = infer_recexpr(&e);
        assert_eq!(data[usize::from(cat)].shape().unwrap(), &[128, 96]);
        assert!(data[usize::from(cat)].as_tensor().unwrap().weights_only);
        assert_eq!(data[usize::from(s0)].shape().unwrap(), &[128, 64]);
        let s1 = e.add(TensorLang::Split1([split]));
        let data = infer_recexpr(&e);
        assert_eq!(data[usize::from(s1)].shape().unwrap(), &[128, 32]);
    }

    #[test]
    fn split_without_concat_is_invalid() {
        let mut e = RecExpr::default();
        let a = input(&mut e, "a", &[128, 64]);
        let one = e.add(TensorLang::Num(1));
        e.add(TensorLang::Split([one, a]));
        assert!(!data_of(&e).is_valid());
    }

    #[test]
    fn concat_mismatch_is_invalid() {
        let mut e = RecExpr::default();
        let a = weight(&mut e, "a", &[128, 64]);
        let b = weight(&mut e, "b", &[100, 32]);
        let one = e.add(TensorLang::Num(1));
        e.add(TensorLang::Concat2([one, a, b]));
        assert!(!data_of(&e).is_valid());
    }

    #[test]
    fn transpose_and_reshape() {
        let mut e = RecExpr::default();
        let a = input(&mut e, "a", &[8, 128]);
        let perm = e.add(TensorLang::Str(encode_permutation(&[1, 0])));
        e.add(TensorLang::Transpose([a, perm]));
        assert_eq!(data_of(&e).shape().unwrap(), &[128, 8]);

        let mut e = RecExpr::default();
        let a = input(&mut e, "a", &[8, 128]);
        let target = e.add(TensorLang::Str(crate::lang::encode_shape(&[4, 2, 128])));
        e.add(TensorLang::Reshape([a, target]));
        assert_eq!(data_of(&e).shape().unwrap(), &[4, 2, 128]);

        let mut e = RecExpr::default();
        let a = input(&mut e, "a", &[8, 128]);
        let target = e.add(TensorLang::Str(crate::lang::encode_shape(&[4, 100])));
        e.add(TensorLang::Reshape([a, target]));
        assert!(!data_of(&e).is_valid());
    }

    #[test]
    fn pooling_shapes() {
        let mut e = RecExpr::default();
        let x = input(&mut e, "x", &[1, 64, 56, 56]);
        let three = e.add(TensorLang::Num(3));
        let two = e.add(TensorLang::Num(2));
        let valid = e.add(TensorLang::Num(Padding::Valid.code()));
        let act = e.add(TensorLang::Num(0));
        e.add(TensorLang::Poolmax([x, three, three, two, two, valid, act]));
        assert_eq!(data_of(&e).shape().unwrap(), &[1, 64, 27, 27]);
    }

    #[test]
    fn elementwise_requires_equal_shapes() {
        let mut e = RecExpr::default();
        let a = input(&mut e, "a", &[8, 128]);
        let b = input(&mut e, "b", &[8, 128]);
        e.add(TensorLang::Ewadd([a, b]));
        assert_eq!(data_of(&e).shape().unwrap(), &[8, 128]);

        let mut e = RecExpr::default();
        let a = input(&mut e, "a", &[8, 128]);
        let b = input(&mut e, "b", &[8, 64]);
        e.add(TensorLang::Ewadd([a, b]));
        assert!(!data_of(&e).is_valid());
    }

    #[test]
    fn child_data_kinds_cover_every_child_position() {
        // One sample node per operator variant: the kind table must be
        // exactly as long as the child list, or guard derivation would
        // silently misalign positions.
        let id = Id::from(0usize);
        let samples: Vec<TensorLang> = vec![
            TensorLang::Num(0),
            TensorLang::Str(Symbol::new("s")),
            TensorLang::Input([id]),
            TensorLang::Weight([id]),
            TensorLang::Ewadd([id; 2]),
            TensorLang::Ewmul([id; 2]),
            TensorLang::Matmul([id; 3]),
            TensorLang::Conv([id; 6]),
            TensorLang::Relu([id]),
            TensorLang::Tanh([id]),
            TensorLang::Sigmoid([id]),
            TensorLang::Poolmax([id; 7]),
            TensorLang::Poolavg([id; 7]),
            TensorLang::Transpose([id; 2]),
            TensorLang::Enlarge([id; 2]),
            TensorLang::Concat2([id; 3]),
            TensorLang::Concat3([id; 4]),
            TensorLang::Concat4([id; 5]),
            TensorLang::Concat5([id; 6]),
            TensorLang::Split([id; 2]),
            TensorLang::Split0([id]),
            TensorLang::Split1([id]),
            TensorLang::Merge([id; 2]),
            TensorLang::Reshape([id; 2]),
            TensorLang::Noop([id; 2]),
        ];
        for node in samples {
            assert_eq!(
                child_data_kinds(&node).len(),
                node.children().len(),
                "kind table misaligned for {node:?}"
            );
        }
    }

    #[test]
    fn matches_kind_mirrors_infer_admissibility() {
        let tensor = TensorData::Tensor(TensorInfo::new(vec![8, 8], false));
        let scalar = TensorData::Scalar(1);
        let string = TensorData::Str(Symbol::new("x"));
        let invalid = TensorData::invalid("nope");
        assert!(tensor.matches_kind(DataKind::Tensor));
        assert!(tensor.matches_kind(DataKind::Any));
        assert!(!tensor.matches_kind(DataKind::Scalar));
        assert!(scalar.matches_kind(DataKind::Scalar));
        assert!(string.matches_kind(DataKind::Str));
        for kind in [
            DataKind::Scalar,
            DataKind::Str,
            DataKind::Tensor,
            DataKind::Tuple,
            DataKind::Any,
        ] {
            assert!(!invalid.matches_kind(kind), "invalid data never matches");
        }

        // Spot-check against infer: a scalar in matmul's tensor position is
        // exactly what the kind table says is inadmissible.
        let mut e = RecExpr::default();
        let n = e.add(TensorLang::Num(3));
        let b = weight(&mut e, "b", &[128, 64]);
        let act = e.add(TensorLang::Num(0));
        e.add(TensorLang::Matmul([act, n, b]));
        assert!(!data_of(&e).is_valid());
        assert_eq!(
            child_data_kinds(&TensorLang::Matmul([act, n, b]))[1],
            DataKind::Tensor
        );
    }

    #[test]
    fn enlarge_pads_spatial_dims() {
        let mut e = RecExpr::default();
        let w = weight(&mut e, "w", &[64, 64, 1, 1]);
        let r = weight(&mut e, "r", &[64, 64, 3, 3]);
        e.add(TensorLang::Enlarge([w, r]));
        assert_eq!(data_of(&e).shape().unwrap(), &[64, 64, 3, 3]);
    }
}
