//! # tensat-ir
//!
//! The tensor-graph intermediate representation used by the TENSAT
//! reproduction: the operator language of the paper's Table 2
//! ([`TensorLang`]), shape inference ([`shape`]), the e-class analysis that
//! carries shape/layout information for shape checking ([`TensorAnalysis`]),
//! an analytical GPU operator cost model standing in for on-device
//! measurement ([`CostModel`]), and a hash-consing graph construction DSL
//! ([`GraphBuilder`]).
//!
//! ## Quick start
//!
//! ```
//! use tensat_ir::{GraphBuilder, CostModel};
//! let mut g = GraphBuilder::new();
//! let x = g.input("x", &[8, 128]);
//! let w = g.weight("w", &[128, 64]);
//! let y = g.matmul(x, w);
//! let graph = g.finish(&[y]);
//! let cost = CostModel::default().graph_cost(&graph);
//! assert!(cost > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod cost;
pub mod lang;
pub mod shape;
pub mod symbolic;

pub use analysis::{TensorAnalysis, TensorEGraph};
pub use builder::{graph_stats, GraphBuilder, GraphStats};
pub use cost::{Cost, CostModel};
pub use lang::{
    decode_identifier, decode_permutation, decode_shape, encode_identifier, encode_permutation,
    encode_shape, Activation, Padding, TensorLang,
};
pub use shape::{
    child_data_kinds, infer, infer_recexpr, DataKind, TensorData, TensorInfo, VALID_TAG_MASK,
};
pub use symbolic::{sym_infer, DimEnv, SymDim, SymError, SymTensor, SymValue};

/// Convenience re-exports of the e-graph substrate types most commonly used
/// together with the IR.
pub use tensat_egraph::{Id, RecExpr};
