//! [`TensorAnalysis`]: the e-class analysis attaching [`TensorData`] (shape,
//! layout, split position, weights-only flag) to every e-class, used for
//! shape checking during the exploration phase (paper §4 and §6).

use crate::shape::{infer, TensorData};
use crate::TensorLang;
use tensat_egraph::{Analysis, DidMerge, EGraph, Id};

/// E-class analysis computing [`TensorData`] for every class.
///
/// Because all e-nodes in a class are semantically equivalent, they must
/// agree on the output shape; `merge` therefore prefers whichever side is
/// valid and combines the `weights_only` flags (if any representation of a
/// value is computable from weights alone, the value is a constant at
/// inference time).
#[derive(Debug, Clone, Copy, Default)]
pub struct TensorAnalysis;

impl Analysis<TensorLang> for TensorAnalysis {
    type Data = TensorData;

    fn make(egraph: &EGraph<TensorLang, Self>, enode: &TensorLang) -> Self::Data {
        let get = |id: Id| egraph.eclass(id).data.clone();
        infer(enode, &get)
    }

    fn kind_tag(data: &Self::Data) -> u8 {
        data.kind_tag()
    }

    fn merge(&mut self, to: &mut Self::Data, from: Self::Data) -> DidMerge {
        use TensorData::*;
        match (&mut *to, from) {
            (Invalid(_), from @ (Scalar(_) | Str(_) | Tensor(_) | Tuple(..))) => {
                *to = from;
                DidMerge(true, false)
            }
            (_, Invalid(_)) => DidMerge(false, true),
            (Tensor(a), Tensor(b)) => {
                let mut did = DidMerge(false, false);
                if !a.weights_only && b.weights_only {
                    a.weights_only = true;
                    did.0 = true;
                } else if a.weights_only && !b.weights_only {
                    did.1 = true;
                }
                if a.split_at.is_none() && b.split_at.is_some() {
                    a.split_at = b.split_at;
                    did.0 = true;
                } else if a.split_at.is_some() && a.split_at != b.split_at {
                    did.1 = true;
                }
                if a.shape != b.shape {
                    // Equivalent terms should agree on shape; if they do not
                    // (which indicates an unsound rewrite), keep the existing
                    // data and note that the other side differed.
                    did.1 = true;
                }
                did
            }
            _ => DidMerge(false, false),
        }
    }
}

/// A type alias for the e-graph specialised to the tensor language.
pub type TensorEGraph = EGraph<TensorLang, TensorAnalysis>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::encode_identifier;
    use tensat_egraph::Symbol;

    fn add_input(eg: &mut TensorEGraph, name: &str, shape: &[i64]) -> Id {
        let s = eg.add(TensorLang::Str(encode_identifier(name, shape)));
        eg.add(TensorLang::Input([s]))
    }

    fn add_weight(eg: &mut TensorEGraph, name: &str, shape: &[i64]) -> Id {
        let s = eg.add(TensorLang::Str(encode_identifier(name, shape)));
        eg.add(TensorLang::Weight([s]))
    }

    #[test]
    fn analysis_computes_shapes_in_egraph() {
        let mut eg = TensorEGraph::new(TensorAnalysis);
        let a = add_input(&mut eg, "a", &[8, 128]);
        let w = add_weight(&mut eg, "w", &[128, 64]);
        let act = eg.add(TensorLang::Num(0));
        let mm = eg.add(TensorLang::Matmul([act, a, w]));
        eg.rebuild();
        assert_eq!(eg.eclass(mm).data.shape().unwrap(), &[8, 64]);
        assert_eq!(eg.eclass(a).data.shape().unwrap(), &[8, 128]);
    }

    #[test]
    fn merge_prefers_valid_data() {
        let mut eg = TensorEGraph::new(TensorAnalysis);
        // A split without concat history is invalid...
        let x = add_input(&mut eg, "x", &[128, 96]);
        let one = eg.add(TensorLang::Num(1));
        let bad_split = eg.add(TensorLang::Split([one, x]));
        let s0 = eg.add(TensorLang::Split0([bad_split]));
        assert!(!eg.eclass(s0).data.is_valid());
        // ...but once unioned with a valid tensor, the class data is valid.
        let a = add_input(&mut eg, "a", &[128, 64]);
        eg.union(s0, a);
        eg.rebuild();
        assert!(eg.eclass(s0).data.is_valid());
        assert_eq!(eg.eclass(s0).data.shape().unwrap(), &[128, 64]);
    }

    #[test]
    fn weights_only_flag_propagates_through_union() {
        let mut eg = TensorEGraph::new(TensorAnalysis);
        let x = add_input(&mut eg, "x", &[64, 64]);
        let w1 = add_weight(&mut eg, "w1", &[64, 64]);
        let w2 = add_weight(&mut eg, "w2", &[64, 64]);
        // (ewadd w1 w2) is weights-only; x is not. Unioning them marks the
        // class as weights-only (the value is provably a constant).
        let ww = eg.add(TensorLang::Ewadd([w1, w2]));
        assert!(eg.eclass(ww).data.as_tensor().unwrap().weights_only);
        eg.union(ww, x);
        eg.rebuild();
        assert!(eg.eclass(x).data.as_tensor().unwrap().weights_only);
        let _ = Symbol::new("unused");
    }
}
