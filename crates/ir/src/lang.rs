//! [`TensorLang`]: the tensor-graph operator language of TENSAT (paper
//! Table 2), implemented as a [`Language`] for the e-graph substrate.
//!
//! Operator parameters (strides, axes, padding and activation modes) are
//! integer children ([`TensorLang::Num`]); variable-length parameters
//! (shapes, permutations) and tensor identifiers are interned strings
//! ([`TensorLang::Str`]), exactly as described in the paper.

use std::fmt;
use tensat_egraph::{Id, Language, Symbol};

/// Activation modes fused into `matmul`/`conv` or applied stand-alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// No activation.
    None,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Integer encoding used inside the graph representation.
    pub fn code(self) -> i64 {
        match self {
            Activation::None => 0,
            Activation::Relu => 1,
            Activation::Tanh => 2,
            Activation::Sigmoid => 3,
        }
    }

    /// Decodes an integer code; unknown codes map to `None`.
    pub fn from_code(code: i64) -> Self {
        match code {
            1 => Activation::Relu,
            2 => Activation::Tanh,
            3 => Activation::Sigmoid,
            _ => Activation::None,
        }
    }
}

/// Padding modes for convolutions and pooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Padding {
    /// No padding ("valid").
    Valid,
    /// Output spatial size equals input spatial size ("same").
    Same,
}

impl Padding {
    /// Integer encoding used inside the graph representation.
    pub fn code(self) -> i64 {
        match self {
            Padding::Valid => 0,
            Padding::Same => 1,
        }
    }

    /// Decodes an integer code; unknown codes map to `Valid`.
    pub fn from_code(code: i64) -> Self {
        if code == 1 {
            Padding::Same
        } else {
            Padding::Valid
        }
    }
}

/// The TENSAT tensor operator language (paper Table 2).
///
/// Children are ordered exactly as in the paper's type signatures. `Num`
/// and `Str` are the parameter leaves; `Input`/`Weight` carry a string
/// identifier of the form `name@d1_d2_...` encoding the tensor shape.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TensorLang {
    /// Integer literal (parameters: strides, axes, modes, counts).
    Num(i64),
    /// Interned string literal (names, shapes, permutations).
    Str(Symbol),
    /// Input tensor; child: `Str` identifier `name@shape`.
    Input([Id; 1]),
    /// Weight tensor; child: `Str` identifier `name@shape`.
    Weight([Id; 1]),
    /// Element-wise addition; children: `input1, input2`.
    Ewadd([Id; 2]),
    /// Element-wise multiplication; children: `input1, input2`.
    Ewmul([Id; 2]),
    /// Matrix multiplication; children: `activation, input1, input2`.
    Matmul([Id; 3]),
    /// Grouped convolution; children:
    /// `stride_h, stride_w, padding, activation, input, weight`.
    Conv([Id; 6]),
    /// ReLU activation; child: `input`.
    Relu([Id; 1]),
    /// Tanh activation; child: `input`.
    Tanh([Id; 1]),
    /// Sigmoid activation; child: `input`.
    Sigmoid([Id; 1]),
    /// Max pooling; children:
    /// `input, kernel_h, kernel_w, stride_h, stride_w, padding, activation`.
    Poolmax([Id; 7]),
    /// Average pooling; children as for [`TensorLang::Poolmax`].
    Poolavg([Id; 7]),
    /// Transpose; children: `input, permutation (Str)`.
    Transpose([Id; 2]),
    /// Pad a convolution kernel with zeros to match `ref_input`'s spatial
    /// size; children: `input, ref_input`.
    Enlarge([Id; 2]),
    /// Concatenate two tensors; children: `axis, input1, input2`.
    Concat2([Id; 3]),
    /// Concatenate three tensors; children: `axis, input1..input3`.
    Concat3([Id; 4]),
    /// Concatenate four tensors; children: `axis, input1..input4`.
    Concat4([Id; 5]),
    /// Concatenate five tensors; children: `axis, input1..input5`.
    Concat5([Id; 6]),
    /// Split a tensor in two at the most recent concat position;
    /// children: `axis, input`. Produces a tensor tuple.
    Split([Id; 2]),
    /// First element of a split tuple; child: `split`.
    Split0([Id; 1]),
    /// Second element of a split tuple; child: `split`.
    Split1([Id; 1]),
    /// Update a grouped-convolution weight to merge groups;
    /// children: `weight, count`.
    Merge([Id; 2]),
    /// Reshape; children: `input, shape (Str)`.
    Reshape([Id; 2]),
    /// Combines two outputs so the overall graph is single-rooted; no
    /// runtime operator is associated with it. Children: `input1, input2`.
    Noop([Id; 2]),
}

impl TensorLang {
    /// The operator name as used in the textual (s-expression) form.
    pub fn op_name(&self) -> &'static str {
        match self {
            TensorLang::Num(_) => "num",
            TensorLang::Str(_) => "str",
            TensorLang::Input(_) => "input",
            TensorLang::Weight(_) => "weight",
            TensorLang::Ewadd(_) => "ewadd",
            TensorLang::Ewmul(_) => "ewmul",
            TensorLang::Matmul(_) => "matmul",
            TensorLang::Conv(_) => "conv",
            TensorLang::Relu(_) => "relu",
            TensorLang::Tanh(_) => "tanh",
            TensorLang::Sigmoid(_) => "sigmoid",
            TensorLang::Poolmax(_) => "poolmax",
            TensorLang::Poolavg(_) => "poolavg",
            TensorLang::Transpose(_) => "transpose",
            TensorLang::Enlarge(_) => "enlarge",
            TensorLang::Concat2(_) => "concat2",
            TensorLang::Concat3(_) => "concat3",
            TensorLang::Concat4(_) => "concat4",
            TensorLang::Concat5(_) => "concat5",
            TensorLang::Split(_) => "split",
            TensorLang::Split0(_) => "split0",
            TensorLang::Split1(_) => "split1",
            TensorLang::Merge(_) => "merge",
            TensorLang::Reshape(_) => "reshape",
            TensorLang::Noop(_) => "noop",
        }
    }

    /// Constructs an operator node from its textual name and children.
    ///
    /// Leaf tokens (`Num`, `Str`, pattern variables) are not handled here;
    /// the pattern parser in `tensat-rules` deals with those. Returns an
    /// error naming the operator if the name is unknown or the arity is
    /// wrong.
    pub fn from_op(name: &str, children: Vec<Id>) -> Result<Self, String> {
        fn arr<const N: usize>(name: &str, children: Vec<Id>) -> Result<[Id; N], String> {
            let len = children.len();
            children
                .try_into()
                .map_err(|_| format!("operator `{name}` expects {N} children, got {len}"))
        }
        let node = match name {
            "input" => TensorLang::Input(arr(name, children)?),
            "weight" => TensorLang::Weight(arr(name, children)?),
            "ewadd" => TensorLang::Ewadd(arr(name, children)?),
            "ewmul" => TensorLang::Ewmul(arr(name, children)?),
            "matmul" => TensorLang::Matmul(arr(name, children)?),
            "conv" => TensorLang::Conv(arr(name, children)?),
            "relu" => TensorLang::Relu(arr(name, children)?),
            "tanh" => TensorLang::Tanh(arr(name, children)?),
            "sigmoid" => TensorLang::Sigmoid(arr(name, children)?),
            "poolmax" => TensorLang::Poolmax(arr(name, children)?),
            "poolavg" => TensorLang::Poolavg(arr(name, children)?),
            "transpose" => TensorLang::Transpose(arr(name, children)?),
            "enlarge" => TensorLang::Enlarge(arr(name, children)?),
            "concat2" => TensorLang::Concat2(arr(name, children)?),
            "concat3" => TensorLang::Concat3(arr(name, children)?),
            "concat4" => TensorLang::Concat4(arr(name, children)?),
            "concat5" => TensorLang::Concat5(arr(name, children)?),
            "split" => TensorLang::Split(arr(name, children)?),
            "split0" => TensorLang::Split0(arr(name, children)?),
            "split1" => TensorLang::Split1(arr(name, children)?),
            "merge" => TensorLang::Merge(arr(name, children)?),
            "reshape" => TensorLang::Reshape(arr(name, children)?),
            "noop" => TensorLang::Noop(arr(name, children)?),
            _ => return Err(format!("unknown operator `{name}`")),
        };
        Ok(node)
    }

    /// True for the parameter leaves (`Num`, `Str`).
    pub fn is_param_leaf(&self) -> bool {
        matches!(self, TensorLang::Num(_) | TensorLang::Str(_))
    }
}

impl Language for TensorLang {
    fn matches(&self, other: &Self) -> bool {
        match (self, other) {
            (TensorLang::Num(a), TensorLang::Num(b)) => a == b,
            (TensorLang::Str(a), TensorLang::Str(b)) => a == b,
            _ => {
                std::mem::discriminant(self) == std::mem::discriminant(other)
                    && self.children().len() == other.children().len()
            }
        }
    }

    fn children(&self) -> &[Id] {
        match self {
            TensorLang::Num(_) | TensorLang::Str(_) => &[],
            TensorLang::Input(c) | TensorLang::Weight(c) => c,
            TensorLang::Ewadd(c) | TensorLang::Ewmul(c) => c,
            TensorLang::Matmul(c) => c,
            TensorLang::Conv(c) => c,
            TensorLang::Relu(c) | TensorLang::Tanh(c) | TensorLang::Sigmoid(c) => c,
            TensorLang::Poolmax(c) | TensorLang::Poolavg(c) => c,
            TensorLang::Transpose(c) | TensorLang::Enlarge(c) => c,
            TensorLang::Concat2(c) => c,
            TensorLang::Concat3(c) => c,
            TensorLang::Concat4(c) => c,
            TensorLang::Concat5(c) => c,
            TensorLang::Split(c) => c,
            TensorLang::Split0(c) | TensorLang::Split1(c) => c,
            TensorLang::Merge(c) | TensorLang::Reshape(c) | TensorLang::Noop(c) => c,
        }
    }

    fn children_mut(&mut self) -> &mut [Id] {
        match self {
            TensorLang::Num(_) | TensorLang::Str(_) => &mut [],
            TensorLang::Input(c) | TensorLang::Weight(c) => c,
            TensorLang::Ewadd(c) | TensorLang::Ewmul(c) => c,
            TensorLang::Matmul(c) => c,
            TensorLang::Conv(c) => c,
            TensorLang::Relu(c) | TensorLang::Tanh(c) | TensorLang::Sigmoid(c) => c,
            TensorLang::Poolmax(c) | TensorLang::Poolavg(c) => c,
            TensorLang::Transpose(c) | TensorLang::Enlarge(c) => c,
            TensorLang::Concat2(c) => c,
            TensorLang::Concat3(c) => c,
            TensorLang::Concat4(c) => c,
            TensorLang::Concat5(c) => c,
            TensorLang::Split(c) => c,
            TensorLang::Split0(c) | TensorLang::Split1(c) => c,
            TensorLang::Merge(c) | TensorLang::Reshape(c) | TensorLang::Noop(c) => c,
        }
    }

    fn display_op(&self) -> String {
        match self {
            TensorLang::Num(n) => n.to_string(),
            TensorLang::Str(s) => s.to_string(),
            _ => self.op_name().to_string(),
        }
    }
}

impl fmt::Display for TensorLang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_op())
    }
}

/// Encodes a tensor identifier `name@d1_d2_...` from a name and shape.
pub fn encode_identifier(name: &str, shape: &[i64]) -> Symbol {
    let dims: Vec<String> = shape.iter().map(|d| d.to_string()).collect();
    Symbol::new(format!("{name}@{}", dims.join("_")))
}

/// Decodes a tensor identifier into `(name, shape)`.
///
/// # Errors
///
/// Returns an error if the identifier has no `@shape` part or a dimension
/// fails to parse.
pub fn decode_identifier(sym: Symbol) -> Result<(String, Vec<i64>), String> {
    let s = sym.as_str();
    let (name, dims) = s
        .split_once('@')
        .ok_or_else(|| format!("identifier `{s}` missing @shape"))?;
    let shape = dims
        .split('_')
        .filter(|d| !d.is_empty())
        .map(|d| {
            d.parse::<i64>()
                .map_err(|_| format!("bad dimension `{d}` in identifier `{s}`"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((name.to_string(), shape))
}

/// Encodes an axis permutation as a string symbol, e.g. `[1,0]` → `"1_0"`.
pub fn encode_permutation(perm: &[usize]) -> Symbol {
    let parts: Vec<String> = perm.iter().map(|p| p.to_string()).collect();
    Symbol::new(parts.join("_"))
}

/// Decodes an axis permutation string.
pub fn decode_permutation(sym: Symbol) -> Result<Vec<usize>, String> {
    sym.as_str()
        .split('_')
        .filter(|p| !p.is_empty())
        .map(|p| {
            p.parse::<usize>()
                .map_err(|_| format!("bad permutation element `{p}`"))
        })
        .collect()
}

/// Encodes a target shape for `reshape` as a string symbol.
pub fn encode_shape(shape: &[i64]) -> Symbol {
    let parts: Vec<String> = shape.iter().map(|p| p.to_string()).collect();
    Symbol::new(parts.join("_"))
}

/// Decodes a target shape string.
pub fn decode_shape(sym: Symbol) -> Result<Vec<i64>, String> {
    sym.as_str()
        .split('_')
        .filter(|p| !p.is_empty())
        .map(|p| {
            p.parse::<i64>()
                .map_err(|_| format!("bad shape element `{p}`"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_and_padding_roundtrip() {
        for a in [
            Activation::None,
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
        ] {
            assert_eq!(Activation::from_code(a.code()), a);
        }
        for p in [Padding::Valid, Padding::Same] {
            assert_eq!(Padding::from_code(p.code()), p);
        }
    }

    #[test]
    fn identifier_roundtrip() {
        let sym = encode_identifier("act1", &[32, 64, 7, 7]);
        assert_eq!(sym.as_str(), "act1@32_64_7_7");
        let (name, shape) = decode_identifier(sym).unwrap();
        assert_eq!(name, "act1");
        assert_eq!(shape, vec![32, 64, 7, 7]);
        assert!(decode_identifier(Symbol::new("noshape")).is_err());
        assert!(decode_identifier(Symbol::new("bad@1_x")).is_err());
    }

    #[test]
    fn permutation_and_shape_roundtrip() {
        let p = encode_permutation(&[1, 0, 2]);
        assert_eq!(decode_permutation(p).unwrap(), vec![1, 0, 2]);
        let s = encode_shape(&[3, 224, 224]);
        assert_eq!(decode_shape(s).unwrap(), vec![3, 224, 224]);
    }

    #[test]
    fn from_op_arity_checks() {
        let ids: Vec<Id> = (0..3).map(Id::from).collect();
        assert!(TensorLang::from_op("matmul", ids.clone()).is_ok());
        assert!(TensorLang::from_op("matmul", ids[..2].to_vec()).is_err());
        assert!(TensorLang::from_op("frobnicate", ids).is_err());
    }

    #[test]
    fn matches_distinguishes_constants_but_not_children() {
        assert!(TensorLang::Num(3).matches(&TensorLang::Num(3)));
        assert!(!TensorLang::Num(3).matches(&TensorLang::Num(4)));
        let a = TensorLang::Ewadd([Id::from(0usize), Id::from(1usize)]);
        let b = TensorLang::Ewadd([Id::from(5usize), Id::from(9usize)]);
        assert!(a.matches(&b));
        assert!(!a.matches(&TensorLang::Ewmul([Id::from(0usize), Id::from(1usize)])));
    }

    #[test]
    fn op_names_are_parseable() {
        // Every non-leaf operator's name must round-trip through from_op.
        let two = [Id::from(0usize), Id::from(0usize)];
        let samples: Vec<TensorLang> = vec![
            TensorLang::Ewadd(two),
            TensorLang::Matmul([two[0]; 3]),
            TensorLang::Conv([two[0]; 6]),
            TensorLang::Poolmax([two[0]; 7]),
            TensorLang::Concat3([two[0]; 4]),
            TensorLang::Split(two),
            TensorLang::Noop(two),
        ];
        for node in samples {
            let rebuilt = TensorLang::from_op(node.op_name(), node.children().to_vec()).unwrap();
            assert!(node.matches(&rebuilt));
        }
    }
}
