//! [`GraphBuilder`]: an ergonomic, hash-consing DSL for constructing tensor
//! computation graphs ([`RecExpr<TensorLang>`]).
//!
//! The benchmark models in `tensat-models` are written against this API.

use crate::lang::{
    encode_identifier, encode_permutation, encode_shape, Activation, Padding, TensorLang,
};
use tensat_egraph::{Id, Language, RecExpr};

/// Builds a tensor computation graph with structural sharing: adding the
/// same node twice returns the same id, so the resulting [`RecExpr`] is a
/// DAG whose shared sub-computations appear once.
///
/// # Examples
///
/// ```
/// use tensat_ir::GraphBuilder;
/// let mut g = GraphBuilder::new();
/// let x = g.input("x", &[8, 128]);
/// let w = g.weight("w", &[128, 64]);
/// let y = g.matmul(x, w);
/// let expr = g.finish(&[y]);
/// assert!(expr.to_string().contains("matmul"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    expr: RecExpr<TensorLang>,
    memo: std::collections::HashMap<TensorLang, Id>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct nodes added so far.
    pub fn len(&self) -> usize {
        self.expr.len()
    }

    /// True if nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.expr.is_empty()
    }

    /// Adds a raw node with hash-consing.
    pub fn add(&mut self, node: TensorLang) -> Id {
        if let Some(&id) = self.memo.get(&node) {
            return id;
        }
        let id = self.expr.add(node.clone());
        self.memo.insert(node, id);
        id
    }

    /// An integer parameter node.
    pub fn num(&mut self, v: i64) -> Id {
        self.add(TensorLang::Num(v))
    }

    /// An input tensor with the given name and shape.
    pub fn input(&mut self, name: &str, shape: &[i64]) -> Id {
        let s = self.add(TensorLang::Str(encode_identifier(name, shape)));
        self.add(TensorLang::Input([s]))
    }

    /// A weight tensor with the given name and shape.
    pub fn weight(&mut self, name: &str, shape: &[i64]) -> Id {
        let s = self.add(TensorLang::Str(encode_identifier(name, shape)));
        self.add(TensorLang::Weight([s]))
    }

    /// Element-wise addition.
    pub fn ewadd(&mut self, a: Id, b: Id) -> Id {
        self.add(TensorLang::Ewadd([a, b]))
    }

    /// Element-wise multiplication.
    pub fn ewmul(&mut self, a: Id, b: Id) -> Id {
        self.add(TensorLang::Ewmul([a, b]))
    }

    /// Matrix multiplication with no fused activation.
    pub fn matmul(&mut self, a: Id, b: Id) -> Id {
        self.matmul_act(Activation::None, a, b)
    }

    /// Matrix multiplication with a fused activation.
    pub fn matmul_act(&mut self, act: Activation, a: Id, b: Id) -> Id {
        let act = self.num(act.code());
        self.add(TensorLang::Matmul([act, a, b]))
    }

    /// Convolution with square stride, explicit padding and activation.
    pub fn conv(&mut self, x: Id, w: Id, stride: (i64, i64), pad: Padding, act: Activation) -> Id {
        let sh = self.num(stride.0);
        let sw = self.num(stride.1);
        let pad = self.num(pad.code());
        let act = self.num(act.code());
        self.add(TensorLang::Conv([sh, sw, pad, act, x, w]))
    }

    /// ReLU activation.
    pub fn relu(&mut self, x: Id) -> Id {
        self.add(TensorLang::Relu([x]))
    }

    /// Tanh activation.
    pub fn tanh(&mut self, x: Id) -> Id {
        self.add(TensorLang::Tanh([x]))
    }

    /// Sigmoid activation.
    pub fn sigmoid(&mut self, x: Id) -> Id {
        self.add(TensorLang::Sigmoid([x]))
    }

    /// Max pooling.
    pub fn poolmax(&mut self, x: Id, kernel: (i64, i64), stride: (i64, i64), pad: Padding) -> Id {
        let kh = self.num(kernel.0);
        let kw = self.num(kernel.1);
        let sh = self.num(stride.0);
        let sw = self.num(stride.1);
        let pad = self.num(pad.code());
        let act = self.num(Activation::None.code());
        self.add(TensorLang::Poolmax([x, kh, kw, sh, sw, pad, act]))
    }

    /// Average pooling.
    pub fn poolavg(&mut self, x: Id, kernel: (i64, i64), stride: (i64, i64), pad: Padding) -> Id {
        let kh = self.num(kernel.0);
        let kw = self.num(kernel.1);
        let sh = self.num(stride.0);
        let sw = self.num(stride.1);
        let pad = self.num(pad.code());
        let act = self.num(Activation::None.code());
        self.add(TensorLang::Poolavg([x, kh, kw, sh, sw, pad, act]))
    }

    /// Transpose with an axis permutation.
    pub fn transpose(&mut self, x: Id, perm: &[usize]) -> Id {
        let p = self.add(TensorLang::Str(encode_permutation(perm)));
        self.add(TensorLang::Transpose([x, p]))
    }

    /// Reshape to a target shape.
    pub fn reshape(&mut self, x: Id, shape: &[i64]) -> Id {
        let s = self.add(TensorLang::Str(encode_shape(shape)));
        self.add(TensorLang::Reshape([x, s]))
    }

    /// Pad kernel `x` with zeros to the spatial size of `reference`.
    pub fn enlarge(&mut self, x: Id, reference: Id) -> Id {
        self.add(TensorLang::Enlarge([x, reference]))
    }

    /// Concatenation of two tensors along `axis`.
    pub fn concat2(&mut self, axis: i64, a: Id, b: Id) -> Id {
        let ax = self.num(axis);
        self.add(TensorLang::Concat2([ax, a, b]))
    }

    /// Concatenation of many tensors along `axis` (folded into binary
    /// concats beyond five inputs).
    pub fn concat_many(&mut self, axis: i64, parts: &[Id]) -> Id {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let ax = self.num(axis);
        match parts.len() {
            1 => parts[0],
            2 => self.add(TensorLang::Concat2([ax, parts[0], parts[1]])),
            3 => self.add(TensorLang::Concat3([ax, parts[0], parts[1], parts[2]])),
            4 => self.add(TensorLang::Concat4([
                ax, parts[0], parts[1], parts[2], parts[3],
            ])),
            5 => self.add(TensorLang::Concat5([
                ax, parts[0], parts[1], parts[2], parts[3], parts[4],
            ])),
            _ => {
                let first = self.concat_many(axis, &parts[..5]);
                let mut rest = vec![first];
                rest.extend_from_slice(&parts[5..]);
                self.concat_many(axis, &rest)
            }
        }
    }

    /// Split along `axis` at the most recent concat position.
    pub fn split(&mut self, axis: i64, x: Id) -> Id {
        let ax = self.num(axis);
        self.add(TensorLang::Split([ax, x]))
    }

    /// First element of a split tuple.
    pub fn split0(&mut self, split: Id) -> Id {
        self.add(TensorLang::Split0([split]))
    }

    /// Second element of a split tuple.
    pub fn split1(&mut self, split: Id) -> Id {
        self.add(TensorLang::Split1([split]))
    }

    /// Merge grouped-convolution weight groups.
    pub fn merge(&mut self, weight: Id, count: i64) -> Id {
        let c = self.num(count);
        self.add(TensorLang::Merge([weight, c]))
    }

    /// Finishes the graph: combines `outputs` into a single root with
    /// `noop` nodes (paper §3.1) and returns the compacted expression.
    ///
    /// # Panics
    ///
    /// Panics if `outputs` is empty.
    pub fn finish(mut self, outputs: &[Id]) -> RecExpr<TensorLang> {
        assert!(!outputs.is_empty(), "graph must have at least one output");
        let mut root = outputs[0];
        for &out in &outputs[1..] {
            root = self.add(TensorLang::Noop([root, out]));
        }
        self.expr.extract(root)
    }

    /// Access the expression built so far (without compaction).
    pub fn expr(&self) -> &RecExpr<TensorLang> {
        &self.expr
    }
}

/// Statistics about a tensor graph, used by tests and the harness to sanity
/// check the benchmark models.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Total nodes (including parameter leaves).
    pub total_nodes: usize,
    /// Number of operator nodes (excluding `Num`/`Str`/`input`/`weight`/`noop`).
    pub op_nodes: usize,
    /// Number of matmul nodes.
    pub matmuls: usize,
    /// Number of convolution nodes.
    pub convs: usize,
}

/// Computes [`GraphStats`] for an expression.
pub fn graph_stats(expr: &RecExpr<TensorLang>) -> GraphStats {
    let mut stats = GraphStats {
        total_nodes: expr.len(),
        ..Default::default()
    };
    for (_, node) in expr.iter() {
        match node {
            TensorLang::Num(_)
            | TensorLang::Str(_)
            | TensorLang::Input(_)
            | TensorLang::Weight(_)
            | TensorLang::Noop(_) => {}
            TensorLang::Matmul(_) => {
                stats.op_nodes += 1;
                stats.matmuls += 1;
            }
            TensorLang::Conv(_) => {
                stats.op_nodes += 1;
                stats.convs += 1;
            }
            _ => stats.op_nodes += 1,
        }
    }
    let _ = expr.nodes().iter().map(|n| n.children().len());
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::infer_recexpr;

    #[test]
    fn builder_hashconses() {
        let mut g = GraphBuilder::new();
        let x1 = g.input("x", &[8, 128]);
        let x2 = g.input("x", &[8, 128]);
        assert_eq!(x1, x2);
        let w = g.weight("w", &[128, 64]);
        let m1 = g.matmul(x1, w);
        let m2 = g.matmul(x2, w);
        assert_eq!(m1, m2);
    }

    #[test]
    fn finish_combines_outputs_with_noop() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[8, 128]);
        let w1 = g.weight("w1", &[128, 64]);
        let w2 = g.weight("w2", &[128, 64]);
        let m1 = g.matmul(x, w1);
        let m2 = g.matmul(x, w2);
        let expr = g.finish(&[m1, m2]);
        assert!(expr.to_string().starts_with("(noop"));
        // The whole graph must be well-typed.
        let data = infer_recexpr(&expr);
        assert!(data.iter().all(|d| d.is_valid()));
    }

    #[test]
    fn single_output_has_no_noop() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[8, 8]);
        let r = g.relu(x);
        let expr = g.finish(&[r]);
        assert!(!expr.to_string().contains("noop"));
    }

    #[test]
    fn concat_many_folds() {
        let mut g = GraphBuilder::new();
        let parts: Vec<Id> = (0..7)
            .map(|i| g.weight(&format!("w{i}"), &[16, 16]))
            .collect();
        let cat = g.concat_many(0, &parts);
        let expr = g.finish(&[cat]);
        let data = infer_recexpr(&expr);
        assert_eq!(data.last().unwrap().shape().unwrap(), &[16 * 7, 16]);
    }

    #[test]
    fn stats_count_ops() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[1, 64, 28, 28]);
        let w = g.weight("w", &[64, 64, 3, 3]);
        let c = g.conv(x, w, (1, 1), Padding::Same, Activation::Relu);
        let p = g.poolmax(c, (2, 2), (2, 2), Padding::Valid);
        let expr = g.finish(&[p]);
        let stats = graph_stats(&expr);
        assert_eq!(stats.convs, 1);
        assert_eq!(stats.matmuls, 0);
        assert_eq!(stats.op_nodes, 2);
    }
}
