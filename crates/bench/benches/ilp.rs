//! Criterion micro-benchmarks of the branch-and-bound ILP solver on
//! synthetic extraction-shaped problems of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tensat_ilp::{Cmp, Problem, Solver};

/// Builds a chain-of-choices problem: `depth` levels, each with `width`
/// alternatives, each alternative requiring one node at the next level.
fn chain_problem(depth: usize, width: usize) -> Problem {
    let mut p = Problem::new();
    let mut levels: Vec<Vec<tensat_ilp::VarId>> = vec![];
    for level in 0..depth {
        let vars: Vec<_> = (0..width)
            .map(|i| p.add_binary(1.0 + (i as f64) + (level as f64) * 0.1))
            .collect();
        levels.push(vars);
    }
    // Root: exactly one of level 0.
    p.add_constraint(levels[0].iter().map(|&v| (v, 1.0)).collect(), Cmp::Eq, 1.0);
    // Each selected node requires one selection at the next level.
    for level in 0..depth - 1 {
        for &v in &levels[level] {
            let mut terms = vec![(v, 1.0)];
            terms.extend(levels[level + 1].iter().map(|&u| (u, -1.0)));
            p.add_constraint(terms, Cmp::Le, 0.0);
        }
    }
    p
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilp_chain");
    for &depth in &[5usize, 10, 20] {
        let p = chain_problem(depth, 4);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| Solver::default().solve(&p).objective)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
