//! Criterion micro-benchmarks of the e-graph substrate: add/union/rebuild
//! throughput and e-matching, the operations that dominate the exploration
//! phase.

use criterion::{criterion_group, criterion_main, Criterion};
use tensat_ir::{GraphBuilder, TensorAnalysis, TensorEGraph};
use tensat_models::{build_benchmark, ModelScale};
use tensat_rules::single_rules;

fn build_graph(n: usize) -> tensat_egraph::RecExpr<tensat_ir::TensorLang> {
    let mut g = GraphBuilder::new();
    let x = g.input("x", &[32, 64]);
    let mut outs = vec![];
    for i in 0..n {
        let w = g.weight(&format!("w{i}"), &[64, 64]);
        let m = g.matmul(x, w);
        outs.push(g.relu(m));
    }
    g.finish(&outs)
}

fn bench_add_and_rebuild(c: &mut Criterion) {
    let graph = build_graph(32);
    c.bench_function("egraph_add_expr_rebuild_32_branches", |b| {
        b.iter(|| {
            let mut eg = TensorEGraph::new(TensorAnalysis);
            let root = eg.add_expr(&graph);
            eg.rebuild();
            std::hint::black_box(root)
        })
    });
}

fn bench_ematching(c: &mut Criterion) {
    let graph = build_graph(32);
    let mut eg = TensorEGraph::new(TensorAnalysis);
    eg.add_expr(&graph);
    eg.rebuild();
    let rules = single_rules();
    c.bench_function("ematch_all_rules_32_branches", |b| {
        b.iter(|| {
            let total: usize = rules.iter().map(|r| r.search(&eg).len()).sum();
            std::hint::black_box(total)
        })
    });
}

/// Head-to-head search micro-benchmark on real benchmark model e-graphs:
/// the compiled, op-indexed e-matching machine ([`tensat_egraph::Pattern::search`],
/// `ematch_machine_*`) versus the same machine with the rules' analysis
/// guards pushed into the match loop (`ematch_guarded_*`, what
/// `Rewrite::search` runs in production — dead bindings are pruned by
/// `Instruction::Guard` before deeper binds fan out) versus the parallel
/// sharded driver ([`tensat_egraph::search_all_parallel`] with 4 threads,
/// bit-identical match lists) versus the legacy recursive matcher kept as
/// the differential-testing oracle ([`tensat_egraph::Pattern::search_naive`]).
/// The e-graph is grown by two exploration iterations first so classes hold
/// multiple nodes, as they do during saturation (bigger than the
/// one-iteration setup this bench used before the parallel driver existed,
/// so absolute numbers are not comparable across PRs).
fn bench_machine_vs_naive_on_models(c: &mut Criterion) {
    let rules = single_rules();
    for model in ["BERT", "ResNeXt-50"] {
        // Two exploration iterations on the default model scale: the search
        // workload must be large enough (hundreds of microseconds) that the
        // parallel driver's thread-spawn cost is amortized — on a tiny
        // e-graph the sharded search measures spawn overhead, not matching.
        let graph = build_benchmark(model, ModelScale::default());
        let mut eg = TensorEGraph::new(TensorAnalysis);
        let root = eg.add_expr(&graph);
        eg.rebuild();
        tensat_core::explore(
            &mut eg,
            root,
            &rules,
            &[],
            &tensat_core::ExplorationConfig {
                max_iter: 2,
                node_limit: 20_000,
                search_threads: 1,
                ..Default::default()
            },
        );

        c.bench_function(&format!("ematch_machine_{model}"), |b| {
            b.iter(|| {
                // Explicitly unguarded: the plain pattern program, the
                // pre-guard baseline.
                let total: usize = rules
                    .iter()
                    .flat_map(|r| r.searcher.search(&eg))
                    .map(|m| m.substs.len())
                    .sum();
                std::hint::black_box(total)
            })
        });
        c.bench_function(&format!("ematch_guarded_{model}"), |b| {
            b.iter(|| {
                // Rewrite::search runs the guard-compiled program: the
                // per-variable part of each rule's shape check prunes
                // branches inside the machine.
                let total: usize = rules
                    .iter()
                    .flat_map(|r| r.search(&eg))
                    .map(|m| m.substs.len())
                    .sum();
                std::hint::black_box(total)
            })
        });
        c.bench_function(&format!("ematch_parallel_{model}"), |b| {
            let searchers: Vec<_> = rules.iter().map(|r| &r.searcher).collect();
            b.iter(|| {
                let total: usize = tensat_egraph::search_all_parallel(&searchers, &eg, 4)
                    .iter()
                    .flat_map(|ms| ms.iter().map(|m| m.substs.len()))
                    .sum();
                std::hint::black_box(total)
            })
        });
        c.bench_function(&format!("ematch_naive_{model}"), |b| {
            b.iter(|| {
                let total: usize = rules
                    .iter()
                    .flat_map(|r| r.searcher.search_naive(&eg))
                    .map(|m| m.substs.len())
                    .sum();
                std::hint::black_box(total)
            })
        });
    }
}

fn bench_one_exploration_iteration(c: &mut Criterion) {
    let graph = build_graph(8);
    let rules = single_rules();
    c.bench_function("explore_one_iteration_8_branches", |b| {
        b.iter(|| {
            let mut eg = TensorEGraph::new(TensorAnalysis);
            let root = eg.add_expr(&graph);
            eg.rebuild();
            let stats = tensat_core::explore(
                &mut eg,
                root,
                &rules,
                &[],
                &tensat_core::ExplorationConfig {
                    max_iter: 1,
                    // Pinned: the default is env/core-count dependent, and
                    // this e-graph is far too small for sharding to pay —
                    // unpinned, the bench would measure spawn overhead and
                    // drift across hosts.
                    search_threads: 1,
                    ..Default::default()
                },
            );
            std::hint::black_box(stats.enodes)
        })
    });
}

criterion_group!(
    benches,
    bench_add_and_rebuild,
    bench_ematching,
    bench_machine_vs_naive_on_models,
    bench_one_exploration_iteration
);
criterion_main!(benches);
