//! Criterion micro-benchmarks of the e-graph substrate: add/union/rebuild
//! throughput and e-matching, the operations that dominate the exploration
//! phase.

use criterion::{criterion_group, criterion_main, Criterion};
use tensat_ir::{GraphBuilder, TensorAnalysis, TensorEGraph};
use tensat_rules::single_rules;

fn build_graph(n: usize) -> tensat_egraph::RecExpr<tensat_ir::TensorLang> {
    let mut g = GraphBuilder::new();
    let x = g.input("x", &[32, 64]);
    let mut outs = vec![];
    for i in 0..n {
        let w = g.weight(&format!("w{i}"), &[64, 64]);
        let m = g.matmul(x, w);
        outs.push(g.relu(m));
    }
    g.finish(&outs)
}

fn bench_add_and_rebuild(c: &mut Criterion) {
    let graph = build_graph(32);
    c.bench_function("egraph_add_expr_rebuild_32_branches", |b| {
        b.iter(|| {
            let mut eg = TensorEGraph::new(TensorAnalysis);
            let root = eg.add_expr(&graph);
            eg.rebuild();
            std::hint::black_box(root)
        })
    });
}

fn bench_ematching(c: &mut Criterion) {
    let graph = build_graph(32);
    let mut eg = TensorEGraph::new(TensorAnalysis);
    eg.add_expr(&graph);
    eg.rebuild();
    let rules = single_rules();
    c.bench_function("ematch_all_rules_32_branches", |b| {
        b.iter(|| {
            let total: usize = rules.iter().map(|r| r.search(&eg).len()).sum();
            std::hint::black_box(total)
        })
    });
}

fn bench_one_exploration_iteration(c: &mut Criterion) {
    let graph = build_graph(8);
    let rules = single_rules();
    c.bench_function("explore_one_iteration_8_branches", |b| {
        b.iter(|| {
            let mut eg = TensorEGraph::new(TensorAnalysis);
            let root = eg.add_expr(&graph);
            eg.rebuild();
            let stats = tensat_core::explore(
                &mut eg,
                root,
                &rules,
                &[],
                &tensat_core::ExplorationConfig {
                    max_iter: 1,
                    ..Default::default()
                },
            );
            std::hint::black_box(stats.enodes)
        })
    });
}

criterion_group!(
    benches,
    bench_add_and_rebuild,
    bench_ematching,
    bench_one_exploration_iteration
);
criterion_main!(benches);
