//! Criterion micro-benchmarks comparing greedy and ILP extraction on
//! explored e-graphs with controlled amounts of sharing (the design choice
//! ablated in paper Table 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tensat_core::{
    explore, extract_greedy, extract_greedy_dag, extract_ilp, ExplorationConfig, IlpConfig,
};
use tensat_ir::{CostModel, GraphBuilder, TensorAnalysis, TensorEGraph};
use tensat_rules::{multi_rules, single_rules};

fn explored(parallel: usize) -> (TensorEGraph, tensat_egraph::Id) {
    let mut g = GraphBuilder::new();
    let x = g.input("x", &[32, 64]);
    let mut outs = vec![];
    for i in 0..parallel {
        let w = g.weight(&format!("w{i}"), &[64, 64]);
        outs.push(g.matmul(x, w));
    }
    let graph = g.finish(&outs);
    let mut eg = TensorEGraph::new(TensorAnalysis);
    let root = eg.add_expr(&graph);
    eg.rebuild();
    explore(
        &mut eg,
        root,
        &single_rules(),
        &multi_rules(),
        &ExplorationConfig {
            k_multi: 1,
            max_iter: 3,
            node_limit: 5_000,
            ..Default::default()
        },
    );
    (eg, root)
}

fn bench_extraction(c: &mut Criterion) {
    let model = CostModel::default();
    let mut group = c.benchmark_group("extraction");
    for &parallel in &[2usize, 3] {
        let (eg, root) = explored(parallel);
        group.bench_with_input(BenchmarkId::new("greedy", parallel), &parallel, |b, _| {
            b.iter(|| extract_greedy(&eg, root, &model).unwrap().dag_cost)
        });
        group.bench_with_input(
            BenchmarkId::new("greedy-dag", parallel),
            &parallel,
            |b, _| b.iter(|| extract_greedy_dag(&eg, root, &model).unwrap().dag_cost),
        );
        group.bench_with_input(BenchmarkId::new("ilp", parallel), &parallel, |b, _| {
            b.iter(|| {
                extract_ilp(&eg, root, &model, &IlpConfig::default())
                    .unwrap()
                    .dag_cost
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
