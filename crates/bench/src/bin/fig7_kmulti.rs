//! Regenerates **Figure 7**: effect of the number of multi-pattern
//! iterations k_multi on speedup, optimizer time, and final e-graph size.

use tensat_bench::{harness_scale, tensat_config, write_csv};
use tensat_core::Optimizer;

fn main() {
    let ks: Vec<usize> = vec![0, 1, 2, 3];
    println!("Figure 7: varying k_multi (speedup %, optimizer time s, #e-nodes)");
    let mut rows = vec![];
    for &name in tensat_models::BENCHMARKS {
        for &k in &ks {
            let graph = tensat_models::build_benchmark(name, harness_scale());
            let result = Optimizer::new(tensat_config(k))
                .optimize(&graph)
                .expect("optimize");
            println!(
                "{:<14} k={} speedup {:>6.2}%  time {:>8.3}s  enodes {:>8}",
                name,
                k,
                result.speedup_percent(),
                result.optimizer_time().as_secs_f64(),
                result.stats.exploration.enodes
            );
            rows.push(format!(
                "{},{},{:.2},{:.3},{}",
                name,
                k,
                result.speedup_percent(),
                result.optimizer_time().as_secs_f64(),
                result.stats.exploration.enodes
            ));
        }
    }
    write_csv(
        "fig7_kmulti.csv",
        "model,k_multi,speedup_pct,time_s,enodes",
        &rows,
    );
}
