//! Regenerates **Table 5**: ILP extraction time with vs without the cycle
//! constraints (real and integer topological-order variables), for
//! k_multi = 1 and 2, on BERT, NasRNN and NasNet-A.

use std::time::Duration;
use tensat_bench::{harness_scale, write_csv};
use tensat_core::{explore, extract_ilp, CycleFilter, ExplorationConfig, IlpConfig};
use tensat_ir::{CostModel, TensorAnalysis, TensorEGraph};
use tensat_rules::{multi_rules, single_rules};

fn main() {
    let model = CostModel::default();
    let ilp_time_limit = Duration::from_secs(60);
    println!("Table 5: ILP solve time (s), with cycle constraints (real / int) vs without");
    println!(
        "{:<12} {:>3} {:>12} {:>12} {:>12}",
        "model", "k", "real", "int", "without"
    );
    let mut rows = vec![];
    for &name in &["BERT", "NasRNN", "NasNet-A"] {
        for k in [1usize, 2] {
            let graph = tensat_models::build_benchmark(name, harness_scale());
            let mut eg = TensorEGraph::new(TensorAnalysis);
            let root = eg.add_expr(&graph);
            eg.rebuild();
            explore(
                &mut eg,
                root,
                &single_rules(),
                &multi_rules(),
                &ExplorationConfig {
                    k_multi: k,
                    max_iter: 8,
                    node_limit: 8_000,
                    time_limit: Duration::from_secs(20),
                    cycle_filter: CycleFilter::Efficient,
                    ..Default::default()
                },
            );
            let time_of = |cycle: bool, int: bool| {
                let cfg = IlpConfig {
                    cycle_constraints: cycle,
                    integer_topo_vars: int,
                    time_limit: ilp_time_limit,
                    ..Default::default()
                };
                match extract_ilp(&eg, root, &model, &cfg) {
                    Ok(out) => out
                        .ilp
                        .map(|stats| stats.solve_time.as_secs_f64())
                        .unwrap_or(f64::NAN),
                    Err(_) => f64::NAN,
                }
            };
            let real = time_of(true, false);
            let int = time_of(true, true);
            let without = time_of(false, false);
            println!("{name:<12} {k:>3} {real:>12.3} {int:>12.3} {without:>12.3}");
            rows.push(format!("{name},{k},{real:.4},{int:.4},{without:.4}"));
        }
    }
    write_csv(
        "table5_cycle_constraints.csv",
        "model,k_multi,with_real_s,with_int_s,without_s",
        &rows,
    );
}
