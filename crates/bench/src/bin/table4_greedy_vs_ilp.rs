//! Regenerates **Table 4**: quality and cost of the three extraction
//! strategies — tree-greedy, global greedy DAG, and ILP — on every
//! benchmark model (k_multi = 1).
//!
//! Each model is explored **once**; the three strategies then extract from
//! the same e-graph through the [`ExtractionStrategy`] seam, so the table
//! isolates extraction quality from exploration noise. For every strategy
//! we report the honest DAG cost (each e-node charged once), the tree cost
//! (shared subgraphs charged per use), and the extraction wall-clock time.

use tensat_bench::{harness_scale, write_csv};
use tensat_core::{
    explore, CycleFilter, ExplorationConfig, ExtractionStrategy, GreedyDag, IlpExtraction,
    TreeGreedy,
};
use tensat_ir::{CostModel, TensorAnalysis, TensorEGraph};
use tensat_models::BENCHMARKS;
use tensat_rules::{multi_rules, single_rules};

fn main() {
    println!("Table 4: extraction strategies on the same explored e-graph (µs, DAG cost)");
    println!(
        "{:<14} {:>10} {:>11} {:>11} {:>11} {:>9} {:>9} {:>9}",
        "model", "original", "tree", "greedy-dag", "ilp", "t_tree", "t_dag", "t_ilp"
    );
    let model = CostModel::default();
    let strategies: [Box<dyn ExtractionStrategy>; 3] = [
        Box::new(TreeGreedy),
        Box::new(GreedyDag),
        Box::new(IlpExtraction::default()),
    ];
    let mut rows = vec![];
    for &name in BENCHMARKS {
        let graph = tensat_models::build_benchmark(name, harness_scale());
        let original = model.graph_cost(&graph);

        // Explore once per model with the paper's headline settings.
        let mut eg = TensorEGraph::new(TensorAnalysis);
        let root = eg.add_expr(&graph);
        eg.rebuild();
        explore(
            &mut eg,
            root,
            &single_rules(),
            &multi_rules(),
            &ExplorationConfig {
                k_multi: 1,
                max_iter: 15,
                node_limit: 20_000,
                cycle_filter: CycleFilter::Efficient,
                ..Default::default()
            },
        );

        let outcomes: Vec<_> = strategies
            .iter()
            .map(|s| {
                s.extract(&eg, root, &model)
                    .unwrap_or_else(|e| panic!("{} extraction failed on {name}: {e}", s.name()))
            })
            .collect();
        let ilp_status = outcomes[2]
            .ilp
            .as_ref()
            .map(|s| format!("{:?}", s.status))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<14} {:>10.2} {:>11.2} {:>11.2} {:>11.2} {:>9.3} {:>9.3} {:>9.3}  {}",
            name,
            original,
            outcomes[0].dag_cost,
            outcomes[1].dag_cost,
            outcomes[2].dag_cost,
            outcomes[0].time.as_secs_f64(),
            outcomes[1].time.as_secs_f64(),
            outcomes[2].time.as_secs_f64(),
            ilp_status,
        );
        assert!(
            outcomes[1].dag_cost <= outcomes[0].dag_cost + 1e-9,
            "{name}: greedy-dag ({}) must never be worse than tree-greedy ({})",
            outcomes[1].dag_cost,
            outcomes[0].dag_cost
        );
        rows.push(format!(
            "{},{:.3},{:.3},{:.3},{:.3},{:.4},{:.4},{:.4},{:.3},{:.3},{:.3},{}",
            name,
            original,
            outcomes[0].dag_cost,
            outcomes[1].dag_cost,
            outcomes[2].dag_cost,
            outcomes[0].time.as_secs_f64(),
            outcomes[1].time.as_secs_f64(),
            outcomes[2].time.as_secs_f64(),
            outcomes[0].tree_cost,
            outcomes[1].tree_cost,
            outcomes[2].tree_cost,
            ilp_status,
        ));
    }
    write_csv(
        "table4_greedy_vs_ilp.csv",
        "model,original_us,tree_us,greedy_dag_us,ilp_us,tree_time_s,greedy_dag_time_s,ilp_time_s,tree_treecost_us,greedy_dag_treecost_us,ilp_treecost_us,ilp_status",
        &rows,
    );
}
