//! Regenerates **Table 4**: runtime of the graphs produced by greedy vs ILP
//! extraction on BERT, NasRNN and NasNet-A (k_multi = 1).

use tensat_bench::{harness_scale, tensat_config, write_csv};
use tensat_core::{ExtractionMode, Optimizer};

fn main() {
    println!("Table 4: estimated graph runtime (µs): original, greedy, ILP");
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "model", "original", "greedy", "ILP"
    );
    let mut rows = vec![];
    for &name in &["BERT", "NasRNN", "NasNet-A"] {
        let graph = tensat_models::build_benchmark(name, harness_scale());
        let greedy = Optimizer::new({
            let mut c = tensat_config(1);
            c.extraction = ExtractionMode::Greedy;
            c
        })
        .optimize(&graph)
        .expect("greedy");
        let ilp = Optimizer::new(tensat_config(1))
            .optimize(&graph)
            .expect("ilp");
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>12.2}",
            name, ilp.original_cost, greedy.optimized_cost, ilp.optimized_cost
        );
        rows.push(format!(
            "{},{:.3},{:.3},{:.3}",
            name, ilp.original_cost, greedy.optimized_cost, ilp.optimized_cost
        ));
    }
    write_csv(
        "table4_greedy_vs_ilp.csv",
        "model,original_us,greedy_us,ilp_us",
        &rows,
    );
}
