//! Regenerates **Figure 6**: the speedup-vs-optimizer-time trade-off curve
//! on Inception-v3 (60 s timeout), sweeping the search budget of both
//! optimizers.

use std::time::Duration;
use tensat_bench::{harness_scale, tensat_config, write_csv};
use tensat_core::Optimizer;
use tensat_taso::{BacktrackingConfig, BacktrackingSearch};

fn main() {
    let graph = tensat_models::build_benchmark("Inception-v3", harness_scale());
    println!("Figure 6: speedup vs optimizer time on Inception-v3");
    let mut rows = vec![];

    // TASO: sweep the iteration budget.
    for &iters in &[1usize, 5, 10, 25, 50, 100] {
        let result = BacktrackingSearch::with_default_rules(BacktrackingConfig {
            iterations: iters,
            time_limit: Duration::from_secs(60),
            ..Default::default()
        })
        .run(&graph);
        println!(
            "TASO   n={iters:<4} time {:>8.3}s speedup {:>6.2}%",
            result.total_time.as_secs_f64(),
            result.speedup_percent()
        );
        rows.push(format!(
            "taso,{},{:.3},{:.2}",
            iters,
            result.total_time.as_secs_f64(),
            result.speedup_percent()
        ));
    }
    // TENSAT: sweep k_multi and the iteration limit.
    for &(k, iters) in &[(0usize, 3usize), (1, 5), (1, 15), (2, 15)] {
        let mut config = tensat_config(k);
        config.max_iter = iters;
        config.exploration_time_limit = Duration::from_secs(60);
        let result = Optimizer::new(config).optimize(&graph).expect("optimize");
        println!(
            "TENSAT k={k} i={iters:<3} time {:>8.3}s speedup {:>6.2}%",
            result.optimizer_time().as_secs_f64(),
            result.speedup_percent()
        );
        rows.push(format!(
            "tensat_k{k}_i{iters},{},{:.3},{:.2}",
            iters,
            result.optimizer_time().as_secs_f64(),
            result.speedup_percent()
        ));
    }
    write_csv(
        "fig6_tradeoff.csv",
        "optimizer,budget,time_s,speedup_pct",
        &rows,
    );
}
