//! `bench-report`: runs the `ematch_*` pure-search micro-benchmarks (the
//! same workload as `benches/egraph.rs`, without the criterion harness)
//! and emits a machine-readable `BENCH_egraph.json` so CI can archive the
//! perf trajectory across PRs.
//!
//! For each benchmark model the e-graph is grown by two exploration
//! iterations (classes hold multiple nodes, as during saturation), then
//! each search variant is timed over repeated full-rule-set sweeps:
//!
//! * `naive`    — the legacy recursive oracle ([`Pattern::search_naive`])
//! * `machine`  — the compiled, op-indexed machine, unguarded
//! * `guarded`  — the machine with the rules' analysis guards (what
//!   production `Rewrite::search` runs; tag-mask guards since the dense
//!   storage refactor)
//! * `parallel4` — the sharded batch driver with 4 threads (single-core
//!   containers measure spawn overhead here, not speedup)
//!
//! The JSON records the best-of-rounds nanoseconds per full-rule-set
//! search, per model and variant, plus the guarded-vs-machine overhead
//! percentage the ROADMAP tracks. A per-model `extraction` section runs
//! the three extraction strategies (tree-greedy, greedy-DAG, ILP) once on
//! the same grown e-graph and records each strategy's extraction time and
//! the DAG/tree cost of its result, so the greedy/ILP quality gap is
//! tracked across PRs alongside the search numbers.
//!
//! A per-model `exploration` section additionally runs each exploration
//! strategy (`saturate`, `guided`, `taso`) from a fresh seed and records
//! its explore time (split into search/apply/rebuild phase timings),
//! final e-node count, node budget, and greedy-DAG extracted cost — the guided strategy runs under a budget 4x below the
//! saturated size, so the report tracks the budgeted-quality acceptance
//! property (guided cost ≤ saturation's tree-greedy cost) across PRs.
//!
//! [`Pattern::search_naive`]: tensat_egraph::Pattern::search_naive

use std::io::Write;
use std::time::Instant;
use tensat_core::{
    explore, extract_greedy_dag, ExplorationConfig, ExplorationMode, ExtractionStrategy, GreedyDag,
    IlpExtraction, TreeGreedy,
};
use tensat_ir::{CostModel, TensorAnalysis, TensorEGraph};
use tensat_models::{build_benchmark, ModelScale};
use tensat_rules::{single_rules, TensorRewrite};

/// Models measured; mirrors `benches/egraph.rs`'s model benches.
const MODELS: &[&str] = &["BERT", "ResNeXt-50"];

/// Interleaved measurement rounds per variant. Variants are sampled
/// round-robin (so slow drift — thermal, background load — hits them
/// equally), each round times a batch of iterations large enough to
/// amortize timer overhead, and the best round is reported: for a
/// CPU-bound microbench the minimum is the noise-robust statistic on a
/// busy single-core container.
const ROUNDS: usize = 9;

/// Target wall-clock per timed batch; iterations per round are derived
/// from a calibration run so tiny workloads are not timer-noise bound.
const TARGET_BATCH_NS: u128 = 4_000_000;

fn grow(model: &str, rules: &[TensorRewrite]) -> (TensorEGraph, tensat_egraph::Id) {
    let graph = build_benchmark(model, ModelScale::default());
    let mut eg = TensorEGraph::new(TensorAnalysis);
    let root = eg.add_expr(&graph);
    eg.rebuild();
    explore(
        &mut eg,
        root,
        rules,
        &[],
        &ExplorationConfig {
            max_iter: 2,
            node_limit: 20_000,
            search_threads: 1,
            ..Default::default()
        },
    );
    (eg, root)
}

struct Variant {
    name: &'static str,
    ns_per_search: u128,
    matches: usize,
}

/// A named search routine returning its match count.
type NamedSearch<'a> = (&'static str, Box<dyn FnMut() -> usize + 'a>);

/// Calibration state per variant: routine, best ns/iter so far, match
/// count, iterations per timed batch.
type Calibrated<'a> = (
    &'static str,
    Box<dyn FnMut() -> usize + 'a>,
    u128,
    usize,
    usize,
);

/// Measures a set of search variants with interleaved rounds; returns the
/// best (minimum) per-iteration time for each, in input order. The match
/// count guards against the compiler optimizing a search away and gives
/// the report a sanity datum.
fn measure(variants: Vec<NamedSearch<'_>>) -> Vec<Variant> {
    let mut variants: Vec<Calibrated<'_>> = variants
        .into_iter()
        .map(|(name, mut f)| {
            // Calibrate: one warm-up run doubles as the iteration-count
            // probe.
            let start = Instant::now();
            let matches = std::hint::black_box(f());
            let once = start.elapsed().as_nanos().max(1);
            let iters = (TARGET_BATCH_NS / once).clamp(1, 10_000) as usize;
            (name, f, u128::MAX, matches, iters)
        })
        .collect();
    for _ in 0..ROUNDS {
        for (_, f, best, _, iters) in variants.iter_mut() {
            let start = Instant::now();
            for _ in 0..*iters {
                std::hint::black_box(f());
            }
            let per_iter = start.elapsed().as_nanos() / *iters as u128;
            *best = (*best).min(per_iter);
        }
    }
    variants
        .into_iter()
        .map(|(name, _, best, matches, _)| Variant {
            name,
            ns_per_search: best,
            matches,
        })
        .collect()
}

fn main() {
    let rules = single_rules();
    let mut out = String::from("{\n  \"bench\": \"ematch\",\n  \"rounds\": ");
    out.push_str(&ROUNDS.to_string());
    out.push_str(",\n  \"models\": [\n");

    let cost_model = CostModel::default();
    let strategies: [Box<dyn ExtractionStrategy>; 3] = [
        Box::new(TreeGreedy),
        Box::new(GreedyDag),
        Box::new(IlpExtraction::default()),
    ];

    for (mi, model) in MODELS.iter().enumerate() {
        eprintln!("[bench-report] growing {model} e-graph...");
        let (eg, root) = grow(model, &rules);

        let count = |ms: &[tensat_egraph::SearchMatches]| -> usize {
            ms.iter().map(|m| m.substs.len()).sum()
        };
        let queries: Vec<_> = rules.iter().map(|r| r.searcher_query()).collect();
        let variants = measure(vec![
            (
                "naive",
                Box::new(|| {
                    rules
                        .iter()
                        .map(|r| count(&r.searcher.search_naive(&eg)))
                        .sum()
                }),
            ),
            (
                "machine",
                Box::new(|| rules.iter().map(|r| count(&r.searcher.search(&eg))).sum()),
            ),
            (
                "guarded",
                Box::new(|| rules.iter().map(|r| count(&r.search(&eg))).sum()),
            ),
            (
                "parallel4",
                Box::new(|| {
                    tensat_egraph::search_all_guarded_parallel(&queries, &eg, 4)
                        .iter()
                        .map(|ms| count(ms))
                        .sum()
                }),
            ),
        ]);

        let machine = variants.iter().find(|v| v.name == "machine").unwrap();
        let guarded = variants.iter().find(|v| v.name == "guarded").unwrap();
        let overhead_pct = (guarded.ns_per_search as f64 - machine.ns_per_search as f64)
            / machine.ns_per_search as f64
            * 100.0;

        eprintln!(
            "[bench-report] {model}: machine {} ns, guarded {} ns ({overhead_pct:+.1}% overhead), \
             naive {} ns, parallel4 {} ns",
            machine.ns_per_search,
            guarded.ns_per_search,
            variants[0].ns_per_search,
            variants[3].ns_per_search,
        );

        out.push_str("    {\n      \"model\": \"");
        out.push_str(model);
        out.push_str("\",\n      \"enodes\": ");
        out.push_str(&eg.total_number_of_nodes().to_string());
        out.push_str(",\n      \"eclasses\": ");
        out.push_str(&eg.number_of_classes().to_string());
        out.push_str(",\n      \"guarded_overhead_pct\": ");
        out.push_str(&format!("{overhead_pct:.2}"));
        out.push_str(",\n      \"variants\": {\n");
        for (vi, v) in variants.iter().enumerate() {
            out.push_str(&format!(
                "        \"{}\": {{ \"ns_per_search\": {}, \"matches\": {} }}{}\n",
                v.name,
                v.ns_per_search,
                v.matches,
                if vi + 1 < variants.len() { "," } else { "" }
            ));
        }
        out.push_str("      },\n      \"extraction\": {\n");
        for (si, strategy) in strategies.iter().enumerate() {
            let outcome = strategy
                .extract(&eg, root, &cost_model)
                .unwrap_or_else(|e| {
                    panic!("{} extraction failed on {model}: {e}", strategy.name())
                });
            eprintln!(
                "[bench-report] {model}: {} extracted in {:.3}s (DAG {:.2} µs, tree {:.2} µs)",
                strategy.name(),
                outcome.time.as_secs_f64(),
                outcome.dag_cost,
                outcome.tree_cost,
            );
            // The ILP strategy additionally reports the solve itself: the
            // problem size before/after the reduction pipeline, what each
            // reduction pass removed, and the solver effort — the numbers
            // the ≥10x extraction-speed target is judged on across PRs.
            let ilp_stats = outcome.ilp.as_ref().map(|s| {
                eprintln!(
                    "[bench-report] {model}: ilp solve {:.3}s, vars {}/{}, constraints {}/{}, \
                     dominated {}, bound-pruned {}, forced {}, components {}, presolve {}, \
                     nodes {}, status {:?}",
                    s.solve_time.as_secs_f64(),
                    s.num_vars,
                    s.vars_before,
                    s.num_constraints,
                    s.constraints_before,
                    s.dominated_pruned,
                    s.bound_pruned,
                    s.forced_classes,
                    s.components,
                    s.presolve_fixed,
                    s.nodes_explored,
                    s.status,
                );
                format!(
                    ", \"solve_time_s\": {:.4}, \"vars\": {}, \"vars_before\": {}, \
                     \"constraints\": {}, \"constraints_before\": {}, \"dominated_pruned\": {}, \
                     \"bound_pruned\": {}, \"forced_classes\": {}, \"components\": {}, \
                     \"presolve_fixed\": {}, \"nodes_explored\": {}, \"status\": \"{:?}\"",
                    s.solve_time.as_secs_f64(),
                    s.num_vars,
                    s.vars_before,
                    s.num_constraints,
                    s.constraints_before,
                    s.dominated_pruned,
                    s.bound_pruned,
                    s.forced_classes,
                    s.components,
                    s.presolve_fixed,
                    s.nodes_explored,
                    s.status,
                )
            });
            out.push_str(&format!(
                "        \"{}\": {{ \"time_s\": {:.4}, \"dag_cost_us\": {:.3}, \"tree_cost_us\": {:.3}{} }}{}\n",
                strategy.name(),
                outcome.time.as_secs_f64(),
                outcome.dag_cost,
                outcome.tree_cost,
                ilp_stats.as_deref().unwrap_or(""),
                if si + 1 < strategies.len() { "," } else { "" }
            ));
        }
        // Per-strategy exploration: each strategy grows a fresh seed of
        // the same model. The saturate run goes deeper than the microbench
        // growth above (more iterations) so the guided strategy's
        // 4x-smaller node budget leaves real headroom over the seed; its
        // final size defines that budget, so the strategies run in order.
        let graph = build_benchmark(model, ModelScale::default());
        let seed_nodes = {
            let mut seed = TensorEGraph::new(TensorAnalysis);
            seed.add_expr(&graph);
            seed.rebuild();
            seed.total_number_of_nodes()
        };
        let mut sat_nodes = seed_nodes;
        let modes = [
            ExplorationMode::Saturate,
            ExplorationMode::Guided,
            ExplorationMode::Taso,
        ];
        out.push_str("      },\n      \"exploration\": {\n");
        for (ei, mode) in modes.iter().enumerate() {
            let budget = match mode {
                ExplorationMode::Guided => (sat_nodes / 4).max(seed_nodes),
                _ => 20_000,
            };
            let mut xeg = TensorEGraph::new(TensorAnalysis);
            let xroot = xeg.add_expr(&graph);
            xeg.rebuild();
            let stats = explore(
                &mut xeg,
                xroot,
                &rules,
                &[],
                &ExplorationConfig {
                    mode: *mode,
                    max_iter: 8,
                    node_limit: budget,
                    search_threads: 1,
                    // Keep the TASO baseline's sequential trajectory short:
                    // this section tracks relative numbers per PR, not the
                    // paper's full 100-iteration baseline run.
                    taso: tensat_core::TasoConfig {
                        iterations: 30,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            );
            let extracted = extract_greedy_dag(&xeg, xroot, &cost_model).unwrap_or_else(|e| {
                panic!(
                    "greedy-DAG extraction failed after {} on {model}: {e}",
                    stats.strategy
                )
            });
            eprintln!(
                "[bench-report] {model}: {} explored in {:.3}s ({} e-nodes, budget {budget}, \
                 DAG {:.2} µs)",
                stats.strategy,
                stats.time.as_secs_f64(),
                stats.enodes,
                extracted.dag_cost,
            );
            out.push_str(&format!(
                "        \"{}\": {{ \"explore_time_s\": {:.4}, \"search_time_s\": {:.4}, \"apply_time_s\": {:.4}, \"rebuild_time_s\": {:.4}, \"enodes\": {}, \"node_budget\": {}, \"dag_cost_us\": {:.3}",
                stats.strategy,
                stats.time.as_secs_f64(),
                stats.search_time.as_secs_f64(),
                stats.apply_time.as_secs_f64(),
                stats.rebuild_time.as_secs_f64(),
                stats.enodes,
                budget,
                extracted.dag_cost,
            ));
            if matches!(mode, ExplorationMode::Saturate) {
                sat_nodes = xeg.total_number_of_nodes();
                // The budgeted-quality acceptance target: guided's DAG cost
                // must not exceed tree-greedy extraction from saturation.
                let tree = tensat_core::extract_greedy(&xeg, xroot, &cost_model)
                    .unwrap_or_else(|e| panic!("tree-greedy failed on {model}: {e}"));
                out.push_str(&format!(
                    ", \"tree_greedy_dag_cost_us\": {:.3}",
                    tree.dag_cost
                ));
            }
            out.push_str(if ei + 1 < modes.len() {
                " },\n"
            } else {
                " }\n"
            });
        }
        out.push_str("      }\n    }");
        out.push_str(if mi + 1 < MODELS.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");

    let path = "BENCH_egraph.json";
    let mut f = std::fs::File::create(path).expect("create BENCH_egraph.json");
    f.write_all(out.as_bytes()).expect("write report");
    println!("[bench-report] wrote {path}");
}
