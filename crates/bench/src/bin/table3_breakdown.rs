//! Regenerates **Table 3**: TENSAT optimization-time breakdown (exploration
//! vs extraction) per benchmark.

use tensat_bench::{compare_on, write_csv};

fn main() {
    println!("Table 3: TENSAT optimization time breakdown (seconds)");
    println!(
        "{:<14} {:>12} {:>12} {:>10}",
        "model", "exploration", "extraction", "e-nodes"
    );
    let mut rows = vec![];
    for &name in tensat_models::BENCHMARKS {
        let r = compare_on(name, 1);
        println!(
            "{:<14} {:>12.3} {:>12.3} {:>10}",
            r.name, r.tensat_explore_s, r.tensat_extract_s, r.tensat_enodes
        );
        rows.push(format!(
            "{},{:.3},{:.3},{}",
            r.name, r.tensat_explore_s, r.tensat_extract_s, r.tensat_enodes
        ));
    }
    write_csv(
        "table3_breakdown.csv",
        "model,exploration_s,extraction_s,enodes",
        &rows,
    );
}
