//! Regenerates **Table 7** (this reproduction's extension of the paper's
//! Figure 4 axis): per-exploration-strategy results on every benchmark —
//! explore time, final e-graph size, and greedy-DAG extracted cost.
//!
//! `saturate` runs the paper's saturate-all loop; `guided` runs the beam
//! search under a hard node budget 4x below the saturated size (so the
//! interesting column is whether its extracted cost holds up on a
//! fraction of the e-graph); `taso` runs the sequential backtracking
//! baseline through the same seam.

use std::time::Duration;
use tensat_bench::{harness_scale, secs, write_csv};
use tensat_core::{explore, extract_greedy_dag, ExplorationConfig, ExplorationMode};
use tensat_ir::{CostModel, TensorAnalysis, TensorEGraph};
use tensat_models::{build_benchmark, BENCHMARKS};
use tensat_rules::{multi_rules, single_rules};

fn main() {
    println!("Table 7: exploration strategies (explore time / e-nodes / extracted DAG cost)");
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "model", "strategy", "explore_s", "enodes", "budget", "dag_us"
    );
    let singles = single_rules();
    let multis = multi_rules();
    let model = CostModel::default();
    let mut rows = vec![];
    for &name in BENCHMARKS {
        let graph = build_benchmark(name, harness_scale());
        let seed_nodes = {
            let mut eg = TensorEGraph::new(TensorAnalysis);
            eg.add_expr(&graph);
            eg.rebuild();
            eg.total_number_of_nodes()
        };
        // The saturated size defines the guided budget, so run saturate
        // first and carry its node count forward.
        let mut sat_nodes = 0;
        for mode in [
            ExplorationMode::Saturate,
            ExplorationMode::Guided,
            ExplorationMode::Taso,
        ] {
            let budget = match mode {
                ExplorationMode::Guided => (sat_nodes / 4).max(seed_nodes),
                _ => 20_000,
            };
            let mut eg = TensorEGraph::new(TensorAnalysis);
            let root = eg.add_expr(&graph);
            eg.rebuild();
            let stats = explore(
                &mut eg,
                root,
                &singles,
                &multis,
                &ExplorationConfig {
                    mode,
                    max_iter: 8,
                    node_limit: budget,
                    time_limit: Duration::from_secs(60),
                    search_threads: 1,
                    ..Default::default()
                },
            );
            if mode == ExplorationMode::Saturate {
                sat_nodes = stats.enodes;
            }
            let dag = extract_greedy_dag(&eg, root, &model)
                .expect("greedy-DAG extraction succeeds on the benchmark models");
            println!(
                "{name:<14} {:>10} {:>10} {:>12} {:>10} {:>10.2}",
                stats.strategy,
                secs(stats.time),
                stats.enodes,
                budget,
                dag.dag_cost
            );
            rows.push(format!(
                "{name},{},{:.4},{},{budget},{:.3}",
                stats.strategy,
                stats.time.as_secs_f64(),
                stats.enodes,
                dag.dag_cost
            ));
        }
    }
    write_csv(
        "table7_exploration.csv",
        "model,strategy,explore_s,enodes,node_budget,dag_cost_us",
        &rows,
    );
}
