//! Regenerates **Table 6**: exploration-phase time under vanilla vs
//! efficient cycle filtering, for k_multi = 1 and 2, on BERT, NasRNN and
//! NasNet-A.

use std::time::Duration;
use tensat_bench::{harness_scale, write_csv};
use tensat_core::{explore, CycleFilter, ExplorationConfig};
use tensat_ir::{TensorAnalysis, TensorEGraph};
use tensat_rules::{multi_rules, single_rules};

fn main() {
    println!("Table 6: exploration time (s), vanilla vs efficient cycle filtering");
    println!(
        "{:<12} {:>3} {:>12} {:>12}",
        "model", "k", "vanilla", "efficient"
    );
    let mut rows = vec![];
    for &name in &["BERT", "NasRNN", "NasNet-A"] {
        for k in [1usize, 2] {
            let graph = tensat_models::build_benchmark(name, harness_scale());
            let time_of = |filter: CycleFilter| {
                let mut eg = TensorEGraph::new(TensorAnalysis);
                let root = eg.add_expr(&graph);
                eg.rebuild();
                let stats = explore(
                    &mut eg,
                    root,
                    &single_rules(),
                    &multi_rules(),
                    &ExplorationConfig {
                        k_multi: k,
                        max_iter: 8,
                        node_limit: 8_000,
                        time_limit: Duration::from_secs(120),
                        cycle_filter: filter,
                        ..Default::default()
                    },
                );
                stats.time.as_secs_f64()
            };
            let efficient = time_of(CycleFilter::Efficient);
            let vanilla = time_of(CycleFilter::Vanilla);
            println!("{name:<12} {k:>3} {vanilla:>12.3} {efficient:>12.3}");
            rows.push(format!("{name},{k},{vanilla:.4},{efficient:.4}"));
        }
    }
    write_csv(
        "table6_cycle_filtering.csv",
        "model,k_multi,vanilla_s,efficient_s",
        &rows,
    );
}
