//! Regenerates **Figure 5**: optimizer time (log scale) — TASO total, TASO
//! time-to-best, and TENSAT — plus the TASO-total / TENSAT ratio annotated
//! above each group in the paper.

use tensat_bench::{compare_on, write_csv};

fn main() {
    println!("Figure 5: optimizer time (seconds)");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>8}",
        "model", "TASO total", "TASO best", "TENSAT", "ratio"
    );
    let mut rows = vec![];
    for &name in tensat_models::BENCHMARKS {
        let k_multi = if name == "Inception-v3" { 2 } else { 1 };
        let r = compare_on(name, k_multi);
        let ratio = if r.tensat_time_s > 0.0 {
            r.taso_time_s / r.tensat_time_s
        } else {
            f64::INFINITY
        };
        println!(
            "{:<14} {:>12.3} {:>12.3} {:>12.3} {:>7.1}x",
            r.name, r.taso_time_s, r.taso_best_time_s, r.tensat_time_s, ratio
        );
        rows.push(format!(
            "{},{:.3},{:.3},{:.3},{:.2}",
            r.name, r.taso_time_s, r.taso_best_time_s, r.tensat_time_s, ratio
        ));
    }
    write_csv(
        "fig5_time.csv",
        "model,taso_total_s,taso_best_s,tensat_s,speedup_ratio",
        &rows,
    );
}
