//! Regenerates **Table 1**: optimization time and runtime speedup of the
//! optimized graphs, TASO (sequential backtracking) vs TENSAT, across the
//! seven benchmark models. Inception-v3 additionally uses k_multi = 2, as
//! in the paper.

use tensat_bench::{compare_on, write_csv};

fn main() {
    println!("Table 1: search time (s) and runtime speedup (%), TASO vs TENSAT");
    println!(
        "{:<14} {:>10} {:>12} {:>10} {:>12}",
        "model", "TASO t(s)", "TASO sp(%)", "TSAT t(s)", "TSAT sp(%)"
    );
    let mut rows = vec![];
    for &name in tensat_models::BENCHMARKS {
        let k_multi = if name == "Inception-v3" { 2 } else { 1 };
        let row = compare_on(name, k_multi);
        println!(
            "{:<14} {:>10.2} {:>12.1} {:>10.2} {:>12.1}",
            row.name,
            row.taso_time_s,
            row.taso_speedup_pct,
            row.tensat_time_s,
            row.tensat_speedup_pct
        );
        rows.push(format!(
            "{},{:.3},{:.2},{:.3},{:.2}",
            row.name,
            row.taso_time_s,
            row.taso_speedup_pct,
            row.tensat_time_s,
            row.tensat_speedup_pct
        ));
    }
    write_csv(
        "table1.csv",
        "model,taso_time_s,taso_speedup_pct,tensat_time_s,tensat_speedup_pct",
        &rows,
    );
}
