//! Regenerates **Figure 4**: speedup percentage of the optimized graph over
//! the original, TASO vs TENSAT, per model, with mean and standard error
//! over repeated runs.

use tensat_bench::{compare_on, write_csv};

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    println!("Figure 4: speedup %, mean ± stderr over {reps} runs");
    println!("{:<14} {:>16} {:>16}", "model", "TASO", "TENSAT");
    let mut rows = vec![];
    for &name in tensat_models::BENCHMARKS {
        let k_multi = if name == "Inception-v3" { 2 } else { 1 };
        let samples: Vec<(f64, f64)> = (0..reps)
            .map(|_| {
                let r = compare_on(name, k_multi);
                (r.taso_speedup_pct, r.tensat_speedup_pct)
            })
            .collect();
        let mean =
            |f: &dyn Fn(&(f64, f64)) -> f64| samples.iter().map(f).sum::<f64>() / reps as f64;
        let stderr = |f: &dyn Fn(&(f64, f64)) -> f64, m: f64| {
            (samples.iter().map(|s| (f(s) - m).powi(2)).sum::<f64>() / reps as f64).sqrt()
                / (reps as f64).sqrt()
        };
        let (mt, ms) = (mean(&|s| s.0), mean(&|s| s.1));
        let (et, es) = (stderr(&|s| s.0, mt), stderr(&|s| s.1, ms));
        println!("{name:<14} {mt:>8.1} ±{et:>5.2} {ms:>8.1} ±{es:>5.2}");
        rows.push(format!("{name},{mt:.2},{et:.3},{ms:.2},{es:.3}"));
    }
    write_csv(
        "fig4_speedup.csv",
        "model,taso_mean,taso_stderr,tensat_mean,tensat_stderr",
        &rows,
    );
}
