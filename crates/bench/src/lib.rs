//! # tensat-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (see `src/bin/`), plus Criterion micro-benchmarks of the
//! substrates (`benches/`). This library crate holds the shared plumbing:
//! benchmark configuration, result rows, and CSV/console reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write;
use std::path::Path;
use std::time::Duration;
use tensat_core::{CycleFilter, ExtractionMode, Optimizer, OptimizerConfig};
use tensat_models::ModelScale;
use tensat_taso::{BacktrackingConfig, BacktrackingSearch};

/// The scale used by the harness binaries for the seven benchmark models.
pub fn harness_scale() -> ModelScale {
    ModelScale {
        blocks: 2,
        hidden: 128,
        batch: 8,
    }
}

/// The TENSAT configuration used for the headline results (paper §6.1),
/// with `k_multi` overridable per experiment.
pub fn tensat_config(k_multi: usize) -> OptimizerConfig {
    OptimizerConfig {
        k_multi,
        max_iter: 15,
        node_limit: 20_000,
        exploration_time_limit: Duration::from_secs(30),
        cycle_filter: CycleFilter::Efficient,
        search_threads: tensat_core::default_search_threads(),
        apply_threads: tensat_egraph::apply_threads_from_env(),
        extraction: ExtractionMode::Ilp,
        exploration: tensat_core::ExplorationMode::Saturate,
        guided: Default::default(),
        taso: Default::default(),
        ilp_cycle_constraints: false,
        ilp_integer_topo_vars: false,
        ilp_time_limit: Duration::from_secs(30),
        cost_model: Default::default(),
    }
}

/// The TASO baseline configuration used for the headline results
/// (`n = 100`, `alpha = 1.0`, paper §6.1).
pub fn taso_config() -> BacktrackingConfig {
    BacktrackingConfig {
        iterations: 100,
        alpha: 1.0,
        time_limit: Duration::from_secs(60),
        ..Default::default()
    }
}

/// One comparison row: a benchmark optimized by both systems.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Benchmark name.
    pub name: String,
    /// TASO total search time (seconds).
    pub taso_time_s: f64,
    /// TASO time-to-best (seconds).
    pub taso_best_time_s: f64,
    /// TASO speedup over the original graph (%).
    pub taso_speedup_pct: f64,
    /// TENSAT optimizer time (seconds).
    pub tensat_time_s: f64,
    /// TENSAT exploration time (seconds).
    pub tensat_explore_s: f64,
    /// TENSAT extraction time (seconds).
    pub tensat_extract_s: f64,
    /// TENSAT speedup over the original graph (%).
    pub tensat_speedup_pct: f64,
    /// Final e-graph size (e-nodes).
    pub tensat_enodes: usize,
}

/// Runs both optimizers on one benchmark and returns the comparison row.
pub fn compare_on(name: &str, k_multi: usize) -> ComparisonRow {
    let graph = tensat_models::build_benchmark(name, harness_scale());

    let taso = BacktrackingSearch::with_default_rules(taso_config()).run(&graph);
    let tensat = Optimizer::new(tensat_config(k_multi))
        .optimize(&graph)
        .expect("TENSAT optimization should succeed on the benchmark models");

    ComparisonRow {
        name: name.to_string(),
        taso_time_s: taso.total_time.as_secs_f64(),
        taso_best_time_s: taso.time_to_best.as_secs_f64(),
        taso_speedup_pct: taso.speedup_percent(),
        tensat_time_s: tensat.optimizer_time().as_secs_f64(),
        tensat_explore_s: tensat.stats.exploration.time.as_secs_f64(),
        tensat_extract_s: tensat.stats.extraction_time.as_secs_f64(),
        tensat_speedup_pct: tensat.speedup_percent(),
        tensat_enodes: tensat.stats.exploration.enodes,
    }
}

/// Writes rows as CSV into `results/<file>` (creating the directory), and
/// echoes the path.
pub fn write_csv(file: &str, header: &str, rows: &[String]) {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results directory");
    let path = dir.join(file);
    let mut f = std::fs::File::create(&path).expect("create results file");
    writeln!(f, "{header}").unwrap();
    for row in rows {
        writeln!(f, "{row}").unwrap();
    }
    println!("\n[results written to {}]", path.display());
}

/// Formats a duration in seconds with 3 decimal places.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_have_paper_defaults() {
        let c = tensat_config(1);
        assert_eq!(c.k_multi, 1);
        assert_eq!(c.max_iter, 15);
        assert!(matches!(c.extraction, ExtractionMode::Ilp));
        assert!(!c.ilp_cycle_constraints);
        let t = taso_config();
        assert_eq!(t.iterations, 100);
        assert_eq!(t.alpha, 1.0);
    }

    #[test]
    fn comparison_runs_on_a_small_model() {
        // Smoke test on the cheapest benchmark at tiny scale via the
        // public pieces (not the full harness scale, to keep tests fast).
        let graph = tensat_models::nasrnn(tensat_models::ModelScale::tiny());
        let taso = BacktrackingSearch::with_default_rules(BacktrackingConfig {
            iterations: 5,
            ..Default::default()
        })
        .run(&graph);
        let tensat = Optimizer::new(tensat_config(1)).optimize(&graph).unwrap();
        assert!(taso.best_cost <= taso.original_cost);
        assert!(tensat.optimized_cost <= tensat.original_cost);
    }
}
