//! Property tests of the extraction-strategy seam on random tensor
//! e-graphs: random square-matrix programs are built, explored with the
//! single-pattern rule set, and then extracted by all three strategies.
//!
//! The properties pin down the greedy-DAG extractor's contract:
//!
//! 1. **Well-formed selection** — the extracted `RecExpr` maps bottom-up
//!    into the e-graph (so it is acyclic by construction) and contains
//!    exactly one e-node per reachable e-class, rooted at the query root;
//! 2. **DAG-cost dominance** — its honest DAG cost (each e-node charged
//!    once) is never worse than tree-greedy's DAG cost;
//! 3. **ILP relationship** — ILP extraction (warm-started from greedy-DAG)
//!    is never worse, and when the solver proves `Status::Optimal` the
//!    greedy-DAG result matches the ILP optimum on these e-graphs;
//! 4. **Determinism** — repeated extraction from the same e-graph yields a
//!    bit-identical expression.
//!
//! The generator sticks to shape-preserving ops over square matrices so
//! every operand combination is well-typed and exploration has real rewrite
//! opportunities (associativity, fusion, transpose-cancellation, ...).

use proptest::prelude::*;
use std::collections::HashSet;
use tensat_core::{
    explore, extract_greedy, extract_greedy_dag, extract_ilp, ExplorationConfig, IlpConfig,
};
use tensat_egraph::{Id, Language, RecExpr};
use tensat_ilp::Status;
use tensat_ir::{CostModel, GraphBuilder, TensorAnalysis, TensorEGraph, TensorLang};
use tensat_rules::single_rules;

/// One random op: opcode plus two operand picks (taken modulo the number
/// of nodes built so far, so every program is closed).
type RandOp = (u8, usize, usize);

/// Builds a random square-matrix program over two inputs and two weights.
fn build_graph(ops: &[RandOp]) -> RecExpr<TensorLang> {
    const D: i64 = 16;
    let mut g = GraphBuilder::new();
    let mut nodes = vec![
        g.input("x", &[D, D]),
        g.input("y", &[D, D]),
        g.weight("w1", &[D, D]),
        g.weight("w2", &[D, D]),
    ];
    for &(op, a, b) in ops {
        let a = nodes[a % nodes.len()];
        let b = nodes[b % nodes.len()];
        let id = match op % 6 {
            0 => g.ewadd(a, b),
            1 => g.ewmul(a, b),
            2 => g.matmul(a, b),
            3 => g.relu(a),
            4 => g.tanh(a),
            _ => g.sigmoid(a),
        };
        nodes.push(id);
    }
    let root = *nodes.last().unwrap();
    g.finish(&[root])
}

/// Explores the program with the single-pattern rule set under small,
/// deterministic limits and returns the saturated e-graph plus root.
fn explored(graph: &RecExpr<TensorLang>) -> (TensorEGraph, Id) {
    let mut eg = TensorEGraph::new(TensorAnalysis);
    let root = eg.add_expr(graph);
    eg.rebuild();
    explore(
        &mut eg,
        root,
        &single_rules(),
        &[],
        &ExplorationConfig {
            max_iter: 2,
            node_limit: 2_000,
            search_threads: 1,
            ..Default::default()
        },
    );
    (eg, root)
}

/// Maps each node of an extracted expression back to its e-class, bottom
/// up. A successful pass proves the expression is well-formed (children
/// resolve before parents, so the selection is acyclic); the returned
/// vector is then checked for the one-node-per-class property.
fn classes_of(eg: &TensorEGraph, expr: &RecExpr<TensorLang>) -> Vec<Id> {
    let mut classes: Vec<Id> = Vec::with_capacity(expr.len());
    for (_, node) in expr.iter() {
        let mapped = node.map_children(|c| classes[usize::from(c)]);
        let class = eg
            .lookup(&mapped)
            .expect("every extracted e-node must exist in the e-graph");
        classes.push(class);
    }
    classes
}

fn op_strategy() -> impl Strategy<Value = Vec<RandOp>> {
    prop::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..12)
}

proptest! {
    /// Properties 1, 2 and 4: well-formed acyclic selection, one node per
    /// reachable class, DAG-cost dominance over tree-greedy, determinism.
    #[test]
    fn greedy_dag_selection_is_sound_and_never_worse(ops in op_strategy()) {
        let graph = build_graph(&ops);
        let model = CostModel::default();
        let (eg, root) = explored(&graph);

        let tree = extract_greedy(&eg, root, &model).expect("tree-greedy extraction succeeds");
        let dag = extract_greedy_dag(&eg, root, &model).expect("greedy-DAG extraction succeeds");

        // 1. The selection maps back into the e-graph bottom-up (acyclic),
        //    picks exactly one node per reachable class, and is rooted at
        //    the query root.
        let classes = classes_of(&eg, &dag.expr);
        let distinct: HashSet<&Id> = classes.iter().collect();
        prop_assert_eq!(
            distinct.len(),
            classes.len(),
            "a reachable e-class contributed more than one e-node"
        );
        prop_assert_eq!(*classes.last().unwrap(), eg.find(root));

        // 2. Honest DAG cost never worse than tree-greedy's DAG cost.
        prop_assert!(
            dag.dag_cost <= tree.dag_cost + 1e-9,
            "greedy-DAG ({}) worse than tree-greedy ({})",
            dag.dag_cost,
            tree.dag_cost
        );

        // 4. Bit-identical determinism across repeated extraction.
        for _ in 0..2 {
            let again = extract_greedy_dag(&eg, root, &model).unwrap();
            prop_assert_eq!(again.expr.nodes(), dag.expr.nodes());
            prop_assert_eq!(again.dag_cost, dag.dag_cost);
        }
    }
}

proptest! {
    /// Property 3: ILP never loses to greedy-DAG, and when the solver
    /// proves optimality the greedy-DAG result matches the ILP optimum.
    /// (The vendored proptest runs a fixed, deterministically seeded case
    /// count, so a pass here is reproducible, not probabilistic.)
    #[test]
    fn greedy_dag_matches_ilp_optimum(ops in op_strategy()) {
        let graph = build_graph(&ops);
        let model = CostModel::default();
        let (eg, root) = explored(&graph);

        let dag = extract_greedy_dag(&eg, root, &model).unwrap();
        let ilp = extract_ilp(&eg, root, &model, &IlpConfig::default()).unwrap();
        let stats = ilp.ilp.as_ref().expect("ILP extraction records solver stats");

        prop_assert!(
            ilp.dag_cost <= dag.dag_cost + 1e-9,
            "ILP ({}) worse than its own greedy-DAG warm start ({})",
            ilp.dag_cost,
            dag.dag_cost
        );
        if stats.status == Status::Optimal {
            let tol = 1e-6 * ilp.dag_cost.max(1.0);
            prop_assert!(
                (dag.dag_cost - ilp.dag_cost).abs() <= tol,
                "greedy-DAG ({}) missed the proven ILP optimum ({})",
                dag.dag_cost,
                ilp.dag_cost
            );
        }
    }
}
