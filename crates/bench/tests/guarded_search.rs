//! Differential proptests of analysis-guided (guarded) e-matching on the
//! real benchmark models (paper §6.1): for every BENCHMARKS model and every
//! single-pattern rule,
//!
//! 1. guarded search = unguarded search post-filtered by the rule's guard
//!    predicates, *bit-identically* (same class order, same substitution
//!    order);
//! 2. filtering both by the legacy post-match [`Condition`] yields the same
//!    surviving applications — the guards are a sound approximation of the
//!    condition, so pushing them into the machine changes *when* dead
//!    bindings die, never *which* applications fire;
//! 3. parallel guarded search is bit-identical to sequential guarded search
//!    for 1–8 threads.
//!
//! The e-graphs are grown by one exploration iteration first so classes
//! hold multiple nodes, as they do during saturation. The dev container is
//! single-core, so these equivalences — not wall-clock numbers — are the
//! correctness story for the guard machinery.
//!
//! [`Condition`]: tensat_egraph::Condition

use proptest::prelude::*;
use std::sync::OnceLock;
use tensat_core::{explore, CycleFilter, ExplorationConfig};
use tensat_egraph::{SearchMatches, Subst};
use tensat_ir::{TensorAnalysis, TensorEGraph};
use tensat_models::{build_benchmark, ModelScale, BENCHMARKS};
use tensat_rules::{single_rules, TensorRewrite};

/// One explored e-graph per benchmark model, built once and shared
/// read-only across all proptest cases (search never mutates).
fn model_egraphs() -> &'static Vec<(&'static str, TensorEGraph)> {
    static CELL: OnceLock<Vec<(&'static str, TensorEGraph)>> = OnceLock::new();
    CELL.get_or_init(|| {
        let rules = single_rules();
        BENCHMARKS
            .iter()
            .map(|name| {
                let graph = build_benchmark(name, ModelScale::default());
                let mut eg = TensorEGraph::new(TensorAnalysis);
                let root = eg.add_expr(&graph);
                eg.rebuild();
                explore(
                    &mut eg,
                    root,
                    &rules,
                    &[],
                    &ExplorationConfig {
                        max_iter: 1,
                        node_limit: 10_000,
                        search_threads: 1,
                        cycle_filter: CycleFilter::Efficient,
                        ..Default::default()
                    },
                );
                (*name, eg)
            })
            .collect()
    })
}

fn rules() -> &'static Vec<TensorRewrite> {
    static CELL: OnceLock<Vec<TensorRewrite>> = OnceLock::new();
    CELL.get_or_init(single_rules)
}

/// Post-filters a match list by a rule's guard predicates — the reference
/// semantics the guarded machine must reproduce bit-identically.
fn filter_by_guards(
    eg: &TensorEGraph,
    rule: &TensorRewrite,
    matches: &[SearchMatches],
) -> Vec<SearchMatches> {
    let Some(guarded) = rule.guarded_program() else {
        return matches.to_vec();
    };
    let vars = guarded.program().guard_vars();
    let preds = guarded.guards();
    matches
        .iter()
        .filter_map(|m| {
            let substs: Vec<Subst> = m
                .substs
                .iter()
                .filter(|s| {
                    vars.iter().zip(preds).all(|(v, g)| match s.get(*v) {
                        // Recompute the kind tag from the data (rather than
                        // reading the e-graph's side table), so a stale tag
                        // table would surface as a divergence here.
                        Some(id) => {
                            let data = &eg.eclass(id).data;
                            g.check(data.kind_tag(), data)
                        }
                        None => true,
                    })
                })
                .cloned()
                .collect();
            (!substs.is_empty()).then_some(SearchMatches {
                eclass: m.eclass,
                substs,
            })
        })
        .collect()
}

/// Post-filters a match list by the rule's legacy post-match condition
/// (`None` = unconditional).
fn filter_by_condition(
    eg: &TensorEGraph,
    rule: &TensorRewrite,
    matches: &[SearchMatches],
) -> Vec<SearchMatches> {
    matches
        .iter()
        .filter_map(|m| {
            let substs: Vec<Subst> = m
                .substs
                .iter()
                .filter(|s| match &rule.condition {
                    Some(cond) => cond(eg, m.eclass, s),
                    None => true,
                })
                .cloned()
                .collect();
            (!substs.is_empty()).then_some(SearchMatches {
                eclass: m.eclass,
                substs,
            })
        })
        .collect()
}

proptest! {
    /// The acceptance property of the guard tentpole, checked on every
    /// BENCHMARKS model with a randomly drawn rule and thread count.
    #[test]
    fn guarded_search_is_equivalent_on_benchmark_models(
        model_idx in 0usize..BENCHMARKS.len(),
        rule_pick in any::<usize>(),
        n_threads in 1usize..=8,
    ) {
        let (name, eg) = &model_egraphs()[model_idx];
        let rules = rules();
        let rule = &rules[rule_pick % rules.len()];

        let unguarded = rule.searcher.search(eg);
        let guarded = rule.search(eg);

        // (1) Guarded search = unguarded search filtered by the guard
        // predicates, bit for bit.
        prop_assert_eq!(
            &guarded,
            &filter_by_guards(eg, rule, &unguarded),
            "model {} rule {}: guarded != filtered unguarded", name, &rule.name
        );

        // (2) The legacy condition accepts the same applications either
        // way: guards only remove matches the condition rejects.
        prop_assert_eq!(
            filter_by_condition(eg, rule, &guarded),
            filter_by_condition(eg, rule, &unguarded),
            "model {} rule {}: guards changed the surviving applications", name, &rule.name
        );

        // (3) Parallel guarded search is bit-identical to sequential.
        if let Some(program) = rule.guarded_program() {
            prop_assert_eq!(
                program.search_parallel(eg, n_threads),
                guarded,
                "model {} rule {}: parallel ({} threads) diverged", name, &rule.name, n_threads
            );
        }
    }
}

/// Exhaustive (non-random) sweep: every model x every rule once, so a
/// regression in a rarely drawn rule cannot hide behind the sampler. Also
/// asserts the workload is substantive — the explored e-graphs produce
/// matches, and every rule carries guards.
#[test]
fn guarded_search_matches_filtered_search_for_every_model_and_rule() {
    let mut total_matches = 0usize;
    for (name, eg) in model_egraphs() {
        assert!(
            eg.total_number_of_nodes() > 10,
            "model {name}: e-graph unexpectedly trivial"
        );
        for rule in rules() {
            assert!(
                rule.guarded_program().is_some(),
                "rule {} lost its guards",
                rule.name
            );
            let unguarded = rule.searcher.search(eg);
            let guarded = rule.search(eg);
            total_matches += unguarded.iter().map(|m| m.substs.len()).sum::<usize>();
            assert_eq!(
                guarded,
                filter_by_guards(eg, rule, &unguarded),
                "model {name} rule {}",
                rule.name
            );
            assert_eq!(
                filter_by_condition(eg, rule, &guarded),
                filter_by_condition(eg, rule, &unguarded),
                "model {name} rule {}",
                rule.name
            );
        }
    }
    assert!(
        total_matches > 100,
        "expected a substantive e-matching workload, saw {total_matches} substitutions"
    );
}
