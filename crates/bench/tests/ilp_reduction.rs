//! Acceptance tests of the ILP problem-reduction pipeline on the real
//! benchmark models (the ISSUE-10 tentpole): on every `BENCHMARKS` model,
//! reduced exact extraction must return the *same optimal cost* as the
//! monolithic §5.1 oracle — and do it fast.
//!
//! 1. **Differential optimality** — on the bench-scale grown e-graph of
//!    every model, `extract_ilp` with reduction on and off both reach
//!    `Optimal` and agree on `dag_cost` to 1e-9, the reduction's
//!    "before" stats equal the monolithic encoding's size, and the
//!    residual problem never grows.
//! 2. **Per-model time budget** — the reduced solve completes within a
//!    generous per-model wall-clock budget. The release budget (5 s) is
//!    ~6x the worst observed time on the single-core dev container
//!    (BERT ≈ 0.8 s; every other model is milliseconds), so it trips on
//!    an order-of-magnitude regression — the pre-reduction BERT solve
//!    took ~34–47 s — without flaking on machine noise.
//!
//! Profile awareness: CI runs this test in *release* (the budget step in
//! the full job), where every assertion is live. Under `cargo test`'s
//! debug profile the solver is roughly an order of magnitude slower, so
//! the budget scales up and the *monolithic oracle* — whose whole point
//! is to be the slow encoding — is skipped for the largest models (it
//! exhausts its node budget before proving optimality in debug; the
//! release run is the proof).
//!
//! The growth recipe (2 iterations, 20k node limit, default scale)
//! mirrors `bench_report` so the numbers asserted here are the numbers
//! `BENCH_egraph.json` archives.

use std::time::{Duration, Instant};
use tensat_core::{explore, extract_ilp, ExplorationConfig, IlpConfig};
use tensat_ilp::Status;
use tensat_ir::{CostModel, TensorAnalysis, TensorEGraph};
use tensat_models::{build_benchmark, ModelScale, BENCHMARKS};
use tensat_rules::single_rules;

/// Wall-clock budget per model for the *reduced* ILP extraction (scaled
/// up under the debug profile; see the module docs).
const PER_MODEL_BUDGET: Duration = if cfg!(debug_assertions) {
    Duration::from_secs(60)
} else {
    Duration::from_secs(5)
};

/// Monolithic encodings above this size are only solved as the oracle in
/// release builds (in debug the §5.1 encoding of BERT exhausts the
/// solver's node budget without proving optimality — which is the very
/// slowness the reduction pipeline exists to remove).
const DEBUG_ORACLE_VAR_LIMIT: usize = 150;

fn grown(model: &str) -> (TensorEGraph, tensat_egraph::Id) {
    let rules = single_rules();
    let graph = build_benchmark(model, ModelScale::default());
    let mut eg = TensorEGraph::new(TensorAnalysis);
    let root = eg.add_expr(&graph);
    eg.rebuild();
    explore(
        &mut eg,
        root,
        &rules,
        &[],
        &ExplorationConfig {
            max_iter: 2,
            node_limit: 20_000,
            search_threads: 1,
            ..Default::default()
        },
    );
    (eg, root)
}

#[test]
fn reduced_ilp_is_optimal_and_within_budget_on_every_benchmark_model() {
    let model = CostModel::default();
    for name in BENCHMARKS {
        let (eg, root) = grown(name);

        let start = Instant::now();
        let reduced = extract_ilp(&eg, root, &model, &IlpConfig::default())
            .unwrap_or_else(|e| panic!("reduced ILP failed on {name}: {e}"));
        let elapsed = start.elapsed();

        let rs = reduced.ilp.as_ref().unwrap();
        assert_eq!(rs.status, Status::Optimal, "{name}: reduced not optimal");

        if cfg!(debug_assertions) && rs.vars_before > DEBUG_ORACLE_VAR_LIMIT {
            eprintln!(
                "[ilp-reduction] {name}: skipping the monolithic oracle in debug \
                 ({} vars; release CI runs it)",
                rs.vars_before
            );
        } else {
            let monolithic = extract_ilp(
                &eg,
                root,
                &model,
                &IlpConfig {
                    reduce: false,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("monolithic ILP failed on {name}: {e}"));
            let ms = monolithic.ilp.as_ref().unwrap();
            assert_eq!(ms.status, Status::Optimal, "{name}: oracle not optimal");
            assert!(
                (reduced.dag_cost - monolithic.dag_cost).abs() < 1e-9,
                "{name}: reduced optimum {} != monolithic optimum {}",
                reduced.dag_cost,
                monolithic.dag_cost
            );
            assert_eq!(
                rs.vars_before, ms.num_vars,
                "{name}: vars_before must equal the monolithic encoding size"
            );
            assert_eq!(
                rs.constraints_before, ms.num_constraints,
                "{name}: constraints_before must equal the monolithic encoding size"
            );
            assert!(rs.num_vars <= ms.num_vars, "{name}: reduction grew vars");
            assert!(
                rs.num_constraints <= ms.num_constraints,
                "{name}: reduction grew constraints"
            );
        }
        assert!(
            elapsed <= PER_MODEL_BUDGET,
            "{name}: reduced ILP extraction took {elapsed:?}, budget {PER_MODEL_BUDGET:?}"
        );
        eprintln!(
            "[ilp-reduction] {name}: {:?} (vars {}/{}, constraints {}/{}, components {}, \
             dag {:.3})",
            elapsed,
            rs.num_vars,
            rs.vars_before,
            rs.num_constraints,
            rs.constraints_before,
            rs.components,
            reduced.dag_cost
        );
    }
}
