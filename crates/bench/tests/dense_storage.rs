//! Acceptance tests of the dense slot-indexed e-graph storage on the real
//! benchmark models: the refactor must be observationally invisible.
//!
//! 1. On every BENCHMARKS model, the compiled machine search equals the
//!    legacy recursive oracle (`Pattern::search_naive`) for every rule on
//!    the explored e-graph, and the storage passes the exhaustive
//!    invariant validator ([`tensat_egraph::EGraph::check_invariants`]).
//! 2. Saturating with watermark-based incremental search enabled reaches
//!    the same e-graph as full search — same class/node counts, same
//!    per-rule match-set sizes, same greedy *and* ILP extraction costs.
//!
//! (The dev container is single-core, so equality — not wall-clock — is
//! the proof; pure-search speed is tracked by the `ematch_*` benches and
//! the `bench_report` bin.)

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;
use tensat_core::{extract_greedy, extract_ilp, IlpConfig};
use tensat_egraph::{Id, Runner, SearchMatches, StopReason, Subst, Var};
use tensat_ir::{CostModel, TensorAnalysis, TensorEGraph};
use tensat_models::{build_benchmark, ModelScale, BENCHMARKS};
use tensat_rules::single_rules;

/// Canonical set form of a match list (class identity collapsed to the
/// canonical id *within one e-graph*).
fn normalize(
    eg: &TensorEGraph,
    matches: &[SearchMatches],
) -> BTreeMap<Id, BTreeSet<Vec<(Var, Id)>>> {
    let mut out: BTreeMap<Id, BTreeSet<Vec<(Var, Id)>>> = BTreeMap::new();
    for m in matches {
        let substs = out.entry(eg.find(m.eclass)).or_default();
        for s in &m.substs {
            let mut bindings: Vec<(Var, Id)> =
                Subst::iter(s).map(|(v, id)| (v, eg.find(id))).collect();
            bindings.sort();
            substs.insert(bindings);
        }
    }
    out
}

/// Machine search must agree with the naive oracle for every rule on every
/// explored benchmark model, and the dense storage must validate.
#[test]
fn machine_equals_naive_oracle_on_every_benchmark_model() {
    let rules = single_rules();
    for name in BENCHMARKS {
        let graph = build_benchmark(name, ModelScale::tiny());
        let mut eg = TensorEGraph::new(TensorAnalysis);
        let root = eg.add_expr(&graph);
        eg.rebuild();
        tensat_core::explore(
            &mut eg,
            root,
            &rules,
            &[],
            &tensat_core::ExplorationConfig {
                max_iter: 1,
                node_limit: 5_000,
                search_threads: 1,
                ..Default::default()
            },
        );
        eg.check_invariants();
        for rule in &rules {
            let machine = rule.searcher.search(&eg);
            let naive = rule.searcher.search_naive(&eg);
            assert_eq!(
                normalize(&eg, &machine),
                normalize(&eg, &naive),
                "model {name} rule {}: machine diverged from the naive oracle",
                rule.name
            );
        }
    }
}

/// Saturating with incremental (watermark-restricted) search reaches the
/// same e-graph as full search: identical counts, per-rule match sets, and
/// greedy + ILP extraction costs.
#[test]
fn incremental_saturation_matches_full_saturation_with_identical_extraction_costs() {
    let rules = single_rules();
    let model = CostModel::default();
    // A subset of models keeps this under test-suite time budgets; the
    // machine-vs-naive sweep above still covers every model.
    for name in ["NasRNN", "BERT", "SqueezeNet"] {
        let graph = build_benchmark(name, ModelScale::tiny());
        let run = |incremental: bool| {
            let mut runner = Runner::new(TensorAnalysis)
                .with_expr(&graph)
                .with_iter_limit(8)
                .with_node_limit(20_000)
                .with_time_limit(Duration::from_secs(60))
                .with_incremental_search(incremental);
            let reason = runner.run(&rules);
            assert_eq!(
                reason,
                StopReason::Saturated,
                "model {name} (incremental={incremental}) must saturate for the comparison to be meaningful"
            );
            runner
        };
        let full = run(false);
        let incr = run(true);
        full.egraph.check_invariants();
        incr.egraph.check_invariants();

        assert_eq!(
            full.egraph.number_of_classes(),
            incr.egraph.number_of_classes(),
            "model {name}: class counts diverged"
        );
        assert_eq!(full.egraph.classes().count(), incr.egraph.classes().count());
        assert_eq!(
            full.egraph.total_number_of_nodes(),
            incr.egraph.total_number_of_nodes(),
            "model {name}: node counts diverged"
        );
        for rule in &rules {
            let a = normalize(&full.egraph, &rule.search(&full.egraph));
            let b = normalize(&incr.egraph, &rule.search(&incr.egraph));
            assert_eq!(
                a.len(),
                b.len(),
                "model {name} rule {}: match-class counts diverged",
                rule.name
            );
            let substs = |m: &BTreeMap<Id, BTreeSet<Vec<(Var, Id)>>>| -> usize {
                m.values().map(BTreeSet::len).sum()
            };
            assert_eq!(
                substs(&a),
                substs(&b),
                "model {name} rule {}: substitution counts diverged",
                rule.name
            );
        }

        let greedy_full = extract_greedy(&full.egraph, full.roots[0], &model).unwrap();
        let greedy_incr = extract_greedy(&incr.egraph, incr.roots[0], &model).unwrap();
        assert!(
            (greedy_full.dag_cost - greedy_incr.dag_cost).abs() < 1e-6,
            "model {name}: greedy costs diverged ({} vs {})",
            greedy_full.dag_cost,
            greedy_incr.dag_cost
        );
        let ilp_config = IlpConfig {
            time_limit: Duration::from_secs(20),
            ..Default::default()
        };
        let ilp_full = extract_ilp(&full.egraph, full.roots[0], &model, &ilp_config).unwrap();
        let ilp_incr = extract_ilp(&incr.egraph, incr.roots[0], &model, &ilp_config).unwrap();
        assert!(
            (ilp_full.dag_cost - ilp_incr.dag_cost).abs() < 1e-6,
            "model {name}: ILP costs diverged ({} vs {})",
            ilp_full.dag_cost,
            ilp_incr.dag_cost
        );
    }
}
