//! Differential tests of the staged-parallel apply + rebuild path.
//!
//! The staged applier (`stage_matches_parallel` into `commit_log`) must be
//! *bit-identical* to the sequential in-place apply loop at every thread
//! count, so full saturation is run three ways on every `BENCHMARKS`
//! model — the legacy monolithic oracle (in-place sequential apply), the
//! seam with one apply thread, and the seam with four apply threads — and
//! every observable is compared: iteration statistics, final e-graph
//! counts, per-rule match sets, and tree-greedy / greedy-DAG / ILP
//! extraction outcomes. Two regression tests pin the budget semantics:
//! the node limit is enforced per-commit (overshoot bounded by a single
//! staged application, never a whole merged log), and a zero time limit
//! halts exploration before the first iteration.

use std::time::Duration;
use tensat_core::explore::legacy::explore_monolithic;
use tensat_core::{
    explore, extract_greedy, extract_greedy_dag, extract_ilp, ExplorationConfig, ExplorationMode,
    ExplorationStats, IlpConfig,
};
use tensat_egraph::{search_all_guarded_parallel, Id, RecExpr, SearchMatches};
use tensat_ir::{CostModel, GraphBuilder, TensorAnalysis, TensorEGraph, TensorLang};
use tensat_models::{build_benchmark, ModelScale, BENCHMARKS};
use tensat_rules::{multi_rules, parse_pattern, rw, single_rules, MultiPatternRule, TensorRewrite};

fn seeded(graph: &RecExpr<TensorLang>) -> (TensorEGraph, Id) {
    let mut eg = TensorEGraph::new(TensorAnalysis);
    let root = eg.add_expr(graph);
    eg.rebuild();
    (eg, root)
}

/// Deterministic limits shared by every side of each comparison. Threads
/// only vary on the apply side: search stays single-threaded so any
/// divergence is attributable to the staged applier.
fn config(node_limit: usize, apply_threads: usize) -> ExplorationConfig {
    ExplorationConfig {
        mode: ExplorationMode::Saturate,
        k_multi: 1,
        max_iter: 2,
        node_limit,
        time_limit: Duration::from_secs(600),
        search_threads: 1,
        apply_threads: Some(apply_threads),
        ..Default::default()
    }
}

/// The full per-rule match sets of every single-pattern rule — the
/// strongest observable equality short of dumping storage.
fn match_sets(eg: &TensorEGraph, rules: &[TensorRewrite]) -> Vec<Vec<SearchMatches>> {
    let queries: Vec<_> = rules.iter().map(|rw| rw.searcher_query()).collect();
    search_all_guarded_parallel(&queries, eg, 1)
}

/// The iteration-trajectory fields of [`ExplorationStats`] (phase timings
/// excluded — wall-clock is the one legitimately nondeterministic output).
fn trajectory(stats: &ExplorationStats) -> (usize, bool, usize, Vec<usize>, usize, usize) {
    (
        stats.iterations,
        stats.saturated,
        stats.filtered_nodes,
        stats.nodes_per_iteration.clone(),
        stats.enodes,
        stats.eclasses,
    )
}

/// Runs saturation on all seven benchmark models through the legacy
/// in-place oracle and the staged path at 1 and 4 apply threads, and
/// asserts every observable is identical.
#[test]
fn staged_parallel_apply_is_bit_identical_on_all_benchmarks() {
    let singles = single_rules();
    let multis = multi_rules();
    let model = CostModel::default();
    for name in BENCHMARKS {
        let graph = build_benchmark(name, ModelScale::tiny());

        let (mut legacy_eg, legacy_root) = seeded(&graph);
        let legacy_stats = explore_monolithic(
            &mut legacy_eg,
            legacy_root,
            &singles,
            &multis,
            &config(2_000, 1),
        );

        let mut outcomes = Vec::new();
        for apply_threads in [1, 4] {
            let (mut eg, root) = seeded(&graph);
            let stats = explore(
                &mut eg,
                root,
                &singles,
                &multis,
                &config(2_000, apply_threads),
            );
            assert_eq!(stats.strategy, "saturate", "{name}");
            assert_eq!(
                trajectory(&legacy_stats),
                trajectory(&stats),
                "{name}: iteration stats diverged at {apply_threads} apply threads"
            );
            assert_eq!(
                legacy_eg.total_number_of_nodes(),
                eg.total_number_of_nodes(),
                "{name}: node count diverged at {apply_threads} apply threads"
            );
            assert_eq!(
                legacy_eg.number_of_classes(),
                eg.number_of_classes(),
                "{name}"
            );
            assert_eq!(legacy_eg.union_count(), eg.union_count(), "{name}");
            assert_eq!(
                match_sets(&legacy_eg, &singles),
                match_sets(&eg, &singles),
                "{name}: per-rule match sets diverged at {apply_threads} apply threads"
            );

            // All three extraction outcomes must agree with the oracle's.
            let tree = extract_greedy(&eg, root, &model).unwrap();
            let legacy_tree = extract_greedy(&legacy_eg, legacy_root, &model).unwrap();
            assert_eq!(legacy_tree.expr.nodes(), tree.expr.nodes(), "{name}");
            assert_eq!(legacy_tree.dag_cost, tree.dag_cost, "{name}");
            assert_eq!(legacy_tree.tree_cost, tree.tree_cost, "{name}");
            let dag = extract_greedy_dag(&eg, root, &model).unwrap();
            let legacy_dag = extract_greedy_dag(&legacy_eg, legacy_root, &model).unwrap();
            assert_eq!(legacy_dag.expr.nodes(), dag.expr.nodes(), "{name}");
            assert_eq!(legacy_dag.dag_cost, dag.dag_cost, "{name}");
            let ilp = extract_ilp(&eg, root, &model, &IlpConfig::default()).unwrap();
            outcomes.push((ilp.expr.nodes().to_vec(), ilp.dag_cost));
        }
        // The two staged runs solved the identical ILP instance, so the
        // solver (deterministic branch-and-bound) returns the same answer.
        assert_eq!(outcomes[0], outcomes[1], "{name}: ILP outcome diverged");
        let legacy_ilp =
            extract_ilp(&legacy_eg, legacy_root, &model, &IlpConfig::default()).unwrap();
        assert_eq!(
            outcomes[0],
            (legacy_ilp.expr.nodes().to_vec(), legacy_ilp.dag_cost),
            "{name}: ILP outcome diverged from the legacy oracle"
        );
    }
}

/// Regression: the node limit is enforced inside `commit_log` before every
/// staged application, so a run can overshoot by at most one application's
/// right-hand side — never by a whole merged log (which on these models
/// holds thousands of staged e-nodes).
#[test]
fn node_limit_is_enforced_per_commit_not_per_log() {
    // Largest right-hand side in the rule corpus, with margin: a single
    // application can add at most this many e-nodes past the limit.
    const MAX_RHS_NODES: usize = 32;
    let singles = single_rules();
    let multis = multi_rules();
    for name in ["NasRNN", "BERT"] {
        let graph = build_benchmark(name, ModelScale::tiny());
        for apply_threads in [1, 4] {
            let (mut eg, root) = seeded(&graph);
            let node_limit = eg.total_number_of_nodes() + 50;
            let stats = explore(
                &mut eg,
                root,
                &singles,
                &multis,
                &config(node_limit, apply_threads),
            );
            assert!(
                stats.enodes <= node_limit + MAX_RHS_NODES,
                "{name}: {} e-nodes overshot the {node_limit} limit by more than \
                 one application at {apply_threads} apply threads",
                stats.enodes
            );
        }
    }
}

/// Regression: the time limit is checked before every iteration (and
/// before every staged candidate), so a zero budget halts exploration
/// before the first iteration mutates anything.
#[test]
fn zero_time_limit_halts_before_the_first_iteration() {
    let graph = build_benchmark("NasRNN", ModelScale::tiny());
    let (mut eg, root) = seeded(&graph);
    let seed_nodes = eg.total_number_of_nodes();
    let stats = explore(
        &mut eg,
        root,
        &single_rules(),
        &multi_rules(),
        &ExplorationConfig {
            time_limit: Duration::ZERO,
            ..config(2_000, 4)
        },
    );
    assert_eq!(stats.iterations, 0);
    assert_eq!(eg.total_number_of_nodes(), seed_nodes);
}

/// Runs full-search and incremental-multi exploration from the same seed
/// and asserts every observable is identical. Returns the two stats.
fn assert_incremental_matches_full(
    graph: &RecExpr<TensorLang>,
    singles: &[TensorRewrite],
    multis: &[MultiPatternRule],
    base: &ExplorationConfig,
    context: &str,
) -> (ExplorationStats, ExplorationStats, TensorEGraph) {
    let model = CostModel::default();
    let (mut full_eg, full_root) = seeded(graph);
    let full_stats = explore(&mut full_eg, full_root, singles, multis, base);
    assert_eq!(full_stats.multi_stale_skipped, 0, "{context}");

    let (mut inc_eg, inc_root) = seeded(graph);
    let inc_stats = explore(
        &mut inc_eg,
        inc_root,
        singles,
        multis,
        &ExplorationConfig {
            incremental_multi: true,
            ..base.clone()
        },
    );

    assert_eq!(
        trajectory(&full_stats),
        trajectory(&inc_stats),
        "{context}: incremental multi diverged from full search"
    );
    assert_eq!(
        full_eg.total_number_of_nodes(),
        inc_eg.total_number_of_nodes(),
        "{context}"
    );
    assert_eq!(
        full_eg.number_of_classes(),
        inc_eg.number_of_classes(),
        "{context}"
    );
    assert_eq!(full_eg.union_count(), inc_eg.union_count(), "{context}");
    assert_eq!(
        match_sets(&full_eg, singles),
        match_sets(&inc_eg, singles),
        "{context}"
    );
    let full_dag = extract_greedy_dag(&full_eg, full_root, &model).unwrap();
    let inc_dag = extract_greedy_dag(&inc_eg, inc_root, &model).unwrap();
    assert_eq!(full_dag.expr.nodes(), inc_dag.expr.nodes(), "{context}");
    assert_eq!(full_dag.dag_cost, inc_dag.dag_cost, "{context}");
    (full_stats, inc_stats, inc_eg)
}

/// The incremental multi-pattern search (watermark-restricted re-search
/// plus a cache of stale matches) must be bit-identical to re-searching
/// from scratch every iteration on every benchmark model. The corpus
/// multi rules self-feed (each application creates a fresh matmul/conv
/// match), and cycle filtering flushes the cache, so no stale combination
/// is skippable here — the two targeted tests below pin the skip and the
/// stale-x-fresh semantics on purpose-built rule sets.
#[test]
fn incremental_multi_search_is_bit_identical_to_full_search_on_benchmarks() {
    let singles = single_rules();
    let multis = multi_rules();
    for name in BENCHMARKS {
        let graph = build_benchmark(name, ModelScale::tiny());
        let base = ExplorationConfig {
            k_multi: 3,
            max_iter: 4,
            ..config(2_000, 1)
        };
        assert_incremental_matches_full(&graph, &singles, &multis, &base, name);
    }
}

/// A multi rule whose targets equal its sources is a no-op from the first
/// application on, so its matched classes are never touched again: from
/// the second multi iteration the whole Cartesian product is stale x stale
/// and must be skipped — while an unrelated `ewadd` associativity churn
/// keeps the exploration loop alive. The incremental run must skip at
/// least one combination and still be bit-identical to full search.
#[test]
fn incremental_multi_skips_all_stale_combinations() {
    let mut g = GraphBuilder::new();
    let p = g.input("p", &[8, 8]);
    let q = g.input("q", &[8, 8]);
    let r = g.relu(p);
    let t = g.tanh(q);
    let mut chain = g.input("a0", &[8, 8]);
    for i in 1..6 {
        let a = g.input(&format!("a{i}"), &[8, 8]);
        chain = g.ewadd(a, chain);
    }
    let graph = g.finish(&[r, t, chain]);

    let singles: Vec<TensorRewrite> = single_rules()
        .into_iter()
        .filter(|r| r.name == "ewadd-assoc")
        .collect();
    assert_eq!(singles.len(), 1);
    let multis = vec![MultiPatternRule::new(
        "quiet-pair",
        &["(relu ?x)", "(tanh ?y)"],
        &["(relu ?x)", "(tanh ?y)"],
    )];
    // The first *tracked* rebuild conservatively stamps every class as
    // touched (the seed window covers the whole pre-watermark history), so
    // the first incremental iteration sees only fresh matches; the skip
    // shows up from the second incremental iteration on — hence k_multi 4.
    let base = ExplorationConfig {
        k_multi: 4,
        max_iter: 5,
        ..config(10_000, 1)
    };
    let (_, inc_stats, _) =
        assert_incremental_matches_full(&graph, &singles, &multis, &base, "quiet-pair");
    assert!(
        inc_stats.multi_stale_skipped > 0,
        "the all-stale relu x tanh combination was never skipped"
    );
}

/// The watermark-honesty case from Algorithm 1's Cartesian product: a
/// combination of a *stale* match (the relu class, untouched after the
/// first iteration) with a *fresh* match (a new tanh binding created by
/// the `tanh-grow` rule each iteration) is a brand-new combination even
/// though one side is old, and must fire under incremental search. If it
/// were wrongly skipped the sigmoid unions would be missing and every
/// equality against full search would fail.
#[test]
fn stale_fresh_combinations_fire_under_incremental_search() {
    let mut g = GraphBuilder::new();
    let p = g.input("p", &[8, 8]);
    let q = g.input("q", &[8, 8]);
    let r = g.relu(p);
    let t = g.tanh(q);
    let graph = g.finish(&[r, t]);

    let singles = vec![rw("tanh-grow", "(tanh ?y)", "(tanh (ewmul ?y ?y))")];
    let multis = vec![MultiPatternRule::new(
        "stale-fresh-pair",
        &["(relu ?x)", "(tanh ?y)"],
        &["(relu ?x)", "(sigmoid (ewadd ?x ?y))"],
    )];
    // k_multi 4 so the second incremental iteration runs with precise
    // touch stamps (the first tracked rebuild stamps everything fresh),
    // making the relu side genuinely stale while tanh keeps growing.
    let base = ExplorationConfig {
        k_multi: 4,
        max_iter: 5,
        ..config(5_000, 1)
    };
    let (_, inc_stats, inc_eg) =
        assert_incremental_matches_full(&graph, &singles, &multis, &base, "stale-fresh-pair");
    // Every combination had the fresh tanh side, so none was skipped...
    assert_eq!(inc_stats.multi_stale_skipped, 0);
    // ...and the stale-relu x fresh-tanh combinations really fired: one
    // sigmoid per distinct tanh binding, not just the first iteration's.
    let witness = parse_pattern("(sigmoid (ewadd ?x ?y))").unwrap();
    let fired: usize = witness.search(&inc_eg).iter().map(|m| m.substs.len()).sum();
    assert!(
        fired >= 2,
        "expected sigmoid unions from stale x fresh combinations, found {fired}"
    );
}
