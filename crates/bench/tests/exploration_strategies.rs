//! Property tests of the exploration-strategy seam.
//!
//! The seam refactor (PR precedent: the extraction seam) must not change
//! saturation behavior by a single bit, so the pre-refactor monolithic
//! loop is kept verbatim as a differential oracle
//! (`tensat_core::explore::legacy::explore_monolithic`) and compared
//! against [`Saturate`]-through-the-seam on random e-graphs and on every
//! `BENCHMARKS` model:
//!
//! 1. **Bit-identical saturation** — identical node/class/union counts,
//!    identical per-rule match sets on the final e-graph, identical
//!    iteration statistics, and identical tree-greedy and greedy-DAG
//!    extraction results;
//! 2. **Guided determinism** — the guided beam search uses no randomness
//!    and no wall-clock tie-breaks, so three runs from the same seed
//!    produce bit-identical e-graphs and extractions;
//! 3. **Hard node budget** — the guided strategy never leaves the e-graph
//!    above `node_limit`, on random programs and on the benchmarks;
//! 4. **Budgeted quality** (the headline acceptance property) — on at
//!    least one benchmark model, guided exploration under a node budget
//!    at least 4x below the saturated size still extracts a DAG no more
//!    expensive than tree-greedy extraction from the fully saturated
//!    e-graph.

use proptest::prelude::*;
use std::time::Duration;
use tensat_core::explore::legacy::explore_monolithic;
use tensat_core::{
    explore, extract_greedy, extract_greedy_dag, ExplorationConfig, ExplorationMode,
    ExplorationStats,
};
use tensat_egraph::{search_all_guarded_parallel, Id, RecExpr, SearchMatches};
use tensat_ir::{CostModel, GraphBuilder, TensorAnalysis, TensorEGraph, TensorLang};
use tensat_models::{build_benchmark, ModelScale, BENCHMARKS};
use tensat_rules::{multi_rules, single_rules, MultiPatternRule, TensorRewrite};

/// One random op: opcode plus two operand picks (taken modulo the number
/// of nodes built so far, so every program is closed).
type RandOp = (u8, usize, usize);

/// Builds a random square-matrix program over two inputs and two weights
/// (same generator as `extraction_strategies.rs`).
fn build_graph(ops: &[RandOp]) -> RecExpr<TensorLang> {
    const D: i64 = 16;
    let mut g = GraphBuilder::new();
    let mut nodes = vec![
        g.input("x", &[D, D]),
        g.input("y", &[D, D]),
        g.weight("w1", &[D, D]),
        g.weight("w2", &[D, D]),
    ];
    for &(op, a, b) in ops {
        let a = nodes[a % nodes.len()];
        let b = nodes[b % nodes.len()];
        let id = match op % 6 {
            0 => g.ewadd(a, b),
            1 => g.ewmul(a, b),
            2 => g.matmul(a, b),
            3 => g.relu(a),
            4 => g.tanh(a),
            _ => g.sigmoid(a),
        };
        nodes.push(id);
    }
    let root = *nodes.last().unwrap();
    g.finish(&[root])
}

fn seeded(graph: &RecExpr<TensorLang>) -> (TensorEGraph, Id) {
    let mut eg = TensorEGraph::new(TensorAnalysis);
    let root = eg.add_expr(graph);
    eg.rebuild();
    (eg, root)
}

/// Deterministic small limits shared by both sides of each comparison.
fn saturate_config(node_limit: usize) -> ExplorationConfig {
    ExplorationConfig {
        mode: ExplorationMode::Saturate,
        k_multi: 1,
        max_iter: 2,
        node_limit,
        time_limit: Duration::from_secs(600),
        search_threads: 1,
        ..Default::default()
    }
}

/// The full per-rule match sets of every single-pattern rule on an
/// e-graph — the strongest observable equality short of dumping storage.
fn match_sets(eg: &TensorEGraph, rules: &[TensorRewrite]) -> Vec<Vec<SearchMatches>> {
    let queries: Vec<_> = rules.iter().map(|rw| rw.searcher_query()).collect();
    search_all_guarded_parallel(&queries, eg, 1)
}

/// Runs the legacy monolith and the seamed `Saturate` strategy from the
/// same seed and asserts bit-identical results. Returns the seam side.
/// (The vendored `prop_assert!` macros are plain assertions, so this
/// helper panics on mismatch — fine both inside and outside `proptest!`.)
fn assert_bit_identical(
    graph: &RecExpr<TensorLang>,
    singles: &[TensorRewrite],
    multis: &[MultiPatternRule],
    config: &ExplorationConfig,
) -> (TensorEGraph, Id, ExplorationStats) {
    let (mut legacy_eg, legacy_root) = seeded(graph);
    let legacy_stats = explore_monolithic(&mut legacy_eg, legacy_root, singles, multis, config);

    let (mut seam_eg, seam_root) = seeded(graph);
    let seam_stats = explore(&mut seam_eg, seam_root, singles, multis, config);
    prop_assert_eq!(seam_stats.strategy, "saturate");

    // Identical iteration trajectory and final sizes.
    prop_assert_eq!(legacy_stats.iterations, seam_stats.iterations);
    prop_assert_eq!(legacy_stats.saturated, seam_stats.saturated);
    prop_assert_eq!(legacy_stats.filtered_nodes, seam_stats.filtered_nodes);
    prop_assert_eq!(
        &legacy_stats.nodes_per_iteration,
        &seam_stats.nodes_per_iteration
    );
    prop_assert_eq!(legacy_stats.enodes, seam_stats.enodes);
    prop_assert_eq!(legacy_stats.eclasses, seam_stats.eclasses);
    prop_assert_eq!(
        legacy_eg.total_number_of_nodes(),
        seam_eg.total_number_of_nodes()
    );
    prop_assert_eq!(legacy_eg.number_of_classes(), seam_eg.number_of_classes());
    prop_assert_eq!(legacy_eg.union_count(), seam_eg.union_count());

    // Identical per-rule match sets on the final e-graphs.
    prop_assert_eq!(
        match_sets(&legacy_eg, singles),
        match_sets(&seam_eg, singles)
    );

    // Identical extraction results under both greedy extractors.
    let model = CostModel::default();
    let legacy_tree = extract_greedy(&legacy_eg, legacy_root, &model).unwrap();
    let seam_tree = extract_greedy(&seam_eg, seam_root, &model).unwrap();
    prop_assert_eq!(legacy_tree.expr.nodes(), seam_tree.expr.nodes());
    prop_assert_eq!(legacy_tree.dag_cost, seam_tree.dag_cost);
    prop_assert_eq!(legacy_tree.tree_cost, seam_tree.tree_cost);
    let legacy_dag = extract_greedy_dag(&legacy_eg, legacy_root, &model).unwrap();
    let seam_dag = extract_greedy_dag(&seam_eg, seam_root, &model).unwrap();
    prop_assert_eq!(legacy_dag.expr.nodes(), seam_dag.expr.nodes());
    prop_assert_eq!(legacy_dag.dag_cost, seam_dag.dag_cost);

    (seam_eg, seam_root, seam_stats)
}

proptest! {
    /// Property 1 on random e-graphs, single-pattern rules.
    #[test]
    fn saturate_is_bit_identical_to_legacy_on_random_graphs(ops in op_strategy()) {
        let graph = build_graph(&ops);
        assert_bit_identical(&graph, &single_rules(), &[], &saturate_config(2_000));
    }

    /// Property 3 on random e-graphs: the guided strategy's final e-graph
    /// never exceeds the node budget, and still extracts a valid graph.
    #[test]
    fn guided_respects_the_node_budget_on_random_graphs(ops in op_strategy()) {
        let graph = build_graph(&ops);
        let (mut eg, root) = seeded(&graph);
        let budget = eg.total_number_of_nodes().max(100);
        let config = ExplorationConfig {
            mode: ExplorationMode::Guided,
            node_limit: budget,
            search_threads: 1,
            time_limit: Duration::from_secs(600),
            ..Default::default()
        };
        let stats = explore(&mut eg, root, &single_rules(), &[], &config);
        prop_assert_eq!(stats.strategy, "guided");
        prop_assert!(
            eg.total_number_of_nodes() <= budget,
            "guided left {} e-nodes over the budget of {}",
            eg.total_number_of_nodes(),
            budget
        );
        let model = CostModel::default();
        let out = extract_greedy_dag(&eg, root, &model).unwrap();
        let data = tensat_ir::infer_recexpr(&out.expr);
        prop_assert!(data.iter().all(|d| d.is_valid()));
    }
}

fn op_strategy() -> impl Strategy<Value = Vec<RandOp>> {
    prop::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..12)
}

/// Property 1 on every benchmark model, with multi-pattern rules in play
/// (the multi apply path, guard tables, and cycle filter all exercised).
#[test]
fn saturate_is_bit_identical_to_legacy_on_all_benchmarks() {
    let singles = single_rules();
    let multis = multi_rules();
    for name in BENCHMARKS {
        let graph = build_benchmark(name, ModelScale::tiny());
        assert_bit_identical(&graph, &singles, &multis, &saturate_config(5_000));
    }
}

/// Property 2: three guided runs from the same seed are bit-identical —
/// same iteration trajectory, same final e-graph counts, same extracted
/// expression. (Wall-clock is the only nondeterministic input, so the
/// time limit is generous enough never to bind.)
#[test]
fn guided_exploration_is_deterministic() {
    let graph = build_benchmark("NasRNN", ModelScale::tiny());
    let config = ExplorationConfig {
        mode: ExplorationMode::Guided,
        node_limit: 1_000,
        search_threads: 1,
        time_limit: Duration::from_secs(600),
        ..Default::default()
    };
    let model = CostModel::default();
    let runs: Vec<_> = (0..3)
        .map(|_| {
            let (mut eg, root) = seeded(&graph);
            let stats = explore(&mut eg, root, &single_rules(), &multi_rules(), &config);
            let out = extract_greedy_dag(&eg, root, &model).unwrap();
            (
                stats.iterations,
                stats.nodes_per_iteration.clone(),
                eg.total_number_of_nodes(),
                eg.number_of_classes(),
                eg.union_count(),
                out.expr.nodes().to_vec(),
                out.dag_cost,
            )
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}

/// Property 4 (the acceptance criterion): guided exploration under a hard
/// budget at least 4x below the saturated e-graph size extracts a DAG no
/// more expensive than tree-greedy extraction from full saturation, on at
/// least one benchmark model.
#[test]
fn guided_beats_saturation_tree_greedy_under_a_quarter_budget() {
    let singles = single_rules();
    let multis = multi_rules();
    let model = CostModel::default();
    let mut witnesses = Vec::new();
    let mut report = Vec::new();
    for name in BENCHMARKS {
        let graph = build_benchmark(name, ModelScale::tiny());
        let (mut sat_eg, sat_root) = seeded(&graph);
        let seed_nodes = sat_eg.total_number_of_nodes();
        explore(
            &mut sat_eg,
            sat_root,
            &singles,
            &multis,
            &saturate_config(20_000),
        );
        let sat_nodes = sat_eg.total_number_of_nodes();
        let sat_tree = extract_greedy(&sat_eg, sat_root, &model).unwrap();

        let budget = sat_nodes / 4;
        if budget < seed_nodes {
            // The saturated e-graph is not even 4x the seed: the budgeted
            // regime is meaningless for this model at this scale.
            report.push(format!(
                "{name}: saturation {sat_nodes} < 4x seed {seed_nodes}"
            ));
            continue;
        }
        let (mut gui_eg, gui_root) = seeded(&graph);
        let stats = explore(
            &mut gui_eg,
            gui_root,
            &singles,
            &multis,
            &ExplorationConfig {
                mode: ExplorationMode::Guided,
                node_limit: budget,
                search_threads: 1,
                time_limit: Duration::from_secs(600),
                ..Default::default()
            },
        );
        assert!(
            gui_eg.total_number_of_nodes() <= budget,
            "{name}: guided exceeded its budget"
        );
        assert_eq!(stats.strategy, "guided");
        let gui_dag = extract_greedy_dag(&gui_eg, gui_root, &model).unwrap();
        report.push(format!(
            "{name}: guided dag {:.3} @ {} nodes (budget {budget}) vs saturation tree {:.3} @ {sat_nodes} nodes",
            gui_dag.dag_cost,
            gui_eg.total_number_of_nodes(),
            sat_tree.dag_cost,
        ));
        if gui_dag.dag_cost <= sat_tree.dag_cost + 1e-9 {
            witnesses.push(*name);
        }
    }
    assert!(
        !witnesses.is_empty(),
        "no benchmark had guided-under-quarter-budget match saturation tree-greedy:\n{}",
        report.join("\n")
    );
}
