//! Guard-satisfiability and guard-coverage analysis.
//!
//! A rule's compiled [`Guard`](tensat_egraph::Guard) table is checked
//! against what its patterns actually allow:
//!
//! * a guard whose tag mask admits **no** kind, or no kind the LHS
//!   positions can produce, makes the rule unable to fire — an error;
//! * a guard admitting *every* tag (including invalid data) with no
//!   dynamic predicate rejects nothing and is pure per-binding overhead on
//!   the e-matching hot path — a warning;
//! * a variable whose RHS positions demand a concrete kind but that
//!   carries no guard at all means the corpus convention (the per-variable
//!   part of the shape check is pushed into the machine, see
//!   [`tensat_rules::shape_guards`]) was broken — an error. This is what
//!   catches dropped-guard mutations.
//!
//! For multi-pattern rules the exploration driver deduplicates canonical
//! sources *across* rules and intersects the referring rules' target-kind
//! constraints; the same intersection is recomputed here so an empty (or
//! over-weak) intersection is flagged before it silently disables pruning.

use crate::lints::canonical_source_key;
use crate::{Diagnostic, Severity};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use tensat_egraph::Var;
use tensat_ir::{DataKind, VALID_TAG_MASK};
use tensat_rules::{kind_tag_mask, pattern_kind_constraints, MultiPatternRule, TensorRewrite};

/// All five kind tags (including tag 0, invalid data).
const ALL_TAGS: u32 = VALID_TAG_MASK | 1;

fn kinds_list(kinds: &BTreeSet<DataKind>) -> String {
    let names: Vec<String> = kinds.iter().map(|k| format!("{k:?}")).collect();
    names.join(", ")
}

fn mask_kinds(mask: u32) -> String {
    let mut names = vec![];
    if mask & 1 != 0 {
        names.push("Invalid");
    }
    for (kind, name) in [
        (DataKind::Scalar, "Scalar"),
        (DataKind::Str, "Str"),
        (DataKind::Tensor, "Tensor"),
        (DataKind::Tuple, "Tuple"),
    ] {
        if mask & kind.tag_mask() != 0 {
            names.push(name);
        }
    }
    if names.is_empty() {
        "nothing".to_string()
    } else {
        names.join("|")
    }
}

/// Checks a single rewrite's guard table. See the module docs for the
/// individual findings.
pub(crate) fn check_single_guards(rule: &TensorRewrite) -> Vec<Diagnostic> {
    let mut diags = vec![];
    let lhs_kinds: HashMap<Var, BTreeSet<DataKind>> = pattern_kind_constraints(&rule.searcher)
        .into_iter()
        .collect();
    let rhs_kinds = pattern_kind_constraints(&rule.applier);
    let (program, guards) = rule.searcher_query();
    let guard_map: HashMap<Var, &tensat_rules::TensorGuard> = program
        .guard_vars()
        .iter()
        .copied()
        .zip(guards.iter())
        .collect();

    // Coverage: every RHS variable with a real kind demand must be guarded.
    for (var, kinds) in &rhs_kinds {
        if !kinds.is_empty() && !guard_map.contains_key(var) {
            diags.push(Diagnostic {
                severity: Severity::Error,
                code: "missing-guard",
                message: format!(
                    "{var} must bind data of kind [{}] for the RHS to be well-typed, but the \
                     rule carries no guard for it — inadmissible bindings reach the apply \
                     phase instead of being pruned in the machine",
                    kinds_list(kinds)
                ),
            });
        }
    }

    for (var, guard) in &guard_map {
        let eff = guard.mask() & ALL_TAGS;
        if eff == 0 {
            diags.push(Diagnostic {
                severity: Severity::Error,
                code: "unsat-guard",
                message: format!(
                    "the guard on {var} admits no data kind at all — the rule can never fire"
                ),
            });
            continue;
        }
        let lhs_mask = lhs_kinds
            .get(var)
            .map(kind_tag_mask)
            .unwrap_or(VALID_TAG_MASK);
        if eff & lhs_mask == 0 {
            diags.push(Diagnostic {
                severity: Severity::Error,
                code: "unsat-guard",
                message: format!(
                    "the guard on {var} admits only {} but its LHS positions require {} — \
                     no binding can satisfy both, so the rule can never fire",
                    mask_kinds(eff),
                    mask_kinds(lhs_mask)
                ),
            });
            continue;
        }
        if eff == ALL_TAGS && guard.pred().is_none() {
            diags.push(Diagnostic {
                severity: Severity::Warning,
                code: "redundant-guard",
                message: format!(
                    "the guard on {var} admits every kind tag (including invalid data) and \
                     has no predicate: it rejects nothing and is pure overhead"
                ),
            });
        }
        // A guard weaker than what the RHS demands still prunes something
        // but lets kind-inadmissible bindings through to the apply phase.
        if let Some((_, kinds)) = rhs_kinds.iter().find(|(v, k)| v == var && !k.is_empty()) {
            let expected = kind_tag_mask(kinds);
            if eff & !expected & VALID_TAG_MASK != 0 {
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "weak-guard",
                    message: format!(
                        "the guard on {var} admits {} but the RHS only accepts {} — the \
                         extra kinds survive matching only to be rejected by the condition",
                        mask_kinds(eff),
                        mask_kinds(expected)
                    ),
                });
            }
        }
    }
    diags
}

/// Checks one multi-pattern rule's own target-kind constraints for
/// per-variable satisfiability against its source positions.
pub(crate) fn check_multi_rule_guards(rule: &MultiPatternRule) -> Vec<Diagnostic> {
    let mut diags = vec![];
    let mut lhs_kinds: HashMap<Var, BTreeSet<DataKind>> = HashMap::new();
    for src in &rule.srcs {
        for (v, kinds) in pattern_kind_constraints(src) {
            lhs_kinds.entry(v).or_default().extend(kinds);
        }
    }
    for (var, kinds) in rule.target_guard_kinds() {
        let mask = kind_tag_mask(&kinds);
        let lhs_mask = lhs_kinds
            .get(&var)
            .map(kind_tag_mask)
            .unwrap_or(VALID_TAG_MASK);
        if mask == 0 || mask & lhs_mask == 0 {
            diags.push(Diagnostic {
                severity: Severity::Error,
                code: "unsat-guard",
                message: format!(
                    "{var} must bind [{}] for the targets but its source positions require \
                     {} — the rule can never fire",
                    kinds_list(&kinds),
                    mask_kinds(lhs_mask)
                ),
            });
        }
    }
    diags
}

/// Recomputes the cross-rule canonical-source guard intersection the
/// exploration driver performs and flags degraded intersections: two rules
/// sharing a canonical source whose kind constraints for a shared position
/// have an *empty intersection* leave that position guarded by validity
/// only (or not at all), so neither rule gets its pruning.
pub(crate) fn check_multi_guard_intersection(rules: &[MultiPatternRule]) -> Vec<Diagnostic> {
    /// Rules referring to one canonical source: (rule index, canonical
    /// var -> original var).
    type SourceReferrers = Vec<(usize, HashMap<Var, Var>)>;
    let mut diags = vec![];
    let mut groups: BTreeMap<String, SourceReferrers> = BTreeMap::new();
    for (ri, rule) in rules.iter().enumerate() {
        for src in &rule.srcs {
            let (key, back) = canonical_source_key(src);
            groups.entry(key).or_default().push((ri, back));
        }
    }
    for (key, referrers) in &groups {
        if referrers.len() < 2 {
            continue;
        }
        let canon_vars: Vec<Var> = referrers[0].1.keys().copied().collect();
        for canon in canon_vars {
            let mut intersection: Option<BTreeSet<DataKind>> = None;
            let mut all_guarded = true;
            for (ri, back) in referrers {
                let orig = back[&canon];
                match rules[*ri].target_guard_kinds().get(&orig).cloned() {
                    Some(kinds) => {
                        intersection = Some(match intersection {
                            None => kinds,
                            Some(acc) => acc.intersection(&kinds).copied().collect(),
                        });
                    }
                    None => all_guarded = false,
                }
            }
            if !all_guarded {
                continue;
            }
            let empty_intersection = intersection.as_ref().is_some_and(|i| i.is_empty())
                && referrers.iter().any(|(ri, back)| {
                    rules[*ri]
                        .target_guard_kinds()
                        .get(&back[&canon])
                        .is_some_and(|k| !k.is_empty())
                });
            if empty_intersection {
                let names: Vec<&str> = referrers
                    .iter()
                    .map(|(ri, _)| rules[*ri].name.as_str())
                    .collect();
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "empty-multi-intersection",
                    message: format!(
                        "rules [{}] share the canonical source `{key}` but their kind \
                         constraints for {canon} have an empty intersection: the shared \
                         search is guarded by validity only and neither rule gets its \
                         kind pruning",
                        names.join(", ")
                    ),
                });
            }
        }
    }
    diags
}
