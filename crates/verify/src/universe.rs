//! The concrete binding universe the enumeration fallback draws from.
//!
//! When the symbolic prover cannot decide a rule (non-linear operators,
//! opaque string parameters), the verifier checks the rule over every
//! combination of a small, hand-curated pool of concrete [`TensorData`]
//! values per variable. The pools are chosen so that
//!
//! * every shipped rule has at least one *live* binding in the universe
//!   (so dead-rule detection has no false positives) — rectangular matmul
//!   chains, an NCHW conv input with a matching OIHW weight, concat-marked
//!   tensors for the `split` algebra, valid and invalid permutations;
//! * no tensor is square and no two distinct shapes are compatible by
//!   accident, so shape-divergent mutants (swapped children, renamed
//!   variables) cannot hide behind coincidental equalities.

use std::collections::BTreeSet;
use tensat_ir::{encode_identifier, encode_permutation, DataKind, TensorData, TensorInfo};

/// A tensor pool entry: `[3,5]`-style rectangular shapes plus a few
/// structured values. See the module docs for the selection rationale.
fn tensor(shape: &[i64]) -> TensorData {
    TensorData::Tensor(TensorInfo::new(shape.to_vec(), false))
}

fn tensor_split(shape: &[i64], split_at: (usize, i64)) -> TensorData {
    let mut info = TensorInfo::new(shape.to_vec(), false);
    info.split_at = Some(split_at);
    TensorData::Tensor(info)
}

/// The scalar pool: small parameter values covering "axis 0/1", "stride
/// 1/2", "padding valid/same" and the degenerate 0 cases.
pub fn scalar_pool() -> Vec<TensorData> {
    [0, 1, 2].into_iter().map(TensorData::Scalar).collect()
}

/// The string pool: involutive and non-involutive permutations of ranks 2
/// and 3, plus a tensor identifier (for `input`/`weight` leaves).
pub fn str_pool() -> Vec<TensorData> {
    vec![
        TensorData::Str(encode_permutation(&[1, 0])),
        TensorData::Str(encode_permutation(&[0, 1])),
        TensorData::Str(encode_permutation(&[1, 2, 0])),
        TensorData::Str(encode_permutation(&[0, 2, 1])),
        TensorData::Str(encode_identifier("t", &[3, 5])),
    ]
}

/// The tensor pool. Deliberately contains **no square matrix**: a square
/// matrix makes `a·b` and transposed/swap variants coincidentally
/// shape-equal, which would mask exactly the mutants the verifier exists
/// to reject.
pub fn tensor_pool() -> Vec<TensorData> {
    vec![
        tensor(&[3, 5]),
        tensor(&[5, 7]),
        tensor(&[7, 11]),
        tensor(&[5, 3]),
        // A batched operand (rank 3) — the binding class on which the
        // `concat-matmul` family diverges.
        tensor(&[2, 3, 5]),
        // NCHW conv input and a matching OIHW weight (groups = 1).
        tensor(&[1, 4, 8, 8]),
        TensorData::Tensor(TensorInfo::new(vec![6, 4, 3, 3], true)),
        // Concat-produced tensors, so the `split` algebra has fireable
        // bindings: concatenated on axis 1 (5 + 7) and on axis 0 (2 + 4).
        tensor_split(&[3, 12], (1, 5)),
        tensor_split(&[6, 5], (0, 2)),
    ]
}

/// The tuple pool (what `split` yields and `split0`/`split1` consume).
pub fn tuple_pool() -> Vec<TensorData> {
    vec![TensorData::Tuple(
        Box::new(TensorInfo::new(vec![3, 5], false)),
        Box::new(TensorInfo::new(vec![4, 5], false)),
    )]
}

/// The candidate pool for a variable whose occurrences demand `kinds`
/// (the union of its kind constraints across a rule's patterns; empty
/// means only validity is required).
///
/// A variable with two *different* kind demands can never bind valid data
/// — the caller detects that via the tag mask before asking for a pool —
/// so the union here is effectively a single kind or empty.
pub fn pool_for_kinds(kinds: &BTreeSet<DataKind>) -> Vec<TensorData> {
    let mut pool = vec![];
    let wants = |k: DataKind| kinds.contains(&k);
    if wants(DataKind::Scalar) {
        pool.extend(scalar_pool());
    }
    if wants(DataKind::Str) {
        pool.extend(str_pool());
    }
    if wants(DataKind::Tensor) {
        pool.extend(tensor_pool());
    }
    if wants(DataKind::Tuple) {
        pool.extend(tuple_pool());
    }
    if pool.is_empty() {
        // Unconstrained (kind-`Any` positions only, e.g. a matmul
        // activation): the value is never inspected beyond validity, so
        // one representative per broad kind suffices.
        pool.push(TensorData::Scalar(0));
        pool.push(tensor(&[3, 5]));
    }
    pool
}

/// Iterates the Cartesian product of the given pools as index vectors,
/// deterministically subsampled with a fixed stride when the product
/// exceeds `cap`. Calls `f` with the per-pool indices; stops early when
/// `f` returns `false`.
pub fn for_each_binding(pool_sizes: &[usize], cap: u64, f: &mut dyn FnMut(&[usize]) -> bool) {
    if pool_sizes.contains(&0) {
        return;
    }
    let total: u64 = pool_sizes
        .iter()
        .try_fold(1u64, |acc, &s| acc.checked_mul(s as u64))
        .unwrap_or(u64::MAX);
    let stride = total.div_ceil(cap).max(1);
    let mut idx = vec![0usize; pool_sizes.len()];
    let mut i = 0u64;
    while i < total {
        let mut rem = i;
        for (slot, &size) in idx.iter_mut().zip(pool_sizes).rev() {
            *slot = (rem % size as u64) as usize;
            rem /= size as u64;
        }
        if !f(&idx) {
            return;
        }
        i += stride;
    }
}

/// The number of bindings [`for_each_binding`] will actually visit.
pub fn bindings_visited(pool_sizes: &[usize], cap: u64) -> u64 {
    if pool_sizes.contains(&0) {
        return 0;
    }
    let total: u64 = pool_sizes
        .iter()
        .try_fold(1u64, |acc, &s| acc.checked_mul(s as u64))
        .unwrap_or(u64::MAX);
    let stride = total.div_ceil(cap).max(1);
    total.div_ceil(stride)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_valid_data() {
        for d in scalar_pool()
            .into_iter()
            .chain(str_pool())
            .chain(tensor_pool())
            .chain(tuple_pool())
        {
            assert!(d.is_valid(), "pool entry {d:?} must be valid");
        }
    }

    #[test]
    fn no_square_tensors_in_pool() {
        for d in tensor_pool() {
            if let Some(shape) = d.shape() {
                if shape.len() == 2 {
                    assert_ne!(shape[0], shape[1], "square matrix {shape:?} in pool");
                }
            }
        }
    }

    #[test]
    fn binding_iteration_covers_product_and_respects_cap() {
        let mut seen = vec![];
        for_each_binding(&[2, 3], 1 << 20, &mut |idx| {
            seen.push(idx.to_vec());
            true
        });
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[0], vec![0, 0]);
        assert_eq!(seen[5], vec![1, 2]);

        let mut count = 0u64;
        for_each_binding(&[10, 10, 10], 100, &mut |_| {
            count += 1;
            true
        });
        assert!(count <= 100, "cap exceeded: {count}");
        assert_eq!(count, bindings_visited(&[10, 10, 10], 100));
        assert_eq!(bindings_visited(&[2, 3], 1 << 20), 6);
    }

    #[test]
    fn early_exit_stops_iteration() {
        let mut count = 0;
        for_each_binding(&[5, 5], 1 << 20, &mut |_| {
            count += 1;
            count < 3
        });
        assert_eq!(count, 3);
    }
}
