//! Static soundness verification for the TENSAT rewrite-rule corpus.
//!
//! Equality saturation trusts its rules: an unsound rewrite silently
//! corrupts every e-class it touches and the extracted "optimized" graph
//! computes something else. This crate analyzes every shipped
//! [`TensorRewrite`] and [`MultiPatternRule`] **without running
//! saturation**, combining three passes:
//!
//! * **shape soundness** (`soundness`) — a symbolic abstract
//!   interpreter over [`tensat_ir::symbolic`] proves (or refutes, with a
//!   concrete counterexample binding) that the RHS preserves the output
//!   shape and validity for every binding of the LHS, falling back to
//!   exhaustive enumeration over a curated value universe for operators
//!   outside the linear symbolic domain;
//! * **guard satisfiability** (`guards`) — each compiled machine guard
//!   is checked against what the patterns can actually produce, flagging
//!   unsatisfiable masks (rule can never fire), redundant guards (pure
//!   per-binding overhead) and missing guards (dropped kind pruning);
//! * **well-formedness lints** (`lints`) — unbound RHS variables,
//!   rules whose two sides are identical up to renaming, duplicate and
//!   subsumed rules across the corpus, and degenerate multi-pattern
//!   guard intersections.
//!
//! The `verify_rules` binary prints the per-rule report for the shipped
//! corpus and exits nonzero on any error, which is how CI gates rule
//! changes. `tensat-core` runs [`verify_corpus`] at `Optimizer`
//! construction time when `TENSAT_VERIFY_RULES=1` is set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod guards;
mod lints;
mod soundness;
pub mod universe;

use std::fmt;
use tensat_egraph::{Pattern, Var};
use tensat_ir::{TensorData, TensorLang};
use tensat_rules::{
    guard_for_kinds, multi_rules, single_rules, MultiPatternRule, TensorGuard, TensorRewrite,
};

pub use soundness::Counterexample;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not unsound: redundant guards, condition-blocked
    /// shape divergence, degraded multi-pattern pruning.
    Warning,
    /// The rule is unsound, dead, or malformed; the corpus must not ship
    /// with it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A single verifier finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// A stable machine-readable code (`unsound-shape`, `dead-rule`,
    /// `unsat-guard`, ...) for tests to pin against.
    pub code: &'static str,
    /// The human-readable explanation, naming the offending variable or
    /// guard and a concrete counterexample where one exists.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}/{}] {}", self.severity, self.code, self.message)
    }
}

/// Everything the analyses need to know about one rule, independent of
/// whether it arrived as a [`TensorRewrite`], a [`MultiPatternRule`] or a
/// raw pattern pair.
pub(crate) struct RuleSpec<'a> {
    /// Source (LHS) patterns; one for single rules.
    pub sources: Vec<&'a Pattern<TensorLang>>,
    /// Target (RHS) patterns, paired with sources by index (single rules
    /// and symmetric multi rules) .
    pub targets: Vec<&'a Pattern<TensorLang>>,
    /// The machine guards attached to searcher variables.
    pub guards: Vec<(Var, TensorGuard)>,
    /// Whether a runtime [`tensat_egraph::Condition`] filters matches
    /// before application (shape-divergent bindings are then blocked
    /// rather than unsound).
    pub conditional: bool,
}

/// The verification outcome for one rule.
#[derive(Debug, Clone)]
pub struct RuleReport {
    /// The rule's name.
    pub name: String,
    /// One-line analysis summary (method, case counts, live witness).
    pub summary: String,
    /// All findings, errors first.
    pub diagnostics: Vec<Diagnostic>,
}

impl RuleReport {
    /// True if any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }
}

impl fmt::Display for RuleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let status = if self.has_errors() {
            "FAIL"
        } else if self.diagnostics.is_empty() {
            "ok"
        } else {
            "warn"
        };
        writeln!(f, "{:4} {}", status, self.name)?;
        writeln!(f, "       {}", self.summary)?;
        for d in &self.diagnostics {
            writeln!(f, "       {d}")?;
        }
        Ok(())
    }
}

/// The verification outcome for a whole rule corpus.
#[derive(Debug, Clone, Default)]
pub struct CorpusReport {
    /// Per-rule reports, in corpus order.
    pub rules: Vec<RuleReport>,
    /// Corpus-level findings (duplicates, subsumption, multi-pattern
    /// guard-intersection degradation).
    pub corpus: Vec<Diagnostic>,
}

impl CorpusReport {
    fn count(&self, sev: Severity) -> usize {
        self.rules
            .iter()
            .flat_map(|r| &r.diagnostics)
            .chain(&self.corpus)
            .filter(|d| d.severity == sev)
            .count()
    }

    /// Total number of error findings across rules and corpus lints.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Total number of warning findings across rules and corpus lints.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// The report for a rule by name, if present.
    pub fn rule(&self, name: &str) -> Option<&RuleReport> {
        self.rules.iter().find(|r| r.name == name)
    }
}

impl fmt::Display for CorpusReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            write!(f, "{r}")?;
        }
        if !self.corpus.is_empty() {
            writeln!(f, "corpus-level findings:")?;
            for d in &self.corpus {
                writeln!(f, "       {d}")?;
            }
        }
        writeln!(
            f,
            "{} rules verified: {} errors, {} warnings",
            self.rules.len(),
            self.error_count(),
            self.warning_count()
        )
    }
}

fn run_spec(name: &str, spec: &RuleSpec, mut diags: Vec<Diagnostic>) -> RuleReport {
    diags.extend(lints::check_rule_shape(&spec.sources, &spec.targets));

    let unbound = lints::unbound_target_vars(&spec.sources, &spec.targets);
    for v in &unbound {
        diags.push(Diagnostic {
            severity: Severity::Error,
            code: "unbound-rhs-var",
            message: format!(
                "variable {v} is used on the RHS but bound by no LHS pattern — applying the \
                 rule would instantiate it out of thin air"
            ),
        });
    }

    // With unbound variables the abstract interpretation cannot evaluate
    // the targets; the structural error above already fails the rule.
    let summary = if unbound.is_empty() {
        let (sound_diags, summary) = soundness::check_soundness(spec);
        diags.extend(sound_diags);
        summary
    } else {
        "skipped (unbound RHS variables)".to_string()
    };

    diags.sort_by_key(|d| std::cmp::Reverse(d.severity));
    RuleReport {
        name: name.to_string(),
        summary,
        diagnostics: diags,
    }
}

/// Verifies one single-pattern rewrite: structural lints, guard table
/// analysis, and shape-soundness analysis.
pub fn verify_rewrite(rule: &TensorRewrite) -> RuleReport {
    let diags = guards::check_single_guards(rule);
    let (program, rule_guards) = rule.searcher_query();
    let guards: Vec<(Var, TensorGuard)> = program
        .guard_vars()
        .iter()
        .copied()
        .zip(rule_guards.iter().cloned())
        .collect();
    let spec = RuleSpec {
        sources: vec![&rule.searcher],
        targets: vec![&rule.applier],
        guards,
        conditional: rule.condition.is_some(),
    };
    run_spec(&rule.name, &spec, diags)
}

/// Verifies one multi-pattern rule. The sources and targets are paired by
/// index (the corpus rules are all source-i-rewrites-to-target-i shaped);
/// the target kind constraints double as the guards the exploration
/// driver will compile.
pub fn verify_multi_rule(rule: &MultiPatternRule) -> RuleReport {
    let diags = guards::check_multi_rule_guards(rule);
    let mut guards: Vec<(Var, TensorGuard)> = rule
        .target_guard_kinds()
        .into_iter()
        .map(|(v, kinds)| (v, guard_for_kinds(&kinds)))
        .collect();
    guards.sort_by_key(|(v, _)| *v);
    let spec = RuleSpec {
        sources: rule.srcs.iter().collect(),
        targets: rule.dsts.iter().collect(),
        guards,
        // Multi-pattern applications always run the shape condition per
        // target before unioning.
        conditional: true,
    };
    run_spec(&rule.name, &spec, diags)
}

/// Verifies a raw pattern pair that never went through
/// [`TensorRewrite`] construction (which would panic on unbound RHS
/// variables — this entry point reports them as diagnostics instead,
/// which is what mutation tests need).
pub fn verify_patterns(
    name: &str,
    sources: &[Pattern<TensorLang>],
    targets: &[Pattern<TensorLang>],
    guards: Vec<(Var, TensorGuard)>,
    conditional: bool,
) -> RuleReport {
    let spec = RuleSpec {
        sources: sources.iter().collect(),
        targets: targets.iter().collect(),
        guards,
        conditional,
    };
    run_spec(name, &spec, vec![])
}

/// Builds a guard table for raw patterns the way the shipped corpus does:
/// one kind guard per variable with a nonempty RHS kind demand. See
/// [`tensat_rules::shape_guards`].
pub fn default_guards(targets: &[Pattern<TensorLang>]) -> Vec<(Var, TensorGuard)> {
    let mut merged: Vec<(Var, TensorGuard)> = vec![];
    for t in targets {
        for (v, kinds) in tensat_rules::pattern_kind_constraints(t) {
            if kinds.is_empty() {
                continue;
            }
            let g = guard_for_kinds(&kinds);
            match merged.iter_mut().find(|(u, _)| *u == v) {
                Some((_, existing)) => *existing = existing.clone().and(g),
                None => merged.push((v, g)),
            }
        }
    }
    merged.sort_by_key(|(v, _)| *v);
    merged
}

/// Verifies a full corpus: every rule individually, plus cross-rule
/// duplicate/subsumption detection and the multi-pattern canonical-source
/// guard-intersection check.
pub fn verify_corpus(singles: &[TensorRewrite], multis: &[MultiPatternRule]) -> CorpusReport {
    let mut report = CorpusReport::default();
    for rule in singles {
        report.rules.push(verify_rewrite(rule));
    }
    for rule in multis {
        report.rules.push(verify_multi_rule(rule));
    }

    // Duplicates: identical alpha-canonical rule text.
    let keys: Vec<(String, String)> = singles
        .iter()
        .map(|r| {
            (
                r.name.clone(),
                lints::joint_canonical(&[&r.searcher], &[&r.applier]),
            )
        })
        .chain(multis.iter().map(|r| {
            (
                r.name.clone(),
                lints::joint_canonical(
                    &r.srcs.iter().collect::<Vec<_>>(),
                    &r.dsts.iter().collect::<Vec<_>>(),
                ),
            )
        }))
        .collect();
    for (i, (name_a, key_a)) in keys.iter().enumerate() {
        for (name_b, key_b) in &keys[i + 1..] {
            if key_a == key_b {
                report.corpus.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "duplicate-rule",
                    message: format!(
                        "rules `{name_a}` and `{name_b}` are identical up to variable renaming"
                    ),
                });
            }
        }
    }

    // Subsumption among single rules: a strictly more general rule makes
    // the specialized one redundant. (Exact duplicates are reported above,
    // not repeated here.)
    for a in singles {
        for b in singles {
            if a.name == b.name {
                continue;
            }
            let dup = lints::joint_canonical(&[&a.searcher], &[&a.applier])
                == lints::joint_canonical(&[&b.searcher], &[&b.applier]);
            if !dup && lints::subsumes((&a.searcher, &a.applier), (&b.searcher, &b.applier)) {
                report.corpus.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "subsumed-rule",
                    message: format!(
                        "rule `{}` is an instance of the more general `{}` and never \
                         contributes a new equality",
                        b.name, a.name
                    ),
                });
            }
        }
    }

    report
        .corpus
        .extend(guards::check_multi_guard_intersection(multis));
    report
}

/// Verifies the rule corpus this workspace ships
/// ([`tensat_rules::single_rules`] + [`tensat_rules::multi_rules`]).
pub fn verify_shipped_corpus() -> CorpusReport {
    verify_corpus(&single_rules(), &multi_rules())
}

/// Re-exported for tests and downstream diagnostics: compact
/// [`TensorData`] formatting used in counterexample messages.
pub fn format_data(d: &TensorData) -> String {
    soundness::fmt_data(d)
}
