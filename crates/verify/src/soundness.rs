//! Rule soundness analysis: does the RHS preserve validity and output
//! shape for every binding the LHS can produce?
//!
//! Two cooperating engines answer this:
//!
//! 1. A **symbolic prover** over [`tensat_ir::symbolic`]: each tensor
//!    variable is instantiated at every rank in 2–4 (with and without a
//!    concat mark on each axis) with *fresh symbolic dimensions*, each
//!    scalar-kind variable at each small parameter value, and both sides
//!    of the rule are abstract-interpreted in a shared [`DimEnv`]. If the
//!    resolved root shapes agree in every non-vacuous configuration, the
//!    rule is shape-preserving for **all** concrete dimension sizes at
//!    those ranks. When they disagree, the prover instantiates the free
//!    dimensions with concrete values and re-checks the binding with the
//!    concrete [`tensat_ir::infer`] — a reported counterexample is always
//!    a real, confirmed binding, never a symbolic artifact.
//! 2. An **enumeration fallback** over the pools in [`crate::universe`],
//!    for rules the symbolic domain cannot express (convolutions, opaque
//!    permutations, dynamic guard predicates).
//!
//! Divergence splits into two severities. A *condition-visible* divergence
//! (both roots are tensors with different shapes) is blocked at runtime by
//! the standard shape-checking condition, so for a conditional rule it is
//! only a warning — the rule pays for dead match enumeration but stays
//! sound. A *condition-blind* divergence (the root's data **kind** or
//! parameter value changes) slips through `shape_check`'s tensor-only
//! comparison and is always an error.

use crate::universe::{bindings_visited, for_each_binding, pool_for_kinds};
use crate::{Diagnostic, RuleSpec, Severity};
use std::collections::BTreeSet;
use tensat_egraph::{ENodeOrVar, Pattern, Var};
use tensat_ir::{
    sym_infer, DimEnv, SymDim, SymError, SymTensor, SymValue, TensorData, TensorInfo, TensorLang,
};
use tensat_rules::{kind_tag_mask, pattern_data_with};

/// Hard ceiling on enumerated concrete bindings per rule; beyond it the
/// product is deterministically stride-sampled (and the report says so).
const BINDING_CAP: u64 = 1 << 21;

/// Ceiling on symbolic rank/split configurations per rule; larger rules
/// fall back to enumeration.
const CONFIG_CAP: u64 = 1 << 17;

/// A concrete, [`tensat_ir::infer`]-confirmed binding demonstrating a
/// soundness defect (or, for `Live`, witnessing that the rule can fire).
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The variable bindings.
    pub bindings: Vec<(Var, TensorData)>,
    /// Which source/target pair diverges (always 0 for single rules).
    pub pair: usize,
    /// The inferred root data of the source pattern.
    pub lhs_root: TensorData,
    /// The inferred root data of the target pattern.
    pub rhs_root: TensorData,
}

/// Formats [`TensorData`] compactly for reports.
pub(crate) fn fmt_data(d: &TensorData) -> String {
    match d {
        TensorData::Invalid(r) => format!("invalid({r})"),
        TensorData::Scalar(v) => v.to_string(),
        TensorData::Str(s) => format!("\"{s}\""),
        TensorData::Tensor(t) => fmt_info(t),
        TensorData::Tuple(a, b) => format!("tuple({}, {})", fmt_info(a), fmt_info(b)),
    }
}

fn fmt_info(t: &TensorInfo) -> String {
    let dims: Vec<String> = t.shape.iter().map(|d| d.to_string()).collect();
    match t.split_at {
        Some((ax, pos)) => format!("tensor[{}]@split({ax},{pos})", dims.join(", ")),
        None => format!("tensor[{}]", dims.join(", ")),
    }
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let binds: Vec<String> = self
            .bindings
            .iter()
            .map(|(v, d)| format!("{v} = {}", fmt_data(d)))
            .collect();
        write!(
            f,
            "{}; LHS infers {} but RHS infers {} (pattern pair {})",
            binds.join(", "),
            fmt_data(&self.lhs_root),
            fmt_data(&self.rhs_root),
            self.pair
        )
    }
}

/// How a fireable binding relates the two sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PairVerdict {
    /// RHS reproduces the LHS root exactly (shape for tensors).
    Live,
    /// Tensor roots with different shapes — the shape condition sees and
    /// blocks this at runtime.
    Divergent,
    /// Kind or parameter-value change at the root — invisible to the
    /// shape condition.
    Blind,
}

fn compare_infos(a: &TensorInfo, b: &TensorInfo) -> bool {
    a.shape == b.shape
}

fn compare_roots(lhs: &TensorData, rhs: &TensorData) -> PairVerdict {
    use TensorData as D;
    match (lhs, rhs) {
        (D::Tensor(a), D::Tensor(b)) => {
            if compare_infos(a, b) {
                PairVerdict::Live
            } else {
                PairVerdict::Divergent
            }
        }
        (D::Tuple(a0, a1), D::Tuple(b0, b1)) => {
            if compare_infos(a0, b0) && compare_infos(a1, b1) {
                PairVerdict::Live
            } else {
                PairVerdict::Blind
            }
        }
        (D::Scalar(a), D::Scalar(b)) if a == b => PairVerdict::Live,
        (D::Str(a), D::Str(b)) if a == b => PairVerdict::Live,
        _ => PairVerdict::Blind,
    }
}

/// Aggregated soundness facts, produced by either engine.
#[derive(Debug, Default)]
struct Outcome {
    live: u64,
    divergent: u64,
    blind: u64,
    blocked: u64,
    live_witness: Option<Vec<(Var, TensorData)>>,
    divergent_example: Option<Counterexample>,
    blind_example: Option<Counterexample>,
    blocked_example: Option<(Vec<(Var, TensorData)>, String)>,
    method: String,
}

// ---------------------------------------------------------------------------
// Concrete evaluation (shared by enumeration and counterexample confirmation)
// ---------------------------------------------------------------------------

fn lookup_in<'a>(bindings: &'a [(Var, TensorData)]) -> impl Fn(Var) -> Option<TensorData> + 'a {
    move |v| {
        bindings
            .iter()
            .find(|(u, _)| *u == v)
            .map(|(_, d)| d.clone())
    }
}

struct ConcreteEval {
    sources_valid: bool,
    targets_valid: bool,
    first_invalid: Option<String>,
    /// Per pair: (source root, target root). Only meaningful when both
    /// sides are fully valid.
    roots: Vec<(TensorData, TensorData)>,
}

fn eval_concrete(spec: &RuleSpec, bindings: &[(Var, TensorData)]) -> ConcreteEval {
    let lookup = lookup_in(bindings);
    let mut src_roots = Vec::with_capacity(spec.sources.len());
    let mut sources_valid = true;
    for p in &spec.sources {
        let data = pattern_data_with(p, &lookup);
        if !data.iter().all(|d| d.is_valid()) {
            sources_valid = false;
            break;
        }
        src_roots.push(data.last().expect("patterns are non-empty").clone());
    }
    if !sources_valid {
        return ConcreteEval {
            sources_valid,
            targets_valid: false,
            first_invalid: None,
            roots: vec![],
        };
    }
    let mut targets_valid = true;
    let mut first_invalid = None;
    let mut roots = Vec::with_capacity(spec.targets.len());
    for (i, p) in spec.targets.iter().enumerate() {
        let data = pattern_data_with(p, &lookup);
        if let Some(bad) = data.iter().find(|d| !d.is_valid()) {
            targets_valid = false;
            if let TensorData::Invalid(r) = bad {
                first_invalid = Some(r.clone());
            }
            break;
        }
        roots.push((
            src_roots[i].clone(),
            data.last().expect("patterns are non-empty").clone(),
        ));
    }
    ConcreteEval {
        sources_valid,
        targets_valid,
        first_invalid,
        roots,
    }
}

// ---------------------------------------------------------------------------
// Symbolic prover
// ---------------------------------------------------------------------------

/// One instantiation choice for a variable (materialized per config with
/// fresh dims).
#[derive(Debug, Clone)]
enum VarOption {
    /// A tensor of the given rank, optionally carrying a concat mark on
    /// the given axis (with a fresh first-part size).
    Tensor {
        rank: usize,
        split_axis: Option<usize>,
    },
    /// A concrete scalar parameter value.
    ScalarConst(i64),
    /// An opaque value for a variable whose occurrences never inspect it
    /// (kind-`Any` positions only).
    Opaque,
}

fn contains_nonlinear_op(p: &Pattern<TensorLang>) -> bool {
    p.ast.iter().any(|(_, node)| {
        matches!(
            node,
            ENodeOrVar::ENode(
                TensorLang::Conv(_)
                    | TensorLang::Poolmax(_)
                    | TensorLang::Poolavg(_)
                    | TensorLang::Reshape(_)
                    | TensorLang::Merge(_)
                    | TensorLang::Enlarge(_)
            )
        )
    })
}

fn sym_eval_pattern(
    p: &Pattern<TensorLang>,
    assign: &[(Var, SymValue)],
    env: &mut DimEnv,
) -> Result<SymValue, SymError> {
    let mut vals: Vec<SymValue> = Vec::with_capacity(p.ast.len());
    for (_, node) in p.ast.iter() {
        let v = match node {
            ENodeOrVar::Var(var) => assign
                .iter()
                .find(|(u, _)| u == var)
                .map(|(_, s)| s.clone())
                .expect("every pattern variable is assigned"),
            ENodeOrVar::ENode(n) => {
                let get = |id: tensat_egraph::Id| vals[usize::from(id)].clone();
                sym_infer(n, &get, env)?
            }
        };
        vals.push(v);
    }
    Ok(vals.pop().expect("patterns are non-empty"))
}

fn compare_sym(env: &DimEnv, lhs: &SymValue, rhs: &SymValue) -> Option<PairVerdict> {
    let tensors_eq = |a: &SymTensor, b: &SymTensor| -> bool {
        a.shape.len() == b.shape.len()
            && a.shape
                .iter()
                .zip(&b.shape)
                .all(|(x, y)| env.resolve(x) == env.resolve(y))
    };
    use SymValue as S;
    Some(match (lhs, rhs) {
        (S::Tensor(a), S::Tensor(b)) => {
            if tensors_eq(a, b) {
                PairVerdict::Live
            } else {
                PairVerdict::Divergent
            }
        }
        (S::Tuple(a0, a1), S::Tuple(b0, b1)) => {
            if tensors_eq(a0, b0) && tensors_eq(a1, b1) {
                PairVerdict::Live
            } else {
                PairVerdict::Blind
            }
        }
        (S::Scalar(a), S::Scalar(b)) => {
            if a == b {
                PairVerdict::Live
            } else {
                PairVerdict::Blind
            }
        }
        (S::Str(a), S::Str(b)) => {
            if a == b {
                PairVerdict::Live
            } else {
                PairVerdict::Blind
            }
        }
        (S::ScalarVar(a), S::ScalarVar(b)) if a == b => PairVerdict::Live,
        (S::StrVar(a), S::StrVar(b)) if a == b => PairVerdict::Live,
        // Mixed opaque/known roots: cannot decide symbolically.
        (S::ScalarVar(_) | S::StrVar(_), _) | (_, S::ScalarVar(_) | S::StrVar(_)) => return None,
        _ => PairVerdict::Blind,
    })
}

/// Evaluates a symbolic dimension under a rotated prime valuation of its
/// free variables and converts the assignment to concrete [`TensorData`].
/// Returns `None` if the valuation produces a negative dimension or an
/// out-of-range concat mark — the caller then tries another rotation.
fn concretize(
    assign: &[(Var, SymValue)],
    env: &DimEnv,
    rot: usize,
) -> Option<Vec<(Var, TensorData)>> {
    const PRIMES: [i64; 12] = [3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41];
    let val = |v: u32| PRIMES[(v as usize + rot) % PRIMES.len()];
    let eval_dim = |d: &SymDim| env.evaluate(d, &val);
    let eval_info = |t: &SymTensor| -> Option<TensorInfo> {
        let shape: Vec<i64> = t.shape.iter().map(eval_dim).collect();
        if shape.iter().any(|&d| d < 0) {
            return None;
        }
        let mut info = TensorInfo::new(shape, false);
        if let Some((ax, first)) = &t.split_at {
            let f = eval_dim(first);
            let total = info.shape[*ax];
            if !(0 < f && f < total) {
                return None;
            }
            info.split_at = Some((*ax, f));
        }
        Some(info)
    };
    assign
        .iter()
        .map(|(var, s)| {
            let d = match s {
                SymValue::Scalar(c) => TensorData::Scalar(*c),
                SymValue::ScalarVar(_) => TensorData::Scalar(0),
                SymValue::Str(sym) => TensorData::Str(*sym),
                SymValue::StrVar(_) => return None,
                SymValue::Tensor(t) => TensorData::Tensor(eval_info(t)?),
                SymValue::Tuple(a, b) => {
                    TensorData::Tuple(Box::new(eval_info(a)?), Box::new(eval_info(b)?))
                }
            };
            Some((*var, d))
        })
        .collect()
}

/// A confirmed concrete valuation: the witness bindings plus, for
/// divergence findings, the counterexample describing the mismatch.
type Confirmation = (Vec<(Var, TensorData)>, Option<Counterexample>);

/// Confirms a symbolic finding concretely: tries a few valuations and
/// checks the expected relation with the real [`tensat_ir::infer`].
fn confirm(
    spec: &RuleSpec,
    assign: &[(Var, SymValue)],
    env: &DimEnv,
    expect_live: bool,
) -> Option<Confirmation> {
    for rot in 0..8 {
        let Some(bindings) = concretize(assign, env, rot) else {
            continue;
        };
        let eval = eval_concrete(spec, &bindings);
        if !eval.sources_valid || !eval.targets_valid {
            continue;
        }
        if expect_live {
            if eval
                .roots
                .iter()
                .all(|(l, r)| compare_roots(l, r) == PairVerdict::Live)
            {
                return Some((bindings, None));
            }
        } else if let Some((pair, (l, r))) = eval
            .roots
            .iter()
            .enumerate()
            .find(|(_, (l, r))| compare_roots(l, r) != PairVerdict::Live)
        {
            let ce = Counterexample {
                bindings: bindings.clone(),
                pair,
                lhs_root: l.clone(),
                rhs_root: r.clone(),
            };
            return Some((bindings, Some(ce)));
        }
    }
    None
}

/// Runs the symbolic prover. `None` means the rule is outside the symbolic
/// domain (or a finding could not be concretely confirmed) and the caller
/// must enumerate.
fn symbolic_analysis(
    spec: &RuleSpec,
    var_kinds: &[(Var, BTreeSet<tensat_ir::DataKind>)],
) -> Option<Outcome> {
    use tensat_ir::DataKind;
    if spec
        .sources
        .iter()
        .chain(&spec.targets)
        .any(|p| contains_nonlinear_op(p))
    {
        return None;
    }
    // Dynamic guard predicates cannot be evaluated on symbolic values.
    if spec.guards.iter().any(|(_, g)| g.pred().is_some()) {
        return None;
    }
    let mut options: Vec<Vec<VarOption>> = Vec::with_capacity(var_kinds.len());
    for (_, kinds) in var_kinds {
        if kinds.contains(&DataKind::Str) || kinds.contains(&DataKind::Tuple) {
            // Every string consumer needs the concrete value; tuple-typed
            // variables are not modeled. Enumerate instead.
            return None;
        }
        if kinds.contains(&DataKind::Tensor) {
            let mut opts = vec![];
            for rank in 2..=4 {
                opts.push(VarOption::Tensor {
                    rank,
                    split_axis: None,
                });
                for ax in 0..rank {
                    opts.push(VarOption::Tensor {
                        rank,
                        split_axis: Some(ax),
                    });
                }
            }
            options.push(opts);
        } else if kinds.contains(&DataKind::Scalar) {
            options.push((0..=3).map(VarOption::ScalarConst).collect());
        } else {
            options.push(vec![VarOption::Opaque]);
        }
    }
    let sizes: Vec<usize> = options.iter().map(Vec::len).collect();
    if bindings_visited(&sizes, u64::MAX) > CONFIG_CAP {
        return None;
    }

    let mut out = Outcome::default();
    let mut configs = 0u64;
    let mut undecided = false;
    let mut opaque_counter = 0u32;
    for_each_binding(&sizes, u64::MAX, &mut |idx| {
        configs += 1;
        let mut env = DimEnv::new();
        let assign: Vec<(Var, SymValue)> = var_kinds
            .iter()
            .enumerate()
            .map(|(slot, (var, _))| {
                let value = match &options[slot][idx[slot]] {
                    VarOption::Tensor { rank, split_axis } => {
                        let shape: Vec<SymDim> = (0..*rank).map(|_| env.fresh()).collect();
                        let mut t = SymTensor::new(shape);
                        if let Some(ax) = split_axis {
                            t.split_at = Some((*ax, env.fresh()));
                        }
                        SymValue::Tensor(t)
                    }
                    VarOption::ScalarConst(c) => SymValue::Scalar(*c),
                    VarOption::Opaque => {
                        opaque_counter += 1;
                        SymValue::ScalarVar(opaque_counter)
                    }
                };
                (*var, value)
            })
            .collect();

        // Interpret the sources; a contradiction means no concrete binding
        // realizes this configuration (vacuous).
        let mut src_roots = Vec::with_capacity(spec.sources.len());
        for p in &spec.sources {
            match sym_eval_pattern(p, &assign, &mut env) {
                Ok(v) => src_roots.push(v),
                Err(SymError::Contradiction(_)) => return true,
                Err(SymError::Undecidable(_)) => {
                    undecided = true;
                    return false;
                }
            }
        }
        // Interpret the targets in the same environment. The sources have
        // already pushed every equality the LHS establishes, so any *new*
        // binding a target creates is a dimension equality the rule does
        // not guarantee: for generic members of this configuration the
        // RHS is ill-typed (blocked), and only the constrained subspace —
        // which the remaining analysis now describes — behaves as the
        // resolved shapes say. Both populations are real, so the config
        // counts as blocked *and* contributes its subspace verdict.
        let src_env = env.clone();
        let mut src_constraints = env.constraint_count();
        let mut verdict = PairVerdict::Live;
        let mut bad_pair = 0;
        for (i, p) in spec.targets.iter().enumerate() {
            match sym_eval_pattern(p, &assign, &mut env) {
                Ok(dst_root) => {
                    if env.constraint_count() > src_constraints {
                        src_constraints = env.constraint_count();
                        out.blocked += 1;
                        if out.blocked_example.is_none() {
                            for rot in 0..8 {
                                let Some(b) = concretize(&assign, &src_env, rot) else {
                                    continue;
                                };
                                let ev = eval_concrete(spec, &b);
                                if ev.sources_valid && !ev.targets_valid {
                                    out.blocked_example = Some((
                                        b,
                                        "target demands dimension equalities the sources do \
                                         not establish"
                                            .into(),
                                    ));
                                    break;
                                }
                            }
                        }
                    }
                    match compare_sym(&env, &src_roots[i], &dst_root) {
                        Some(PairVerdict::Live) => {}
                        Some(v) => {
                            // Blind outranks Divergent.
                            if verdict != PairVerdict::Blind {
                                verdict = v;
                                bad_pair = i;
                            }
                        }
                        None => {
                            undecided = true;
                            return false;
                        }
                    }
                }
                Err(SymError::Contradiction(_)) => {
                    out.blocked += 1;
                    if out.blocked_example.is_none() {
                        if let Some(b) = concretize(&assign, &env, 0) {
                            out.blocked_example = Some((b, "target is ill-typed".into()));
                        }
                    }
                    return true;
                }
                Err(SymError::Undecidable(_)) => {
                    undecided = true;
                    return false;
                }
            }
        }
        let _ = bad_pair;
        match verdict {
            PairVerdict::Live => {
                out.live += 1;
                if out.live_witness.is_none() {
                    if let Some((w, None)) = confirm(spec, &assign, &env, true) {
                        out.live_witness = Some(w);
                    }
                }
            }
            PairVerdict::Divergent | PairVerdict::Blind => {
                let slot = if verdict == PairVerdict::Divergent {
                    out.divergent += 1;
                    &mut out.divergent_example
                } else {
                    out.blind += 1;
                    &mut out.blind_example
                };
                if slot.is_none() {
                    match confirm(spec, &assign, &env, false) {
                        Some((_, Some(ce))) => *slot = Some(ce),
                        // A symbolic divergence we cannot realize
                        // concretely: hand the rule to enumeration rather
                        // than report an unconfirmed finding.
                        _ => {
                            undecided = true;
                            return false;
                        }
                    }
                }
            }
        }
        true
    });
    if undecided {
        return None;
    }
    // A symbolically-live rule whose first witness could not be confirmed:
    // let enumeration try to find a live binding before trusting the claim.
    if out.live > 0 && out.live_witness.is_none() {
        if let Some(w) = enumeration_live_witness(spec, var_kinds) {
            out.live_witness = Some(w);
        }
    }
    out.method = format!(
        "symbolic abstract interpretation over {configs} rank/split configurations (ranks 2-4)"
    );
    Some(out)
}

// ---------------------------------------------------------------------------
// Enumeration fallback
// ---------------------------------------------------------------------------

fn guarded_pools(
    spec: &RuleSpec,
    var_kinds: &[(Var, BTreeSet<tensat_ir::DataKind>)],
) -> Vec<(Var, Vec<TensorData>)> {
    var_kinds
        .iter()
        .map(|(var, kinds)| {
            let pool: Vec<TensorData> = pool_for_kinds(kinds)
                .into_iter()
                .filter(|d| {
                    spec.guards
                        .iter()
                        .filter(|(gv, _)| gv == var)
                        .all(|(_, g)| g.check(d.kind_tag(), d))
                })
                .collect();
            (*var, pool)
        })
        .collect()
}

fn enumeration_live_witness(
    spec: &RuleSpec,
    var_kinds: &[(Var, BTreeSet<tensat_ir::DataKind>)],
) -> Option<Vec<(Var, TensorData)>> {
    let pools = guarded_pools(spec, var_kinds);
    let sizes: Vec<usize> = pools.iter().map(|(_, p)| p.len()).collect();
    let mut witness = None;
    for_each_binding(&sizes, BINDING_CAP, &mut |idx| {
        let bindings: Vec<(Var, TensorData)> = pools
            .iter()
            .zip(idx)
            .map(|((v, pool), &i)| (*v, pool[i].clone()))
            .collect();
        let eval = eval_concrete(spec, &bindings);
        if eval.sources_valid
            && eval.targets_valid
            && eval
                .roots
                .iter()
                .all(|(l, r)| compare_roots(l, r) == PairVerdict::Live)
        {
            witness = Some(bindings);
            return false;
        }
        true
    });
    witness
}

fn enumeration_analysis(
    spec: &RuleSpec,
    var_kinds: &[(Var, BTreeSet<tensat_ir::DataKind>)],
) -> Result<Outcome, Diagnostic> {
    let pools = guarded_pools(spec, var_kinds);
    for (var, pool) in &pools {
        if pool.is_empty() {
            return Err(Diagnostic {
                severity: Severity::Error,
                code: "dead-rule",
                message: format!(
                    "no candidate value for {var} passes its guard — the rule can never fire"
                ),
            });
        }
    }
    let sizes: Vec<usize> = pools.iter().map(|(_, p)| p.len()).collect();
    let visited = bindings_visited(&sizes, BINDING_CAP);
    let total = bindings_visited(&sizes, u64::MAX);
    let mut out = Outcome::default();
    for_each_binding(&sizes, BINDING_CAP, &mut |idx| {
        let bindings: Vec<(Var, TensorData)> = pools
            .iter()
            .zip(idx)
            .map(|((v, pool), &i)| (*v, pool[i].clone()))
            .collect();
        let eval = eval_concrete(spec, &bindings);
        if !eval.sources_valid {
            return true;
        }
        if !eval.targets_valid {
            out.blocked += 1;
            if out.blocked_example.is_none() {
                out.blocked_example = Some((
                    bindings,
                    eval.first_invalid
                        .unwrap_or_else(|| "ill-typed target".into()),
                ));
            }
            return true;
        }
        let mut verdict = PairVerdict::Live;
        let mut pair = 0;
        for (i, (l, r)) in eval.roots.iter().enumerate() {
            match compare_roots(l, r) {
                PairVerdict::Live => {}
                v => {
                    if verdict != PairVerdict::Blind {
                        verdict = v;
                        pair = i;
                    }
                }
            }
        }
        match verdict {
            PairVerdict::Live => {
                out.live += 1;
                if out.live_witness.is_none() {
                    out.live_witness = Some(bindings);
                }
            }
            v => {
                let (l, r) = &eval.roots[pair];
                let slot = if v == PairVerdict::Divergent {
                    out.divergent += 1;
                    &mut out.divergent_example
                } else {
                    out.blind += 1;
                    &mut out.blind_example
                };
                if slot.is_none() {
                    *slot = Some(Counterexample {
                        bindings,
                        pair,
                        lhs_root: l.clone(),
                        rhs_root: r.clone(),
                    });
                }
            }
        }
        true
    });
    out.method = if visited == total {
        format!("exhaustive enumeration of {visited} concrete bindings")
    } else {
        format!("sampled enumeration of {visited} of {total} concrete bindings")
    };
    Ok(out)
}

// ---------------------------------------------------------------------------
// Verdict assembly
// ---------------------------------------------------------------------------

/// Runs the full soundness analysis for a rule spec, returning report
/// diagnostics and a one-line method/result summary.
pub(crate) fn check_soundness(spec: &RuleSpec) -> (Vec<Diagnostic>, String) {
    let mut diags = vec![];

    // Per-variable kind demands: the union of constraints across every
    // source and target pattern (all of them must hold for the rule to
    // fire).
    let mut var_kinds: Vec<(Var, BTreeSet<tensat_ir::DataKind>)> = vec![];
    for p in spec.sources.iter().chain(&spec.targets) {
        for (v, kinds) in tensat_rules::pattern_kind_constraints(p) {
            match var_kinds.iter_mut().find(|(u, _)| *u == v) {
                Some((_, set)) => set.extend(kinds),
                None => var_kinds.push((v, kinds)),
            }
        }
    }
    // A variable demanded at two different kinds (or whose guard mask is
    // disjoint from its demands) can never bind valid data: the rule is
    // statically dead.
    for (var, kinds) in &var_kinds {
        let mut mask = kind_tag_mask(kinds);
        for (gv, g) in &spec.guards {
            if gv == var {
                mask &= g.mask();
            }
        }
        if mask == 0 {
            let kind_list: Vec<String> = kinds.iter().map(|k| format!("{k:?}")).collect();
            diags.push(Diagnostic {
                severity: Severity::Error,
                code: "dead-rule",
                message: format!(
                    "variable {var} can never bind admissible data: its positions demand \
                     [{}] and no data kind satisfies all of them under the rule's guards",
                    kind_list.join(", ")
                ),
            });
        }
    }
    if !diags.is_empty() {
        return (
            diags,
            "statically dead (unsatisfiable variable kinds)".into(),
        );
    }

    let outcome = match symbolic_analysis(spec, &var_kinds) {
        Some(o) => o,
        None => match enumeration_analysis(spec, &var_kinds) {
            Ok(o) => o,
            Err(d) => {
                let summary = d.message.clone();
                return (vec![d], summary);
            }
        },
    };

    if let Some(ce) = &outcome.blind_example {
        diags.push(Diagnostic {
            severity: Severity::Error,
            code: "unsound-kind",
            message: format!(
                "RHS changes the root's data kind or parameter value, which the shape \
                 condition cannot observe: {ce}"
            ),
        });
    }
    if outcome.divergent > 0 {
        let ce = outcome
            .divergent_example
            .as_ref()
            .map(|c| c.to_string())
            .unwrap_or_default();
        if !spec.conditional {
            diags.push(Diagnostic {
                severity: Severity::Error,
                code: "unsound-shape",
                message: format!(
                    "unconditional rule produces a different output shape on some fireable \
                     bindings: {ce}"
                ),
            });
        } else if outcome.live > 0 {
            diags.push(Diagnostic {
                severity: Severity::Warning,
                code: "divergence-blocked",
                message: format!(
                    "{} of {} fireable cases change the output shape and rely on the runtime \
                     shape condition to be blocked, e.g. {ce}",
                    outcome.divergent,
                    outcome.live + outcome.divergent + outcome.blind
                ),
            });
        }
    }
    if !spec.conditional && outcome.blocked > 0 {
        let detail = outcome
            .blocked_example
            .as_ref()
            .map(|(b, r)| {
                let binds: Vec<String> = b
                    .iter()
                    .map(|(v, d)| format!("{v} = {}", fmt_data(d)))
                    .collect();
                format!("{}; {r}", binds.join(", "))
            })
            .unwrap_or_default();
        diags.push(Diagnostic {
            severity: Severity::Error,
            code: "unsound-invalid-rhs",
            message: format!(
                "unconditional rule can instantiate an ill-typed RHS from a well-typed LHS: \
                 {detail}"
            ),
        });
    }
    if (outcome.divergent > 0 || outcome.blind > 0) && outcome.live == 0 {
        diags.push(Diagnostic {
            severity: Severity::Error,
            code: "always-divergent",
            message: "every fireable binding changes the output shape — the rule can never \
                      soundly fire"
                .into(),
        });
    }
    if outcome.live == 0 && outcome.divergent == 0 && outcome.blind == 0 {
        diags.push(Diagnostic {
            severity: Severity::Error,
            code: "dead-rule",
            message: format!(
                "no fireable binding found ({}; {} blocked by the condition)",
                outcome.method, outcome.blocked
            ),
        });
    }

    let mut summary = format!(
        "{}: live {}, shape-divergent {}, kind-divergent {}, condition-blocked {}",
        outcome.method, outcome.live, outcome.divergent, outcome.blind, outcome.blocked
    );
    if let Some(w) = &outcome.live_witness {
        let binds: Vec<String> = w
            .iter()
            .map(|(v, d)| format!("{v} = {}", fmt_data(d)))
            .collect();
        summary.push_str(&format!("; live witness: {}", binds.join(", ")));
    }
    (diags, summary)
}
