//! Well-formedness lints over individual rules and the whole corpus:
//! unbound RHS variables, self-identical rules, duplicates, and
//! subsumption.
//!
//! All structural comparisons work on **jointly alpha-canonicalized**
//! pattern pairs: variables are renamed `?v0, ?v1, ...` in order of first
//! occurrence across the LHS *then* the RHS, so `(ewadd ?x ?y) =>
//! (ewadd ?y ?x)` (commutativity) canonicalizes to `(ewadd ?v0 ?v1) =>
//! (ewadd ?v1 ?v0)` and is correctly *not* self-identical, while
//! `(ewadd ?a ?b) => (ewadd ?a ?b)` is.

use crate::{Diagnostic, Severity};
use std::collections::HashMap;
use tensat_egraph::{ENodeOrVar, Id, Language, Pattern, Var};
use tensat_ir::TensorLang;

/// Renders the subtree of `pattern` rooted at `node`, renaming variables
/// through `rename` (extending it in first-occurrence order when a
/// variable is missing).
fn render(pattern: &Pattern<TensorLang>, node: Id, rename: &mut HashMap<Var, usize>) -> String {
    match &pattern.ast[node] {
        ENodeOrVar::Var(v) => {
            let next = rename.len();
            let idx = *rename.entry(*v).or_insert(next);
            format!("?v{idx}")
        }
        ENodeOrVar::ENode(n) => {
            if n.children().is_empty() {
                n.to_string()
            } else {
                let kids: Vec<String> = n
                    .children()
                    .iter()
                    .map(|&c| render(pattern, c, rename))
                    .collect();
                format!("({} {})", n, kids.join(" "))
            }
        }
    }
}

fn root(pattern: &Pattern<TensorLang>) -> Id {
    Id::from(pattern.ast.len() - 1)
}

/// The joint alpha-canonical rendering of a rule's pattern sequence
/// (sources then targets, `=>`-separated between the two halves).
pub(crate) fn joint_canonical(
    sources: &[&Pattern<TensorLang>],
    targets: &[&Pattern<TensorLang>],
) -> String {
    let mut rename = HashMap::new();
    let srcs: Vec<String> = sources
        .iter()
        .map(|p| render(p, root(p), &mut rename))
        .collect();
    let dsts: Vec<String> = targets
        .iter()
        .map(|p| render(p, root(p), &mut rename))
        .collect();
    format!("{} => {}", srcs.join(" & "), dsts.join(" & "))
}

/// The alpha-canonical key of a single multi-pattern *source* (used to
/// mirror the exploration driver's cross-rule source deduplication), plus
/// the canonical-variable → original-variable map.
pub(crate) fn canonical_source_key(pattern: &Pattern<TensorLang>) -> (String, HashMap<Var, Var>) {
    let mut rename = HashMap::new();
    let key = render(pattern, root(pattern), &mut rename);
    let back = rename
        .into_iter()
        .map(|(orig, idx)| (Var::new(format!("v{idx}")), orig))
        .collect();
    (key, back)
}

/// Variables used by any target but bound by no source.
pub(crate) fn unbound_target_vars(
    sources: &[&Pattern<TensorLang>],
    targets: &[&Pattern<TensorLang>],
) -> Vec<Var> {
    let mut bound = vec![];
    for s in sources {
        for v in s.vars() {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
    }
    let mut unbound = vec![];
    for t in targets {
        for v in t.vars() {
            if !bound.contains(&v) && !unbound.contains(&v) {
                unbound.push(v);
            }
        }
    }
    unbound
}

/// Per-rule structural lints: self-identical LHS/RHS.
pub(crate) fn check_rule_shape(
    sources: &[&Pattern<TensorLang>],
    targets: &[&Pattern<TensorLang>],
) -> Vec<Diagnostic> {
    let mut diags = vec![];
    let mut rename = HashMap::new();
    let srcs: Vec<String> = sources
        .iter()
        .map(|p| render(p, root(p), &mut rename))
        .collect();
    let dsts: Vec<String> = targets
        .iter()
        .map(|p| render(p, root(p), &mut rename))
        .collect();
    if srcs == dsts {
        diags.push(Diagnostic {
            severity: Severity::Error,
            code: "self-identical",
            message: "LHS and RHS are identical up to variable renaming — the rule can only \
                      ever union a class with itself"
                .into(),
        });
    }
    diags
}

// ---------------------------------------------------------------------------
// Subsumption
// ---------------------------------------------------------------------------

/// Renders the subtree at `node` with *original* variable names — the
/// exact-identity form used for substitution-consistency checks (two
/// bindings of the same general variable must be the same subtree,
/// including variable names, not merely alpha-equivalent; and the check
/// must work across the LHS and RHS patterns, whose ast ids are not
/// interchangeable).
fn render_exact(pattern: &Pattern<TensorLang>, node: Id) -> String {
    match &pattern.ast[node] {
        ENodeOrVar::Var(v) => v.to_string(),
        ENodeOrVar::ENode(n) => {
            if n.children().is_empty() {
                n.to_string()
            } else {
                let kids: Vec<String> = n
                    .children()
                    .iter()
                    .map(|&c| render_exact(pattern, c))
                    .collect();
                format!("({} {})", n, kids.join(" "))
            }
        }
    }
}

/// Matches the subtree of `general` at `ga` onto the subtree of `specific`
/// at `sb`, binding `general`'s variables to `specific` subtrees in `sigma`
/// (consistently across calls, including calls on a different `specific`
/// pattern — bindings are stored as rendered subtree text, not ast ids).
fn match_onto(
    general: &Pattern<TensorLang>,
    ga: Id,
    specific: &Pattern<TensorLang>,
    sb: Id,
    sigma: &mut HashMap<Var, String>,
) -> bool {
    match &general.ast[ga] {
        ENodeOrVar::Var(v) => {
            let here = render_exact(specific, sb);
            match sigma.get(v) {
                Some(prev) => *prev == here,
                None => {
                    sigma.insert(*v, here);
                    true
                }
            }
        }
        ENodeOrVar::ENode(gn) => match &specific.ast[sb] {
            ENodeOrVar::ENode(sn) => {
                gn.display_op_eq(sn)
                    && gn.children().len() == sn.children().len()
                    && gn
                        .children()
                        .iter()
                        .zip(sn.children())
                        .all(|(&gc, &sc)| match_onto(general, gc, specific, sc, sigma))
            }
            ENodeOrVar::Var(_) => false,
        },
    }
}

/// True if rule `a` subsumes rule `b`: a single substitution of `a`'s
/// variables by subpatterns turns `a`'s LHS into `b`'s LHS *and* `a`'s RHS
/// into `b`'s RHS — every match and application of `b` is already one of
/// `a`, so `b` is redundant.
pub(crate) fn subsumes(
    a: (&Pattern<TensorLang>, &Pattern<TensorLang>),
    b: (&Pattern<TensorLang>, &Pattern<TensorLang>),
) -> bool {
    let mut sigma = HashMap::new();
    match_onto(a.0, root(a.0), b.0, root(b.0), &mut sigma)
        && match_onto(a.1, root(a.1), b.1, root(b.1), &mut sigma)
}

/// An op-level equality helper for `ENodeOrVar` comparisons that must
/// distinguish literals (`Num(3)` vs `Num(4)`) but ignore child ids.
trait DisplayOpEq {
    fn display_op_eq(&self, other: &Self) -> bool;
}

impl DisplayOpEq for TensorLang {
    fn display_op_eq(&self, other: &Self) -> bool {
        // `Display` prints the operator name for compound nodes and the
        // literal value for `Num`/`Str` leaves, which is exactly the
        // child-independent identity needed here.
        self.to_string() == other.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensat_rules::parse_pattern;

    fn pat(s: &str) -> Pattern<TensorLang> {
        parse_pattern(s).unwrap()
    }

    #[test]
    fn commutativity_is_not_self_identical() {
        let lhs = pat("(ewadd ?x ?y)");
        let rhs = pat("(ewadd ?y ?x)");
        assert!(check_rule_shape(&[&lhs], &[&rhs]).is_empty());
        let same = pat("(ewadd ?a ?b)");
        let same2 = pat("(ewadd ?a ?b)");
        let diags = check_rule_shape(&[&same], &[&same2]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "self-identical");
    }

    #[test]
    fn joint_canonicalization_ignores_names() {
        let a = joint_canonical(&[&pat("(ewadd ?x ?y)")], &[&pat("(ewadd ?y ?x)")]);
        let b = joint_canonical(&[&pat("(ewadd ?p ?q)")], &[&pat("(ewadd ?q ?p)")]);
        assert_eq!(a, b);
        let c = joint_canonical(&[&pat("(ewadd ?p ?q)")], &[&pat("(ewadd ?p ?q)")]);
        assert_ne!(a, c);
    }

    #[test]
    fn literals_are_distinguished() {
        let a = joint_canonical(&[&pat("(matmul 0 ?a ?b)")], &[&pat("?a")]);
        let b = joint_canonical(&[&pat("(matmul 1 ?a ?b)")], &[&pat("?a")]);
        assert_ne!(a, b);
    }

    #[test]
    fn subsumption_detects_instances() {
        // (ewadd ?x ?y) => (ewadd ?y ?x) subsumes the relu-specialized
        // variant.
        let gen = (pat("(ewadd ?x ?y)"), pat("(ewadd ?y ?x)"));
        let spec = (pat("(ewadd (relu ?a) ?b)"), pat("(ewadd ?b (relu ?a))"));
        assert!(subsumes((&gen.0, &gen.1), (&spec.0, &spec.1)));
        // ...but not the other way round, and not an unrelated rule.
        assert!(!subsumes((&spec.0, &spec.1), (&gen.0, &gen.1)));
        let other = (pat("(ewmul ?x ?y)"), pat("(ewmul ?y ?x)"));
        assert!(!subsumes((&gen.0, &gen.1), (&other.0, &other.1)));
    }

    #[test]
    fn subsumption_requires_consistent_sigma() {
        // ?x must map to the same subtree on both sides.
        let gen = (pat("(relu ?x)"), pat("(tanh ?x)"));
        let bad = (pat("(relu (ewadd ?a ?b))"), pat("(tanh (ewmul ?a ?b))"));
        assert!(!subsumes((&gen.0, &gen.1), (&bad.0, &bad.1)));
    }

    #[test]
    fn unbound_vars_found() {
        let lhs = pat("(ewadd ?x ?y)");
        let rhs = pat("(ewadd ?x ?zzz)");
        let unbound = unbound_target_vars(&[&lhs], &[&rhs]);
        assert_eq!(unbound, vec![Var::new("zzz")]);
    }
}
