//! CI gate: statically verifies the shipped rewrite-rule corpus and
//! exits nonzero if any rule has an error-severity finding.

fn main() {
    let report = tensat_verify::verify_shipped_corpus();
    print!("{report}");
    if report.error_count() > 0 {
        std::process::exit(1);
    }
}
