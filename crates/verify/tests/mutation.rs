//! Mutation testing of the verifier itself: seed the corpus with the
//! defect classes the verifier exists to catch — a swapped child, a
//! dropped guard, a renamed RHS variable, a shape-changing RHS, an
//! unsatisfiable guard mask — and assert each mutant is rejected with the
//! right diagnostic while the pristine corpus passes (see `corpus.rs`).
//!
//! Swap-child mutants are *curated*, not blind: some swaps are harmless by
//! algebra (swapping the operands of `ewadd` is commutativity; reassociating
//! `matmul` children preserves shapes by associativity), so each entry
//! below is a swap hand-checked to change the output shape on some binding.

use proptest::prelude::*;
use tensat_egraph::{ENodeOrVar, Guard, Pattern, RecExpr, Rewrite, Var};
use tensat_ir::DataKind;
use tensat_rules::{
    parse_pattern, pattern_kind_constraints, shape_check, shape_guards, single_rules,
};
use tensat_verify::{default_guards, verify_patterns, verify_rewrite};

/// `(name, lhs, mutated_rhs)` triples where the RHS mutant no longer
/// preserves the output shape (or validity) for all bindings. Verified
/// *unconditionally*: the pristine versions of these rules all verify with
/// zero shape-divergent and zero condition-blocked cases (pinned in
/// `corpus.rs`), so any divergence here is introduced by the mutation.
const SWAP_CHILD_MUTANTS: &[(&str, &str, &str)] = &[
    (
        // transpose-matmul with the RHS matmul operands swapped: (AB)^T is
        // B^T A^T, not A^T B^T.
        "transpose-matmul-swapped",
        "(transpose (matmul 0 ?a ?b) \"1_0\")",
        "(matmul 0 (transpose ?a \"1_0\") (transpose ?b \"1_0\"))",
    ),
    (
        // matmul-linear-rhs with ?a/?b swapped in the first product.
        "matmul-linear-rhs-swapped",
        "(matmul ?act ?a (ewadd ?b ?c))",
        "(ewadd (matmul ?act ?b ?a) (matmul ?act ?a ?c))",
    ),
    (
        // conv-add-weights with input and summed weights swapped.
        "conv-add-weights-swapped",
        "(ewadd (conv ?sh ?sw ?p 0 ?x ?w1) (conv ?sh ?sw ?p 0 ?x ?w2))",
        "(conv ?sh ?sw ?p 0 (ewadd ?w1 ?w2) ?x)",
    ),
    (
        // split0-of-concat projecting the wrong half.
        "split0-of-concat-swapped",
        "(split0 (split ?ax (concat2 ?ax ?x ?y)))",
        "?y",
    ),
    (
        // A shape-changing RHS: elementwise add replaced by concatenation.
        "ewadd-to-concat",
        "(ewadd ?x ?y)",
        "(concat2 0 ?x ?y)",
    ),
];

fn verify_mutant(name: &str, lhs: &str, rhs: &str) -> tensat_verify::RuleReport {
    let sources = vec![parse_pattern(lhs).unwrap()];
    let targets = vec![parse_pattern(rhs).unwrap()];
    let guards = default_guards(&targets);
    verify_patterns(name, &sources, &targets, guards, false)
}

proptest! {
    /// Every curated shape-breaking mutant is rejected with a hard error.
    #[test]
    fn swap_child_mutants_are_rejected(idx in 0usize..SWAP_CHILD_MUTANTS.len()) {
        let (name, lhs, rhs) = SWAP_CHILD_MUTANTS[idx];
        let report = verify_mutant(name, lhs, rhs);
        prop_assert!(
            report.has_errors(),
            "mutant `{name}` should have been rejected:\n{report}"
        );
        let shape_error = report.diagnostics.iter().any(|d| {
            matches!(
                d.code,
                "unsound-shape" | "always-divergent" | "unsound-invalid-rhs" | "dead-rule"
            )
        });
        prop_assert!(
            shape_error,
            "mutant `{name}` rejected for the wrong reason:\n{report}"
        );
    }

    /// Renaming an RHS variable out from under its LHS binder is reported
    /// as an unbound-variable error naming the variable.
    #[test]
    fn renamed_rhs_var_is_rejected(idx in 0usize..single_rules().len()) {
        let rules = single_rules();
        let rule = &rules[idx];
        // Rename the first RHS variable to one the LHS does not bind.
        let Some(victim) = rule.applier.vars().first().copied() else {
            return; // variable-free RHS: nothing to rename
        };
        let mut mutated = RecExpr::default();
        for (_, node) in rule.applier.ast.iter() {
            mutated.add(match node {
                ENodeOrVar::Var(v) if *v == victim => {
                    ENodeOrVar::Var(Var::new("mutant_unbound"))
                }
                other => other.clone(),
            });
        }
        let sources = vec![rule.searcher.clone()];
        let targets = vec![Pattern::new(mutated)];
        let guards = default_guards(&targets);
        let report = verify_patterns(&rule.name, &sources, &targets, guards, true);
        prop_assert!(report.has_errors(), "rename mutant of `{}` accepted:\n{report}", rule.name);
        let named = report.diagnostics.iter().any(|d| {
            d.code == "unbound-rhs-var" && d.message.contains("?mutant_unbound")
        });
        prop_assert!(
            named,
            "rename mutant of `{}` missing an unbound-rhs-var diagnostic naming \
             ?mutant_unbound:\n{report}",
            rule.name
        );
    }
}

/// Dropping one of a shipped rule's kind guards is reported as a missing
/// guard on exactly the dropped variable.
#[test]
fn dropped_guard_is_rejected() {
    let rules = single_rules();
    let mut checked = 0;
    for rule in &rules {
        let guards = shape_guards(&rule.applier);
        // Drop a guard on a variable whose RHS positions demand a concrete
        // kind — dropping a validity-only guard (e.g. on a matmul
        // activation) removes nothing the verifier requires.
        let constrained: Vec<Var> = pattern_kind_constraints(&rule.applier)
            .into_iter()
            .filter(|(_, kinds)| !kinds.is_empty())
            .map(|(v, _)| v)
            .collect();
        let Some(pos) = guards.iter().position(|(v, _)| constrained.contains(v)) else {
            continue;
        };
        if guards.len() < 2 {
            continue; // dropping the only guard is covered by ewadd below
        }
        let dropped_var = guards[pos].0;
        let kept: Vec<_> = guards
            .into_iter()
            .enumerate()
            .filter(|(i, _)| *i != pos)
            .map(|(_, g)| g)
            .collect();
        let mutant = Rewrite::new_conditional(
            format!("{}-dropped-guard", rule.name),
            rule.searcher.clone(),
            rule.applier.clone(),
            shape_check(rule.applier.clone()),
        )
        .with_guards(kept);
        let report = verify_rewrite(&mutant);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == "missing-guard" && d.message.contains(&dropped_var.to_string())),
            "dropping the {dropped_var} guard from `{}` was not flagged:\n{report}",
            rule.name
        );
        checked += 1;
    }
    assert!(checked >= 10, "only {checked} rules had droppable guards");
}

/// A guard whose tag mask cannot be satisfied by the variable's LHS
/// positions is reported as unsatisfiable, naming the guard's variable.
#[test]
fn unsatisfiable_guard_mask_is_rejected() {
    let searcher = parse_pattern("(relu ?x)").unwrap();
    let applier = parse_pattern("(tanh ?x)").unwrap();
    // ?x sits in a tensor-only position but the guard admits only strings.
    let mutant = Rewrite::new("relu-to-tanh-strguard", searcher, applier)
        .with_guards(vec![(Var::new("x"), Guard::tags(DataKind::Str.tag_mask()))]);
    let report = verify_rewrite(&mutant);
    assert!(
        report.has_errors(),
        "unsatisfiable guard accepted:\n{report}"
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| (d.code == "unsat-guard" || d.code == "dead-rule")
                && d.message.contains("?x")),
        "no unsat-guard/dead-rule diagnostic naming ?x:\n{report}"
    );
}

/// A guard admitting every tag with no predicate is flagged as redundant
/// overhead (warning, not error).
#[test]
fn vacuous_guard_is_flagged_redundant() {
    let searcher = parse_pattern("(relu ?x)").unwrap();
    let applier = parse_pattern("(tanh ?x)").unwrap();
    let mutant = Rewrite::new("relu-to-tanh-vacuous", searcher, applier)
        .with_guards(vec![(Var::new("x"), Guard::tags(u32::MAX))]);
    let report = verify_rewrite(&mutant);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == "redundant-guard" && d.message.contains("?x")),
        "vacuous guard not flagged:\n{report}"
    );
}

/// A rule whose two sides are the same pattern is structurally dead.
#[test]
fn self_identical_rule_is_rejected() {
    let report = verify_mutant("noop", "(ewadd ?p ?q)", "(ewadd ?p ?q)");
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == "self-identical"),
        "self-identical rule not flagged:\n{report}"
    );
}

/// The shape-changing seeded rule's error carries a concrete, confirmed
/// counterexample binding (variables with tensor shapes and both inferred
/// root shapes).
#[test]
fn shape_divergence_reports_a_concrete_counterexample() {
    let report = verify_mutant("ewadd-to-concat", "(ewadd ?x ?y)", "(concat2 0 ?x ?y)");
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == "unsound-shape")
        .unwrap_or_else(|| panic!("no unsound-shape diagnostic:\n{report}"));
    assert!(
        diag.message.contains("?x = tensor[") && diag.message.contains("LHS infers"),
        "counterexample not concrete: {diag}"
    );
}
