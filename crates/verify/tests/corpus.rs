//! Regression tests pinning the verifier's verdict on the shipped rule
//! corpus: no errors, no dead rules, and exactly the known, understood
//! warnings. A rule edit that introduces an unsound or dead rule — or a
//! new reliance on the runtime shape condition — fails here before it can
//! ship.

use tensat_verify::{verify_shipped_corpus, Severity};

/// The rules known (and proven, see the per-rule analysis summaries) to
/// produce shape-divergent bindings that only the runtime shape condition
/// blocks: concatenating a *batched* (rank-3) matmul operand changes how
/// the batch and row dimensions compose, so these rules are sound only
/// because every application re-checks shapes.
const KNOWN_CONDITION_RELIANT: &[&str] = &[
    "concat-matmul",
    "concat-matmul-rev",
    "batch-matmul-add",
    "batch-matmul-add-rev",
];

#[test]
fn shipped_corpus_has_no_errors() {
    let report = verify_shipped_corpus();
    assert_eq!(
        report.error_count(),
        0,
        "shipped corpus must verify clean:\n{report}"
    );
}

#[test]
fn every_shipped_rule_has_a_live_witness() {
    let report = verify_shipped_corpus();
    for rule in &report.rules {
        assert!(
            rule.summary.contains("live witness:"),
            "rule `{}` has no confirmed fireable binding: {}",
            rule.name,
            rule.summary
        );
    }
}

#[test]
fn warnings_are_exactly_the_known_condition_reliant_rules() {
    let report = verify_shipped_corpus();
    let mut warned: Vec<&str> = report
        .rules
        .iter()
        .filter(|r| {
            r.diagnostics
                .iter()
                .any(|d| d.severity == Severity::Warning)
        })
        .map(|r| r.name.as_str())
        .collect();
    warned.sort_unstable();
    let mut expected = KNOWN_CONDITION_RELIANT.to_vec();
    expected.sort_unstable();
    assert_eq!(
        warned, expected,
        "set of warned rules changed — new warnings need the same scrutiny \
         these four got:\n{report}"
    );
    for rule in &report.rules {
        for d in &rule.diagnostics {
            assert_eq!(
                d.code, "divergence-blocked",
                "unexpected finding kind on `{}`: {d}",
                rule.name
            );
        }
    }
}

#[test]
fn corpus_has_no_duplicate_or_subsumed_rules() {
    let report = verify_shipped_corpus();
    assert!(
        report.corpus.is_empty(),
        "corpus-level findings (duplicates / subsumption / degraded \
         multi-pattern guards) must stay empty:\n{report}"
    );
}

#[test]
fn corpus_covers_every_shipped_rule() {
    let report = verify_shipped_corpus();
    let singles = tensat_rules::single_rules().len();
    let multis = tensat_rules::multi_rules().len();
    assert_eq!(report.rules.len(), singles + multis);
}
