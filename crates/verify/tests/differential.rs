//! Differential test between the static verifier and the runtime checks:
//! on every benchmark model's e-graph, each verifier-accepted rule's
//! *guarded* search (tag masks + predicates evaluated inside the
//! e-matching machine) must find exactly the matches that the raw,
//! unguarded pattern search finds once the legacy runtime
//! [`Condition`](tensat_egraph::Condition) is applied on top — i.e. the
//! statically-analyzed guards never prune a match the condition would have
//! admitted, on real workloads rather than synthetic bindings.

use std::collections::BTreeSet;
use tensat_egraph::{Id, Subst, Var};
use tensat_ir::{TensorAnalysis, TensorEGraph};
use tensat_models::{build_benchmark, ModelScale, BENCHMARKS};
use tensat_rules::{single_rules, TensorRewrite};
use tensat_verify::verify_rewrite;

type MatchSet = BTreeSet<(Id, Vec<(Var, Id)>)>;

/// Canonicalizes a match list for comparison (class ids canonicalized,
/// substitutions restricted to nothing — they already share the rule's
/// variable order — and condition-filtered when a condition is given).
fn match_set(
    eg: &TensorEGraph,
    rule: &TensorRewrite,
    matches: &[tensat_egraph::SearchMatches],
    filter: bool,
) -> MatchSet {
    let mut out = MatchSet::new();
    for m in matches {
        for s in &m.substs {
            if filter {
                if let Some(cond) = &rule.condition {
                    if !cond(eg, m.eclass, s) {
                        continue;
                    }
                }
            }
            let bindings: Vec<(Var, Id)> = s.iter().map(|(v, id)| (v, eg.find(id))).collect();
            out.insert((eg.find(m.eclass), bindings));
        }
    }
    out
}

fn condition_filtered(eg: &TensorEGraph, rule: &TensorRewrite, subst: &Subst, class: Id) -> bool {
    match &rule.condition {
        Some(cond) => cond(eg, class, subst),
        None => true,
    }
}

#[test]
fn guarded_search_matches_condition_filtered_raw_search_on_benchmarks() {
    let rules = single_rules();
    // The differential only makes sense for rules the verifier accepts —
    // which must be all of them (pinned in corpus.rs).
    for rule in &rules {
        assert!(
            !verify_rewrite(rule).has_errors(),
            "rule `{}` no longer verifies",
            rule.name
        );
    }

    for model in BENCHMARKS {
        let expr = build_benchmark(model, ModelScale::tiny());
        let mut eg = TensorEGraph::new(TensorAnalysis);
        eg.add_expr(&expr);
        eg.rebuild();

        for rule in &rules {
            // Guarded machine search, then the runtime condition.
            let guarded = match_set(&eg, rule, &rule.search(&eg), true);
            // Raw pattern search (no guards), then the runtime condition.
            let raw = match_set(&eg, rule, &rule.searcher.search(&eg), true);
            assert_eq!(
                guarded, raw,
                "rule `{}` on {model}: guarded search + condition disagrees with raw \
                 search + condition",
                rule.name
            );
        }
    }
}

/// The statically-derived guards must be *sound* prunes: a match the guard
/// table rejects must also be rejected by the runtime condition (otherwise
/// the guards silently changed rule semantics).
#[test]
fn guards_only_prune_condition_rejected_matches() {
    let rules = single_rules();
    for model in BENCHMARKS {
        let expr = build_benchmark(model, ModelScale::tiny());
        let mut eg = TensorEGraph::new(TensorAnalysis);
        eg.add_expr(&expr);
        eg.rebuild();

        for rule in &rules {
            let guarded = match_set(&eg, rule, &rule.search(&eg), false);
            for m in rule.searcher.search(&eg) {
                for s in &m.substs {
                    let bindings: Vec<(Var, Id)> =
                        s.iter().map(|(v, id)| (v, eg.find(id))).collect();
                    let key = (eg.find(m.eclass), bindings);
                    if !guarded.contains(&key) {
                        assert!(
                            !condition_filtered(&eg, rule, s, m.eclass),
                            "rule `{}` on {model}: guard pruned a match the condition \
                             would have accepted: {key:?}",
                            rule.name
                        );
                    }
                }
            }
        }
    }
}
