//! The MILP problem model: variables, linear constraints, and a linear
//! objective to minimize.

/// A handle to a variable in a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub usize);

/// The kind (and implied domain) of a variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarKind {
    /// A 0/1 variable.
    Binary,
    /// An integer variable within inclusive bounds.
    Integer {
        /// Lower bound.
        lo: i64,
        /// Upper bound.
        hi: i64,
    },
    /// A continuous variable within inclusive bounds.
    Continuous {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

impl VarKind {
    /// The numeric lower bound of the domain.
    pub fn lo(&self) -> f64 {
        match self {
            VarKind::Binary => 0.0,
            VarKind::Integer { lo, .. } => *lo as f64,
            VarKind::Continuous { lo, .. } => *lo,
        }
    }

    /// The numeric upper bound of the domain.
    pub fn hi(&self) -> f64 {
        match self {
            VarKind::Binary => 1.0,
            VarKind::Integer { hi, .. } => *hi as f64,
            VarKind::Continuous { hi, .. } => *hi,
        }
    }

    /// True for binary and integer variables.
    pub fn is_integral(&self) -> bool {
        !matches!(self, VarKind::Continuous { .. })
    }
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `lhs <= rhs`
    Le,
    /// `lhs >= rhs`
    Ge,
    /// `lhs == rhs`
    Eq,
}

/// A linear constraint `sum(coef * var) cmp rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// The linear terms `(variable, coefficient)`.
    pub terms: Vec<(VarId, f64)>,
    /// The comparison operator.
    pub cmp: Cmp,
    /// The right-hand side constant.
    pub rhs: f64,
}

/// A mixed 0/1 linear program to *minimize*.
///
/// # Examples
///
/// ```
/// use tensat_ilp::{Problem, Cmp};
/// // minimize x + 2y  s.t.  x + y >= 1,  x,y binary
/// let mut p = Problem::new();
/// let x = p.add_binary(1.0);
/// let y = p.add_binary(2.0);
/// p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
/// let sol = tensat_ilp::Solver::default().solve(&p);
/// assert_eq!(sol.value(x), 1.0);
/// assert_eq!(sol.value(y), 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Problem {
    pub(crate) kinds: Vec<VarKind>,
    pub(crate) objective: Vec<f64>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) names: Vec<Option<String>>,
}

impl Problem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable with the given kind and objective coefficient.
    pub fn add_var(&mut self, kind: VarKind, objective: f64) -> VarId {
        self.kinds.push(kind);
        self.objective.push(objective);
        self.names.push(None);
        VarId(self.kinds.len() - 1)
    }

    /// Adds a binary variable with the given objective coefficient.
    pub fn add_binary(&mut self, objective: f64) -> VarId {
        self.add_var(VarKind::Binary, objective)
    }

    /// Adds a continuous variable with bounds and objective coefficient.
    pub fn add_continuous(&mut self, lo: f64, hi: f64, objective: f64) -> VarId {
        self.add_var(VarKind::Continuous { lo, hi }, objective)
    }

    /// Adds a bounded integer variable.
    pub fn add_integer(&mut self, lo: i64, hi: i64, objective: f64) -> VarId {
        self.add_var(VarKind::Integer { lo, hi }, objective)
    }

    /// Attaches a diagnostic name to a variable.
    pub fn set_name(&mut self, var: VarId, name: impl Into<String>) {
        self.names[var.0] = Some(name.into());
    }

    /// Adds a linear constraint. Terms with zero coefficients are dropped.
    pub fn add_constraint(&mut self, terms: Vec<(VarId, f64)>, cmp: Cmp, rhs: f64) {
        let terms: Vec<(VarId, f64)> = terms.into_iter().filter(|(_, c)| *c != 0.0).collect();
        self.constraints.push(Constraint { terms, cmp, rhs });
    }

    /// Fixes a variable to a constant by shrinking its bounds.
    pub fn fix_var(&mut self, var: VarId, value: f64) {
        self.kinds[var.0] = VarKind::Continuous {
            lo: value,
            hi: value,
        };
        // Keep integrality information when the value is integral and the
        // variable was integral.
        if value.fract() == 0.0 {
            self.kinds[var.0] = VarKind::Integer {
                lo: value as i64,
                hi: value as i64,
            };
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.kinds.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The variable kinds.
    pub fn kinds(&self) -> &[VarKind] {
        &self.kinds
    }

    /// The objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Evaluates the objective for an assignment.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.objective.iter().zip(values).map(|(c, v)| c * v).sum()
    }

    /// Checks whether an assignment satisfies every constraint and every
    /// variable domain (within `tol`).
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.num_vars() {
            return false;
        }
        for (kind, &v) in self.kinds.iter().zip(values) {
            if v < kind.lo() - tol || v > kind.hi() + tol {
                return false;
            }
            if kind.is_integral() && (v - v.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|(v, coef)| coef * values[v.0]).sum();
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_evaluate() {
        let mut p = Problem::new();
        let x = p.add_binary(1.0);
        let y = p.add_continuous(0.0, 10.0, 0.5);
        let z = p.add_integer(0, 3, 2.0);
        p.set_name(x, "x");
        p.add_constraint(vec![(x, 1.0), (y, 1.0), (z, 0.0)], Cmp::Ge, 1.0);
        assert_eq!(p.num_vars(), 3);
        assert_eq!(p.num_constraints(), 1);
        // The zero-coefficient term is dropped.
        assert_eq!(p.constraints()[0].terms.len(), 2);
        assert_eq!(p.objective_value(&[1.0, 2.0, 3.0]), 1.0 + 1.0 + 6.0);
    }

    #[test]
    fn feasibility_checks_domains_and_constraints() {
        let mut p = Problem::new();
        let x = p.add_binary(1.0);
        let y = p.add_binary(1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        assert!(p.is_feasible(&[1.0, 0.0], 1e-6));
        assert!(!p.is_feasible(&[0.0, 0.0], 1e-6)); // violates constraint
        assert!(!p.is_feasible(&[0.5, 1.0], 1e-6)); // fractional binary
        assert!(!p.is_feasible(&[2.0, 0.0], 1e-6)); // out of domain
        assert!(!p.is_feasible(&[1.0], 1e-6)); // wrong arity
    }

    #[test]
    fn var_kind_bounds() {
        assert_eq!(VarKind::Binary.lo(), 0.0);
        assert_eq!(VarKind::Binary.hi(), 1.0);
        assert!(VarKind::Binary.is_integral());
        let k = VarKind::Continuous { lo: -1.5, hi: 2.5 };
        assert!(!k.is_integral());
        assert_eq!(k.lo(), -1.5);
        let k = VarKind::Integer { lo: 2, hi: 7 };
        assert_eq!(k.hi(), 7.0);
    }

    #[test]
    fn fix_var_shrinks_domain() {
        let mut p = Problem::new();
        let x = p.add_binary(1.0);
        p.fix_var(x, 0.0);
        assert_eq!(p.kinds()[0].lo(), 0.0);
        assert_eq!(p.kinds()[0].hi(), 0.0);
        assert!(!p.is_feasible(&[1.0], 1e-6));
    }
}
