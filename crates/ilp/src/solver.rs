//! A deterministic branch-and-bound solver for mixed 0/1 linear programs.
//!
//! The solver is exact given enough time: it enumerates the integral
//! variables depth-first with constraint propagation (activity-based bound
//! tightening) at every node and prunes with a partial-assignment lower
//! bound and the best incumbent found so far. Before branching, a *presolve*
//! propagation fixpoint on the root bounds fixes every variable implied by
//! the constraints alone ([`Solution::presolve_fixed`] counts them), and
//! variable-disjoint `sum >= 1` covering constraints are collected into
//! groups that strengthen the lower bound by each group's cheapest available
//! member — on extraction encodings this usually certifies a greedy-seeded
//! incumbent optimal within a handful of nodes. A warm-start hint can seed
//! the incumbent (TENSAT seeds it with the greedy extraction), and wall
//! clock / node limits turn the solver into an any-time procedure — the
//! role SCIP plays in the original system.
//!
//! Continuous variables (the topological-order variables of the cycle
//! constraints, paper §5.1) are handled by bound propagation: once all
//! integral variables are fixed, every continuous variable is set to its
//! propagated lower bound, which is feasible for difference-style
//! constraint systems and optimal when (as in the extraction encoding) the
//! continuous variables do not appear in the objective.

use crate::problem::{Cmp, Problem, VarId, VarKind};
use std::time::{Duration, Instant};

/// Outcome of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The returned solution is provably optimal.
    Optimal,
    /// A feasible solution was found but the search hit a limit before
    /// proving optimality.
    Feasible,
    /// The problem has no feasible solution.
    Infeasible,
    /// No feasible solution was found before a limit was hit.
    Unknown,
}

/// The result of solving a [`Problem`].
#[derive(Debug, Clone)]
pub struct Solution {
    /// Solve status.
    pub status: Status,
    /// Variable values (empty when no feasible solution was found).
    pub values: Vec<f64>,
    /// Objective value of `values` (infinite when none).
    pub objective: f64,
    /// Number of branch-and-bound nodes explored.
    pub nodes_explored: usize,
    /// Number of integral variables the root presolve fixed before any
    /// branching (bounds collapsed by constraint propagation alone).
    pub presolve_fixed: usize,
    /// Wall-clock time spent.
    pub solve_time: Duration,
}

impl Solution {
    /// The value of a variable in the best solution found.
    ///
    /// # Panics
    ///
    /// Panics if no feasible solution was found.
    pub fn value(&self, var: VarId) -> f64 {
        assert!(
            !self.values.is_empty(),
            "no feasible solution was found (status {:?})",
            self.status
        );
        self.values[var.0]
    }

    /// True if a feasible assignment is available.
    pub fn has_solution(&self) -> bool {
        !self.values.is_empty()
    }
}

/// Branch-and-bound solver configuration.
#[derive(Debug, Clone)]
pub struct Solver {
    /// Wall-clock limit for the search.
    pub time_limit: Duration,
    /// Maximum number of branch-and-bound nodes.
    pub node_limit: usize,
    /// Numerical tolerance.
    pub tolerance: f64,
    /// Maximum propagation sweeps per node.
    pub max_propagation_passes: usize,
}

impl Default for Solver {
    fn default() -> Self {
        Solver {
            time_limit: Duration::from_secs(60),
            node_limit: 2_000_000,
            tolerance: 1e-6,
            max_propagation_passes: 20,
        }
    }
}

struct Search<'a> {
    problem: &'a Problem,
    cfg: &'a Solver,
    start: Instant,
    nodes: usize,
    best_values: Option<Vec<f64>>,
    best_objective: f64,
    hint: Option<&'a [f64]>,
    hit_limit: bool,
    /// Pairwise member-disjoint covering groups of binary variables with
    /// nonnegative objective coefficients. A group is *always* active when
    /// a `sum == 1` / `sum >= 1` unit-coefficient row covers it, and
    /// *conditionally* active when an implication row `x_t - sum <= 0`
    /// covers it and the trigger `x_t` is fixed to 1. Every active
    /// unsatisfied group independently forces at least its cheapest
    /// available member into any completion — a valid additive
    /// strengthening of the bounds-only objective lower bound, because the
    /// member sets share no variables. Extraction encodings are made of
    /// exactly such rows (one group per e-class, triggered by the parent
    /// candidates that need the class), which is what lets the solver prove
    /// a greedy-seeded incumbent optimal without enumerating the selection
    /// lattice: committing to a candidate immediately charges every class
    /// it pulls in at that class's cheapest rate.
    cover_groups: Vec<CoverGroup>,
}

/// One covering group for the conditional-cover lower bound.
struct CoverGroup {
    /// The covered variables (pairwise disjoint across groups).
    members: Vec<usize>,
    /// Active regardless of triggers (backed by a `>= 1` row).
    always: bool,
    /// Binary variables whose fixing to 1 activates the group (each backed
    /// by a row `trigger - sum(members) <= 0`).
    triggers: Vec<usize>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PropResult {
    Ok,
    Infeasible,
}

impl Solver {
    /// Creates a solver with the given time limit.
    pub fn with_time_limit(time_limit: Duration) -> Self {
        Solver {
            time_limit,
            ..Default::default()
        }
    }

    /// Solves a problem to minimality (or best effort within limits).
    pub fn solve(&self, problem: &Problem) -> Solution {
        self.solve_inner(problem, None)
    }

    /// Solves with a warm-start hint: a (hopefully feasible) assignment used
    /// to seed the incumbent and guide branching.
    pub fn solve_with_hint(&self, problem: &Problem, hint: &[f64]) -> Solution {
        self.solve_inner(problem, Some(hint))
    }

    fn solve_inner(&self, problem: &Problem, hint: Option<&[f64]>) -> Solution {
        let start = Instant::now();
        let mut search = Search {
            problem,
            cfg: self,
            start,
            nodes: 0,
            best_values: None,
            best_objective: f64::INFINITY,
            hint,
            hit_limit: false,
            cover_groups: cover_groups(problem, self.tolerance),
        };
        // Seed the incumbent with the hint if it is feasible.
        if let Some(h) = hint {
            if problem.is_feasible(h, self.tolerance) {
                search.best_values = Some(h.to_vec());
                search.best_objective = problem.objective_value(h);
            }
        }
        let mut lo: Vec<f64> = problem.kinds().iter().map(|k| k.lo()).collect();
        let mut hi: Vec<f64> = problem.kinds().iter().map(|k| k.hi()).collect();

        // Presolve: one propagation fixpoint on the root bounds. Variables
        // whose domains collapse here are implied by the constraints alone
        // and never branched on; the tightened bounds seed the whole search.
        let tol = self.tolerance;
        let free = |lo: &[f64], hi: &[f64]| {
            problem
                .kinds()
                .iter()
                .enumerate()
                .filter(|&(i, k)| k.is_integral() && hi[i] - lo[i] > tol)
                .count()
        };
        let free_before = free(&lo, &hi);
        let root_state = search.propagate(&mut lo, &mut hi);
        let presolve_fixed = free_before.saturating_sub(free(&lo, &hi));
        if root_state == PropResult::Infeasible {
            // Propagation is exact (it only removes provably impossible
            // values), so a root conflict proves infeasibility outright —
            // a feasible hint cannot exist in this case.
            return Solution {
                status: Status::Infeasible,
                values: vec![],
                objective: f64::INFINITY,
                nodes_explored: 0,
                presolve_fixed,
                solve_time: start.elapsed(),
            };
        }
        search.branch(lo, hi);

        let solve_time = start.elapsed();
        let (status, values, objective) = match (&search.best_values, search.hit_limit) {
            (Some(v), false) => (Status::Optimal, v.clone(), search.best_objective),
            (Some(v), true) => (Status::Feasible, v.clone(), search.best_objective),
            (None, false) => (Status::Infeasible, vec![], f64::INFINITY),
            (None, true) => (Status::Unknown, vec![], f64::INFINITY),
        };
        Solution {
            status,
            values,
            objective,
            nodes_explored: search.nodes,
            presolve_fixed,
            solve_time,
        }
    }
}

/// Collects pairwise member-disjoint covering groups from two row shapes:
/// `sum(x_v) >= 1` / `== 1` (always-active) and `x_t - sum(x_v) <= 0`
/// (active when the trigger `x_t` is 1), both over unit coefficients and
/// binary members with nonnegative objective coefficients. Rows with the
/// same member set merge (an always row marks the group `always`; each
/// implication row adds its trigger). Scanned in constraint order, greedily
/// skipping any row whose member set partially overlaps an earlier group,
/// so the collection is deterministic.
fn cover_groups(problem: &Problem, tol: f64) -> Vec<CoverGroup> {
    let mut group_of = vec![usize::MAX; problem.num_vars()];
    let mut groups: Vec<CoverGroup> = vec![];
    let member_ok =
        |v: VarId| problem.kinds()[v.0] == VarKind::Binary && problem.objective()[v.0] >= 0.0;
    // Resolves the member set to a group slot: an existing group with
    // exactly this set, a fresh one when no member is taken, or None on a
    // partial overlap.
    let mut slot_for = |members: &[usize], groups: &mut Vec<CoverGroup>| -> Option<usize> {
        let first = group_of[members[0]];
        if first != usize::MAX {
            let same = groups[first].members.len() == members.len()
                && members.iter().all(|&m| group_of[m] == first);
            return same.then_some(first);
        }
        if members.iter().any(|&m| group_of[m] != usize::MAX) {
            return None;
        }
        for &m in members {
            group_of[m] = groups.len();
        }
        groups.push(CoverGroup {
            members: members.to_vec(),
            always: false,
            triggers: vec![],
        });
        Some(groups.len() - 1)
    };
    for c in problem.constraints() {
        if matches!(c.cmp, Cmp::Ge | Cmp::Eq)
            && (c.rhs - 1.0).abs() <= tol
            && !c.terms.is_empty()
            && c.terms
                .iter()
                .all(|&(v, coef)| (coef - 1.0).abs() <= tol && member_ok(v))
        {
            let mut members: Vec<usize> = c.terms.iter().map(|&(v, _)| v.0).collect();
            members.sort_unstable();
            if let Some(g) = slot_for(&members, &mut groups) {
                groups[g].always = true;
            }
        } else if c.cmp == Cmp::Le && c.rhs.abs() <= tol {
            let mut trigger = None;
            let mut members = vec![];
            let mut usable = true;
            for &(v, coef) in &c.terms {
                if (coef - 1.0).abs() <= tol {
                    usable &= trigger.is_none() && problem.kinds()[v.0] == VarKind::Binary;
                    trigger = Some(v.0);
                } else if (coef + 1.0).abs() <= tol {
                    usable &= member_ok(v);
                    members.push(v.0);
                } else {
                    usable = false;
                }
            }
            let Some(trigger) = trigger else { continue };
            if !usable || members.is_empty() {
                continue;
            }
            members.sort_unstable();
            if let Some(g) = slot_for(&members, &mut groups) {
                groups[g].triggers.push(trigger);
            }
        }
    }
    groups
}

impl<'a> Search<'a> {
    fn out_of_budget(&mut self) -> bool {
        if self.nodes >= self.cfg.node_limit || self.start.elapsed() >= self.cfg.time_limit {
            self.hit_limit = true;
            true
        } else {
            false
        }
    }

    /// Activity-based bound tightening, iterated to (bounded) fixpoint.
    fn propagate(&self, lo: &mut [f64], hi: &mut [f64]) -> PropResult {
        let tol = self.cfg.tolerance;
        for _ in 0..self.cfg.max_propagation_passes {
            let mut changed = false;
            for c in self.problem.constraints() {
                // Minimum and maximum possible activity under current bounds.
                let mut min_act = 0.0;
                let mut max_act = 0.0;
                for &(v, coef) in &c.terms {
                    if coef >= 0.0 {
                        min_act += coef * lo[v.0];
                        max_act += coef * hi[v.0];
                    } else {
                        min_act += coef * hi[v.0];
                        max_act += coef * lo[v.0];
                    }
                }
                let need_le = matches!(c.cmp, Cmp::Le | Cmp::Eq);
                let need_ge = matches!(c.cmp, Cmp::Ge | Cmp::Eq);
                if need_le && min_act > c.rhs + tol {
                    return PropResult::Infeasible;
                }
                if need_ge && max_act < c.rhs - tol {
                    return PropResult::Infeasible;
                }
                // Tighten each variable against the residual activity.
                for &(v, coef) in &c.terms {
                    if coef == 0.0 {
                        continue;
                    }
                    let (own_min, own_max) = if coef >= 0.0 {
                        (coef * lo[v.0], coef * hi[v.0])
                    } else {
                        (coef * hi[v.0], coef * lo[v.0])
                    };
                    if need_le {
                        // coef * x <= rhs - (min_act - own_min)
                        let slack = c.rhs - (min_act - own_min);
                        if coef > 0.0 {
                            let new_hi = slack / coef;
                            if new_hi < hi[v.0] - tol {
                                hi[v.0] = self.round_bound(v, new_hi, false);
                                changed = true;
                            }
                        } else {
                            let new_lo = slack / coef;
                            if new_lo > lo[v.0] + tol {
                                lo[v.0] = self.round_bound(v, new_lo, true);
                                changed = true;
                            }
                        }
                    }
                    if need_ge {
                        // coef * x >= rhs - (max_act - own_max)
                        let slack = c.rhs - (max_act - own_max);
                        if coef > 0.0 {
                            let new_lo = slack / coef;
                            if new_lo > lo[v.0] + tol {
                                lo[v.0] = self.round_bound(v, new_lo, true);
                                changed = true;
                            }
                        } else {
                            let new_hi = slack / coef;
                            if new_hi < hi[v.0] - tol {
                                hi[v.0] = self.round_bound(v, new_hi, false);
                                changed = true;
                            }
                        }
                    }
                    if lo[v.0] > hi[v.0] + tol {
                        return PropResult::Infeasible;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        PropResult::Ok
    }

    fn round_bound(&self, v: VarId, value: f64, is_lower: bool) -> f64 {
        let kind = self.problem.kinds()[v.0];
        let value = value.clamp(kind.lo(), kind.hi());
        if kind.is_integral() {
            if is_lower {
                (value - self.cfg.tolerance).ceil()
            } else {
                (value + self.cfg.tolerance).floor()
            }
        } else {
            value
        }
    }

    /// A valid lower bound on the objective under the given bounds: the
    /// bounds-only term (each variable at its objective-cheapest bound)
    /// plus, for every *active* covering group not already satisfied at the
    /// lower bounds, the cheapest member still available. A group is active
    /// when its covering row is unconditional or some trigger variable is
    /// fixed to 1. The member sets are variable-disjoint, so the extra
    /// terms add without double counting; an active group with no member
    /// left is an infeasibility proof (bound `+inf`).
    fn lower_bound(&self, lo: &[f64], hi: &[f64]) -> f64 {
        let obj = self.problem.objective();
        let mut bound: f64 = obj
            .iter()
            .enumerate()
            .map(|(i, &c)| if c >= 0.0 { c * lo[i] } else { c * hi[i] })
            .sum();
        let tol = self.cfg.tolerance;
        'groups: for group in &self.cover_groups {
            if !group.always && !group.triggers.iter().any(|&t| lo[t] >= 1.0 - tol) {
                continue;
            }
            let mut cheapest = f64::INFINITY;
            for &i in &group.members {
                if lo[i] >= 1.0 - tol {
                    // Already selected: its cost is in the bounds-only term.
                    continue 'groups;
                }
                if hi[i] >= 1.0 - tol {
                    cheapest = cheapest.min(obj[i]);
                }
            }
            bound += cheapest;
            if bound.is_infinite() {
                break;
            }
        }
        bound
    }

    /// The objective-cheapest completion of the current bounds: every
    /// unfixed variable sits at whichever bound minimizes its objective
    /// term. Its objective equals the node's lower bound, so if it is
    /// feasible it is optimal for the whole subtree.
    fn cheap_completion(&self, lo: &[f64], hi: &[f64]) -> Vec<f64> {
        self.problem
            .objective()
            .iter()
            .enumerate()
            .map(|(i, &c)| if c >= 0.0 { lo[i] } else { hi[i] })
            .collect()
    }

    /// Picks a branching variable: among the unfixed integral variables of
    /// the first constraint violated by the cheap completion, the one with
    /// the largest-magnitude objective coefficient (deciding expensive
    /// variables first moves the lower bound fastest), falling back to the
    /// costliest unfixed integral variable overall. Ties break on the lowest
    /// index, so the choice is deterministic.
    fn pick_branch_var(&self, lo: &[f64], hi: &[f64], completion: &[f64]) -> Option<usize> {
        let tol = self.cfg.tolerance;
        let obj = self.problem.objective();
        let unfixed = |i: usize| self.problem.kinds()[i].is_integral() && hi[i] - lo[i] > tol;
        let costliest = |vars: &mut dyn Iterator<Item = usize>| -> Option<usize> {
            vars.filter(|&i| unfixed(i)).max_by(|&a, &b| {
                obj[a].abs().total_cmp(&obj[b].abs()).then(b.cmp(&a)) // prefer the lower index on ties
            })
        };
        for c in self.problem.constraints() {
            let lhs: f64 = c.terms.iter().map(|(v, coef)| coef * completion[v.0]).sum();
            let violated = match c.cmp {
                Cmp::Le => lhs > c.rhs + tol,
                Cmp::Ge => lhs < c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() > tol,
            };
            if violated {
                if let Some(v) = costliest(&mut c.terms.iter().map(|(v, _)| v.0)) {
                    return Some(v);
                }
            }
        }
        costliest(&mut (0..self.problem.num_vars()))
    }

    /// Depth-first branch-and-bound over an explicit worklist. The search
    /// tree's depth scales with the number of integral variables (thousands
    /// for extraction problems over large e-graphs), so descending by
    /// recursion overflows thread stacks; the LIFO worklist preserves the
    /// recursive exploration order exactly.
    fn branch(&mut self, lo: Vec<f64>, hi: Vec<f64>) {
        let mut stack: Vec<(Vec<f64>, Vec<f64>)> = vec![(lo, hi)];
        while let Some((lo, hi)) = stack.pop() {
            if self.hit_limit {
                break;
            }
            self.expand(lo, hi, &mut stack);
        }
    }

    /// Processes one branch-and-bound node, pushing its children onto the
    /// worklist (in reverse, so they pop in the original recursive order).
    fn expand(
        &mut self,
        mut lo: Vec<f64>,
        mut hi: Vec<f64>,
        stack: &mut Vec<(Vec<f64>, Vec<f64>)>,
    ) {
        self.nodes += 1;
        if self.out_of_budget() {
            return;
        }
        if self.propagate(&mut lo, &mut hi) == PropResult::Infeasible {
            return;
        }
        let bound = self.lower_bound(&lo, &hi);
        if bound >= self.best_objective - self.cfg.tolerance {
            return;
        }

        // If the cheapest completion of the remaining freedom is feasible,
        // it is optimal for this subtree: record it and stop descending.
        let completion = self.cheap_completion(&lo, &hi);
        if self
            .problem
            .is_feasible(&completion, self.cfg.tolerance * 10.0)
        {
            let obj = self.problem.objective_value(&completion);
            if obj < self.best_objective - self.cfg.tolerance {
                self.best_objective = obj;
                self.best_values = Some(completion);
            }
            return;
        }

        // Pick a branching variable guided by the violated constraints.
        let branch_var = self.pick_branch_var(&lo, &hi, &completion);

        match branch_var {
            None => {
                // All integral variables fixed: complete the continuous
                // variables at their propagated lower bounds and check.
                let mut values: Vec<f64> = lo.clone();
                for (i, k) in self.problem.kinds().iter().enumerate() {
                    if k.is_integral() {
                        values[i] = lo[i].round();
                    }
                }
                if self.problem.is_feasible(&values, self.cfg.tolerance * 10.0) {
                    let obj = self.problem.objective_value(&values);
                    if obj < self.best_objective - self.cfg.tolerance {
                        self.best_objective = obj;
                        self.best_values = Some(values);
                    }
                }
            }
            Some(i) => {
                // Enumerate candidate values for the branching variable,
                // trying the hinted value first, then the objective-cheaper
                // bound.
                let lo_i = lo[i];
                let hi_i = hi[i];
                let mut candidates: Vec<f64> = vec![];
                if let Some(h) = self.hint {
                    if let Some(&hv) = h.get(i) {
                        let hv = hv.round();
                        if hv >= lo_i - self.cfg.tolerance && hv <= hi_i + self.cfg.tolerance {
                            candidates.push(hv);
                        }
                    }
                }
                let cheap_first = if self.problem.objective()[i] >= 0.0 {
                    [lo_i, hi_i]
                } else {
                    [hi_i, lo_i]
                };
                for v in cheap_first {
                    let v = v.round();
                    if !candidates.iter().any(|&c| (c - v).abs() < 0.5) {
                        candidates.push(v);
                    }
                }
                // For wide integer domains also split at the midpoint rather
                // than enumerating every value.
                if hi_i - lo_i > 1.5 {
                    // Branch as [lo, mid] and [mid+1, hi] instead of value
                    // enumeration; the left half is explored first.
                    let mid = ((lo_i + hi_i) / 2.0).floor();
                    let mut left_hi = hi.clone();
                    left_hi[i] = mid;
                    let mut right_lo = lo.clone();
                    right_lo[i] = mid + 1.0;
                    stack.push((right_lo, hi));
                    stack.push((lo, left_hi));
                    return;
                }
                for v in candidates.into_iter().rev() {
                    if v < lo_i - self.cfg.tolerance || v > hi_i + self.cfg.tolerance {
                        continue;
                    }
                    let mut new_lo = lo.clone();
                    let mut new_hi = hi.clone();
                    new_lo[i] = v;
                    new_hi[i] = v;
                    stack.push((new_lo, new_hi));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Problem};

    #[test]
    fn picks_cheapest_cover() {
        // minimize x + 2y s.t. x + y >= 1
        let mut p = Problem::new();
        let x = p.add_binary(1.0);
        let y = p.add_binary(2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        let sol = Solver::default().solve(&p);
        assert_eq!(sol.status, Status::Optimal);
        assert_eq!(sol.value(x), 1.0);
        assert_eq!(sol.value(y), 0.0);
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn exactly_one_constraint() {
        // minimize 3a + 2b + 5c s.t. a + b + c == 1
        let mut p = Problem::new();
        let a = p.add_binary(3.0);
        let b = p.add_binary(2.0);
        let c = p.add_binary(5.0);
        p.add_constraint(vec![(a, 1.0), (b, 1.0), (c, 1.0)], Cmp::Eq, 1.0);
        let sol = Solver::default().solve(&p);
        assert_eq!(sol.status, Status::Optimal);
        assert_eq!(sol.value(b), 1.0);
        assert_eq!(sol.value(a) + sol.value(c), 0.0);
    }

    #[test]
    fn detects_infeasibility() {
        let mut p = Problem::new();
        let x = p.add_binary(1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        let sol = Solver::default().solve(&p);
        assert_eq!(sol.status, Status::Infeasible);
        assert!(!sol.has_solution());
    }

    #[test]
    fn knapsack_style_problem() {
        // maximize value = minimize -value, subject to weight <= 10.
        // items: (value, weight): (6,5), (5,4), (5,4), (1,1)
        let values = [6.0, 5.0, 5.0, 1.0];
        let weights = [5.0, 4.0, 4.0, 1.0];
        let mut p = Problem::new();
        let vars: Vec<_> = values.iter().map(|&v| p.add_binary(-v)).collect();
        p.add_constraint(
            vars.iter().zip(weights).map(|(&v, w)| (v, w)).collect(),
            Cmp::Le,
            10.0,
        );
        let sol = Solver::default().solve(&p);
        assert_eq!(sol.status, Status::Optimal);
        // Best is items 1, 2 and 4: value 12 at weight 10.
        assert!((sol.objective + 12.0).abs() < 1e-6);
        assert_eq!(sol.value(vars[0]), 1.0);
        assert_eq!(sol.value(vars[3]), 1.0);
    }

    #[test]
    fn implication_constraints_extraction_shape() {
        // A tiny extraction-like problem:
        //   pick exactly one of {r1, r2} (root class),
        //   r1 requires a, r2 requires b and c,
        //   costs: r1=10, r2=1, a=1, b=2, c=3.
        // Best: r2 + b + c = 6 < r1 + a = 11.
        let mut p = Problem::new();
        let r1 = p.add_binary(10.0);
        let r2 = p.add_binary(1.0);
        let a = p.add_binary(1.0);
        let b = p.add_binary(2.0);
        let c = p.add_binary(3.0);
        p.add_constraint(vec![(r1, 1.0), (r2, 1.0)], Cmp::Eq, 1.0);
        // r1 <= a, r2 <= b, r2 <= c
        p.add_constraint(vec![(r1, 1.0), (a, -1.0)], Cmp::Le, 0.0);
        p.add_constraint(vec![(r2, 1.0), (b, -1.0)], Cmp::Le, 0.0);
        p.add_constraint(vec![(r2, 1.0), (c, -1.0)], Cmp::Le, 0.0);
        let sol = Solver::default().solve(&p);
        assert_eq!(sol.status, Status::Optimal);
        assert_eq!(sol.value(r2), 1.0);
        assert_eq!(sol.value(b), 1.0);
        assert_eq!(sol.value(c), 1.0);
        assert_eq!(sol.value(r1), 0.0);
        assert!((sol.objective - 6.0).abs() < 1e-6);
    }

    #[test]
    fn continuous_difference_constraints() {
        // Topological-order style constraints: x binary selects an edge that
        // forces t1 >= t0 + 0.1; both t in [0,1]. With x forced to 1 the
        // problem stays feasible; with an additional reversed edge it becomes
        // infeasible (a cycle).
        let mut p = Problem::new();
        let x = p.add_binary(0.0);
        let t0 = p.add_continuous(0.0, 1.0, 0.0);
        let t1 = p.add_continuous(0.0, 1.0, 0.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0); // force x = 1
        let big_a = 2.0;
        // t1 - t0 - 0.1 + A(1-x) >= 0  ->  t1 - t0 + A*(-x) >= 0.1 - A
        p.add_constraint(
            vec![(t1, 1.0), (t0, -1.0), (x, -big_a)],
            Cmp::Ge,
            0.1 - big_a,
        );
        let sol = Solver::default().solve(&p);
        assert_eq!(sol.status, Status::Optimal);
        assert!(sol.value(t1) >= sol.value(t0) + 0.1 - 1e-6);

        // Now add the reverse ordering too: t0 >= t1 + 0.1 -> infeasible.
        p.add_constraint(
            vec![(t0, 1.0), (t1, -1.0), (x, -big_a)],
            Cmp::Ge,
            0.1 - big_a,
        );
        let sol = Solver::default().solve(&p);
        assert_eq!(sol.status, Status::Infeasible);
    }

    #[test]
    fn warm_start_is_used_and_improved() {
        let mut p = Problem::new();
        let x = p.add_binary(1.0);
        let y = p.add_binary(2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        // Hint the expensive solution; the solver must still find the optimum.
        let sol = Solver::default().solve_with_hint(&p, &[0.0, 1.0]);
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn node_limit_returns_feasible_incumbent() {
        // With a node limit of 1 and a feasible hint, we keep the hint.
        let mut p = Problem::new();
        let x = p.add_binary(1.0);
        let y = p.add_binary(2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        let solver = Solver {
            node_limit: 1,
            ..Default::default()
        };
        let sol = solver.solve_with_hint(&p, &[1.0, 1.0]);
        assert_eq!(sol.status, Status::Feasible);
        assert!((sol.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn presolve_fixes_implied_variables() {
        // x >= 1 and y <= 0 are implied outright: presolve must fix both
        // before any branching happens.
        let mut p = Problem::new();
        let x = p.add_binary(1.0);
        let y = p.add_binary(1.0);
        let z = p.add_binary(1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0);
        p.add_constraint(vec![(y, 1.0)], Cmp::Le, 0.0);
        p.add_constraint(vec![(x, 1.0), (z, 1.0)], Cmp::Ge, 1.0);
        let sol = Solver::default().solve(&p);
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective - 1.0).abs() < 1e-6);
        assert!(sol.presolve_fixed >= 2, "x and y are implied");
    }

    #[test]
    fn presolve_proves_infeasibility_without_branching() {
        let mut p = Problem::new();
        let x = p.add_binary(1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 0.0);
        let sol = Solver::default().solve(&p);
        assert_eq!(sol.status, Status::Infeasible);
        assert_eq!(sol.nodes_explored, 0);
    }

    #[test]
    fn cover_bound_certifies_optimal_hint_quickly() {
        // Three disjoint "pick one of the class" groups: the per-group
        // cheapest-member bound equals the optimum, so a hinted optimal
        // incumbent must be certified in a handful of nodes, not by
        // enumerating the 2^6 lattice.
        let mut p = Problem::new();
        let mut hint = vec![0.0; 6];
        for g in 0..3 {
            let a = p.add_binary(1.0 + g as f64);
            let b = p.add_binary(2.0 + g as f64);
            p.add_constraint(vec![(a, 1.0), (b, 1.0)], Cmp::Ge, 1.0);
            hint[a.0] = 1.0;
        }
        let sol = Solver::default().solve_with_hint(&p, &hint);
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective - 6.0).abs() < 1e-6);
        assert!(
            sol.nodes_explored <= 2,
            "cover bound should prune at the root, explored {}",
            sol.nodes_explored
        );
    }

    #[test]
    fn integer_variables_with_wide_domains() {
        // minimize z s.t. z >= 7.3 with z integer in [0, 100] -> z = 8.
        let mut p = Problem::new();
        let z = p.add_integer(0, 100, 1.0);
        p.add_constraint(vec![(z, 1.0)], Cmp::Ge, 7.3);
        let sol = Solver::default().solve(&p);
        assert_eq!(sol.status, Status::Optimal);
        assert_eq!(sol.value(z), 8.0);
    }
}
