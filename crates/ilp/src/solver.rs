//! A deterministic branch-and-bound solver for mixed 0/1 linear programs.
//!
//! The solver is exact given enough time: it enumerates the integral
//! variables depth-first with constraint propagation (activity-based bound
//! tightening) at every node and prunes with a partial-assignment lower
//! bound and the best incumbent found so far. A warm-start hint can seed
//! the incumbent (TENSAT seeds it with the greedy extraction), and wall
//! clock / node limits turn the solver into an any-time procedure — the
//! role SCIP plays in the original system.
//!
//! Continuous variables (the topological-order variables of the cycle
//! constraints, paper §5.1) are handled by bound propagation: once all
//! integral variables are fixed, every continuous variable is set to its
//! propagated lower bound, which is feasible for difference-style
//! constraint systems and optimal when (as in the extraction encoding) the
//! continuous variables do not appear in the objective.

use crate::problem::{Cmp, Problem, VarId};
use std::time::{Duration, Instant};

/// Outcome of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The returned solution is provably optimal.
    Optimal,
    /// A feasible solution was found but the search hit a limit before
    /// proving optimality.
    Feasible,
    /// The problem has no feasible solution.
    Infeasible,
    /// No feasible solution was found before a limit was hit.
    Unknown,
}

/// The result of solving a [`Problem`].
#[derive(Debug, Clone)]
pub struct Solution {
    /// Solve status.
    pub status: Status,
    /// Variable values (empty when no feasible solution was found).
    pub values: Vec<f64>,
    /// Objective value of `values` (infinite when none).
    pub objective: f64,
    /// Number of branch-and-bound nodes explored.
    pub nodes_explored: usize,
    /// Wall-clock time spent.
    pub solve_time: Duration,
}

impl Solution {
    /// The value of a variable in the best solution found.
    ///
    /// # Panics
    ///
    /// Panics if no feasible solution was found.
    pub fn value(&self, var: VarId) -> f64 {
        assert!(
            !self.values.is_empty(),
            "no feasible solution was found (status {:?})",
            self.status
        );
        self.values[var.0]
    }

    /// True if a feasible assignment is available.
    pub fn has_solution(&self) -> bool {
        !self.values.is_empty()
    }
}

/// Branch-and-bound solver configuration.
#[derive(Debug, Clone)]
pub struct Solver {
    /// Wall-clock limit for the search.
    pub time_limit: Duration,
    /// Maximum number of branch-and-bound nodes.
    pub node_limit: usize,
    /// Numerical tolerance.
    pub tolerance: f64,
    /// Maximum propagation sweeps per node.
    pub max_propagation_passes: usize,
}

impl Default for Solver {
    fn default() -> Self {
        Solver {
            time_limit: Duration::from_secs(60),
            node_limit: 2_000_000,
            tolerance: 1e-6,
            max_propagation_passes: 20,
        }
    }
}

struct Search<'a> {
    problem: &'a Problem,
    cfg: &'a Solver,
    start: Instant,
    nodes: usize,
    best_values: Option<Vec<f64>>,
    best_objective: f64,
    hint: Option<&'a [f64]>,
    hit_limit: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PropResult {
    Ok,
    Infeasible,
}

impl Solver {
    /// Creates a solver with the given time limit.
    pub fn with_time_limit(time_limit: Duration) -> Self {
        Solver {
            time_limit,
            ..Default::default()
        }
    }

    /// Solves a problem to minimality (or best effort within limits).
    pub fn solve(&self, problem: &Problem) -> Solution {
        self.solve_inner(problem, None)
    }

    /// Solves with a warm-start hint: a (hopefully feasible) assignment used
    /// to seed the incumbent and guide branching.
    pub fn solve_with_hint(&self, problem: &Problem, hint: &[f64]) -> Solution {
        self.solve_inner(problem, Some(hint))
    }

    fn solve_inner(&self, problem: &Problem, hint: Option<&[f64]>) -> Solution {
        let start = Instant::now();
        let mut search = Search {
            problem,
            cfg: self,
            start,
            nodes: 0,
            best_values: None,
            best_objective: f64::INFINITY,
            hint,
            hit_limit: false,
        };
        // Seed the incumbent with the hint if it is feasible.
        if let Some(h) = hint {
            if problem.is_feasible(h, self.tolerance) {
                search.best_values = Some(h.to_vec());
                search.best_objective = problem.objective_value(h);
            }
        }
        let lo: Vec<f64> = problem.kinds().iter().map(|k| k.lo()).collect();
        let hi: Vec<f64> = problem.kinds().iter().map(|k| k.hi()).collect();
        search.branch(lo, hi);

        let solve_time = start.elapsed();
        let (status, values, objective) = match (&search.best_values, search.hit_limit) {
            (Some(v), false) => (Status::Optimal, v.clone(), search.best_objective),
            (Some(v), true) => (Status::Feasible, v.clone(), search.best_objective),
            (None, false) => (Status::Infeasible, vec![], f64::INFINITY),
            (None, true) => (Status::Unknown, vec![], f64::INFINITY),
        };
        Solution {
            status,
            values,
            objective,
            nodes_explored: search.nodes,
            solve_time,
        }
    }
}

impl<'a> Search<'a> {
    fn out_of_budget(&mut self) -> bool {
        if self.nodes >= self.cfg.node_limit || self.start.elapsed() >= self.cfg.time_limit {
            self.hit_limit = true;
            true
        } else {
            false
        }
    }

    /// Activity-based bound tightening, iterated to (bounded) fixpoint.
    fn propagate(&self, lo: &mut [f64], hi: &mut [f64]) -> PropResult {
        let tol = self.cfg.tolerance;
        for _ in 0..self.cfg.max_propagation_passes {
            let mut changed = false;
            for c in self.problem.constraints() {
                // Minimum and maximum possible activity under current bounds.
                let mut min_act = 0.0;
                let mut max_act = 0.0;
                for &(v, coef) in &c.terms {
                    if coef >= 0.0 {
                        min_act += coef * lo[v.0];
                        max_act += coef * hi[v.0];
                    } else {
                        min_act += coef * hi[v.0];
                        max_act += coef * lo[v.0];
                    }
                }
                let need_le = matches!(c.cmp, Cmp::Le | Cmp::Eq);
                let need_ge = matches!(c.cmp, Cmp::Ge | Cmp::Eq);
                if need_le && min_act > c.rhs + tol {
                    return PropResult::Infeasible;
                }
                if need_ge && max_act < c.rhs - tol {
                    return PropResult::Infeasible;
                }
                // Tighten each variable against the residual activity.
                for &(v, coef) in &c.terms {
                    if coef == 0.0 {
                        continue;
                    }
                    let (own_min, own_max) = if coef >= 0.0 {
                        (coef * lo[v.0], coef * hi[v.0])
                    } else {
                        (coef * hi[v.0], coef * lo[v.0])
                    };
                    if need_le {
                        // coef * x <= rhs - (min_act - own_min)
                        let slack = c.rhs - (min_act - own_min);
                        if coef > 0.0 {
                            let new_hi = slack / coef;
                            if new_hi < hi[v.0] - tol {
                                hi[v.0] = self.round_bound(v, new_hi, false);
                                changed = true;
                            }
                        } else {
                            let new_lo = slack / coef;
                            if new_lo > lo[v.0] + tol {
                                lo[v.0] = self.round_bound(v, new_lo, true);
                                changed = true;
                            }
                        }
                    }
                    if need_ge {
                        // coef * x >= rhs - (max_act - own_max)
                        let slack = c.rhs - (max_act - own_max);
                        if coef > 0.0 {
                            let new_lo = slack / coef;
                            if new_lo > lo[v.0] + tol {
                                lo[v.0] = self.round_bound(v, new_lo, true);
                                changed = true;
                            }
                        } else {
                            let new_hi = slack / coef;
                            if new_hi < hi[v.0] - tol {
                                hi[v.0] = self.round_bound(v, new_hi, false);
                                changed = true;
                            }
                        }
                    }
                    if lo[v.0] > hi[v.0] + tol {
                        return PropResult::Infeasible;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        PropResult::Ok
    }

    fn round_bound(&self, v: VarId, value: f64, is_lower: bool) -> f64 {
        let kind = self.problem.kinds()[v.0];
        let value = value.clamp(kind.lo(), kind.hi());
        if kind.is_integral() {
            if is_lower {
                (value - self.cfg.tolerance).ceil()
            } else {
                (value + self.cfg.tolerance).floor()
            }
        } else {
            value
        }
    }

    /// A valid lower bound on the objective under the given bounds.
    fn lower_bound(&self, lo: &[f64], hi: &[f64]) -> f64 {
        self.problem
            .objective()
            .iter()
            .enumerate()
            .map(|(i, &c)| if c >= 0.0 { c * lo[i] } else { c * hi[i] })
            .sum()
    }

    /// The objective-cheapest completion of the current bounds: every
    /// unfixed variable sits at whichever bound minimizes its objective
    /// term. Its objective equals the node's lower bound, so if it is
    /// feasible it is optimal for the whole subtree.
    fn cheap_completion(&self, lo: &[f64], hi: &[f64]) -> Vec<f64> {
        self.problem
            .objective()
            .iter()
            .enumerate()
            .map(|(i, &c)| if c >= 0.0 { lo[i] } else { hi[i] })
            .collect()
    }

    /// Picks a branching variable: the first unfixed integral variable that
    /// appears in a constraint violated by the cheap completion, falling
    /// back to the first unfixed integral variable.
    fn pick_branch_var(&self, lo: &[f64], hi: &[f64], completion: &[f64]) -> Option<usize> {
        let tol = self.cfg.tolerance;
        let unfixed = |i: usize| self.problem.kinds()[i].is_integral() && hi[i] - lo[i] > tol;
        for c in self.problem.constraints() {
            let lhs: f64 = c.terms.iter().map(|(v, coef)| coef * completion[v.0]).sum();
            let violated = match c.cmp {
                Cmp::Le => lhs > c.rhs + tol,
                Cmp::Ge => lhs < c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() > tol,
            };
            if violated {
                if let Some(&(v, _)) = c.terms.iter().find(|(v, _)| unfixed(v.0)) {
                    return Some(v.0);
                }
            }
        }
        (0..self.problem.num_vars()).find(|&i| unfixed(i))
    }

    /// Depth-first branch-and-bound over an explicit worklist. The search
    /// tree's depth scales with the number of integral variables (thousands
    /// for extraction problems over large e-graphs), so descending by
    /// recursion overflows thread stacks; the LIFO worklist preserves the
    /// recursive exploration order exactly.
    fn branch(&mut self, lo: Vec<f64>, hi: Vec<f64>) {
        let mut stack: Vec<(Vec<f64>, Vec<f64>)> = vec![(lo, hi)];
        while let Some((lo, hi)) = stack.pop() {
            if self.hit_limit {
                break;
            }
            self.expand(lo, hi, &mut stack);
        }
    }

    /// Processes one branch-and-bound node, pushing its children onto the
    /// worklist (in reverse, so they pop in the original recursive order).
    fn expand(
        &mut self,
        mut lo: Vec<f64>,
        mut hi: Vec<f64>,
        stack: &mut Vec<(Vec<f64>, Vec<f64>)>,
    ) {
        self.nodes += 1;
        if self.out_of_budget() {
            return;
        }
        if self.propagate(&mut lo, &mut hi) == PropResult::Infeasible {
            return;
        }
        let bound = self.lower_bound(&lo, &hi);
        if bound >= self.best_objective - self.cfg.tolerance {
            return;
        }

        // If the cheapest completion of the remaining freedom is feasible,
        // it is optimal for this subtree: record it and stop descending.
        let completion = self.cheap_completion(&lo, &hi);
        if self
            .problem
            .is_feasible(&completion, self.cfg.tolerance * 10.0)
        {
            let obj = self.problem.objective_value(&completion);
            if obj < self.best_objective - self.cfg.tolerance {
                self.best_objective = obj;
                self.best_values = Some(completion);
            }
            return;
        }

        // Pick a branching variable guided by the violated constraints.
        let branch_var = self.pick_branch_var(&lo, &hi, &completion);

        match branch_var {
            None => {
                // All integral variables fixed: complete the continuous
                // variables at their propagated lower bounds and check.
                let mut values: Vec<f64> = lo.clone();
                for (i, k) in self.problem.kinds().iter().enumerate() {
                    if k.is_integral() {
                        values[i] = lo[i].round();
                    }
                }
                if self.problem.is_feasible(&values, self.cfg.tolerance * 10.0) {
                    let obj = self.problem.objective_value(&values);
                    if obj < self.best_objective - self.cfg.tolerance {
                        self.best_objective = obj;
                        self.best_values = Some(values);
                    }
                }
            }
            Some(i) => {
                // Enumerate candidate values for the branching variable,
                // trying the hinted value first, then the objective-cheaper
                // bound.
                let lo_i = lo[i];
                let hi_i = hi[i];
                let mut candidates: Vec<f64> = vec![];
                if let Some(h) = self.hint {
                    if let Some(&hv) = h.get(i) {
                        let hv = hv.round();
                        if hv >= lo_i - self.cfg.tolerance && hv <= hi_i + self.cfg.tolerance {
                            candidates.push(hv);
                        }
                    }
                }
                let cheap_first = if self.problem.objective()[i] >= 0.0 {
                    [lo_i, hi_i]
                } else {
                    [hi_i, lo_i]
                };
                for v in cheap_first {
                    let v = v.round();
                    if !candidates.iter().any(|&c| (c - v).abs() < 0.5) {
                        candidates.push(v);
                    }
                }
                // For wide integer domains also split at the midpoint rather
                // than enumerating every value.
                if hi_i - lo_i > 1.5 {
                    // Branch as [lo, mid] and [mid+1, hi] instead of value
                    // enumeration; the left half is explored first.
                    let mid = ((lo_i + hi_i) / 2.0).floor();
                    let mut left_hi = hi.clone();
                    left_hi[i] = mid;
                    let mut right_lo = lo.clone();
                    right_lo[i] = mid + 1.0;
                    stack.push((right_lo, hi));
                    stack.push((lo, left_hi));
                    return;
                }
                for v in candidates.into_iter().rev() {
                    if v < lo_i - self.cfg.tolerance || v > hi_i + self.cfg.tolerance {
                        continue;
                    }
                    let mut new_lo = lo.clone();
                    let mut new_hi = hi.clone();
                    new_lo[i] = v;
                    new_hi[i] = v;
                    stack.push((new_lo, new_hi));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Problem};

    #[test]
    fn picks_cheapest_cover() {
        // minimize x + 2y s.t. x + y >= 1
        let mut p = Problem::new();
        let x = p.add_binary(1.0);
        let y = p.add_binary(2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        let sol = Solver::default().solve(&p);
        assert_eq!(sol.status, Status::Optimal);
        assert_eq!(sol.value(x), 1.0);
        assert_eq!(sol.value(y), 0.0);
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn exactly_one_constraint() {
        // minimize 3a + 2b + 5c s.t. a + b + c == 1
        let mut p = Problem::new();
        let a = p.add_binary(3.0);
        let b = p.add_binary(2.0);
        let c = p.add_binary(5.0);
        p.add_constraint(vec![(a, 1.0), (b, 1.0), (c, 1.0)], Cmp::Eq, 1.0);
        let sol = Solver::default().solve(&p);
        assert_eq!(sol.status, Status::Optimal);
        assert_eq!(sol.value(b), 1.0);
        assert_eq!(sol.value(a) + sol.value(c), 0.0);
    }

    #[test]
    fn detects_infeasibility() {
        let mut p = Problem::new();
        let x = p.add_binary(1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        let sol = Solver::default().solve(&p);
        assert_eq!(sol.status, Status::Infeasible);
        assert!(!sol.has_solution());
    }

    #[test]
    fn knapsack_style_problem() {
        // maximize value = minimize -value, subject to weight <= 10.
        // items: (value, weight): (6,5), (5,4), (5,4), (1,1)
        let values = [6.0, 5.0, 5.0, 1.0];
        let weights = [5.0, 4.0, 4.0, 1.0];
        let mut p = Problem::new();
        let vars: Vec<_> = values.iter().map(|&v| p.add_binary(-v)).collect();
        p.add_constraint(
            vars.iter().zip(weights).map(|(&v, w)| (v, w)).collect(),
            Cmp::Le,
            10.0,
        );
        let sol = Solver::default().solve(&p);
        assert_eq!(sol.status, Status::Optimal);
        // Best is items 1, 2 and 4: value 12 at weight 10.
        assert!((sol.objective + 12.0).abs() < 1e-6);
        assert_eq!(sol.value(vars[0]), 1.0);
        assert_eq!(sol.value(vars[3]), 1.0);
    }

    #[test]
    fn implication_constraints_extraction_shape() {
        // A tiny extraction-like problem:
        //   pick exactly one of {r1, r2} (root class),
        //   r1 requires a, r2 requires b and c,
        //   costs: r1=10, r2=1, a=1, b=2, c=3.
        // Best: r2 + b + c = 6 < r1 + a = 11.
        let mut p = Problem::new();
        let r1 = p.add_binary(10.0);
        let r2 = p.add_binary(1.0);
        let a = p.add_binary(1.0);
        let b = p.add_binary(2.0);
        let c = p.add_binary(3.0);
        p.add_constraint(vec![(r1, 1.0), (r2, 1.0)], Cmp::Eq, 1.0);
        // r1 <= a, r2 <= b, r2 <= c
        p.add_constraint(vec![(r1, 1.0), (a, -1.0)], Cmp::Le, 0.0);
        p.add_constraint(vec![(r2, 1.0), (b, -1.0)], Cmp::Le, 0.0);
        p.add_constraint(vec![(r2, 1.0), (c, -1.0)], Cmp::Le, 0.0);
        let sol = Solver::default().solve(&p);
        assert_eq!(sol.status, Status::Optimal);
        assert_eq!(sol.value(r2), 1.0);
        assert_eq!(sol.value(b), 1.0);
        assert_eq!(sol.value(c), 1.0);
        assert_eq!(sol.value(r1), 0.0);
        assert!((sol.objective - 6.0).abs() < 1e-6);
    }

    #[test]
    fn continuous_difference_constraints() {
        // Topological-order style constraints: x binary selects an edge that
        // forces t1 >= t0 + 0.1; both t in [0,1]. With x forced to 1 the
        // problem stays feasible; with an additional reversed edge it becomes
        // infeasible (a cycle).
        let mut p = Problem::new();
        let x = p.add_binary(0.0);
        let t0 = p.add_continuous(0.0, 1.0, 0.0);
        let t1 = p.add_continuous(0.0, 1.0, 0.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0); // force x = 1
        let big_a = 2.0;
        // t1 - t0 - 0.1 + A(1-x) >= 0  ->  t1 - t0 + A*(-x) >= 0.1 - A
        p.add_constraint(
            vec![(t1, 1.0), (t0, -1.0), (x, -big_a)],
            Cmp::Ge,
            0.1 - big_a,
        );
        let sol = Solver::default().solve(&p);
        assert_eq!(sol.status, Status::Optimal);
        assert!(sol.value(t1) >= sol.value(t0) + 0.1 - 1e-6);

        // Now add the reverse ordering too: t0 >= t1 + 0.1 -> infeasible.
        p.add_constraint(
            vec![(t0, 1.0), (t1, -1.0), (x, -big_a)],
            Cmp::Ge,
            0.1 - big_a,
        );
        let sol = Solver::default().solve(&p);
        assert_eq!(sol.status, Status::Infeasible);
    }

    #[test]
    fn warm_start_is_used_and_improved() {
        let mut p = Problem::new();
        let x = p.add_binary(1.0);
        let y = p.add_binary(2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        // Hint the expensive solution; the solver must still find the optimum.
        let sol = Solver::default().solve_with_hint(&p, &[0.0, 1.0]);
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn node_limit_returns_feasible_incumbent() {
        // With a node limit of 1 and a feasible hint, we keep the hint.
        let mut p = Problem::new();
        let x = p.add_binary(1.0);
        let y = p.add_binary(2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        let solver = Solver {
            node_limit: 1,
            ..Default::default()
        };
        let sol = solver.solve_with_hint(&p, &[1.0, 1.0]);
        assert_eq!(sol.status, Status::Feasible);
        assert!((sol.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn integer_variables_with_wide_domains() {
        // minimize z s.t. z >= 7.3 with z integer in [0, 100] -> z = 8.
        let mut p = Problem::new();
        let z = p.add_integer(0, 100, 1.0);
        p.add_constraint(vec![(z, 1.0)], Cmp::Ge, 7.3);
        let sol = Solver::default().solve(&p);
        assert_eq!(sol.status, Status::Optimal);
        assert_eq!(sol.value(z), 8.0);
    }
}
