//! # tensat-ilp
//!
//! A small, dependency-free mixed 0/1 linear-programming solver used by
//! TENSAT's ILP extraction phase (the original system uses SCIP via Google
//! OR-tools; this crate plays that role).
//!
//! The solver is an exact branch-and-bound over the integral variables with
//! activity-based constraint propagation, warm starting, and wall-clock /
//! node limits so it can be used as an any-time procedure — extraction
//! keeps the best incumbent if the limit fires, just as the paper's setup
//! keeps running under a one-hour SCIP timeout.
//!
//! ```
//! use tensat_ilp::{Problem, Cmp, Solver, Status};
//! // minimize 3a + 2b  subject to  a + b >= 1
//! let mut p = Problem::new();
//! let a = p.add_binary(3.0);
//! let b = p.add_binary(2.0);
//! p.add_constraint(vec![(a, 1.0), (b, 1.0)], Cmp::Ge, 1.0);
//! let sol = Solver::default().solve(&p);
//! assert_eq!(sol.status, Status::Optimal);
//! assert_eq!(sol.value(b), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod problem;
mod solver;

pub use problem::{Cmp, Constraint, Problem, VarId, VarKind};
pub use solver::{Solution, Solver, Status};
