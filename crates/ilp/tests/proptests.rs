//! Property tests comparing the branch-and-bound solver against brute-force
//! enumeration on small random 0/1 problems.

use proptest::prelude::*;
use tensat_ilp::{Cmp, Problem, Solver, Status};

#[derive(Debug, Clone)]
struct RandomProblem {
    costs: Vec<f64>,
    constraints: Vec<(Vec<f64>, u8, f64)>,
}

fn problem_strategy() -> impl Strategy<Value = RandomProblem> {
    let n_vars = 2usize..6;
    n_vars.prop_flat_map(|n| {
        let costs = prop::collection::vec(0.0f64..10.0, n..=n);
        let constraint = (
            prop::collection::vec(-2.0f64..2.0, n..=n),
            0u8..3,
            -2.0f64..3.0,
        );
        let constraints = prop::collection::vec(constraint, 1..4);
        (costs, constraints).prop_map(|(costs, constraints)| RandomProblem { costs, constraints })
    })
}

fn build(p: &RandomProblem) -> Problem {
    let mut prob = Problem::new();
    let vars: Vec<_> = p.costs.iter().map(|&c| prob.add_binary(c)).collect();
    for (coefs, cmp, rhs) in &p.constraints {
        let cmp = match cmp {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        prob.add_constraint(
            vars.iter().zip(coefs).map(|(&v, &c)| (v, c)).collect(),
            cmp,
            *rhs,
        );
    }
    prob
}

/// Brute force over all 2^n assignments.
fn brute_force(prob: &Problem, n: usize) -> Option<f64> {
    let mut best: Option<f64> = None;
    for mask in 0..(1u32 << n) {
        let values: Vec<f64> = (0..n)
            .map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 })
            .collect();
        if prob.is_feasible(&values, 1e-9) {
            let obj = prob.objective_value(&values);
            best = Some(best.map_or(obj, |b: f64| b.min(obj)));
        }
    }
    best
}

proptest! {
    /// The solver agrees with brute force on feasibility and optimal value.
    #[test]
    fn solver_matches_brute_force(rp in problem_strategy()) {
        let prob = build(&rp);
        let n = rp.costs.len();
        let reference = brute_force(&prob, n);
        let sol = Solver::default().solve(&prob);
        match reference {
            None => prop_assert_eq!(sol.status, Status::Infeasible),
            Some(best) => {
                prop_assert_eq!(sol.status, Status::Optimal);
                prop_assert!((sol.objective - best).abs() < 1e-6,
                    "solver got {} but brute force got {}", sol.objective, best);
                // The returned assignment must itself be feasible.
                prop_assert!(prob.is_feasible(&sol.values, 1e-6));
            }
        }
    }

    /// Warm starting with any assignment never changes the optimum.
    #[test]
    fn warm_start_does_not_change_optimum(rp in problem_strategy(), seed in 0u32..16) {
        let prob = build(&rp);
        let n = rp.costs.len();
        let hint: Vec<f64> = (0..n).map(|i| ((seed >> i) & 1) as f64).collect();
        let plain = Solver::default().solve(&prob);
        let hinted = Solver::default().solve_with_hint(&prob, &hint);
        prop_assert_eq!(plain.status, hinted.status);
        if plain.status == Status::Optimal {
            prop_assert!((plain.objective - hinted.objective).abs() < 1e-6);
        }
    }
}
