//! The `TENSAT_VERIFY_RULES=1` registration-time gate: constructing an
//! [`Optimizer`] with an unsound rule must panic with the verifier's
//! report, and the shipped rule set must construct cleanly.
//!
//! Lives in its own integration-test binary: the gate caches the
//! environment variable on first read, so the variable must be set before
//! *any* optimizer is constructed in the process.

use tensat_core::{Optimizer, OptimizerConfig};
use tensat_egraph::Rewrite;
use tensat_rules::parse_pattern;

#[test]
fn registration_gate_rejects_unsound_rules_and_accepts_shipped_ones() {
    std::env::set_var("TENSAT_VERIFY_RULES", "1");

    // The shipped corpus passes the gate.
    let _ = Optimizer::new(OptimizerConfig::default());

    // An unconditional shape-changing rule does not. (The rule is built
    // inside the closure: rewrites hold `dyn Fn` guards, which are not
    // `UnwindSafe` to borrow across the catch boundary.)
    let result = std::panic::catch_unwind(|| {
        let bad = Rewrite::new(
            "ewadd-to-concat",
            parse_pattern("(ewadd ?x ?y)").unwrap(),
            parse_pattern("(concat2 0 ?x ?y)").unwrap(),
        );
        Optimizer::with_rules(OptimizerConfig::default(), vec![bad], vec![])
    });
    let err = result.expect_err("unsound rule must be rejected at registration");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("failed static verification") && msg.contains("unsound-shape"),
        "unexpected panic message: {msg}"
    );
}
