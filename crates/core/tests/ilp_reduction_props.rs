//! Differential property test of the reduced ILP extraction against the
//! monolithic §5.1 oracle on random explored tensor e-graphs.
//!
//! The reduction pipeline (root-reachable restriction, dominated-candidate
//! pruning, transitive single-candidate forcing, component decomposition —
//! see `tensat_core::extract::reduce`) is a pile of claimed-sound
//! transformations. Each has a hand-written proof sketch and unit tests,
//! but the property that actually matters is end-to-end: on *any* e-graph
//! produced by exploration, the reduced problem's optimum must equal the
//! unreduced encoding's optimum exactly, and both must be at most the
//! greedy-DAG heuristic's cost (the ILP is exact; greedy is its upper
//! bound and warm start). Random graphs plus commutativity /
//! associativity / distributivity churn produce e-classes with many
//! incomparable candidates, exercising dominance ties, forced closures,
//! and multi-component residues far beyond the hand-built unit fixtures.

use proptest::prelude::*;
use std::time::Duration;
use tensat_core::{
    explore, extract_greedy_dag, extract_ilp, ExplorationConfig, ExplorationMode, IlpConfig,
};
use tensat_egraph::RecExpr;
use tensat_ilp::Status;
use tensat_ir::{CostModel, GraphBuilder, TensorAnalysis, TensorEGraph, TensorLang};
use tensat_rules::{multi_rules, rw, single_rules, TensorRewrite};

/// A random graph-building step over `[8, 8]` tensors; operand indices
/// pick among earlier nodes modulo the current length, so any `usize` is
/// valid.
#[derive(Debug, Clone)]
enum Op {
    Relu(usize),
    Matmul(usize, usize),
    Ewadd(usize, usize),
    Ewmul(usize, usize),
}

fn ops_strategy(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            any::<usize>().prop_map(Op::Relu),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Matmul(a, b)),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Ewadd(a, b)),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Ewmul(a, b)),
        ],
        1..max_len,
    )
}

/// Builds the random graph over two `[8, 8]` inputs and two `[8, 8]`
/// weights (square shapes keep every matmul well-formed); every node is an
/// output, so nothing is dead and the root `noop` tuple forces the ILP to
/// cover the whole graph.
fn build_graph(ops: &[Op]) -> RecExpr<TensorLang> {
    let mut g = GraphBuilder::new();
    let mut ids = vec![
        g.input("p", &[8, 8]),
        g.input("q", &[8, 8]),
        g.weight("w1", &[8, 8]),
        g.weight("w2", &[8, 8]),
    ];
    for op in ops {
        let pick = |r: &usize| ids[r % ids.len()];
        let id = match op {
            Op::Relu(a) => {
                let x = pick(a);
                g.relu(x)
            }
            Op::Matmul(a, b) => {
                let (x, y) = (pick(a), pick(b));
                g.matmul(x, y)
            }
            Op::Ewadd(a, b) => {
                let (x, y) = (pick(a), pick(b));
                g.ewadd(x, y)
            }
            Op::Ewmul(a, b) => {
                let (x, y) = (pick(a), pick(b));
                g.ewmul(x, y)
            }
        };
        ids.push(id);
    }
    g.finish(&ids)
}

/// The full TENSAT rule set plus extra elementwise churn. The real rules
/// (matmul associativity, the merged-matmul multi-pattern economics)
/// create classes whose candidates trade node cost against sharing — the
/// cases where greedy is suboptimal and the residual ILP must actually
/// decide; commutativity and distribution add equal-cost incomparable
/// candidates (dominance must not fire) and node-count differences.
fn churn_rules() -> Vec<TensorRewrite> {
    let mut rules = single_rules();
    rules.push(rw("ewadd-comm", "(ewadd ?a ?b)", "(ewadd ?b ?a)"));
    rules.push(rw(
        "ewmul-distribute",
        "(ewmul ?x (ewadd ?a ?b))",
        "(ewadd (ewmul ?x ?a) (ewmul ?x ?b))",
    ));
    rules
}

proptest! {
    #[test]
    fn reduced_ilp_optimum_equals_monolithic_optimum(
        ops in ops_strategy(12),
        node_limit in 200usize..1_000,
    ) {
        let graph = build_graph(&ops);
        let mut eg = TensorEGraph::new(TensorAnalysis);
        let root = eg.add_expr(&graph);
        eg.rebuild();
        explore(
            &mut eg,
            root,
            &churn_rules(),
            &multi_rules(),
            &ExplorationConfig {
                mode: ExplorationMode::Saturate,
                k_multi: 1,
                max_iter: 2,
                node_limit,
                time_limit: Duration::from_secs(600),
                search_threads: 1,
                apply_threads: Some(1),
                ..Default::default()
            },
        );

        let model = CostModel::default();
        let greedy = extract_greedy_dag(&eg, root, &model).unwrap();
        let reduced = extract_ilp(&eg, root, &model, &IlpConfig::default()).unwrap();
        let monolithic = extract_ilp(
            &eg,
            root,
            &model,
            &IlpConfig { reduce: false, ..Default::default() },
        )
        .unwrap();

        let rs = reduced.ilp.clone().unwrap();
        let ms = monolithic.ilp.clone().unwrap();
        prop_assert_eq!(rs.status, Status::Optimal);
        prop_assert_eq!(ms.status, Status::Optimal);
        // Exactness: the reduced problem's optimum is the oracle's optimum.
        prop_assert!(
            (reduced.dag_cost - monolithic.dag_cost).abs() < 1e-9,
            "reduced optimum {} != monolithic optimum {}",
            reduced.dag_cost,
            monolithic.dag_cost
        );
        // Both are true optima, so neither exceeds the greedy upper bound.
        prop_assert!(reduced.dag_cost <= greedy.dag_cost + 1e-9);
        prop_assert!(monolithic.dag_cost <= greedy.dag_cost + 1e-9);
        // The reduction's "before" stats are exactly the monolithic
        // encoding's size, and the residual problem never grows.
        prop_assert_eq!(rs.vars_before, ms.num_vars);
        prop_assert_eq!(rs.constraints_before, ms.num_constraints);
        prop_assert!(rs.num_vars <= ms.num_vars);
        prop_assert!(rs.num_constraints <= ms.num_constraints);
    }
}
