//! Watermark-honesty property test of the incremental multi-pattern
//! search (Algorithm 1's Cartesian product with per-pattern match
//! caching).
//!
//! The incremental path may only skip a combination when *every* element
//! is stale — a combination pairing a stale match with a fresh one is
//! brand new even though one side is old, and must fire. Every random
//! graph here ends in a quiet `relu` (never re-touched after the first
//! tracked rebuild conservatively stamps everything) and a `tanh` the
//! `tanh-grow` churn rule keeps feeding with fresh bindings, so the
//! stale-relu x fresh-tanh case is exercised on every run alongside
//! whatever the random prefix produces. Incremental search must be
//! bit-identical to full search on every observable: iteration
//! trajectory, e-graph counts, per-rule match sets, and greedy-DAG
//! extraction.

use proptest::prelude::*;
use std::time::Duration;
use tensat_core::{
    explore, extract_greedy_dag, ExplorationConfig, ExplorationMode, ExplorationStats,
};
use tensat_egraph::RecExpr;
use tensat_ir::{CostModel, GraphBuilder, TensorAnalysis, TensorEGraph, TensorLang};
use tensat_rules::{rw, MultiPatternRule, TensorRewrite};

/// A random graph-building step over `[8, 8]` tensors; operand indices
/// pick among earlier nodes modulo the current length, so any `usize` is
/// valid.
#[derive(Debug, Clone)]
enum Op {
    Relu(usize),
    Tanh(usize),
    Sigmoid(usize),
    Ewadd(usize, usize),
    Ewmul(usize, usize),
}

fn ops_strategy(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            any::<usize>().prop_map(Op::Relu),
            any::<usize>().prop_map(Op::Tanh),
            any::<usize>().prop_map(Op::Sigmoid),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Ewadd(a, b)),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Ewmul(a, b)),
        ],
        0..max_len,
    )
}

/// Builds the random prefix over two `[8, 8]` inputs, then appends the
/// quiet-relu / growing-tanh pair that guarantees a stale x fresh
/// combination. Every node is an output, so nothing is dead.
fn build_graph(ops: &[Op]) -> RecExpr<TensorLang> {
    let mut g = GraphBuilder::new();
    let mut ids = vec![g.input("p", &[8, 8]), g.input("q", &[8, 8])];
    for op in ops {
        let pick = |r: &usize| ids[r % ids.len()];
        let id = match op {
            Op::Relu(a) => {
                let x = pick(a);
                g.relu(x)
            }
            Op::Tanh(a) => {
                let x = pick(a);
                g.tanh(x)
            }
            Op::Sigmoid(a) => {
                let x = pick(a);
                g.sigmoid(x)
            }
            Op::Ewadd(a, b) => {
                let (x, y) = (pick(a), pick(b));
                g.ewadd(x, y)
            }
            Op::Ewmul(a, b) => {
                let (x, y) = (pick(a), pick(b));
                g.ewmul(x, y)
            }
        };
        ids.push(id);
    }
    let p = ids[0];
    let q = ids[1];
    let r = g.relu(p);
    let t = g.tanh(q);
    ids.push(r);
    ids.push(t);
    g.finish(&ids)
}

fn seeded(graph: &RecExpr<TensorLang>) -> (TensorEGraph, tensat_egraph::Id) {
    let mut eg = TensorEGraph::new(TensorAnalysis);
    let root = eg.add_expr(graph);
    eg.rebuild();
    (eg, root)
}

/// Every deterministic [`ExplorationStats`] field (wall-clock timings are
/// the one legitimately nondeterministic output).
fn trajectory(stats: &ExplorationStats) -> (usize, bool, usize, usize, usize, Vec<usize>) {
    (
        stats.iterations,
        stats.saturated,
        stats.enodes,
        stats.eclasses,
        stats.filtered_nodes,
        stats.nodes_per_iteration.clone(),
    )
}

proptest! {
    #[test]
    fn incremental_multi_search_is_bit_identical_to_full_search(
        ops in ops_strategy(10),
        with_comm in any::<bool>(),
        k_multi in 2usize..=4,
        node_limit in 400usize..2_000,
    ) {
        let graph = build_graph(&ops);

        let mut singles: Vec<TensorRewrite> =
            vec![rw("tanh-grow", "(tanh ?y)", "(tanh (ewmul ?y ?y))")];
        if with_comm {
            singles.push(rw("ewadd-commute", "(ewadd ?a ?b)", "(ewadd ?b ?a)"));
        }
        let multis = vec![
            MultiPatternRule::new(
                "quiet-pair",
                &["(relu ?x)", "(tanh ?y)"],
                &["(relu ?x)", "(tanh ?y)"],
            ),
            MultiPatternRule::new(
                "stale-fresh-pair",
                &["(relu ?x)", "(tanh ?y)"],
                &["(relu ?x)", "(sigmoid (ewadd ?x ?y))"],
            ),
        ];
        let config = |incremental_multi: bool| ExplorationConfig {
            mode: ExplorationMode::Saturate,
            k_multi,
            max_iter: k_multi + 2,
            node_limit,
            time_limit: Duration::from_secs(600),
            search_threads: 1,
            apply_threads: Some(1),
            incremental_multi,
            ..Default::default()
        };

        let (mut full_eg, full_root) = seeded(&graph);
        let full = explore(&mut full_eg, full_root, &singles, &multis, &config(false));
        let (mut inc_eg, inc_root) = seeded(&graph);
        let inc = explore(&mut inc_eg, inc_root, &singles, &multis, &config(true));

        // Full search never consults the cache, so it can never skip.
        prop_assert_eq!(full.multi_stale_skipped, 0);
        prop_assert_eq!(trajectory(&full), trajectory(&inc));
        prop_assert_eq!(full_eg.total_number_of_nodes(), inc_eg.total_number_of_nodes());
        prop_assert_eq!(full_eg.number_of_classes(), inc_eg.number_of_classes());
        prop_assert_eq!(full_eg.union_count(), inc_eg.union_count());
        for r in &singles {
            prop_assert_eq!(r.search(&full_eg), r.search(&inc_eg), "rule {}", &r.name);
        }

        let model = CostModel::default();
        let full_dag = extract_greedy_dag(&full_eg, full_root, &model).unwrap();
        let inc_dag = extract_greedy_dag(&inc_eg, inc_root, &model).unwrap();
        prop_assert_eq!(full_dag.expr.nodes(), inc_dag.expr.nodes());
        prop_assert_eq!(full_dag.dag_cost, inc_dag.dag_cost);
    }
}
