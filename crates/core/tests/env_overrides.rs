//! Pinning test for the environment-variable overrides: `TENSAT_EXTRACTOR`
//! and `TENSAT_EXPLORER` are parsed *uncached* on every call, by design.
//!
//! Caching (e.g. a `OnceLock`) would read marginally faster, but these
//! overrides exist for harnesses and tests that vary the strategy *within
//! one process* — the forced-smoke CI jobs and the bench binaries re-read
//! them between runs, and a cached value would silently pin the first
//! reading. This test pins the uncached contract: a second call observes a
//! changed variable. If someone adds caching, this fails and the doc
//! comments on [`ExtractionMode::from_env`] / [`explorer_from_env`] need
//! rewriting along with the harnesses that rely on per-run variation.
//!
//! Everything lives in ONE `#[test]` because environment variables are
//! process-global and the libtest harness runs `#[test]` functions
//! concurrently — splitting these assertions across tests would race.

use tensat_core::ExtractionMode;
use tensat_egraph::{explorer_from_env, search_threads_from_env};

#[test]
fn env_overrides_are_read_uncached() {
    // Start from a clean slate regardless of the invoking shell.
    std::env::remove_var("TENSAT_EXTRACTOR");
    std::env::remove_var("TENSAT_EXPLORER");
    std::env::remove_var("TENSAT_SEARCH_THREADS");

    // Unset → None.
    assert_eq!(ExtractionMode::from_env(), None);
    assert_eq!(explorer_from_env(), None);
    assert_eq!(search_threads_from_env(), None);

    // Set → parsed; a *second* call after mutation must observe the new
    // value (the uncached contract this test pins).
    std::env::set_var("TENSAT_EXTRACTOR", "dag");
    assert_eq!(ExtractionMode::from_env(), Some(ExtractionMode::GreedyDag));
    std::env::set_var("TENSAT_EXTRACTOR", "ilp");
    assert_eq!(ExtractionMode::from_env(), Some(ExtractionMode::Ilp));
    std::env::set_var("TENSAT_EXTRACTOR", "GREEDY");
    assert_eq!(ExtractionMode::from_env(), Some(ExtractionMode::Greedy));
    // Unrecognized names are None, not a panic (harness typos degrade to
    // the configured default).
    std::env::set_var("TENSAT_EXTRACTOR", "simulated-annealing");
    assert_eq!(ExtractionMode::from_env(), None);
    std::env::remove_var("TENSAT_EXTRACTOR");
    assert_eq!(ExtractionMode::from_env(), None);

    // The explorer override returns the raw trimmed name; parsing into a
    // strategy is the caller's job (`ExplorationMode::from_name`).
    std::env::set_var("TENSAT_EXPLORER", "  guided  ");
    assert_eq!(explorer_from_env().as_deref(), Some("guided"));
    std::env::set_var("TENSAT_EXPLORER", "taso");
    assert_eq!(explorer_from_env().as_deref(), Some("taso"));
    std::env::set_var("TENSAT_EXPLORER", "   ");
    assert_eq!(explorer_from_env(), None);
    std::env::remove_var("TENSAT_EXPLORER");
    assert_eq!(explorer_from_env(), None);

    // Thread-count overrides share the same uncached contract (the doc
    // comments on the strategy overrides cite them as the precedent).
    std::env::set_var("TENSAT_SEARCH_THREADS", "4");
    assert_eq!(search_threads_from_env(), Some(4));
    std::env::set_var("TENSAT_SEARCH_THREADS", "2");
    assert_eq!(search_threads_from_env(), Some(2));
    std::env::set_var("TENSAT_SEARCH_THREADS", "0");
    assert_eq!(search_threads_from_env(), None);
    std::env::set_var("TENSAT_SEARCH_THREADS", "many");
    assert_eq!(search_threads_from_env(), None);
    std::env::remove_var("TENSAT_SEARCH_THREADS");
    assert_eq!(search_threads_from_env(), None);
}
