//! The exploration phase (paper §4) behind one seam: an
//! [`ExplorationStrategy`] trait over a shared [`ExplorationContext`]
//! holding the compiled single/multi rule programs, guard tables, cycle
//! filter, and budget accounting — exactly parallel to the extraction
//! crate's [`ExtractionStrategy`](crate::ExtractionStrategy) seam.
//!
//! Three strategies ship through the seam:
//!
//! * [`Saturate`] — Algorithm 1's saturate-all loop, bit-identical to the
//!   pre-seam monolithic `explore()` (kept verbatim in [`legacy`] as the
//!   differential oracle).
//! * [`Guided`] — a deterministic beam search (MCTS-lite) treating rule
//!   batches as actions, scoring candidate e-graph states by greedy-DAG
//!   extracted cost plus a node-growth penalty, and expanding only the
//!   top-k states via e-graph snapshot/replay. It enforces a *hard* node
//!   budget, so graphs whose saturation blows past `node_limit` stay
//!   optimizable with bounded memory.
//! * [`TasoBacktracking`] — the TASO-style sequential backtracking
//!   baseline (`tensat-taso`) run through the same seam, unioning its best
//!   trajectory graph back into the e-graph.
//!
//! [`explore`] dispatches on [`ExplorationConfig::mode`]
//! ([`ExplorationMode`]), overridable at runtime via the `TENSAT_EXPLORER`
//! environment variable (mirroring `TENSAT_EXTRACTOR`).

mod context;
mod guided;
pub mod legacy;
mod saturate;
mod taso;

pub use context::{ExplorationContext, IncrementalMultiState};
pub use guided::{Guided, GuidedConfig};
pub use saturate::Saturate;
pub use taso::{TasoBacktracking, TasoConfig};

use std::collections::{BTreeSet, HashMap};
use std::time::Duration;
use tensat_egraph::{ENodeOrVar, GuardedProgram, Id, Pattern, RecExpr, Subst, Var};
use tensat_ir::{CostModel, DataKind, TensorData, TensorEGraph, TensorLang};
use tensat_rules::{guard_for_kinds, MultiPatternRule, TensorRewrite};

/// The paper's exploration defaults (§6.1): the single source of truth
/// shared by [`ExplorationConfig::default`] and
/// [`OptimizerConfig::default`](crate::OptimizerConfig::default), so the
/// two configurations cannot silently drift.
pub mod defaults {
    use std::time::Duration;

    /// Iterations in which multi-pattern rules are applied (`k_multi`).
    pub const K_MULTI: usize = 1;
    /// Total iteration limit (`k_max`).
    pub const MAX_ITER: usize = 15;
    /// E-node limit (`N_max`).
    pub const NODE_LIMIT: usize = 50_000;
    /// Wall-clock limit for the whole exploration phase.
    pub const TIME_LIMIT: Duration = Duration::from_secs(60);
}

/// Which cycle-filtering algorithm to run during exploration (paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleFilter {
    /// No filtering: the e-graph may contain cycles, and ILP extraction
    /// must use the cycle constraints.
    Off,
    /// Vanilla filtering: before every candidate application, recompute
    /// reachability over the whole e-graph (complexity `O(n_m · N)` per
    /// iteration).
    Vanilla,
    /// Efficient filtering: a descendants map computed once per iteration
    /// pre-filters candidates; a DFS post-processing pass resolves the few
    /// cycles that slip through (Algorithm 2).
    Efficient,
}

/// Which exploration strategy grows the e-graph — the exploration
/// counterpart of [`ExtractionMode`](crate::ExtractionMode), overridable
/// at runtime via the `TENSAT_EXPLORER` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplorationMode {
    /// The saturate-all loop (Algorithm 1): apply every rule everywhere,
    /// every iteration. TENSAT's default configuration.
    Saturate,
    /// Guided beam search over rule-batch actions under a hard node
    /// budget, scored by greedy-DAG extracted cost (see [`Guided`]).
    Guided,
    /// The TASO-style sequential backtracking baseline (see
    /// [`TasoBacktracking`]).
    Taso,
}

impl ExplorationMode {
    /// Parses a strategy name as accepted by the `TENSAT_EXPLORER`
    /// environment variable: `saturate` / `saturation` / `full`,
    /// `guided` / `beam` / `mcts`, or `taso` / `backtracking`
    /// (case-insensitive).
    pub fn from_name(name: &str) -> Option<ExplorationMode> {
        match name.to_ascii_lowercase().as_str() {
            "saturate" | "saturation" | "full" => Some(ExplorationMode::Saturate),
            "guided" | "beam" | "mcts" => Some(ExplorationMode::Guided),
            "taso" | "backtracking" => Some(ExplorationMode::Taso),
            _ => None,
        }
    }

    /// The exploration mode requested via the `TENSAT_EXPLORER`
    /// environment variable, if set to a recognized name. Read uncached
    /// (like `TENSAT_EXTRACTOR` and `TENSAT_SEARCH_THREADS`) so tests and
    /// harnesses can vary it per run.
    pub fn from_env() -> Option<ExplorationMode> {
        tensat_egraph::explorer_from_env().and_then(|v| ExplorationMode::from_name(&v))
    }

    /// The strategy name this mode resolves to at the exploration seam.
    pub fn strategy_name(&self) -> &'static str {
        match self {
            ExplorationMode::Saturate => "saturate",
            ExplorationMode::Guided => "guided",
            ExplorationMode::Taso => "taso",
        }
    }

    /// The boxed strategy this mode dispatches to.
    pub fn strategy(&self) -> Box<dyn ExplorationStrategy> {
        match self {
            ExplorationMode::Saturate => Box::new(Saturate),
            ExplorationMode::Guided => Box::new(Guided),
            ExplorationMode::Taso => Box::new(TasoBacktracking),
        }
    }
}

/// Limits and options for the exploration phase.
#[derive(Debug, Clone)]
pub struct ExplorationConfig {
    /// Iterations in which multi-pattern rules are applied (`k_multi`).
    pub k_multi: usize,
    /// Total iteration limit (`k_max`).
    pub max_iter: usize,
    /// E-node limit (`N_max`). [`Saturate`] treats it as a soft
    /// stop-growing threshold (one batch may overshoot slightly);
    /// [`Guided`] enforces it as a hard budget no candidate state ever
    /// exceeds.
    pub node_limit: usize,
    /// Wall-clock limit for the whole exploration phase.
    pub time_limit: Duration,
    /// The cycle-filtering algorithm.
    pub cycle_filter: CycleFilter,
    /// Threads used by the e-matching search phase. `1` runs the sequential
    /// driver (exact pre-parallel behavior); larger values shard candidate
    /// classes across scoped threads with bit-identical match lists, so
    /// this only affects wall-clock time.
    pub search_threads: usize,
    /// Threads used by the staged apply phase: single-pattern match batches
    /// are staged against the read-only iteration-start e-graph across
    /// scoped threads ([`tensat_egraph::stage_matches_parallel`]) and
    /// committed in one deterministic sequential pass, so — like
    /// `search_threads` — this only affects wall-clock time, never the
    /// outcome. `None` (the default, unless `TENSAT_APPLY_THREADS` is set)
    /// follows `search_threads`; see
    /// [`ExplorationConfig::resolved_apply_threads`].
    pub apply_threads: Option<usize>,
    /// Wires the incremental-search watermark through the multi-pattern
    /// Cartesian product: combinations whose elements *all* predate the
    /// previous iteration's watermark were already applied (or rejected)
    /// and are skipped, while stale × fresh combinations — new even though
    /// one side is old — still fire. Outcome-preserving (the engine falls
    /// back to a full search whenever a cycle-filter event could have
    /// invalidated the cache); only the first `k_multi` iterations are
    /// affected, so the default configuration (`k_multi = 1`) never skips.
    pub incremental_multi: bool,
    /// Which exploration strategy [`explore`] dispatches to.
    pub mode: ExplorationMode,
    /// Cost model used by strategies that score candidate states
    /// ([`Guided`]'s rollout evaluator, [`TasoBacktracking`]'s search);
    /// [`Saturate`] never consults it.
    pub cost_model: CostModel,
    /// Parameters of the [`Guided`] strategy (used when `mode` is
    /// [`ExplorationMode::Guided`]).
    pub guided: GuidedConfig,
    /// Parameters of the [`TasoBacktracking`] baseline (used when `mode`
    /// is [`ExplorationMode::Taso`]).
    pub taso: TasoConfig,
}

impl Default for ExplorationConfig {
    /// The paper's defaults ([`defaults`]): `k_multi = 1`, `k_max = 15`,
    /// `N_max = 50 000`, saturate-all exploration (unless a
    /// `TENSAT_EXPLORER` override is set), plus search parallelism from
    /// [`default_search_threads`].
    fn default() -> Self {
        ExplorationConfig {
            k_multi: defaults::K_MULTI,
            max_iter: defaults::MAX_ITER,
            node_limit: defaults::NODE_LIMIT,
            time_limit: defaults::TIME_LIMIT,
            cycle_filter: CycleFilter::Efficient,
            search_threads: default_search_threads(),
            apply_threads: tensat_egraph::apply_threads_from_env(),
            incremental_multi: false,
            mode: ExplorationMode::from_env().unwrap_or(ExplorationMode::Saturate),
            cost_model: CostModel::default(),
            guided: GuidedConfig::default(),
            taso: TasoConfig::default(),
        }
    }
}

impl ExplorationConfig {
    /// The apply-phase thread count after resolving the default:
    /// `apply_threads` when set, otherwise `search_threads`.
    pub fn resolved_apply_threads(&self) -> usize {
        self.apply_threads.unwrap_or(self.search_threads).max(1)
    }
}

/// The default search thread count: the `TENSAT_SEARCH_THREADS` environment
/// variable when set to a positive integer, otherwise the machine's
/// available parallelism (falling back to 1 if that cannot be determined).
pub fn default_search_threads() -> usize {
    tensat_egraph::search_threads_from_env()
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Statistics of one exploration run.
#[derive(Debug, Clone, Default)]
pub struct ExplorationStats {
    /// Number of iterations executed ([`Guided`]: beam steps;
    /// [`TasoBacktracking`]: graphs popped from the search queue).
    pub iterations: usize,
    /// Whether the run stopped because no action changed the e-graph
    /// (saturation for [`Saturate`]; beam convergence for [`Guided`]).
    pub saturated: bool,
    /// Final number of e-nodes.
    pub enodes: usize,
    /// Final number of e-classes.
    pub eclasses: usize,
    /// Number of e-nodes placed on the cycle filter list.
    pub filtered_nodes: usize,
    /// Total wall-clock time of the exploration phase.
    pub time: Duration,
    /// Time spent in the e-matching search phase, summed over iterations.
    /// Filled in by [`Saturate`]'s engine iterations; strategies with no
    /// phase structure ([`Guided`], [`TasoBacktracking`]) leave it zero.
    pub search_time: Duration,
    /// Time spent staging and committing rewrite applications, summed over
    /// iterations (same caveat as `search_time`).
    pub apply_time: Duration,
    /// Time spent rebuilding and cycle-filtering, summed over iterations
    /// (same caveat as `search_time`).
    pub rebuild_time: Duration,
    /// Multi-pattern Cartesian combinations skipped because every element
    /// predates the incremental watermark (see
    /// [`ExplorationConfig::incremental_multi`]).
    pub multi_stale_skipped: usize,
    /// E-node count after each iteration.
    pub nodes_per_iteration: Vec<usize>,
    /// Name of the strategy that produced these statistics (filled in by
    /// [`explore_with`]; empty for stats built elsewhere).
    pub strategy: &'static str,
}

/// The single exploration seam: every strategy grows an e-graph in place
/// from the compiled rule programs, guard tables, and budgets in a shared
/// [`ExplorationContext`], and reports [`ExplorationStats`] — so the
/// optimizer, the benches, and future strategies (e.g. learned policies)
/// all drive exploration the same way.
pub trait ExplorationStrategy: std::fmt::Debug {
    /// Short stable name used in reports and the `TENSAT_EXPLORER`
    /// environment override.
    fn name(&self) -> &'static str;

    /// Grows the e-graph in place under the context's rules and budgets,
    /// returning run statistics.
    fn run(&self, egraph: &mut TensorEGraph, ctx: &ExplorationContext<'_>) -> ExplorationStats;
}

/// Runs the exploration phase on an e-graph already seeded with the input
/// graph, dispatching to the strategy selected by
/// [`ExplorationConfig::mode`]. Returns statistics; the e-graph is grown
/// in place.
pub fn explore(
    egraph: &mut TensorEGraph,
    root: Id,
    single_rules: &[TensorRewrite],
    multi_rules: &[MultiPatternRule],
    config: &ExplorationConfig,
) -> ExplorationStats {
    explore_with(
        config.mode.strategy().as_ref(),
        egraph,
        root,
        single_rules,
        multi_rules,
        config,
    )
}

/// Runs the exploration phase with an explicit strategy: compiles the rule
/// programs into an [`ExplorationContext`] and hands the e-graph to the
/// strategy. [`explore`] is this with the strategy picked by
/// [`ExplorationConfig::mode`].
pub fn explore_with(
    strategy: &dyn ExplorationStrategy,
    egraph: &mut TensorEGraph,
    root: Id,
    single_rules: &[TensorRewrite],
    multi_rules: &[MultiPatternRule],
    config: &ExplorationConfig,
) -> ExplorationStats {
    let ctx = ExplorationContext::new(root, single_rules, multi_rules, config);
    let mut stats = strategy.run(egraph, &ctx);
    stats.strategy = strategy.name();
    stats
}

/// Renames the variables of a pattern to canonical names (`?c0`, `?c1`, ...)
/// in first-occurrence order. Returns the canonical pattern and the map
/// from canonical to original variables (Algorithm 1, `CANONICAL`).
pub fn canonicalize_pattern(
    pattern: &Pattern<TensorLang>,
) -> (Pattern<TensorLang>, HashMap<Var, Var>) {
    let mut rename: HashMap<Var, Var> = HashMap::new(); // original -> canonical
    let mut back: HashMap<Var, Var> = HashMap::new(); // canonical -> original
    let mut ast = RecExpr::default();
    for (_, node) in pattern.ast.iter() {
        match node {
            ENodeOrVar::Var(v) => {
                let canonical = *rename.entry(*v).or_insert_with(|| {
                    let c = Var::new(format!("c{}", back.len()));
                    back.insert(c, *v);
                    c
                });
                ast.add(ENodeOrVar::Var(canonical));
            }
            ENodeOrVar::ENode(n) => {
                ast.add(ENodeOrVar::ENode(n.clone()));
            }
        }
    }
    (Pattern::new(ast), back)
}

/// Translates a substitution over canonical variables back to the original
/// variables of a rule (Algorithm 1, `DECANONICAL`).
pub fn decanonicalize_subst(subst: &Subst, back: &HashMap<Var, Var>) -> Subst {
    let mut out = Subst::new();
    for (var, id) in subst.iter() {
        let original = back.get(&var).copied().unwrap_or(var);
        out.insert(original, id);
    }
    out
}

/// Merges two substitutions, returning `None` if they disagree on a shared
/// variable (Algorithm 1, `COMPATIBLE`).
pub fn merge_substs(egraph: &TensorEGraph, a: &Subst, b: &Subst) -> Option<Subst> {
    let mut out = a.clone();
    for (var, id) in b.iter() {
        match out.get(var) {
            Some(existing) if egraph.find(existing) != egraph.find(id) => return None,
            Some(_) => {}
            None => {
                out.insert(var, id);
            }
        }
    }
    Some(out)
}

/// True if two substitutions bind the same variables to the same e-classes
/// *modulo the union-find*. The derived `PartialEq` on [`Subst`] compares
/// raw `Id`s, which is too strict inside the apply loop: a union performed
/// by an earlier application can leave two equivalent bindings with
/// different (non-canonical) ids, letting them slip past the
/// `skip_identical` self-application guard.
pub(crate) fn substs_equal_canonical(egraph: &TensorEGraph, a: &Subst, b: &Subst) -> bool {
    a.len() == b.len()
        && a.iter().all(
            |(var, id)| matches!(b.get(var), Some(other) if egraph.find(other) == egraph.find(id)),
        )
}

/// A multi-pattern rule with its sources resolved into the deduplicated
/// canonical pattern list the engine searches once per iteration.
pub(crate) struct MultiRuleCompiled {
    pub(crate) rule: MultiPatternRule,
    /// For each source pattern: index into the unique canonical pattern
    /// list and the canonical→original variable map.
    pub(crate) srcs: Vec<(usize, HashMap<Var, Var>)>,
}

/// Builds one guarded e-matching program per unique canonical multi-pattern
/// source, pushing the rules' target-implied per-variable constraints
/// ([`MultiPatternRule::target_guard_kinds`]) into the machine.
///
/// Canonical sources are deduplicated *across* rules, so a canonical
/// variable may stand for different original variables in different rules.
/// It gets a guard only if **every** (rule, source) pair searching through
/// this canonical pattern implies one — i.e. its original variable occurs
/// in at least one of that rule's targets — and the kind constraint is the
/// *intersection* of the referrers' constraints (validity, their common
/// floor, is always required). A match pruned by such a guard binds, for
/// every referrer, a variable whose target inference is guaranteed invalid,
/// so no Cartesian combination containing it could ever fire.
pub(crate) fn compile_multi_guards(
    unique_patterns: &[Pattern<TensorLang>],
    compiled: &[MultiRuleCompiled],
) -> Vec<GuardedProgram<TensorLang, TensorData>> {
    // Per unique pattern: canonical var -> Some(intersected kinds) while
    // every referrer so far guards it, or None once one referrer cannot.
    let mut info: Vec<Option<HashMap<Var, Option<BTreeSet<DataKind>>>>> =
        vec![None; unique_patterns.len()];
    for mrule in compiled {
        let rule_kinds = mrule.rule.target_guard_kinds();
        for (idx, back) in &mrule.srcs {
            match &mut info[*idx] {
                slot @ None => {
                    *slot = Some(
                        back.iter()
                            .map(|(canon, orig)| (*canon, rule_kinds.get(orig).cloned()))
                            .collect(),
                    );
                }
                Some(existing) => {
                    for (canon, orig) in back {
                        let entry = existing
                            .get_mut(canon)
                            .expect("same canonical pattern has the same variables");
                        *entry = match (entry.take(), rule_kinds.get(orig)) {
                            (Some(a), Some(b)) => Some(a.intersection(b).copied().collect()),
                            _ => None,
                        };
                    }
                }
            }
        }
    }
    unique_patterns
        .iter()
        .zip(info)
        .map(|(pattern, info)| {
            let mut guards: Vec<(Var, tensat_rules::TensorGuard)> = info
                .into_iter()
                .flatten()
                .filter_map(|(var, kinds)| kinds.map(|k| (var, guard_for_kinds(&k))))
                .collect();
            // HashMap iteration order is arbitrary; sort so the compiled
            // guard table (and pred indices) is deterministic across runs.
            guards.sort_by_key(|(var, _)| *var);
            GuardedProgram::compile(&pattern.ast, &guards)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensat_ir::{GraphBuilder, TensorAnalysis};
    use tensat_rules::{multi_rules, parse_pattern, single_rules};

    fn two_matmul_graph() -> (TensorEGraph, Id) {
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let w1 = g.weight("w1", &[256, 128]);
        let w2 = g.weight("w2", &[256, 128]);
        let m1 = g.matmul(x, w1);
        let m2 = g.matmul(x, w2);
        let expr = g.finish(&[m1, m2]);
        let mut eg = TensorEGraph::new(TensorAnalysis);
        let root = eg.add_expr(&expr);
        eg.rebuild();
        (eg, root)
    }

    #[test]
    fn canonicalization_renames_consistently() {
        let p = parse_pattern("(matmul ?act ?x ?w1)").unwrap();
        let (canon, back) = canonicalize_pattern(&p);
        assert_eq!(canon.to_string(), "(matmul ?c0 ?c1 ?c2)");
        assert_eq!(back[&Var::new("c1")], Var::new("x"));
        // Two alpha-equivalent patterns canonicalize identically.
        let q = parse_pattern("(matmul ?a ?b ?c)").unwrap();
        let (canon_q, _) = canonicalize_pattern(&q);
        assert_eq!(canon.to_string(), canon_q.to_string());
        // Repeated variables keep their identity.
        let r = parse_pattern("(ewadd ?x ?x)").unwrap();
        let (canon_r, _) = canonicalize_pattern(&r);
        assert_eq!(canon_r.to_string(), "(ewadd ?c0 ?c0)");
    }

    #[test]
    fn merge_substs_detects_conflicts() {
        let (eg, root) = two_matmul_graph();
        let other = eg
            .classes()
            .map(|c| c.id)
            .find(|&c| eg.find(c) != eg.find(root))
            .unwrap();
        let mut a = Subst::new();
        a.insert(Var::new("x"), root);
        let mut b = Subst::new();
        b.insert(Var::new("x"), other);
        b.insert(Var::new("y"), root);
        assert!(merge_substs(&eg, &a, &b).is_none());
        let mut c = Subst::new();
        c.insert(Var::new("x"), root);
        c.insert(Var::new("z"), other);
        let merged = merge_substs(&eg, &a, &c).unwrap();
        assert_eq!(merged.len(), 2);
    }

    /// The canonical multi-pattern sources are deduplicated across rules,
    /// so a canonical variable is guarded only when *every* referring
    /// (rule, source) pair implies a guard for it, with intersected kinds.
    #[test]
    fn multi_guards_intersect_across_rules_sharing_a_canonical_source() {
        // Both stock matmul rules share the canonical source
        // (matmul ?c0 ?c1 ?c2) and both use all their source variables in
        // their targets: ?c0 (activation) gets a validity-only guard, the
        // two operands get tensor guards.
        let rules = multi_rules();
        let compiled: Vec<MultiRuleCompiled> = {
            // Mirror the compilation explore() performs.
            let mut unique: Vec<Pattern<TensorLang>> = vec![];
            let mut index: HashMap<String, usize> = HashMap::new();
            let compiled: Vec<MultiRuleCompiled> = rules
                .iter()
                .map(|rule| MultiRuleCompiled {
                    rule: rule.clone(),
                    srcs: rule
                        .srcs
                        .iter()
                        .map(|src| {
                            let (canon, back) = canonicalize_pattern(src);
                            let key = canon.to_string();
                            let idx = *index.entry(key).or_insert_with(|| {
                                unique.push(canon.clone());
                                unique.len() - 1
                            });
                            (idx, back)
                        })
                        .collect(),
                })
                .collect();
            let guarded = compile_multi_guards(&unique, &compiled);
            // matmul + conv canonical sources; each fully guarded.
            assert_eq!(guarded.len(), 2);
            for g in &guarded {
                assert_eq!(
                    g.program().guard_vars().len(),
                    g.guards().len(),
                    "guard table parallel to guard vars"
                );
                assert!(
                    !g.guards().is_empty(),
                    "every stock rule guards its canonical source vars"
                );
            }
            // The matmul source guards all three canonical variables.
            let matmul = &guarded[0];
            assert_eq!(matmul.program().guard_vars().len(), 3);
            compiled
        };

        // A synthetic rule reusing the same canonical matmul source but
        // never using ?w in its targets: the shared canonical variable for
        // ?w loses its guard (intersection with "no guard" is "no guard").
        let loose = MultiPatternRule::new(
            "loose",
            &["(matmul ?act ?x ?w)", "(matmul ?act ?x ?w2)"],
            &["(relu ?x)", "(relu ?x)"],
        );
        let (canon, back) = canonicalize_pattern(&loose.srcs[0]);
        let unique = vec![canon];
        let both = vec![
            MultiRuleCompiled {
                rule: compiled[0].rule.clone(),
                srcs: vec![compiled[0].srcs[0].clone()],
            },
            MultiRuleCompiled {
                rule: loose.clone(),
                srcs: vec![(0, back)],
            },
        ];
        let guarded = compile_multi_guards(&unique, &both);
        // ?c1 (?x in both rules) keeps a guard; ?c2 (?w1 / ?w) loses it
        // because `loose` never mentions ?w in a target; ?c0 (?act) loses
        // it for the same reason.
        assert_eq!(guarded[0].program().guard_vars(), &[Var::new("c1")]);
    }

    #[test]
    fn multi_pattern_rule_merges_parallel_matmuls() {
        let (mut eg, root) = two_matmul_graph();
        let config = ExplorationConfig {
            k_multi: 1,
            max_iter: 3,
            node_limit: 20_000,
            ..Default::default()
        };
        let stats = explore(&mut eg, root, &[], &multi_rules(), &config);
        assert!(stats.enodes > 10);
        // The merged matmul over concatenated weights must now exist.
        let has_concat_matmul = eg
            .classes()
            .any(|c| c.iter().any(|n| matches!(n, TensorLang::Split0(_))));
        assert!(
            has_concat_matmul,
            "expected split0 node from the multi-pattern rule"
        );
    }

    #[test]
    fn exploration_saturates_on_trivial_graph() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[4, 4]);
        let expr = g.finish(&[x]);
        let mut eg = TensorEGraph::new(TensorAnalysis);
        let root = eg.add_expr(&expr);
        eg.rebuild();
        let stats = explore(
            &mut eg,
            root,
            &single_rules(),
            &multi_rules(),
            &ExplorationConfig::default(),
        );
        assert!(stats.saturated);
        assert!(stats.iterations <= 2);
        assert_eq!(stats.strategy, "saturate");
    }

    /// Regression test: the single-pattern apply loop only checked
    /// `node_limit`, never the wall-clock budget, so one large match batch
    /// blew straight through `time_limit`. A condition that sleeps 10 ms
    /// per candidate on a graph with 20 matches would run ~200 ms under the
    /// old code; with the in-loop check it must stop within a few sleeps of
    /// the 30 ms budget.
    #[test]
    fn time_limit_bounds_single_pattern_apply_batch() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let mut outs = vec![];
        for i in 0..20 {
            let w = g.weight(&format!("w{i}"), &[256, 128]);
            outs.push(g.matmul(x, w));
        }
        let expr = g.finish(&outs);
        let mut eg = TensorEGraph::new(TensorAnalysis);
        let root = eg.add_expr(&expr);
        eg.rebuild();

        let condition_calls = Arc::new(AtomicUsize::new(0));
        let calls = condition_calls.clone();
        let slow_noop = TensorRewrite::new_conditional(
            "slow-noop",
            parse_pattern("(matmul ?act ?x ?w)").unwrap(),
            parse_pattern("(matmul ?act ?x ?w)").unwrap(),
            Arc::new(move |_, _, _| {
                calls.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(10));
                true
            }),
        );
        let config = ExplorationConfig {
            k_multi: 0,
            max_iter: 1,
            time_limit: Duration::from_millis(30),
            cycle_filter: CycleFilter::Off,
            ..Default::default()
        };
        explore(&mut eg, root, &[slow_noop], &[], &config);
        let calls = condition_calls.load(Ordering::SeqCst);
        assert!(calls >= 1, "the apply loop must have started");
        assert!(
            calls < 20,
            "apply batch ignored the time limit: all {calls} candidates ran"
        );
    }

    /// Regression test for the `skip_identical` guard: equivalent bindings
    /// whose raw ids differ (equal only modulo `find`) must count as
    /// identical once the classes are unioned.
    #[test]
    fn substs_equal_canonical_compares_modulo_find() {
        let mut eg = TensorEGraph::new(TensorAnalysis);
        let a = eg.add(TensorLang::Num(1));
        let b = eg.add(TensorLang::Num(2));
        let x = Var::new("x");
        let mut s1 = Subst::new();
        s1.insert(x, a);
        let mut s2 = Subst::new();
        s2.insert(x, b);
        // Distinct classes: neither raw nor canonical equality.
        assert_ne!(s1, s2);
        assert!(!substs_equal_canonical(&eg, &s1, &s2));
        // Union the classes mid-iteration (no rebuild, as in the apply
        // loop): raw ids still differ — the derived PartialEq the old guard
        // used says "different" — but canonically they are the same binding.
        eg.union(a, b);
        assert_ne!(s1, s2, "raw ids still differ after the union");
        assert!(substs_equal_canonical(&eg, &s1, &s2));
        // Different variable sets never compare equal.
        let mut s3 = Subst::new();
        s3.insert(Var::new("y"), a);
        assert!(!substs_equal_canonical(&eg, &s1, &s3));
        let mut s4 = s1.clone();
        s4.insert(Var::new("y"), a);
        assert!(!substs_equal_canonical(&eg, &s1, &s4));
    }

    /// Parallel search must not change exploration outcomes: the same graph
    /// explored with 1 thread and 4 threads produces identical statistics
    /// (match lists are bit-identical, so every downstream decision —
    /// conditions, cycle filtering, application order — is too).
    #[test]
    fn exploration_is_deterministic_across_thread_counts() {
        let run = |threads: usize| {
            let (mut eg, root) = two_matmul_graph();
            let config = ExplorationConfig {
                k_multi: 2,
                max_iter: 4,
                node_limit: 5_000,
                search_threads: threads,
                ..Default::default()
            };
            let stats = explore(&mut eg, root, &single_rules(), &multi_rules(), &config);
            (
                stats.iterations,
                stats.nodes_per_iteration,
                eg.total_number_of_nodes(),
                eg.number_of_classes(),
                eg.union_count(),
            )
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn node_limit_is_respected() {
        let (mut eg, root) = two_matmul_graph();
        let config = ExplorationConfig {
            k_multi: 3,
            max_iter: 10,
            node_limit: 60,
            ..Default::default()
        };
        explore(&mut eg, root, &single_rules(), &multi_rules(), &config);
        // Growth stops once the limit is crossed (a single batch may
        // overshoot slightly, but not massively).
        assert!(eg.total_number_of_nodes() < 600);
    }

    #[test]
    fn exploration_with_filtering_leaves_no_cycles() {
        let (mut eg, root) = two_matmul_graph();
        let config = ExplorationConfig {
            k_multi: 2,
            max_iter: 4,
            node_limit: 5_000,
            cycle_filter: CycleFilter::Efficient,
            ..Default::default()
        };
        explore(&mut eg, root, &single_rules(), &multi_rules(), &config);
        assert!(crate::cycles::find_cycles(&eg, root).is_empty());
    }

    #[test]
    fn more_multi_iterations_grow_the_egraph() {
        let sizes: Vec<usize> = [0usize, 1, 2]
            .iter()
            .map(|&k| {
                let (mut eg, root) = two_matmul_graph();
                let config = ExplorationConfig {
                    k_multi: k,
                    max_iter: 4,
                    node_limit: 10_000,
                    ..Default::default()
                };
                explore(&mut eg, root, &single_rules(), &multi_rules(), &config);
                eg.total_number_of_nodes()
            })
            .collect();
        assert!(
            sizes[1] > sizes[0],
            "k_multi=1 should grow beyond k_multi=0: {sizes:?}"
        );
        assert!(
            sizes[2] >= sizes[1],
            "k_multi=2 should not shrink: {sizes:?}"
        );
    }

    #[test]
    fn explorer_names_parse_like_the_env_override() {
        for (name, mode) in [
            ("saturate", ExplorationMode::Saturate),
            ("saturation", ExplorationMode::Saturate),
            ("full", ExplorationMode::Saturate),
            ("guided", ExplorationMode::Guided),
            ("beam", ExplorationMode::Guided),
            ("MCTS", ExplorationMode::Guided),
            ("taso", ExplorationMode::Taso),
            ("Backtracking", ExplorationMode::Taso),
        ] {
            assert_eq!(ExplorationMode::from_name(name), Some(mode));
        }
        assert_eq!(ExplorationMode::from_name("ilp"), None);
        assert_eq!(ExplorationMode::Saturate.strategy_name(), "saturate");
        assert_eq!(ExplorationMode::Guided.strategy_name(), "guided");
        assert_eq!(ExplorationMode::Taso.strategy_name(), "taso");
        // Mode and boxed strategy agree on the name.
        for mode in [
            ExplorationMode::Saturate,
            ExplorationMode::Guided,
            ExplorationMode::Taso,
        ] {
            assert_eq!(mode.strategy().name(), mode.strategy_name());
        }
    }

    /// The seam tags stats with the strategy that produced them, for any
    /// strategy — including a custom one implemented outside this crate.
    #[test]
    fn explore_with_runs_custom_strategies() {
        /// A strategy that does nothing but prove the seam is open.
        #[derive(Debug)]
        struct Noop;
        impl ExplorationStrategy for Noop {
            fn name(&self) -> &'static str {
                "noop"
            }
            fn run(
                &self,
                egraph: &mut TensorEGraph,
                ctx: &ExplorationContext<'_>,
            ) -> ExplorationStats {
                let mut stats = ExplorationStats::default();
                egraph.rebuild();
                ctx.finish(egraph, &mut stats);
                stats
            }
        }
        let (mut eg, root) = two_matmul_graph();
        let nodes = eg.total_number_of_nodes();
        let stats = explore_with(
            &Noop,
            &mut eg,
            root,
            &single_rules(),
            &multi_rules(),
            &ExplorationConfig::default(),
        );
        assert_eq!(stats.strategy, "noop");
        assert_eq!(stats.enodes, nodes, "noop strategy must not grow the graph");
        assert!(stats.time >= Duration::ZERO);
    }
}
