//! The shared exploration engine: one [`ExplorationContext`] holds the
//! compiled single- and multi-pattern rule programs, the deduplicated
//! canonical multi sources with their guard tables, the cycle filter, and
//! the run's budget clock. Every
//! [`ExplorationStrategy`](super::ExplorationStrategy) drives the same
//! search/apply machinery through it — [`Saturate`](super::Saturate) as
//! whole iterations ([`ExplorationContext::run_iteration`]),
//! [`Guided`](super::Guided) as per-rule budgeted batches on snapshot
//! states.

use super::{
    canonicalize_pattern, compile_multi_guards, decanonicalize_subst, merge_substs,
    substs_equal_canonical, CycleFilter, ExplorationConfig, ExplorationStats, MultiRuleCompiled,
};
use crate::cycles::{
    remove_all_cycles, staged_would_create_cycle, would_create_cycle, DescendantsMap,
};
use std::collections::HashMap;
use std::time::{Duration, Instant};
use tensat_egraph::{
    search_all_guarded_parallel, search_all_guarded_since_parallel, stage_matches_parallel,
    GuardedProgram, Id, Pattern, SearchMatches, SearchQuery, StagedApp, Subst,
};
use tensat_ir::{TensorData, TensorEGraph, TensorLang};
use tensat_rules::{pattern_is_valid, MultiPatternRule, TensorRewrite};

/// Cross-iteration state of the incremental multi-pattern search
/// ([`ExplorationConfig::incremental_multi`]): the watermark taken after
/// the previous iteration's search, the effective match lists that
/// iteration used (per unique canonical source, the next iteration's
/// *stale* candidates), and the honesty gate. Owned by the strategy loop
/// ([`Saturate`](super::Saturate)) and threaded through
/// [`ExplorationContext::run_iteration_with`]; a fresh default state makes
/// every iteration a full search.
#[derive(Debug, Default)]
pub struct IncrementalMultiState {
    /// Watermark snapshot from the previous iteration (taken on the clean
    /// iteration-start e-graph, before any application).
    watermark: Option<u64>,
    /// Per unique canonical source: the previous iteration's flattened
    /// `(root class, canonical substitution)` match list, in search order.
    cache: Vec<Vec<(Id, Subst)>>,
    /// True when a cycle-filter event (a combination rejected by the
    /// pre-filter, or e-nodes filtered by the post-pass) may have
    /// invalidated the cache: filter decisions are not covered by touch
    /// propagation, so the next iteration must search in full.
    flush: bool,
}

/// Everything a strategy needs to explore: the root, the rules with their
/// compiled programs and guard tables, the configuration, and the budget
/// clock (started when the context is built, i.e. when exploration
/// begins).
pub struct ExplorationContext<'a> {
    root: Id,
    single_rules: &'a [TensorRewrite],
    config: &'a ExplorationConfig,
    /// Multi rules with sources resolved into `unique_patterns`.
    compiled: Vec<MultiRuleCompiled>,
    /// Deduplicated canonical multi-pattern sources (Algorithm 1, lines
    /// 1–8), precompiled.
    unique_patterns: Vec<Pattern<TensorLang>>,
    /// One guarded program per unique canonical source.
    multi_guarded: Vec<GuardedProgram<TensorLang, TensorData>>,
    start: Instant,
}

impl<'a> ExplorationContext<'a> {
    /// Compiles the rule programs: canonicalizes and deduplicates the
    /// multi-pattern sources, builds their guarded programs, and starts
    /// the budget clock.
    pub(crate) fn new(
        root: Id,
        single_rules: &'a [TensorRewrite],
        multi_rules: &[MultiPatternRule],
        config: &'a ExplorationConfig,
    ) -> Self {
        let start = Instant::now();
        let mut unique_patterns: Vec<Pattern<TensorLang>> = vec![];
        let mut pattern_index: HashMap<String, usize> = HashMap::new();
        let compiled: Vec<MultiRuleCompiled> = multi_rules
            .iter()
            .map(|rule| {
                let srcs = rule
                    .srcs
                    .iter()
                    .map(|src| {
                        let (canon, back) = canonicalize_pattern(src);
                        let key = canon.to_string();
                        let idx = *pattern_index.entry(key).or_insert_with(|| {
                            unique_patterns.push(canon.clone());
                            unique_patterns.len() - 1
                        });
                        (idx, back)
                    })
                    .collect();
                MultiRuleCompiled {
                    rule: rule.clone(),
                    srcs,
                }
            })
            .collect();
        // The deduplicated canonical sources are searched once per
        // iteration: compile their e-matching programs — both the guarded
        // ones (with the rules' target-implied analysis guards pushed into
        // the machine) and the plain ones (used for the final multi
        // iteration, see `run_iteration`) — before any strategy starts.
        let multi_guarded = compile_multi_guards(&unique_patterns, &compiled);
        for pattern in &unique_patterns {
            pattern.precompile();
        }
        ExplorationContext {
            root,
            single_rules,
            config,
            compiled,
            unique_patterns,
            multi_guarded,
            start,
        }
    }

    /// The root e-class exploration optimizes for.
    pub fn root(&self) -> Id {
        self.root
    }

    /// The exploration configuration.
    pub fn config(&self) -> &ExplorationConfig {
        self.config
    }

    /// The single-pattern rule set.
    pub fn single_rules(&self) -> &[TensorRewrite] {
        self.single_rules
    }

    /// Number of multi-pattern rules (indexable by
    /// [`ExplorationContext::apply_multi_budgeted`]).
    pub fn multi_rule_count(&self) -> usize {
        self.compiled.len()
    }

    /// Wall-clock time since exploration began.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// True once the time or node budget is exhausted for this e-graph —
    /// the iteration-boundary check of Algorithm 1.
    pub fn over_budget(&self, egraph: &TensorEGraph) -> bool {
        self.elapsed() >= self.config.time_limit
            || egraph.total_number_of_nodes() >= self.config.node_limit
    }

    /// Fills in the final-state fields of `stats` (e-node/e-class counts
    /// and total time). Strategies call this once before returning.
    pub fn finish(&self, egraph: &TensorEGraph, stats: &mut ExplorationStats) {
        stats.enodes = egraph.total_number_of_nodes();
        stats.eclasses = egraph.number_of_classes();
        stats.time = self.elapsed();
    }

    /// One full engine iteration — Algorithm 1's loop body: batched
    /// guarded search of every rule against the iteration-start e-graph,
    /// apply all single-pattern matches, apply multi-pattern combinations
    /// (first `k_multi` iterations only), rebuild, and resolve cycles.
    /// Updates `stats` and returns whether the e-graph changed (`false`
    /// means saturation).
    pub fn run_iteration(
        &self,
        egraph: &mut TensorEGraph,
        iter: usize,
        stats: &mut ExplorationStats,
    ) -> bool {
        self.run_iteration_with(egraph, iter, stats, &mut IncrementalMultiState::default())
    }

    /// [`ExplorationContext::run_iteration`] with the cross-iteration
    /// incremental multi-pattern state threaded through: when
    /// [`ExplorationConfig::incremental_multi`] is set and the state holds
    /// a usable cache, the multi sources are searched
    /// watermark-restricted and all-stale Cartesian combinations are
    /// skipped (they were applied, or rejected for covered reasons, in an
    /// earlier iteration) — bit-identical to the full search.
    pub fn run_iteration_with(
        &self,
        egraph: &mut TensorEGraph,
        iter: usize,
        stats: &mut ExplorationStats,
        inc: &mut IncrementalMultiState,
    ) -> bool {
        let config = self.config;
        let nodes_before = egraph.total_number_of_nodes();
        let unions_before = egraph.union_count();

        // Descendants map for the efficient pre-filter (Algorithm 2, line 3).
        let mut desc = match config.cycle_filter {
            CycleFilter::Efficient => Some(DescendantsMap::compute(egraph)),
            _ => None,
        };

        // --- search phase ---------------------------------------------------
        // All matches — single-pattern and multi-pattern alike — are
        // collected against the iteration-start e-graph, which is clean
        // (rebuilt at the end of the previous iteration): pattern search
        // requires a clean e-graph for the operator index and congruence
        // invariant to hold. This mirrors Algorithm 1, which gathers every
        // match before applying any substitution.
        //
        // Every searcher (single-pattern rules and the deduplicated
        // canonical multi-pattern sources) goes through one batch of the
        // sharded search driver, so a hot rule's candidate chunks spread
        // over all `search_threads` threads; with 1 thread the driver is
        // the sequential machine verbatim, and the match lists are
        // bit-identical either way. Each query carries its analysis-guard
        // table (single rules: the per-variable part of their shape check;
        // multi sources: the intersected target-implied constraints), so
        // inadmissible bindings die inside the machine.
        let do_multi = iter < config.k_multi;
        let last_multi = iter + 1 == config.k_multi;
        // Incremental multi search applies only between two *guarded* multi
        // searches with a valid cache: the final multi iteration searches
        // unguarded (below) — a strictly larger match set a guarded cache
        // cannot stand in for — and the honesty gate (`flush`) forces a
        // full search after any cycle-filter event.
        let incremental = config.incremental_multi
            && do_multi
            && !last_multi
            && !inc.flush
            && inc.watermark.is_some()
            && inc.cache.len() == self.unique_patterns.len();

        let search_start = Instant::now();
        let mut queries: Vec<SearchQuery<'_, TensorLang, TensorData>> = self
            .single_rules
            .iter()
            .map(|rw| rw.searcher_query())
            .collect();
        if do_multi && !incremental {
            // Guards evaluate at search time while `apply_combo` validates
            // at apply time, and unions performed earlier in the same
            // iteration (single-pattern applications run first) can make a
            // binding admissible in between. Within the multi-pattern
            // window a pruned-then-admissible match is simply re-found
            // next iteration; in the *last* multi iteration there is no
            // next chance — multi rules are disabled afterwards — so that
            // final search runs unguarded and leaves admissibility
            // entirely to the apply-time check, exactly the pre-guard
            // behavior. (Single-pattern rules need no such cutoff: they
            // are searched every iteration, and the saturation check only
            // declares a fixpoint when an iteration changed nothing at
            // all.)
            if last_multi {
                queries.extend(
                    self.unique_patterns
                        .iter()
                        .map(|p| (p.program(), &[] as &[_])),
                );
            } else {
                queries.extend(self.multi_guarded.iter().map(|g| g.query()));
            }
        }
        let mut single_matches =
            search_all_guarded_parallel(&queries, egraph, config.search_threads);
        let multi_matches: Vec<_> = if do_multi {
            if incremental {
                // Watermark-restricted search of the multi sources: only
                // classes touched since the previous iteration's snapshot
                // are revisited (the singles above still search in full).
                let queries: Vec<SearchQuery<'_, TensorLang, TensorData>> =
                    self.multi_guarded.iter().map(|g| g.query()).collect();
                search_all_guarded_since_parallel(
                    &queries,
                    egraph,
                    inc.watermark.expect("incremental implies a watermark"),
                    config.search_threads,
                )
            } else {
                single_matches.split_off(self.single_rules.len())
            }
        } else {
            vec![]
        };

        // Flatten the multi match lists, tagging each entry fresh or stale.
        // In the incremental case the effective list is the union of the
        // cached matches whose root class is untouched since the watermark
        // (a touched root's matches are all re-found by `search_since`, so
        // dropping them loses nothing) and the freshly found matches; a
        // class's matches are wholly stale or wholly fresh, so a stable
        // sort by root id reproduces the full search's class order — and
        // with it the full search's application order — exactly.
        let multi_flat: Vec<Vec<(Id, Subst, bool)>> = if incremental {
            let wm = inc.watermark.expect("incremental implies a watermark");
            multi_matches
                .iter()
                .enumerate()
                .map(|(si, fresh)| {
                    let mut list: Vec<(Id, Subst, bool)> = inc.cache[si]
                        .iter()
                        .filter(|(eclass, _)| egraph.last_touched(*eclass) < wm)
                        .map(|(eclass, subst)| (*eclass, subst.clone(), false))
                        .collect();
                    list.extend(flatten_matches(fresh));
                    list.sort_by_key(|(eclass, _, _)| usize::from(*eclass));
                    list
                })
                .collect()
        } else {
            multi_matches
                .iter()
                .map(|ms| flatten_matches(ms).collect())
                .collect()
        };
        stats.search_time += search_start.elapsed();

        if config.incremental_multi && do_multi && !last_multi {
            // Snapshot before this iteration mutates anything, and keep the
            // effective match lists: the next iteration's stale candidates.
            inc.watermark = Some(egraph.watermark());
            inc.cache = multi_flat
                .iter()
                .map(|list| {
                    list.iter()
                        .map(|(eclass, subst, _)| (*eclass, subst.clone()))
                        .collect()
                })
                .collect();
            inc.flush = false;
        } else {
            // The guarded multi window is over: nothing cached from here
            // can seed an incremental search.
            inc.watermark = None;
            inc.cache = vec![];
        }

        // --- apply single-pattern rules (staged) -----------------------------
        // The whole gathered batch is staged against the read-only
        // iteration-start e-graph — side conditions evaluate here, sharded
        // across `apply_threads` scoped workers — then committed in one
        // sequential pass in batch order, with the limits and the cycle
        // pre-filter checked before every application, exactly where the
        // in-place loop checked them. The wall-clock budget also bounds the
        // staging loop itself (`should_stop`): a large match batch must not
        // blow through `time_limit` evaluating conditions.
        let apply_start = Instant::now();
        let should_stop = || self.elapsed() >= config.time_limit;
        let batch: Vec<(&TensorRewrite, &[SearchMatches])> = self
            .single_rules
            .iter()
            .zip(single_matches.iter().map(Vec::as_slice))
            .collect();
        let log = stage_matches_parallel(
            &batch,
            egraph,
            config.resolved_apply_threads(),
            Some(&should_stop),
        );
        for app in &log.apps {
            if egraph.total_number_of_nodes() >= config.node_limit
                || self.elapsed() >= config.time_limit
            {
                break;
            }
            if skip_staged_for_cycles(egraph, config.cycle_filter, &mut desc, app) {
                continue;
            }
            egraph.commit_staged(app, log.base);
        }

        // --- apply multi-pattern rules (first k_multi iterations only) ------
        let mut events = MultiApplyEvents::default();
        if do_multi {
            for mrule in &self.compiled {
                apply_multi_rule(
                    egraph,
                    mrule,
                    &multi_flat,
                    config,
                    &mut desc,
                    self.start,
                    &mut events,
                );
                if egraph.total_number_of_nodes() >= config.node_limit
                    || self.elapsed() >= config.time_limit
                {
                    break;
                }
            }
        }
        stats.multi_stale_skipped += events.stale_skipped;
        stats.apply_time += apply_start.elapsed();

        let rebuild_start = Instant::now();
        egraph.rebuild();

        // Post-processing: resolve cycles that slipped past the pre-filter
        // (Algorithm 2, lines 10–18).
        let mut filtered_this_iter = 0;
        if config.cycle_filter == CycleFilter::Efficient {
            filtered_this_iter = remove_all_cycles(egraph, self.root);
            stats.filtered_nodes += filtered_this_iter;
        }
        stats.rebuild_time += rebuild_start.elapsed();

        // Honesty gate: cycle-filter decisions are not covered by touch
        // propagation, so any filter event this iteration could flip a
        // cached combination's verdict — the next search must run in full.
        if events.cycle_rejects > 0 || filtered_this_iter > 0 {
            inc.flush = true;
        }

        stats.iterations = iter + 1;
        stats
            .nodes_per_iteration
            .push(egraph.total_number_of_nodes());

        egraph.total_number_of_nodes() != nodes_before || egraph.union_count() != unions_before
    }

    /// Batched guarded search of every single-pattern rule — and, when
    /// `include_multi`, every deduplicated canonical multi-pattern source
    /// — against a candidate state. Returns `(single, multi)` match lists
    /// in rule/source order; match lists are bit-identical across thread
    /// counts, so guided strategies stay deterministic.
    ///
    /// Unlike [`ExplorationContext::run_iteration`], the multi sources are
    /// always searched guarded: a guided strategy validates combinations
    /// at apply time anyway, and a pruned-then-admissible binding merely
    /// means that action scores lower in this step.
    pub fn search_state(
        &self,
        egraph: &TensorEGraph,
        include_multi: bool,
    ) -> (Vec<Vec<SearchMatches>>, Vec<Vec<SearchMatches>>) {
        let mut queries: Vec<SearchQuery<'_, TensorLang, TensorData>> = self
            .single_rules
            .iter()
            .map(|rw| rw.searcher_query())
            .collect();
        if include_multi {
            queries.extend(self.multi_guarded.iter().map(|g| g.query()));
        }
        let mut single = search_all_guarded_parallel(&queries, egraph, self.config.search_threads);
        let multi = if include_multi {
            single.split_off(self.single_rules.len())
        } else {
            vec![]
        };
        (single, multi)
    }

    /// Applies one single-pattern rule's match batch to a candidate state
    /// under a *hard* node budget: an application is attempted only while
    /// the e-graph plus the applier's worst-case growth (its AST size)
    /// stays within `budget`, so the state never exceeds it. Rebuilds and
    /// cycle-filters afterwards, leaving the state clean for scoring.
    pub fn apply_single_budgeted(
        &self,
        egraph: &mut TensorEGraph,
        rule_index: usize,
        matches: &[SearchMatches],
        budget: usize,
    ) {
        let rw = &self.single_rules[rule_index];
        // Worst-case e-nodes one application can add: every pattern node
        // is new. (Variables instantiate to existing classes, so this
        // over-estimates — which only makes the budget check stricter.)
        let headroom = rw.applier.ast.len();
        let mut desc = match self.config.cycle_filter {
            CycleFilter::Efficient => Some(DescendantsMap::compute(egraph)),
            _ => None,
        };
        // Staged like `run_iteration_with`'s single apply: conditions
        // evaluate against the read-only batch-start state, the commit
        // pass checks the budget before every application, and one commit
        // adds at most `adds.len() <= headroom` nodes — so the budget
        // stays hard.
        let should_stop = || self.elapsed() >= self.config.time_limit;
        let batch = [(rw, matches)];
        let log = stage_matches_parallel(
            &batch,
            egraph,
            self.config.resolved_apply_threads(),
            Some(&should_stop),
        );
        for app in &log.apps {
            if egraph.total_number_of_nodes() + headroom > budget
                || self.elapsed() >= self.config.time_limit
            {
                break;
            }
            if skip_staged_for_cycles(egraph, self.config.cycle_filter, &mut desc, app) {
                continue;
            }
            egraph.commit_staged(app, log.base);
        }
        self.seal_state(egraph);
    }

    /// Applies one multi-pattern rule's Cartesian combinations to a
    /// candidate state under a hard node budget (same contract as
    /// [`ExplorationContext::apply_single_budgeted`]): the entry check of
    /// the Cartesian recursion runs against a node limit lowered by the
    /// rule's total target size, so no application can push the state past
    /// `budget`. `multi_matches` is indexed by unique canonical source, as
    /// returned by [`ExplorationContext::search_state`].
    pub fn apply_multi_budgeted(
        &self,
        egraph: &mut TensorEGraph,
        rule_index: usize,
        multi_matches: &[Vec<SearchMatches>],
        budget: usize,
    ) {
        let mrule = &self.compiled[rule_index];
        let headroom: usize = mrule.rule.dsts.iter().map(|d| d.ast.len()).sum();
        if headroom > budget {
            return;
        }
        // `cartesian` refuses to apply once `nodes >= node_limit`, so with
        // `node_limit = budget - headroom + 1` every application starts at
        // `nodes <= budget - headroom` and ends at most at `budget`.
        let capped = ExplorationConfig {
            node_limit: budget - headroom + 1,
            ..self.config.clone()
        };
        let mut desc = match self.config.cycle_filter {
            CycleFilter::Efficient => Some(DescendantsMap::compute(egraph)),
            _ => None,
        };
        let flat: Vec<Vec<(Id, Subst, bool)>> = multi_matches
            .iter()
            .map(|ms| flatten_matches(ms).collect())
            .collect();
        apply_multi_rule(
            egraph,
            mrule,
            &flat,
            &capped,
            &mut desc,
            self.start,
            &mut MultiApplyEvents::default(),
        );
        self.seal_state(egraph);
    }

    /// Rebuilds a candidate state and resolves cycles, restoring the
    /// invariants scoring and the next search step rely on.
    fn seal_state(&self, egraph: &mut TensorEGraph) {
        egraph.rebuild();
        if self.config.cycle_filter == CycleFilter::Efficient {
            remove_all_cycles(egraph, self.root);
        }
    }
}

/// Flattens one source pattern's match list into `(root class, canonical
/// substitution, fresh)` entries in search order, all tagged fresh.
fn flatten_matches(matches: &[SearchMatches]) -> impl Iterator<Item = (Id, Subst, bool)> + '_ {
    matches
        .iter()
        .flat_map(|m| m.substs.iter().map(move |s| (m.eclass, s.clone(), true)))
}

/// Cycle-filter events observed while applying multi-pattern rules: the
/// incremental cache's honesty gate counts the rejections, and the skip
/// counter feeds [`ExplorationStats::multi_stale_skipped`].
#[derive(Debug, Default)]
struct MultiApplyEvents {
    /// Combinations rejected by the cycle pre-filter.
    cycle_rejects: usize,
    /// All-stale combinations skipped by the incremental search.
    stale_skipped: usize,
}

/// Commit-time cycle pre-filter for staged applications: the same verdict
/// [`skip_for_cycles`] would reach for the application, read from the
/// staged bound list instead of re-walking the target pattern.
fn skip_staged_for_cycles(
    egraph: &TensorEGraph,
    filter: CycleFilter,
    desc: &mut Option<DescendantsMap>,
    app: &StagedApp<TensorLang>,
) -> bool {
    match filter {
        CycleFilter::Off => false,
        CycleFilter::Efficient => {
            let desc = desc
                .as_ref()
                .expect("descendants map exists in efficient mode");
            staged_would_create_cycle(egraph, desc, app)
        }
        CycleFilter::Vanilla => {
            let fresh = DescendantsMap::compute(egraph);
            staged_would_create_cycle(egraph, &fresh, app)
        }
    }
}

/// Returns true if the candidate application must be skipped because it
/// would create a cycle under the configured filtering mode.
fn skip_for_cycles(
    egraph: &TensorEGraph,
    filter: CycleFilter,
    desc: &mut Option<DescendantsMap>,
    matched: Id,
    target: &Pattern<TensorLang>,
    subst: &Subst,
) -> bool {
    match filter {
        CycleFilter::Off => false,
        CycleFilter::Efficient => {
            let desc = desc
                .as_ref()
                .expect("descendants map exists in efficient mode");
            would_create_cycle(egraph, desc, matched, target, subst)
        }
        CycleFilter::Vanilla => {
            // Vanilla filtering recomputes reachability for every candidate:
            // a full pass over the e-graph per check (paper §5.2).
            let fresh = DescendantsMap::compute(egraph);
            would_create_cycle(egraph, &fresh, matched, target, subst)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn apply_multi_rule(
    egraph: &mut TensorEGraph,
    mrule: &MultiRuleCompiled,
    all_matches: &[Vec<(Id, Subst, bool)>],
    config: &ExplorationConfig,
    desc: &mut Option<DescendantsMap>,
    start: Instant,
    events: &mut MultiApplyEvents,
) {
    // Decanonicalized flat match lists per source pattern, carrying each
    // entry's freshness tag (always `true` outside incremental search).
    let per_src: Vec<Vec<(Id, Subst, bool)>> = mrule
        .srcs
        .iter()
        .map(|(idx, back)| {
            all_matches[*idx]
                .iter()
                .map(|(eclass, subst, fresh)| (*eclass, decanonicalize_subst(subst, back), *fresh))
                .collect()
        })
        .collect();

    // Cartesian product over the source patterns (Algorithm 1, line 16).
    // All current rules have exactly two sources; the generic recursion
    // handles more.
    let mut combo: Vec<(Id, Subst, bool)> = Vec::with_capacity(per_src.len());
    cartesian(
        egraph, mrule, &per_src, 0, &mut combo, config, desc, start, events,
    );
}

#[allow(clippy::too_many_arguments)]
fn cartesian(
    egraph: &mut TensorEGraph,
    mrule: &MultiRuleCompiled,
    per_src: &[Vec<(Id, Subst, bool)>],
    depth: usize,
    combo: &mut Vec<(Id, Subst, bool)>,
    config: &ExplorationConfig,
    desc: &mut Option<DescendantsMap>,
    start: Instant,
    events: &mut MultiApplyEvents,
) {
    if egraph.total_number_of_nodes() >= config.node_limit || start.elapsed() >= config.time_limit {
        return;
    }
    if depth == per_src.len() {
        if combo.iter().any(|(_, _, fresh)| *fresh) {
            apply_combo(egraph, mrule, combo, config, desc, events);
        } else {
            // Every element predates the incremental watermark: this exact
            // combination was already applied in an earlier iteration
            // (re-applying is a hash-cons/union no-op) or rejected there
            // for a reason touch propagation covers — skipping it is
            // bit-identical to re-running it.
            events.stale_skipped += 1;
        }
        return;
    }
    for (eclass, subst, fresh) in &per_src[depth] {
        if mrule.rule.skip_identical
            && combo.iter().any(|(c, s, _)| {
                egraph.find(*c) == egraph.find(*eclass) && substs_equal_canonical(egraph, s, subst)
            })
        {
            continue;
        }
        combo.push((*eclass, subst.clone(), *fresh));
        cartesian(
            egraph,
            mrule,
            per_src,
            depth + 1,
            combo,
            config,
            desc,
            start,
            events,
        );
        combo.pop();
        if egraph.total_number_of_nodes() >= config.node_limit {
            return;
        }
    }
}

fn apply_combo(
    egraph: &mut TensorEGraph,
    mrule: &MultiRuleCompiled,
    combo: &[(Id, Subst, bool)],
    config: &ExplorationConfig,
    desc: &mut Option<DescendantsMap>,
    events: &mut MultiApplyEvents,
) {
    // Check compatibility at shared variables and build the merged binding.
    let mut merged = Subst::new();
    for (_, subst, _) in combo {
        match merge_substs(egraph, &merged, subst) {
            Some(m) => merged = m,
            None => return,
        }
    }
    // Shape check every target, and make sure output shapes match the
    // matched classes.
    for ((matched, _, _), dst) in combo.iter().zip(&mrule.rule.dsts) {
        if !pattern_is_valid(egraph, dst, &merged) {
            return;
        }
        let target_data = tensat_rules::pattern_data(egraph, dst, &merged);
        let out_shape = target_data
            .last()
            .and_then(|d| d.shape().map(|s| s.to_vec()));
        let class_shape = egraph.eclass(*matched).data.shape().map(|s| s.to_vec());
        if let (Some(a), Some(b)) = (class_shape, out_shape) {
            if a != b {
                return;
            }
        }
    }
    // Cycle pre-filtering per target.
    for ((matched, _, _), dst) in combo.iter().zip(&mrule.rule.dsts) {
        if skip_for_cycles(egraph, config.cycle_filter, desc, *matched, dst, &merged) {
            events.cycle_rejects += 1;
            return;
        }
    }
    // Apply: union each matched class with its instantiated target.
    for ((matched, _, _), dst) in combo.iter().zip(&mrule.rule.dsts) {
        dst.apply_one(egraph, *matched, &merged);
    }
}
