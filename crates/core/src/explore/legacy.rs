//! The pre-seam monolithic exploration loop, kept **verbatim** as a
//! differential oracle — the same role [`Pattern::search_naive`] plays
//! for the compiled e-matching machine. The seam refactor
//! ([`Saturate`](super::Saturate) over
//! [`ExplorationContext`](super::ExplorationContext)) is proven
//! bit-identical to this function on random e-graphs and every
//! `BENCHMARKS` model by `crates/bench/tests/exploration_strategies.rs`;
//! nothing in production calls it.
//!
//! The apply machinery (`skip_for_cycles`, `apply_multi_rule`,
//! `cartesian`, `apply_combo`) is duplicated privately rather than shared
//! with the engine, so a regression in the restructured control flow
//! cannot silently rewrite the oracle it is checked against. The pure
//! data-preparation helpers (canonicalization, guard compilation) are
//! shared — they were not restructured.
//!
//! [`Pattern::search_naive`]: tensat_egraph::Pattern::search_naive

use super::{
    canonicalize_pattern, compile_multi_guards, decanonicalize_subst, merge_substs,
    substs_equal_canonical, CycleFilter, ExplorationConfig, ExplorationStats, MultiRuleCompiled,
};
use crate::cycles::{remove_all_cycles, would_create_cycle, DescendantsMap};
use std::collections::HashMap;
use std::time::Instant;
use tensat_egraph::{search_all_guarded_parallel, Id, Pattern, SearchQuery, Subst};
use tensat_ir::{TensorData, TensorEGraph, TensorLang};
use tensat_rules::{pattern_is_valid, MultiPatternRule, TensorRewrite};

/// Runs the exploration phase on an e-graph already seeded with the input
/// graph — the pre-seam saturate-all implementation, verbatim. Returns
/// statistics; the e-graph is grown in place.
pub fn explore_monolithic(
    egraph: &mut TensorEGraph,
    root: Id,
    single_rules: &[TensorRewrite],
    multi_rules: &[MultiPatternRule],
    config: &ExplorationConfig,
) -> ExplorationStats {
    let start = Instant::now();
    let mut stats = ExplorationStats::default();
    egraph.rebuild();

    // Canonicalize multi-pattern sources and deduplicate them (Algorithm 1,
    // lines 1–8).
    let mut unique_patterns: Vec<Pattern<TensorLang>> = vec![];
    let mut pattern_index: HashMap<String, usize> = HashMap::new();
    let compiled: Vec<MultiRuleCompiled> = multi_rules
        .iter()
        .map(|rule| {
            let srcs = rule
                .srcs
                .iter()
                .map(|src| {
                    let (canon, back) = canonicalize_pattern(src);
                    let key = canon.to_string();
                    let idx = *pattern_index.entry(key).or_insert_with(|| {
                        unique_patterns.push(canon.clone());
                        unique_patterns.len() - 1
                    });
                    (idx, back)
                })
                .collect();
            MultiRuleCompiled {
                rule: rule.clone(),
                srcs,
            }
        })
        .collect();
    // The deduplicated canonical sources are searched once per iteration:
    // compile their e-matching programs — both the guarded ones (with the
    // rules' target-implied analysis guards pushed into the machine) and
    // the plain ones (used for the final multi iteration, see below) —
    // before the loop starts.
    let multi_guarded = compile_multi_guards(&unique_patterns, &compiled);
    for pattern in &unique_patterns {
        pattern.precompile();
    }

    for iter in 0..config.max_iter {
        if start.elapsed() >= config.time_limit
            || egraph.total_number_of_nodes() >= config.node_limit
        {
            break;
        }
        let nodes_before = egraph.total_number_of_nodes();
        let unions_before = egraph.union_count();

        // Descendants map for the efficient pre-filter (Algorithm 2, line 3).
        let mut desc = match config.cycle_filter {
            CycleFilter::Efficient => Some(DescendantsMap::compute(egraph)),
            _ => None,
        };

        // --- search phase ---------------------------------------------------
        let do_multi = iter < config.k_multi;
        let mut queries: Vec<SearchQuery<'_, TensorLang, TensorData>> =
            single_rules.iter().map(|rw| rw.searcher_query()).collect();
        if do_multi {
            if iter + 1 == config.k_multi {
                queries.extend(unique_patterns.iter().map(|p| (p.program(), &[] as &[_])));
            } else {
                queries.extend(multi_guarded.iter().map(|g| g.query()));
            }
        }
        let mut single_matches =
            search_all_guarded_parallel(&queries, egraph, config.search_threads);
        let multi_matches: Vec<_> = if do_multi {
            single_matches.split_off(single_rules.len())
        } else {
            vec![]
        };

        // --- apply single-pattern rules --------------------------------------
        'single_apply: for (rw, matches) in single_rules.iter().zip(&single_matches) {
            for m in matches {
                for subst in &m.substs {
                    if egraph.total_number_of_nodes() >= config.node_limit
                        || start.elapsed() >= config.time_limit
                    {
                        break 'single_apply;
                    }
                    if let Some(cond) = &rw.condition {
                        if !cond(egraph, m.eclass, subst) {
                            continue;
                        }
                    }
                    if skip_for_cycles(
                        egraph,
                        config.cycle_filter,
                        &mut desc,
                        m.eclass,
                        &rw.applier,
                        subst,
                    ) {
                        continue;
                    }
                    rw.applier.apply_one(egraph, m.eclass, subst);
                }
            }
        }

        // --- apply multi-pattern rules (first k_multi iterations only) ------
        if iter < config.k_multi {
            for mrule in &compiled {
                apply_multi_rule(egraph, mrule, &multi_matches, config, &mut desc, start);
                if egraph.total_number_of_nodes() >= config.node_limit
                    || start.elapsed() >= config.time_limit
                {
                    break;
                }
            }
        }

        egraph.rebuild();

        // Post-processing: resolve cycles that slipped past the pre-filter
        // (Algorithm 2, lines 10–18).
        if config.cycle_filter == CycleFilter::Efficient {
            stats.filtered_nodes += remove_all_cycles(egraph, root);
        }

        stats.iterations = iter + 1;
        stats
            .nodes_per_iteration
            .push(egraph.total_number_of_nodes());

        let changed =
            egraph.total_number_of_nodes() != nodes_before || egraph.union_count() != unions_before;
        if !changed {
            stats.saturated = true;
            break;
        }
    }

    stats.enodes = egraph.total_number_of_nodes();
    stats.eclasses = egraph.number_of_classes();
    stats.time = start.elapsed();
    stats
}

/// Returns true if the candidate application must be skipped because it
/// would create a cycle under the configured filtering mode.
fn skip_for_cycles(
    egraph: &TensorEGraph,
    filter: CycleFilter,
    desc: &mut Option<DescendantsMap>,
    matched: Id,
    target: &Pattern<TensorLang>,
    subst: &Subst,
) -> bool {
    match filter {
        CycleFilter::Off => false,
        CycleFilter::Efficient => {
            let desc = desc
                .as_ref()
                .expect("descendants map exists in efficient mode");
            would_create_cycle(egraph, desc, matched, target, subst)
        }
        CycleFilter::Vanilla => {
            let fresh = DescendantsMap::compute(egraph);
            would_create_cycle(egraph, &fresh, matched, target, subst)
        }
    }
}

fn apply_multi_rule(
    egraph: &mut TensorEGraph,
    mrule: &MultiRuleCompiled,
    all_matches: &[Vec<tensat_egraph::SearchMatches>],
    config: &ExplorationConfig,
    desc: &mut Option<DescendantsMap>,
    start: Instant,
) {
    // Decanonicalized flat match lists per source pattern.
    let per_src: Vec<Vec<(Id, Subst)>> = mrule
        .srcs
        .iter()
        .map(|(idx, back)| {
            all_matches[*idx]
                .iter()
                .flat_map(|m| {
                    m.substs
                        .iter()
                        .map(move |s| (m.eclass, decanonicalize_subst(s, back)))
                })
                .collect()
        })
        .collect();

    // Cartesian product over the source patterns (Algorithm 1, line 16).
    let mut combo: Vec<(Id, Subst)> = Vec::with_capacity(per_src.len());
    cartesian(egraph, mrule, &per_src, 0, &mut combo, config, desc, start);
}

#[allow(clippy::too_many_arguments)]
fn cartesian(
    egraph: &mut TensorEGraph,
    mrule: &MultiRuleCompiled,
    per_src: &[Vec<(Id, Subst)>],
    depth: usize,
    combo: &mut Vec<(Id, Subst)>,
    config: &ExplorationConfig,
    desc: &mut Option<DescendantsMap>,
    start: Instant,
) {
    if egraph.total_number_of_nodes() >= config.node_limit || start.elapsed() >= config.time_limit {
        return;
    }
    if depth == per_src.len() {
        apply_combo(egraph, mrule, combo, config, desc);
        return;
    }
    for (eclass, subst) in &per_src[depth] {
        if mrule.rule.skip_identical
            && combo.iter().any(|(c, s)| {
                egraph.find(*c) == egraph.find(*eclass) && substs_equal_canonical(egraph, s, subst)
            })
        {
            continue;
        }
        combo.push((*eclass, subst.clone()));
        cartesian(
            egraph,
            mrule,
            per_src,
            depth + 1,
            combo,
            config,
            desc,
            start,
        );
        combo.pop();
        if egraph.total_number_of_nodes() >= config.node_limit {
            return;
        }
    }
}

fn apply_combo(
    egraph: &mut TensorEGraph,
    mrule: &MultiRuleCompiled,
    combo: &[(Id, Subst)],
    config: &ExplorationConfig,
    desc: &mut Option<DescendantsMap>,
) {
    // Check compatibility at shared variables and build the merged binding.
    let mut merged = Subst::new();
    for (_, subst) in combo {
        match merge_substs(egraph, &merged, subst) {
            Some(m) => merged = m,
            None => return,
        }
    }
    // Shape check every target, and make sure output shapes match the
    // matched classes.
    for ((matched, _), dst) in combo.iter().zip(&mrule.rule.dsts) {
        if !pattern_is_valid(egraph, dst, &merged) {
            return;
        }
        let target_data = tensat_rules::pattern_data(egraph, dst, &merged);
        let out_shape = target_data
            .last()
            .and_then(|d| d.shape().map(|s| s.to_vec()));
        let class_shape = egraph.eclass(*matched).data.shape().map(|s| s.to_vec());
        if let (Some(a), Some(b)) = (class_shape, out_shape) {
            if a != b {
                return;
            }
        }
    }
    // Cycle pre-filtering per target.
    for ((matched, _), dst) in combo.iter().zip(&mrule.rule.dsts) {
        if skip_for_cycles(egraph, config.cycle_filter, desc, *matched, dst, &merged) {
            return;
        }
    }
    // Apply: union each matched class with its instantiated target.
    for ((matched, _), dst) in combo.iter().zip(&mrule.rule.dsts) {
        dst.apply_one(egraph, *matched, &merged);
    }
}
