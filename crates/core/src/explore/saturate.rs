//! The saturate-all strategy: the paper's exploration loop (Algorithm 1)
//! run through the seam.

use super::context::{ExplorationContext, IncrementalMultiState};
use super::{ExplorationStats, ExplorationStrategy};
use tensat_ir::TensorEGraph;

/// Saturate-all exploration: every iteration searches every rule against
/// the whole e-graph and applies all admissible matches, until saturation
/// or a limit is reached. Bit-identical to the pre-seam monolithic
/// `explore()` — [`legacy::explore_monolithic`](super::legacy) is kept
/// verbatim as the differential oracle, and
/// `crates/bench/tests/exploration_strategies.rs` proves the equivalence
/// on random e-graphs and every `BENCHMARKS` model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Saturate;

impl ExplorationStrategy for Saturate {
    fn name(&self) -> &'static str {
        "saturate"
    }

    fn run(&self, egraph: &mut TensorEGraph, ctx: &ExplorationContext<'_>) -> ExplorationStats {
        let mut stats = ExplorationStats::default();
        egraph.rebuild();
        // Cross-iteration incremental multi-pattern state (a no-op set of
        // full searches unless `ExplorationConfig::incremental_multi`).
        let mut inc = IncrementalMultiState::default();
        for iter in 0..ctx.config().max_iter {
            if ctx.over_budget(egraph) {
                break;
            }
            let changed = ctx.run_iteration_with(egraph, iter, &mut stats, &mut inc);
            if !changed {
                stats.saturated = true;
                break;
            }
        }
        ctx.finish(egraph, &mut stats);
        stats
    }
}
