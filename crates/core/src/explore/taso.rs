//! The TASO baseline wired through the exploration seam: sequential
//! cost-based backtracking over concrete graphs (`tensat-taso`,
//! Jia et al. 2019, Algorithm 2), whose best trajectory graph is unioned
//! back into the e-graph so downstream extraction sees it as one more
//! candidate — the comparison the paper's Tables 1/Figures 4–6 make,
//! runnable through the same `explore()` entry point as TENSAT itself.

use super::context::ExplorationContext;
use super::{CycleFilter, ExplorationStats, ExplorationStrategy};
use tensat_ir::TensorEGraph;
use tensat_taso::{BacktrackingConfig, BacktrackingSearch};

/// Parameters of the [`TasoBacktracking`] baseline (the subset of
/// [`BacktrackingConfig`] not already covered by
/// [`ExplorationConfig`](super::ExplorationConfig): the time limit and
/// cost model come from the exploration config).
#[derive(Debug, Clone)]
pub struct TasoConfig {
    /// Search iterations (graphs popped from the priority queue); the
    /// TASO artifact default is 100.
    pub iterations: usize,
    /// Admission threshold: a candidate is enqueued if its cost is below
    /// `alpha * best_cost` (the paper uses 1.0).
    pub alpha: f64,
    /// Maximum queue size (candidates beyond this are dropped).
    pub max_queue: usize,
}

impl Default for TasoConfig {
    fn default() -> Self {
        TasoConfig {
            iterations: 100,
            alpha: 1.0,
            max_queue: 10_000,
        }
    }
}

/// The TASO-style backtracking baseline run through the exploration seam.
///
/// The strategy extracts the current tree-greedy best graph from the
/// e-graph as the search seed (the input graph itself when the e-graph is
/// unexplored), runs [`BacktrackingSearch`] over the single-pattern rule
/// set, and unions the best graph of the trajectory with the root class.
/// Rewrites preserve semantics and output shapes, so the union is sound,
/// and extraction afterwards chooses between the original graph and the
/// baseline's best find under the one cost model.
#[derive(Debug, Clone, Copy, Default)]
pub struct TasoBacktracking;

impl ExplorationStrategy for TasoBacktracking {
    fn name(&self) -> &'static str {
        "taso"
    }

    fn run(&self, egraph: &mut TensorEGraph, ctx: &ExplorationContext<'_>) -> ExplorationStats {
        let mut stats = ExplorationStats::default();
        egraph.rebuild();
        let config = ctx.config();

        let seed = match crate::extract::extract_greedy(egraph, ctx.root(), &config.cost_model) {
            Ok(outcome) => outcome.expr,
            Err(_) => {
                // No extractable seed: nothing for the baseline to search.
                ctx.finish(egraph, &mut stats);
                return stats;
            }
        };

        let search = BacktrackingSearch::new(
            ctx.single_rules().to_vec(),
            BacktrackingConfig {
                iterations: config.taso.iterations,
                alpha: config.taso.alpha,
                time_limit: config.time_limit.saturating_sub(ctx.elapsed()),
                max_queue: config.taso.max_queue,
                cost_model: config.cost_model.clone(),
            },
        );
        let result = search.run(&seed);

        // Wire the trajectory's best graph back into the e-graph: its
        // output equals the seed's output by rewrite soundness, so the
        // root class may absorb it and extraction picks the cheaper form.
        let best = egraph.add_expr(&result.best_graph);
        egraph.union(ctx.root(), best);
        egraph.rebuild();
        if config.cycle_filter == CycleFilter::Efficient {
            stats.filtered_nodes += crate::cycles::remove_all_cycles(egraph, ctx.root());
        }

        stats.iterations = result.graphs_explored;
        stats
            .nodes_per_iteration
            .push(egraph.total_number_of_nodes());
        ctx.finish(egraph, &mut stats);
        stats
    }
}
