//! Guided exploration: a deterministic beam search (MCTS-lite) over
//! rule-batch actions, in the spirit of Hartmann & He (arXiv:2410.05534),
//! which treats rule application as a sequential decision problem instead
//! of saturating.
//!
//! Where [`Saturate`](super::Saturate) applies *every* admissible match
//! every iteration — and therefore blows past tight node limits on large
//! models — [`Guided`] holds a beam of candidate e-graph states and, at
//! each step, expands every state by one *action*: the budgeted
//! application of a single rule's whole match batch (or one multi-pattern
//! rule's Cartesian combinations). Each child state is an e-graph
//! snapshot ([`tensat_egraph::EGraph::snapshot`]) sealed by
//! rebuild + cycle filtering, then scored with the cheap rollout
//! evaluator from the extraction seam: the greedy-DAG extracted cost of
//! the root ([`DagExtractor`] over [`DagCost`]) plus a per-node growth
//! penalty. The top-k states survive (elitism: parents compete with their
//! children, so the best score is monotone), and the search stops when a
//! step improves nothing, when no action changes any state, or when a
//! limit is hit.
//!
//! Determinism: no randomness and no wall-clock-dependent tie-breaks —
//! match lists are bit-identical across thread counts, candidates are
//! generated in (beam index, rule index) order, scores compare via
//! `f64::total_cmp`, and the sort is stable. Two runs under the same
//! budget produce bit-identical e-graphs (the time limit is the only
//! nondeterministic input; give the search headroom when comparing runs).
//!
//! The node budget is *hard*: an action is applied only while the state
//! plus the applier's worst-case growth stays within
//! `ExplorationConfig::node_limit`, so no candidate — and hence the final
//! e-graph — ever exceeds it.

use super::context::ExplorationContext;
use super::{ExplorationStats, ExplorationStrategy};
use crate::extract::DagCost;
use tensat_egraph::{DagExtractor, Id};
use tensat_ir::{Cost, CostModel, TensorEGraph};

/// Parameters of the [`Guided`] strategy.
#[derive(Debug, Clone)]
pub struct GuidedConfig {
    /// Candidate e-graph states kept per step (top-k beam; minimum 1).
    pub beam_width: usize,
    /// Maximum beam steps. Each step expands every beam state by every
    /// applicable rule-batch action, so the work per step is roughly
    /// `beam_width × rules` searches/scorings on budget-bounded e-graphs.
    pub max_steps: usize,
    /// Score penalty per e-node in the state (µs per node): biases the
    /// search against growth that does not pay for itself in extracted
    /// cost, and breaks ties between equal-cost states toward the smaller
    /// e-graph.
    pub growth_penalty: f64,
}

impl Default for GuidedConfig {
    fn default() -> Self {
        GuidedConfig {
            beam_width: 2,
            max_steps: 8,
            growth_penalty: 0.01,
        }
    }
}

/// The guided beam-search strategy (see the module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct Guided;

/// One candidate e-graph state in the beam.
struct State {
    egraph: TensorEGraph,
    /// `extracted cost.latency + growth_penalty * enodes` — the beam
    /// ordering key.
    score: f64,
    /// Cheap identity signature used to drop duplicate states (two
    /// actions can produce the same e-graph) before they eat beam slots.
    signature: (usize, usize, usize, u64),
}

fn evaluate(
    egraph: &TensorEGraph,
    root: Id,
    model: &CostModel,
    growth_penalty: f64,
) -> (Cost, f64) {
    let best = DagExtractor::new(egraph, DagCost::new(model.clone(), egraph)).find_best(root);
    match best {
        Some((cost, _)) => (
            cost,
            cost.latency + growth_penalty * egraph.total_number_of_nodes() as f64,
        ),
        // No extractable term (every candidate filtered): dead state.
        None => (Cost::INFINITE, f64::INFINITY),
    }
}

fn state_of(egraph: TensorEGraph, root: Id, model: &CostModel, growth_penalty: f64) -> State {
    let (_cost, score) = evaluate(&egraph, root, model, growth_penalty);
    let signature = (
        egraph.total_number_of_nodes(),
        egraph.number_of_classes(),
        egraph.union_count(),
        score.to_bits(),
    );
    State {
        egraph,
        score,
        signature,
    }
}

impl ExplorationStrategy for Guided {
    fn name(&self) -> &'static str {
        "guided"
    }

    fn run(&self, egraph: &mut TensorEGraph, ctx: &ExplorationContext<'_>) -> ExplorationStats {
        let mut stats = ExplorationStats::default();
        egraph.rebuild();
        let config = ctx.config();
        let gcfg = &config.guided;
        let budget = config.node_limit;
        let beam_width = gcfg.beam_width.max(1);
        let model = &config.cost_model;
        let root = ctx.root();

        if egraph.total_number_of_nodes() > budget {
            // The seed alone exceeds the budget: nothing can be explored.
            ctx.finish(egraph, &mut stats);
            return stats;
        }

        let mut beam = vec![state_of(
            egraph.snapshot(),
            root,
            model,
            gcfg.growth_penalty,
        )];

        for step in 0..gcfg.max_steps {
            if ctx.elapsed() >= config.time_limit {
                break;
            }
            // Multi-pattern actions follow the saturation schedule: only
            // the first `k_multi` steps may apply them.
            let include_multi = step < config.k_multi;
            let mut candidates: Vec<State> = Vec::new();
            'expand: for state in &beam {
                let (single_matches, multi_matches) =
                    ctx.search_state(&state.egraph, include_multi);
                let nodes_before = state.egraph.total_number_of_nodes();
                let unions_before = state.egraph.union_count();
                let push = |next: TensorEGraph, candidates: &mut Vec<State>| {
                    let changed = next.total_number_of_nodes() != nodes_before
                        || next.union_count() != unions_before;
                    debug_assert!(next.total_number_of_nodes() <= budget);
                    if changed && next.total_number_of_nodes() <= budget {
                        candidates.push(state_of(next, root, model, gcfg.growth_penalty));
                    }
                };
                // One action per single-pattern rule with any match.
                for (ri, matches) in single_matches.iter().enumerate() {
                    if ctx.elapsed() >= config.time_limit {
                        break 'expand;
                    }
                    if matches.iter().all(|m| m.substs.is_empty()) {
                        continue;
                    }
                    let mut next = state.egraph.snapshot();
                    ctx.apply_single_budgeted(&mut next, ri, matches, budget);
                    push(next, &mut candidates);
                }
                // One action per multi-pattern rule (first k_multi steps).
                if include_multi && multi_matches.iter().any(|ms| !ms.is_empty()) {
                    for mi in 0..ctx.multi_rule_count() {
                        if ctx.elapsed() >= config.time_limit {
                            break 'expand;
                        }
                        let mut next = state.egraph.snapshot();
                        ctx.apply_multi_budgeted(&mut next, mi, &multi_matches, budget);
                        push(next, &mut candidates);
                    }
                }
            }
            if candidates.is_empty() {
                // No action changes any beam state within the budget: the
                // guided analogue of saturation.
                stats.saturated = true;
                break;
            }
            let best_before = beam[0].score;
            // Elitism: parents compete with their children, so the best
            // score never worsens and convergence is detectable.
            let mut pool = std::mem::take(&mut beam);
            pool.extend(candidates);
            pool.sort_by(|a, b| a.score.total_cmp(&b.score));
            let mut seen = std::collections::HashSet::new();
            pool.retain(|s| seen.insert(s.signature));
            pool.truncate(beam_width);
            beam = pool;
            stats.iterations = step + 1;
            stats
                .nodes_per_iteration
                .push(beam[0].egraph.total_number_of_nodes());
            if beam[0].score >= best_before && step > 0 {
                // A whole step of expansions improved nothing: converged.
                break;
            }
        }

        // The beam is sorted (or is the untouched seed): index 0 is the
        // best state ever seen, by elitism.
        *egraph = beam.swap_remove(0).egraph;
        debug_assert!(egraph.total_number_of_nodes() <= budget);
        ctx.finish(egraph, &mut stats);
        stats
    }
}
