//! The end-to-end TENSAT optimizer: exploration followed by extraction.

use crate::explore::{
    default_search_threads, defaults, explore, CycleFilter, ExplorationConfig, ExplorationMode,
    ExplorationStats, GuidedConfig, TasoConfig,
};
use crate::extract::{
    ExtractError, ExtractionStrategy, GreedyDag, IlpConfig, IlpExtraction, IlpStats, TreeGreedy,
};
use std::time::Duration;
use tensat_egraph::RecExpr;
use tensat_ir::{Cost, CostModel, TensorAnalysis, TensorEGraph, TensorLang};
use tensat_rules::{multi_rules, single_rules, MultiPatternRule, TensorRewrite};

/// Whether `TENSAT_VERIFY_RULES=1` turns on static rule verification at
/// [`Optimizer`] construction time (see `tensat-verify`). Off by default —
/// the full analysis takes seconds in debug builds, and the shipped corpus
/// is already gated in CI by the `verify_rules` binary — but cheap
/// insurance when experimenting with custom rule sets. Read once and
/// cached, mirroring the e-graph's `TENSAT_CHECK_INVARIANTS` gate.
fn rule_verification_forced() -> bool {
    static FORCED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FORCED.get_or_init(|| std::env::var("TENSAT_VERIFY_RULES").is_ok_and(|v| v == "1"))
}

/// Statically verifies a rule set at registration time when
/// [`rule_verification_forced`] is on.
///
/// # Panics
///
/// Panics with the full per-rule report when any rule has an
/// error-severity finding (unsound shape change, dead rule, unsatisfiable
/// or missing guard, unbound RHS variable, ...).
fn verify_rule_set(singles: &[TensorRewrite], multis: &[MultiPatternRule]) {
    if !rule_verification_forced() {
        return;
    }
    let report = tensat_verify::verify_corpus(singles, multis);
    if report.error_count() > 0 {
        panic!("TENSAT_VERIFY_RULES: rule set failed static verification:\n{report}");
    }
}

/// Which extraction algorithm to run after exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractionMode {
    /// Tree-greedy per-class extraction (paper §5.1, "Greedy extraction").
    Greedy,
    /// Global greedy DAG extraction: charges shared subgraphs once, at
    /// greedy speed (never worse than [`ExtractionMode::Greedy`] on DAG
    /// cost).
    GreedyDag,
    /// ILP extraction (paper §5.1, "ILP extraction"). This is TENSAT's
    /// default configuration.
    Ilp,
}

impl ExtractionMode {
    /// Parses a strategy name as accepted by the `TENSAT_EXTRACTOR`
    /// environment variable: `greedy` / `tree` / `tree-greedy`,
    /// `dag` / `greedy-dag`, or `ilp` (case-insensitive).
    pub fn from_name(name: &str) -> Option<ExtractionMode> {
        match name.to_ascii_lowercase().as_str() {
            "greedy" | "tree" | "tree-greedy" => Some(ExtractionMode::Greedy),
            "dag" | "greedy-dag" => Some(ExtractionMode::GreedyDag),
            "ilp" => Some(ExtractionMode::Ilp),
            _ => None,
        }
    }

    /// The extraction mode requested via the `TENSAT_EXTRACTOR` environment
    /// variable, if set to a recognized name. Read uncached (like
    /// `TENSAT_SEARCH_THREADS`) so tests and harnesses can vary it per run.
    pub fn from_env() -> Option<ExtractionMode> {
        std::env::var("TENSAT_EXTRACTOR")
            .ok()
            .and_then(|v| ExtractionMode::from_name(&v))
    }

    /// The strategy name this mode resolves to at the extraction seam.
    pub fn strategy_name(&self) -> &'static str {
        match self {
            ExtractionMode::Greedy => "tree-greedy",
            ExtractionMode::GreedyDag => "greedy-dag",
            ExtractionMode::Ilp => "ilp",
        }
    }
}

/// Full optimizer configuration.
///
/// The defaults follow the paper's experimental setup (§6.1): efficient
/// cycle filtering, ILP extraction without cycle constraints, `k_multi = 1`,
/// `k_max = 15`, `N_max = 50 000`.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Iterations in which multi-pattern rules are applied.
    pub k_multi: usize,
    /// Total exploration iteration limit.
    pub max_iter: usize,
    /// E-node limit for the exploration phase.
    pub node_limit: usize,
    /// Wall-clock limit for the exploration phase.
    pub exploration_time_limit: Duration,
    /// The cycle-filtering algorithm used during exploration.
    pub cycle_filter: CycleFilter,
    /// Threads used by the exploration search phase (1 = sequential; the
    /// parallel driver returns bit-identical matches, so this only affects
    /// wall-clock time). Defaults to
    /// [`default_search_threads`].
    pub search_threads: usize,
    /// Threads used by the staged apply+rebuild phase (`None` follows
    /// `search_threads`; the staged commit is bit-identical across thread
    /// counts, so this only affects wall-clock time). Defaults to the
    /// `TENSAT_APPLY_THREADS` environment override when set.
    pub apply_threads: Option<usize>,
    /// Which exploration strategy to run (saturate-all, guided beam
    /// search, or the TASO backtracking baseline).
    pub exploration: ExplorationMode,
    /// Parameters of the guided strategy (used when `exploration` is
    /// [`ExplorationMode::Guided`]).
    pub guided: GuidedConfig,
    /// Parameters of the TASO baseline (used when `exploration` is
    /// [`ExplorationMode::Taso`]).
    pub taso: TasoConfig,
    /// Which extraction algorithm to use.
    pub extraction: ExtractionMode,
    /// Include the ILP acyclicity constraints (only meaningful with
    /// [`ExtractionMode::Ilp`]; required if `cycle_filter` is `Off`).
    pub ilp_cycle_constraints: bool,
    /// Use integer topological-order variables instead of reals.
    pub ilp_integer_topo_vars: bool,
    /// Wall-clock limit for the ILP solver.
    pub ilp_time_limit: Duration,
    /// The operator cost model.
    pub cost_model: CostModel,
}

impl Default for OptimizerConfig {
    /// Paper defaults (the exploration limits come from the one source of
    /// truth, [`defaults`]), except that
    /// `TENSAT_EXTRACTOR` / `TENSAT_EXPLORER` environment overrides (see
    /// [`ExtractionMode::from_env`] and [`ExplorationMode::from_env`])
    /// replace the default ILP extraction / saturate exploration when set.
    fn default() -> Self {
        OptimizerConfig {
            k_multi: defaults::K_MULTI,
            max_iter: defaults::MAX_ITER,
            node_limit: defaults::NODE_LIMIT,
            exploration_time_limit: defaults::TIME_LIMIT,
            cycle_filter: CycleFilter::Efficient,
            search_threads: default_search_threads(),
            apply_threads: tensat_egraph::apply_threads_from_env(),
            exploration: ExplorationMode::from_env().unwrap_or(ExplorationMode::Saturate),
            guided: GuidedConfig::default(),
            taso: TasoConfig::default(),
            extraction: ExtractionMode::from_env().unwrap_or(ExtractionMode::Ilp),
            ilp_cycle_constraints: false,
            ilp_integer_topo_vars: false,
            ilp_time_limit: Duration::from_secs(60),
            cost_model: CostModel::default(),
        }
    }
}

impl OptimizerConfig {
    /// The [`ExplorationConfig`] this optimizer configuration implies —
    /// the one conversion between the two views of the exploration limits,
    /// so the optimizer cannot drift from the exploration defaults.
    pub fn exploration_config(&self) -> ExplorationConfig {
        ExplorationConfig {
            k_multi: self.k_multi,
            max_iter: self.max_iter,
            node_limit: self.node_limit,
            time_limit: self.exploration_time_limit,
            cycle_filter: self.cycle_filter,
            search_threads: self.search_threads,
            apply_threads: self.apply_threads,
            incremental_multi: false,
            mode: self.exploration,
            cost_model: self.cost_model.clone(),
            guided: self.guided.clone(),
            taso: self.taso.clone(),
        }
    }
}

/// Statistics of one optimization run.
#[derive(Debug, Clone)]
pub struct OptimizationStats {
    /// Exploration phase statistics.
    pub exploration: ExplorationStats,
    /// Extraction wall-clock time.
    pub extraction_time: Duration,
    /// ILP statistics (when ILP extraction ran).
    pub ilp: Option<IlpStats>,
}

/// The result of optimizing one graph.
#[derive(Debug, Clone)]
pub struct OptimizationResult {
    /// Estimated cost of the input graph (µs, DAG-counted).
    pub original_cost: f64,
    /// Estimated cost of the optimized graph (µs, DAG-counted).
    pub optimized_cost: f64,
    /// Composite cost of the optimized graph (latency, peak memory,
    /// launches); `optimized_cost` is its latency component.
    pub optimized_composite: Cost,
    /// The optimized graph.
    pub optimized_graph: RecExpr<TensorLang>,
    /// Run statistics.
    pub stats: OptimizationStats,
}

impl OptimizationResult {
    /// Speedup of the optimized graph over the original, in percent
    /// (`(T_original / T_optimized - 1) * 100`, as reported in the paper's
    /// Table 1 and Figure 4).
    pub fn speedup_percent(&self) -> f64 {
        if self.optimized_cost <= 0.0 {
            return 0.0;
        }
        (self.original_cost / self.optimized_cost - 1.0) * 100.0
    }

    /// Total optimizer time (exploration + extraction).
    pub fn optimizer_time(&self) -> Duration {
        self.stats.exploration.time + self.stats.extraction_time
    }
}

/// The TENSAT optimizer.
///
/// # Examples
///
/// ```
/// use tensat_core::{Optimizer, OptimizerConfig};
/// use tensat_ir::GraphBuilder;
/// let mut g = GraphBuilder::new();
/// let x = g.input("x", &[32, 64]);
/// let w1 = g.weight("w1", &[64, 64]);
/// let w2 = g.weight("w2", &[64, 64]);
/// let m1 = g.matmul(x, w1);
/// let m2 = g.matmul(x, w2);
/// let graph = g.finish(&[m1, m2]);
/// let result = Optimizer::new(OptimizerConfig::default()).optimize(&graph).unwrap();
/// assert!(result.optimized_cost <= result.original_cost);
/// ```
#[derive(Debug, Clone)]
pub struct Optimizer {
    config: OptimizerConfig,
    single_rules: Vec<TensorRewrite>,
    multi_rules: Vec<MultiPatternRule>,
}

impl Optimizer {
    /// Creates an optimizer with the standard TASO rule set.
    ///
    /// # Panics
    ///
    /// Panics if `TENSAT_VERIFY_RULES=1` is set and the rule set fails
    /// static verification (see `tensat-verify`).
    pub fn new(config: OptimizerConfig) -> Self {
        Optimizer::with_rules(config, single_rules(), multi_rules())
    }

    /// Creates an optimizer with a custom rule set (TENSAT supports
    /// flexible rule choices, paper §6.1 footnote 3).
    ///
    /// # Panics
    ///
    /// Panics if `TENSAT_VERIFY_RULES=1` is set and the rule set fails
    /// static verification (see `tensat-verify`).
    pub fn with_rules(
        config: OptimizerConfig,
        single_rules: Vec<TensorRewrite>,
        multi_rules: Vec<MultiPatternRule>,
    ) -> Self {
        verify_rule_set(&single_rules, &multi_rules);
        Optimizer {
            config,
            single_rules,
            multi_rules,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Optimizes a tensor graph: runs exploration then extraction and
    /// returns the best graph found together with statistics.
    ///
    /// # Examples
    ///
    /// ```
    /// use tensat_core::{ExtractionMode, Optimizer, OptimizerConfig};
    /// use tensat_ir::{Activation, GraphBuilder};
    /// // Two relu-matmuls sharing an input: mergeable plus fusable.
    /// let mut g = GraphBuilder::new();
    /// let x = g.input("x", &[32, 64]);
    /// let w1 = g.weight("w1", &[64, 64]);
    /// let w2 = g.weight("w2", &[64, 64]);
    /// let m1 = g.matmul_act(Activation::Relu, x, w1);
    /// let m2 = g.matmul_act(Activation::Relu, x, w2);
    /// let graph = g.finish(&[m1, m2]);
    ///
    /// let config = OptimizerConfig {
    ///     extraction: ExtractionMode::Greedy, // fast for a doc example
    ///     ..Default::default()
    /// };
    /// let result = Optimizer::new(config).optimize(&graph).unwrap();
    /// assert!(result.optimized_cost <= result.original_cost);
    /// assert!(result.speedup_percent() >= 0.0);
    /// // The optimized graph is always well-typed.
    /// let data = tensat_ir::infer_recexpr(&result.optimized_graph);
    /// assert!(data.iter().all(|d| d.is_valid()));
    /// ```
    ///
    /// # Errors
    ///
    /// Returns an [`ExtractError`] if extraction cannot produce a valid
    /// graph (e.g. the ILP is infeasible under an exhausted time budget).
    pub fn optimize(
        &self,
        graph: &RecExpr<TensorLang>,
    ) -> Result<OptimizationResult, ExtractError> {
        let model = &self.config.cost_model;
        let original_composite = model.graph_cost_composite(graph);
        let original_cost = original_composite.latency;

        let mut egraph = TensorEGraph::new(TensorAnalysis);
        let root = egraph.add_expr(graph);
        egraph.rebuild();

        let exploration_config = self.config.exploration_config();
        let exploration = explore(
            &mut egraph,
            root,
            &self.single_rules,
            &self.multi_rules,
            &exploration_config,
        );

        // All modes go through the one extraction seam.
        let strategy: Box<dyn ExtractionStrategy> = match self.config.extraction {
            ExtractionMode::Greedy => Box::new(TreeGreedy),
            ExtractionMode::GreedyDag => Box::new(GreedyDag),
            ExtractionMode::Ilp => Box::new(IlpExtraction {
                config: IlpConfig {
                    cycle_constraints: self.config.ilp_cycle_constraints,
                    integer_topo_vars: self.config.ilp_integer_topo_vars,
                    time_limit: self.config.ilp_time_limit,
                    ..Default::default()
                },
            }),
        };
        let outcome = strategy.extract(&egraph, root, model)?;

        // Never return a graph worse than the input: the input itself is
        // always represented in the e-graph. Comparison is the composite
        // lexicographic order, so ties on latency break toward the graph
        // with less memory/fewer launches — deterministically.
        let ilp_stats = outcome.ilp;
        let (optimized_graph, optimized_composite) =
            if outcome.cost.total_order(&original_composite).is_le() {
                (outcome.expr, outcome.cost)
            } else {
                (graph.clone(), original_composite)
            };

        Ok(OptimizationResult {
            original_cost,
            optimized_cost: optimized_composite.latency,
            optimized_composite,
            optimized_graph,
            stats: OptimizationStats {
                exploration,
                extraction_time: outcome.time,
                ilp: ilp_stats,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensat_ir::{Activation, GraphBuilder, Padding};

    fn parallel_matmul_graph() -> RecExpr<TensorLang> {
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let w1 = g.weight("w1", &[256, 128]);
        let w2 = g.weight("w2", &[256, 128]);
        let w3 = g.weight("w3", &[256, 128]);
        let m1 = g.matmul_act(Activation::Relu, x, w1);
        let m2 = g.matmul_act(Activation::Relu, x, w2);
        let m3 = g.matmul_act(Activation::Relu, x, w3);
        g.finish(&[m1, m2, m3])
    }

    #[test]
    fn optimizer_improves_parallel_matmuls() {
        let graph = parallel_matmul_graph();
        let result = Optimizer::new(OptimizerConfig::default())
            .optimize(&graph)
            .unwrap();
        assert!(
            result.optimized_cost < result.original_cost,
            "expected improvement: {} -> {}",
            result.original_cost,
            result.optimized_cost
        );
        assert!(result.speedup_percent() > 0.0);
        // Extracted graph must be well-typed.
        let data = tensat_ir::infer_recexpr(&result.optimized_graph);
        assert!(data.iter().all(|d| d.is_valid()));
    }

    #[test]
    fn greedy_mode_never_worsens() {
        let graph = parallel_matmul_graph();
        let config = OptimizerConfig {
            extraction: ExtractionMode::Greedy,
            ..Default::default()
        };
        let result = Optimizer::new(config).optimize(&graph).unwrap();
        assert!(result.optimized_cost <= result.original_cost);
    }

    #[test]
    fn greedy_dag_mode_at_least_matches_greedy() {
        let graph = parallel_matmul_graph();
        let greedy = Optimizer::new(OptimizerConfig {
            extraction: ExtractionMode::Greedy,
            ..Default::default()
        })
        .optimize(&graph)
        .unwrap();
        let dag = Optimizer::new(OptimizerConfig {
            extraction: ExtractionMode::GreedyDag,
            ..Default::default()
        })
        .optimize(&graph)
        .unwrap();
        assert!(dag.optimized_cost <= greedy.optimized_cost + 1e-9);
        assert!(dag.optimized_cost <= dag.original_cost);
        // The composite view is consistent with the scalar one.
        assert_eq!(dag.optimized_composite.latency, dag.optimized_cost);
        assert!(dag.optimized_composite.launches >= 1.0);
    }

    #[test]
    fn extractor_names_parse_like_the_env_override() {
        for (name, mode) in [
            ("greedy", ExtractionMode::Greedy),
            ("tree", ExtractionMode::Greedy),
            ("tree-greedy", ExtractionMode::Greedy),
            ("dag", ExtractionMode::GreedyDag),
            ("GREEDY-DAG", ExtractionMode::GreedyDag),
            ("ilp", ExtractionMode::Ilp),
        ] {
            assert_eq!(ExtractionMode::from_name(name), Some(mode));
        }
        assert_eq!(ExtractionMode::from_name("beam"), None);
        assert_eq!(ExtractionMode::Greedy.strategy_name(), "tree-greedy");
        assert_eq!(ExtractionMode::GreedyDag.strategy_name(), "greedy-dag");
        assert_eq!(ExtractionMode::Ilp.strategy_name(), "ilp");
    }

    #[test]
    fn exploration_limits_have_one_source_of_truth() {
        // The optimizer defaults and the exploration defaults must be the
        // same values — both now read `explore::defaults` — and the
        // conversion helper must carry every shared field across.
        let opt = OptimizerConfig::default();
        let exp = ExplorationConfig::default();
        assert_eq!(opt.k_multi, exp.k_multi);
        assert_eq!(opt.max_iter, exp.max_iter);
        assert_eq!(opt.node_limit, exp.node_limit);
        assert_eq!(opt.exploration_time_limit, exp.time_limit);
        assert_eq!(opt.cycle_filter, exp.cycle_filter);

        let derived = OptimizerConfig {
            k_multi: 3,
            max_iter: 7,
            node_limit: 123,
            exploration_time_limit: Duration::from_millis(250),
            cycle_filter: CycleFilter::Vanilla,
            search_threads: 2,
            apply_threads: Some(5),
            exploration: ExplorationMode::Guided,
            ..Default::default()
        }
        .exploration_config();
        assert_eq!(derived.k_multi, 3);
        assert_eq!(derived.max_iter, 7);
        assert_eq!(derived.node_limit, 123);
        assert_eq!(derived.time_limit, Duration::from_millis(250));
        assert_eq!(derived.cycle_filter, CycleFilter::Vanilla);
        assert_eq!(derived.search_threads, 2);
        assert_eq!(derived.apply_threads, Some(5));
        assert_eq!(derived.resolved_apply_threads(), 5);
        assert_eq!(derived.mode, ExplorationMode::Guided);
    }

    #[test]
    fn guided_exploration_never_worsens_and_respects_budget() {
        let graph = parallel_matmul_graph();
        let config = OptimizerConfig {
            exploration: ExplorationMode::Guided,
            node_limit: 200,
            extraction: ExtractionMode::GreedyDag,
            ..Default::default()
        };
        let result = Optimizer::new(config).optimize(&graph).unwrap();
        assert_eq!(result.stats.exploration.strategy, "guided");
        assert!(result.stats.exploration.enodes <= 200);
        assert!(result.optimized_cost <= result.original_cost);
        let data = tensat_ir::infer_recexpr(&result.optimized_graph);
        assert!(data.iter().all(|d| d.is_valid()));
    }

    #[test]
    fn taso_exploration_never_worsens() {
        let graph = parallel_matmul_graph();
        let config = OptimizerConfig {
            exploration: ExplorationMode::Taso,
            extraction: ExtractionMode::GreedyDag,
            ..Default::default()
        };
        let result = Optimizer::new(config).optimize(&graph).unwrap();
        assert_eq!(result.stats.exploration.strategy, "taso");
        assert!(result.optimized_cost <= result.original_cost);
        let data = tensat_ir::infer_recexpr(&result.optimized_graph);
        assert!(data.iter().all(|d| d.is_valid()));
    }

    #[test]
    fn ilp_mode_at_least_matches_greedy() {
        let graph = parallel_matmul_graph();
        let greedy = Optimizer::new(OptimizerConfig {
            extraction: ExtractionMode::Greedy,
            ..Default::default()
        })
        .optimize(&graph)
        .unwrap();
        let ilp = Optimizer::new(OptimizerConfig::default())
            .optimize(&graph)
            .unwrap();
        assert!(ilp.optimized_cost <= greedy.optimized_cost + 1e-9);
    }

    #[test]
    fn conv_relu_fusion_is_found() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[1, 64, 28, 28]);
        let w = g.weight("w", &[64, 64, 3, 3]);
        let c = g.conv(x, w, (1, 1), Padding::Same, Activation::None);
        let r = g.relu(c);
        let graph = g.finish(&[r]);
        let result = Optimizer::new(OptimizerConfig::default())
            .optimize(&graph)
            .unwrap();
        assert!(result.optimized_cost < result.original_cost);
        // The optimized graph fuses the relu into the conv (activation
        // parameter 1) and drops the standalone relu operator.
        assert!(!result.optimized_graph.to_string().contains("(relu"));
    }

    #[test]
    fn zero_iterations_returns_original() {
        let graph = parallel_matmul_graph();
        let config = OptimizerConfig {
            max_iter: 0,
            ..Default::default()
        };
        let result = Optimizer::new(config).optimize(&graph).unwrap();
        assert_eq!(result.speedup_percent(), 0.0);
        assert!((result.optimized_cost - result.original_cost).abs() < 1e-9);
    }
}
