//! The extraction phase (paper §5): pick one e-node per e-class so that the
//! resulting graph minimizes the cost model.
//!
//! Two extraction algorithms are provided, mirroring the paper:
//!
//! * **Greedy** — per e-class minimum subtree cost. Fast, but ignores
//!   sharing between subgraphs, so it never chooses the `split` form of a
//!   merged operator (Table 4).
//! * **ILP** — the integer-linear-program encoding of constraints (1)–(5),
//!   with the cycle constraints (4)–(5) optional, solved by `tensat-ilp`
//!   and warm-started from the greedy solution.

use crate::cycles::BitSet;
use std::time::{Duration, Instant};
use tensat_egraph::{CostFunction, Extractor, Id, Language, RecExpr};
use tensat_ilp::{Cmp, Problem, Solver, Status, VarId};
use tensat_ir::{CostModel, TensorData, TensorEGraph, TensorLang};

/// The result of one extraction.
#[derive(Debug, Clone)]
pub struct ExtractionOutcome {
    /// The extracted graph.
    pub expr: RecExpr<TensorLang>,
    /// Its cost under the cost model (µs of estimated inference time).
    pub cost: f64,
    /// Wall-clock time spent extracting.
    pub time: Duration,
}

/// Statistics of an ILP extraction.
#[derive(Debug, Clone)]
pub struct IlpStats {
    /// Number of ILP variables.
    pub num_vars: usize,
    /// Number of ILP constraints.
    pub num_constraints: usize,
    /// Solver status.
    pub status: Status,
    /// Branch-and-bound nodes explored.
    pub nodes_explored: usize,
    /// Solver wall-clock time.
    pub solve_time: Duration,
}

/// Errors from extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// No finite-cost term is represented for the root class.
    NoFiniteTerm,
    /// The ILP solver proved the encoding infeasible (can happen when every
    /// candidate in some required class was filtered).
    Infeasible,
    /// The selected nodes contain a cycle (only possible when both cycle
    /// filtering and the ILP cycle constraints are disabled).
    CyclicSelection,
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractError::NoFiniteTerm => write!(f, "no finite-cost term represented by the root"),
            ExtractError::Infeasible => write!(f, "ILP extraction is infeasible"),
            ExtractError::CyclicSelection => write!(f, "selected e-nodes form a cycle"),
        }
    }
}

impl std::error::Error for ExtractError {}

/// A [`CostFunction`] charging each e-node its cost-model cost plus the sum
/// of its children's costs (tree cost — the greedy approximation).
///
/// Reads class analysis data straight from the (shared, immutable) e-graph
/// — an O(1) dense-slot access — instead of snapshotting every class's
/// `TensorData` into a private hash map up front, as it did before the
/// dense storage refactor.
#[derive(Debug, Clone)]
pub struct TreeCost<'a> {
    model: CostModel,
    egraph: &'a TensorEGraph,
}

impl<'a> TreeCost<'a> {
    /// A tree-cost function over the given e-graph's analysis data.
    pub fn new(model: CostModel, egraph: &'a TensorEGraph) -> Self {
        TreeCost { model, egraph }
    }
}

impl CostFunction<TensorLang> for TreeCost<'_> {
    type Cost = f64;
    fn cost<C>(&mut self, enode: &TensorLang, mut costs: C) -> f64
    where
        C: FnMut(Id) -> f64,
    {
        let get = |id: Id| {
            if self.egraph.slot_index(id).is_some() {
                self.egraph.eclass(id).data.clone()
            } else {
                TensorData::invalid("unknown class")
            }
        };
        let own = self.model.node_cost(enode, &get);
        enode.children().iter().fold(own, |acc, &c| acc + costs(c))
    }
}

/// Greedy extraction (paper §5.1): per e-class, pick the e-node with the
/// smallest subtree cost.
pub fn extract_greedy(
    egraph: &TensorEGraph,
    root: Id,
    model: &CostModel,
) -> Result<ExtractionOutcome, ExtractError> {
    let start = Instant::now();
    let extractor = Extractor::new(egraph, TreeCost::new(model.clone(), egraph));
    let (_, expr) = extractor
        .find_best(root)
        .ok_or(ExtractError::NoFiniteTerm)?;
    let cost = model.graph_cost(&expr);
    Ok(ExtractionOutcome {
        expr,
        cost,
        time: start.elapsed(),
    })
}

/// Configuration for ILP extraction.
#[derive(Debug, Clone)]
pub struct IlpConfig {
    /// Include the acyclicity constraints (4)–(5). Required when the
    /// e-graph may contain cycles (no cycle filtering during exploration).
    pub cycle_constraints: bool,
    /// Use integer topological-order variables instead of reals.
    pub integer_topo_vars: bool,
    /// Wall-clock limit for the ILP solver.
    pub time_limit: Duration,
    /// Seed the solver with the greedy solution as a warm start.
    pub warm_start_with_greedy: bool,
}

impl Default for IlpConfig {
    fn default() -> Self {
        IlpConfig {
            cycle_constraints: false,
            integer_topo_vars: false,
            time_limit: Duration::from_secs(60),
            warm_start_with_greedy: true,
        }
    }
}

/// ILP extraction (paper §5.1): encode node selection as a 0/1 program and
/// solve it with the `tensat-ilp` branch-and-bound solver.
pub fn extract_ilp(
    egraph: &TensorEGraph,
    root: Id,
    model: &CostModel,
    config: &IlpConfig,
) -> Result<(ExtractionOutcome, IlpStats), ExtractError> {
    let start = Instant::now();
    let root = egraph.find(root);

    // Collect the classes reachable from the root through unfiltered,
    // finite-cost e-nodes, in BFS order (a good branching order for the
    // solver: decisions near the root come first). All per-class tables
    // below are indexed by the e-graph's dense slot space
    // ([`tensat_egraph::EGraph::slot_index`]) — the same index space the
    // cycle bit sets and the greedy extractor use.
    let slot = |id: Id| egraph.slot_index(id).expect("reachable class is live");
    let n_slots = egraph.num_slots();
    let mut order: Vec<Id> = vec![root];
    let mut seen = BitSet::new(n_slots);
    seen.insert(slot(root));
    let mut i = 0;
    while i < order.len() {
        let class = order[i];
        i += 1;
        for node in egraph.eclass(class).iter() {
            if egraph.is_filtered(node) {
                continue;
            }
            for &child in node.children() {
                let child = egraph.find(child);
                if seen.insert(slot(child)) {
                    order.push(child);
                }
            }
        }
    }

    // Candidate e-nodes per class.
    let mut problem = Problem::new();
    let mut node_vars: Vec<(Id, TensorLang, VarId)> = vec![];
    let mut class_vars: Vec<Vec<VarId>> = vec![vec![]; n_slots];
    for &class in &order {
        let mut vars = vec![];
        for node in egraph.eclass(class).iter() {
            if egraph.is_filtered(node) {
                continue;
            }
            let cost = model.enode_cost(egraph, node);
            if !cost.is_finite() {
                continue;
            }
            let var = problem.add_binary(cost);
            problem.set_name(var, format!("x_{class}_{}", node.display_op()));
            node_vars.push((class, node.clone(), var));
            vars.push(var);
        }
        class_vars[slot(class)] = vars;
    }

    // Constraint (2): exactly one node picked in the root class.
    let root_vars = class_vars[slot(root)].clone();
    if root_vars.is_empty() {
        return Err(ExtractError::NoFiniteTerm);
    }
    problem.add_constraint(root_vars.iter().map(|&v| (v, 1.0)).collect(), Cmp::Eq, 1.0);

    // Constraint (3): a picked node needs one picked node in each child class.
    for (_, node, var) in &node_vars {
        for &child in node.children() {
            let child_vars = &class_vars[slot(child)];
            if child_vars.is_empty() {
                // The child class has no viable candidates: this node can
                // never be selected.
                problem.add_constraint(vec![(*var, 1.0)], Cmp::Le, 0.0);
                continue;
            }
            let mut terms = vec![(*var, 1.0)];
            terms.extend(child_vars.iter().map(|&v| (v, -1.0)));
            problem.add_constraint(terms, Cmp::Le, 0.0);
        }
    }

    // Constraints (4)–(5): topological-order variables rule out cycles.
    if config.cycle_constraints {
        let m = order.len() as f64;
        let mut topo: Vec<Option<VarId>> = vec![None; n_slots];
        for &class in &order {
            let var = if config.integer_topo_vars {
                problem.add_integer(0, order.len() as i64 - 1, 0.0)
            } else {
                problem.add_continuous(0.0, 1.0, 0.0)
            };
            problem.set_name(var, format!("t_{class}"));
            topo[slot(class)] = Some(var);
        }
        let eps = 1.0 / (m + 1.0);
        for (class, node, var) in &node_vars {
            let t_own = topo[slot(*class)].expect("class is in the BFS order");
            for &child in node.children() {
                let t_child = topo[slot(child)].expect("child is in the BFS order");
                if config.integer_topo_vars {
                    // t_own - t_child + A(1 - x) >= 1, A >= M
                    let a = m;
                    problem.add_constraint(
                        vec![(t_own, 1.0), (t_child, -1.0), (*var, -a)],
                        Cmp::Ge,
                        1.0 - a,
                    );
                } else {
                    // t_own - t_child - eps + A(1 - x) >= 0, A > 1 + eps
                    let a = 2.0;
                    problem.add_constraint(
                        vec![(t_own, 1.0), (t_child, -1.0), (*var, -a)],
                        Cmp::Ge,
                        eps - a,
                    );
                }
            }
        }
    }

    // Warm start from the greedy solution.
    let greedy = if config.warm_start_with_greedy {
        extract_greedy(egraph, root, model).ok()
    } else {
        None
    };
    let hint = greedy.as_ref().map(|greedy| {
        let mut values = vec![0.0; problem.num_vars()];
        // Map the greedy expression's nodes back to (class, canonical node)
        // pairs: children in the expression are expression-local ids, so
        // translate them to e-class ids bottom-up first.
        let mut selected: std::collections::HashSet<(Id, TensorLang)> = Default::default();
        let mut expr_to_class: Vec<Id> = Vec::with_capacity(greedy.expr.len());
        for (_, node) in greedy.expr.iter() {
            let mapped = node.map_children(|c| expr_to_class[usize::from(c)]);
            match egraph.lookup(&mapped) {
                Some(class) => {
                    let class = egraph.find(class);
                    selected.insert((class, egraph.canonicalize(&mapped)));
                    expr_to_class.push(class);
                }
                None => expr_to_class.push(egraph.find(root)),
            }
        }
        for (class, node, var) in &node_vars {
            if selected.contains(&(egraph.find(*class), egraph.canonicalize(node))) {
                values[var.0] = 1.0;
            }
        }
        values
    });

    let solver = Solver::with_time_limit(config.time_limit);
    let solution = match &hint {
        Some(h) => solver.solve_with_hint(&problem, h),
        None => solver.solve(&problem),
    };
    let stats = IlpStats {
        num_vars: problem.num_vars(),
        num_constraints: problem.num_constraints(),
        status: solution.status,
        nodes_explored: solution.nodes_explored,
        solve_time: solution.solve_time,
    };
    if !solution.has_solution() {
        return Err(ExtractError::Infeasible);
    }

    // Read the selection back: for each class (slot), the chosen e-node.
    let mut choice: Vec<Option<TensorLang>> = vec![None; n_slots];
    for (class, node, var) in &node_vars {
        let s = slot(*class);
        if solution.value(*var) > 0.5 && choice[s].is_none() {
            choice[s] = Some(node.clone());
        }
    }
    let expr = build_selection(egraph, root, &choice)?;
    let cost = model.graph_cost(&expr);
    let mut outcome = ExtractionOutcome {
        expr,
        cost,
        time: start.elapsed(),
    };
    // The solver is an any-time procedure: if it hit its budget before
    // re-discovering the greedy incumbent (e.g. the warm start could not be
    // translated into a feasible assignment), keep whichever graph is
    // cheaper so ILP extraction never regresses below greedy.
    if let Some(greedy) = greedy {
        if greedy.cost < outcome.cost {
            outcome.expr = greedy.expr;
            outcome.cost = greedy.cost;
        }
    }
    Ok((outcome, stats))
}

/// Builds the extracted expression from a per-slot node choice, detecting
/// cyclic selections.
fn build_selection(
    egraph: &TensorEGraph,
    root: Id,
    choice: &[Option<TensorLang>],
) -> Result<RecExpr<TensorLang>, ExtractError> {
    fn rec(
        egraph: &TensorEGraph,
        class: Id,
        choice: &[Option<TensorLang>],
        expr: &mut RecExpr<TensorLang>,
        done: &mut [Option<Id>],
        on_stack: &mut BitSet,
    ) -> Result<Id, ExtractError> {
        let slot = egraph.slot_index(class).ok_or(ExtractError::Infeasible)?;
        if let Some(id) = done[slot] {
            return Ok(id);
        }
        if !on_stack.insert(slot) {
            return Err(ExtractError::CyclicSelection);
        }
        let node = choice
            .get(slot)
            .and_then(|c| c.clone())
            .ok_or(ExtractError::Infeasible)?;
        let mut children = Vec::with_capacity(node.children().len());
        for &c in node.children() {
            children.push(rec(egraph, c, choice, expr, done, on_stack)?);
        }
        let mut i = 0;
        let node = node.map_children(|_| {
            let id = children[i];
            i += 1;
            id
        });
        let id = expr.add(node);
        done[slot] = Some(id);
        Ok(id)
    }
    let mut expr = RecExpr::default();
    let mut done = vec![None; egraph.num_slots()];
    let mut on_stack = BitSet::new(egraph.num_slots());
    rec(egraph, root, choice, &mut expr, &mut done, &mut on_stack)?;
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExplorationConfig};
    use tensat_ir::{GraphBuilder, TensorAnalysis};
    use tensat_rules::{multi_rules, single_rules};

    /// Two matmuls sharing an input: the case where greedy fails to pick
    /// the merged form but ILP succeeds (paper §5.1 and Table 4).
    fn explored_two_matmuls() -> (TensorEGraph, Id, f64) {
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let w1 = g.weight("w1", &[256, 128]);
        let w2 = g.weight("w2", &[256, 128]);
        let m1 = g.matmul(x, w1);
        let m2 = g.matmul(x, w2);
        let expr = g.finish(&[m1, m2]);
        let model = CostModel::default();
        let original = model.graph_cost(&expr);
        let mut eg = TensorEGraph::new(TensorAnalysis);
        let root = eg.add_expr(&expr);
        eg.rebuild();
        explore(
            &mut eg,
            root,
            &single_rules(),
            &multi_rules(),
            &ExplorationConfig {
                k_multi: 1,
                max_iter: 4,
                node_limit: 10_000,
                ..Default::default()
            },
        );
        (eg, root, original)
    }

    #[test]
    fn greedy_extracts_a_valid_graph() {
        let (eg, root, original) = explored_two_matmuls();
        let model = CostModel::default();
        let out = extract_greedy(&eg, root, &model).unwrap();
        assert!(out.cost.is_finite());
        assert!(out.cost <= original * 1.001);
        let data = tensat_ir::infer_recexpr(&out.expr);
        assert!(data.iter().all(|d| d.is_valid()));
    }

    #[test]
    fn ilp_beats_greedy_on_shared_subgraphs() {
        let (eg, root, original) = explored_two_matmuls();
        let model = CostModel::default();
        let greedy = extract_greedy(&eg, root, &model).unwrap();
        let (ilp, stats) = extract_ilp(&eg, root, &model, &IlpConfig::default()).unwrap();
        assert!(stats.num_vars > 0);
        assert!(
            ilp.cost < greedy.cost,
            "ILP ({}) should beat greedy ({}) by picking the merged matmul",
            ilp.cost,
            greedy.cost
        );
        assert!(ilp.cost < original);
        // The ILP graph must contain the split form.
        assert!(ilp.expr.to_string().contains("split"));
        let data = tensat_ir::infer_recexpr(&ilp.expr);
        assert!(data.iter().all(|d| d.is_valid()));
    }

    #[test]
    fn ilp_with_cycle_constraints_matches_without_on_acyclic_egraph() {
        let (eg, root, _) = explored_two_matmuls();
        let model = CostModel::default();
        let (plain, _) = extract_ilp(&eg, root, &model, &IlpConfig::default()).unwrap();
        let (with_cycles, _) = extract_ilp(
            &eg,
            root,
            &model,
            &IlpConfig {
                cycle_constraints: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((plain.cost - with_cycles.cost).abs() < 1e-6);
        let (int_topo, _) = extract_ilp(
            &eg,
            root,
            &model,
            &IlpConfig {
                cycle_constraints: true,
                integer_topo_vars: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((plain.cost - int_topo.cost).abs() < 1e-6);
    }

    #[test]
    fn extraction_on_unexplored_graph_returns_input() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[8, 8]);
        let r = g.relu(x);
        let expr = g.finish(&[r]);
        let model = CostModel::default();
        let mut eg = TensorEGraph::new(TensorAnalysis);
        let root = eg.add_expr(&expr);
        eg.rebuild();
        let greedy = extract_greedy(&eg, root, &model).unwrap();
        assert!((greedy.cost - model.graph_cost(&expr)).abs() < 1e-6);
        let (ilp, stats) = extract_ilp(&eg, root, &model, &IlpConfig::default()).unwrap();
        assert!((ilp.cost - greedy.cost).abs() < 1e-6);
        assert_eq!(stats.status, Status::Optimal);
    }
}
