//! The extraction phase (paper §5): pick one e-node per e-class so that the
//! resulting graph minimizes the cost model.
//!
//! Three extraction strategies are provided behind one seam
//! ([`ExtractionStrategy`]), all reporting the composite
//! [`Cost`] and both honest costs of their result
//! (see [`ExtractionOutcome`]):
//!
//! * [`TreeGreedy`] — per e-class minimum *subtree* cost (paper §5.1).
//!   Fast, but it charges shared subgraphs once per use, so it never
//!   chooses the `split` form of a merged operator (Table 4).
//! * [`GreedyDag`] — the worklist-driven global greedy DAG extractor
//!   ([`tensat_egraph::DagExtractor`]) which charges each e-node once
//!   regardless of sharing. To make `dag_cost(GreedyDag) ≤
//!   dag_cost(TreeGreedy)` unconditional, the strategy also runs
//!   tree-greedy and returns whichever result has the lower DAG cost.
//! * [`IlpExtraction`] — the integer-linear-program encoding of
//!   constraints (1)–(5), with the cycle constraints (4)–(5) optional,
//!   solved by `tensat-ilp` and warm-started from the greedy-DAG solution
//!   (which dominates the tree-greedy warm start it replaced).
//!
//! Extraction minimizes the *lexicographic* composite order (latency, then
//! peak memory, then launches — see [`Cost`]); the scalar
//! `dag_cost`/`tree_cost` fields report plain latency for paper-style
//! comparisons.

use crate::cycles::BitSet;
use std::cmp::Ordering;
use std::time::{Duration, Instant};
use tensat_egraph::{
    CostFunction, DagCostFunction, DagExtractor, Extractor, Id, Language, RecExpr,
};
use tensat_ilp::{Cmp, Problem, Solver, Status, VarId};
use tensat_ir::{Cost, CostModel, TensorData, TensorEGraph, TensorLang};

/// The result of one extraction.
///
/// Both cost views of the extracted graph are reported so strategies are
/// never compared apples-to-oranges: `tree_cost` charges shared subgraphs
/// once per use (the objective tree-greedy actually minimizes), `dag_cost`
/// charges each node once (what the graph actually costs to run, and the
/// objective the DAG-aware strategies minimize). Earlier revisions reported
/// a single scalar that meant tree cost for greedy and DAG cost for ILP.
#[derive(Debug, Clone)]
pub struct ExtractionOutcome {
    /// The extracted graph.
    pub expr: RecExpr<TensorLang>,
    /// Composite DAG-counted cost of `expr` (latency µs, peak-memory
    /// bytes, kernel launches), each node charged once.
    pub cost: Cost,
    /// DAG cost in µs: each node charged once (`cost.latency`).
    pub dag_cost: f64,
    /// Tree cost in µs: each node charged once per use.
    pub tree_cost: f64,
    /// Wall-clock time spent extracting.
    pub time: Duration,
    /// Solver statistics when the ILP strategy produced this outcome.
    pub ilp: Option<IlpStats>,
}

impl ExtractionOutcome {
    /// Builds an outcome for `expr`, measuring both honest costs under the
    /// model.
    fn measure(expr: RecExpr<TensorLang>, model: &CostModel, time: Duration) -> Self {
        let cost = model.graph_cost_composite(&expr);
        let tree_cost = model.tree_cost(&expr);
        ExtractionOutcome {
            dag_cost: cost.latency,
            tree_cost,
            cost,
            expr,
            time,
            ilp: None,
        }
    }
}

/// Statistics of an ILP extraction.
#[derive(Debug, Clone)]
pub struct IlpStats {
    /// Number of ILP variables.
    pub num_vars: usize,
    /// Number of ILP constraints.
    pub num_constraints: usize,
    /// Solver status.
    pub status: Status,
    /// Branch-and-bound nodes explored.
    pub nodes_explored: usize,
    /// Solver wall-clock time.
    pub solve_time: Duration,
}

/// Errors from extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// No finite-cost term is represented for the root class.
    NoFiniteTerm,
    /// The ILP solver proved the encoding infeasible (can happen when every
    /// candidate in some required class was filtered).
    Infeasible,
    /// The selected nodes contain a cycle (only possible when both cycle
    /// filtering and the ILP cycle constraints are disabled).
    CyclicSelection,
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractError::NoFiniteTerm => write!(f, "no finite-cost term represented by the root"),
            ExtractError::Infeasible => write!(f, "ILP extraction is infeasible"),
            ExtractError::CyclicSelection => write!(f, "selected e-nodes form a cycle"),
        }
    }
}

impl std::error::Error for ExtractError {}

/// A [`CostFunction`] charging each e-node its cost-model cost plus the sum
/// of its children's costs (tree cost — the greedy approximation).
///
/// Reads class analysis data straight from the (shared, immutable) e-graph
/// — an O(1) dense-slot access — instead of snapshotting every class's
/// `TensorData` into a private hash map up front, as it did before the
/// dense storage refactor.
#[derive(Debug, Clone)]
pub struct TreeCost<'a> {
    model: CostModel,
    egraph: &'a TensorEGraph,
}

impl<'a> TreeCost<'a> {
    /// A tree-cost function over the given e-graph's analysis data.
    pub fn new(model: CostModel, egraph: &'a TensorEGraph) -> Self {
        TreeCost { model, egraph }
    }
}

impl CostFunction<TensorLang> for TreeCost<'_> {
    type Cost = f64;
    fn cost<C>(&mut self, enode: &TensorLang, mut costs: C) -> f64
    where
        C: FnMut(Id) -> f64,
    {
        let get = |id: Id| {
            if self.egraph.slot_index(id).is_some() {
                self.egraph.eclass(id).data.clone()
            } else {
                TensorData::invalid("unknown class")
            }
        };
        let own = self.model.node_cost(enode, &get);
        enode.children().iter().fold(own, |acc, &c| acc + costs(c))
    }

    /// Total order on float costs: NaN sorts above `+inf`, so a NaN from a
    /// degenerate cost model can never displace a finite per-class best.
    fn cmp(a: &f64, b: &f64) -> Ordering {
        a.total_cmp(b)
    }
}

/// A [`DagCostFunction`] charging each e-node its *own* composite
/// cost-model cost; the DAG extractor sums it over the set of selected
/// classes, so sharing is charged once.
#[derive(Debug, Clone)]
pub struct DagCost<'a> {
    model: CostModel,
    egraph: &'a TensorEGraph,
}

impl<'a> DagCost<'a> {
    /// A per-node composite cost function over the given e-graph's analysis
    /// data.
    pub fn new(model: CostModel, egraph: &'a TensorEGraph) -> Self {
        DagCost { model, egraph }
    }
}

impl DagCostFunction<TensorLang> for DagCost<'_> {
    type Cost = Cost;

    fn node_cost(&mut self, enode: &TensorLang) -> Cost {
        let get = |id: Id| {
            if self.egraph.slot_index(id).is_some() {
                self.egraph.eclass(id).data.clone()
            } else {
                TensorData::invalid("unknown class")
            }
        };
        self.model.node_cost_composite(enode, &get)
    }

    fn zero(&self) -> Cost {
        Cost::ZERO
    }

    fn add_assign(&self, acc: &mut Cost, item: &Cost) {
        *acc += *item;
    }

    /// The lexicographic total order of [`Cost`] (latency, memory,
    /// launches), NaN-safe via `total_cmp` per component.
    fn cmp(a: &Cost, b: &Cost) -> Ordering {
        a.total_order(b)
    }
}

/// Tree-greedy extraction (paper §5.1): per e-class, pick the e-node with
/// the smallest subtree cost.
pub fn extract_greedy(
    egraph: &TensorEGraph,
    root: Id,
    model: &CostModel,
) -> Result<ExtractionOutcome, ExtractError> {
    let start = Instant::now();
    let extractor = Extractor::new(egraph, TreeCost::new(model.clone(), egraph));
    let (_, expr) = extractor
        .find_best(root)
        .ok_or(ExtractError::NoFiniteTerm)?;
    Ok(ExtractionOutcome::measure(expr, model, start.elapsed()))
}

/// Global greedy DAG extraction: the worklist extractor charging each
/// e-node once (see [`tensat_egraph::DagExtractor`]), minimizing the
/// composite cost.
///
/// Both greedy extractors run and the result with the lower composite DAG
/// cost is returned, so `dag_cost(extract_greedy_dag) ≤
/// dag_cost(extract_greedy)` holds by construction — the DAG extractor is
/// a heuristic, and on e-graphs where profitable sharing requires several
/// classes to switch candidates *jointly* (the merged-matmul economics only
/// the ILP captures), its per-class-at-a-time fixpoint can lose to the tree
/// choice. The reported `time` covers both runs.
pub fn extract_greedy_dag(
    egraph: &TensorEGraph,
    root: Id,
    model: &CostModel,
) -> Result<ExtractionOutcome, ExtractError> {
    let start = Instant::now();
    let extractor = DagExtractor::new(egraph, DagCost::new(model.clone(), egraph));
    let dag = extractor.find_best(root);
    let tree = Extractor::new(egraph, TreeCost::new(model.clone(), egraph)).find_best(root);
    let best = match (dag, tree) {
        (Some((_, d)), Some((_, t))) => {
            // Compare by honest composite DAG cost of the built graphs, not
            // the extractors' internal objectives (which disagree on what a
            // "cost" is).
            if model
                .graph_cost_composite(&d)
                .total_order(&model.graph_cost_composite(&t))
                != Ordering::Greater
            {
                d
            } else {
                t
            }
        }
        (Some((_, d)), None) => d,
        (None, Some((_, t))) => t,
        (None, None) => return Err(ExtractError::NoFiniteTerm),
    };
    Ok(ExtractionOutcome::measure(best, model, start.elapsed()))
}

/// Configuration for ILP extraction.
#[derive(Debug, Clone)]
pub struct IlpConfig {
    /// Include the acyclicity constraints (4)–(5). Required when the
    /// e-graph may contain cycles (no cycle filtering during exploration).
    pub cycle_constraints: bool,
    /// Use integer topological-order variables instead of reals.
    pub integer_topo_vars: bool,
    /// Wall-clock limit for the ILP solver.
    pub time_limit: Duration,
    /// Seed the solver with the greedy-DAG solution as a warm start (and
    /// keep it as the incumbent if the solver's budget runs out first).
    pub warm_start_with_greedy: bool,
}

impl Default for IlpConfig {
    fn default() -> Self {
        IlpConfig {
            cycle_constraints: false,
            integer_topo_vars: false,
            time_limit: Duration::from_secs(60),
            warm_start_with_greedy: true,
        }
    }
}

/// ILP extraction (paper §5.1): encode node selection as a 0/1 program and
/// solve it with the `tensat-ilp` branch-and-bound solver. Solver
/// statistics are reported in the outcome's [`ExtractionOutcome::ilp`].
pub fn extract_ilp(
    egraph: &TensorEGraph,
    root: Id,
    model: &CostModel,
    config: &IlpConfig,
) -> Result<ExtractionOutcome, ExtractError> {
    let start = Instant::now();
    let root = egraph.find(root);

    // Collect the classes reachable from the root through unfiltered,
    // finite-cost e-nodes, in BFS order (a good branching order for the
    // solver: decisions near the root come first). All per-class tables
    // below are indexed by the e-graph's dense slot space
    // ([`tensat_egraph::EGraph::slot_index`]) — the same index space the
    // cycle bit sets and the greedy extractors use.
    let slot = |id: Id| egraph.slot_index(id).expect("reachable class is live");
    let n_slots = egraph.num_slots();
    let mut order: Vec<Id> = vec![root];
    let mut seen = BitSet::new(n_slots);
    seen.insert(slot(root));
    let mut i = 0;
    while i < order.len() {
        let class = order[i];
        i += 1;
        for node in egraph.eclass(class).iter() {
            if egraph.is_filtered(node) {
                continue;
            }
            for &child in node.children() {
                let child = egraph.find(child);
                if seen.insert(slot(child)) {
                    order.push(child);
                }
            }
        }
    }

    // Candidate e-nodes per class. The objective coefficient is the
    // latency component of the composite cost — the solver minimizes the
    // primary objective; memory and launches ride along in the outcome.
    let mut problem = Problem::new();
    let mut node_vars: Vec<(Id, TensorLang, VarId)> = vec![];
    let mut class_vars: Vec<Vec<VarId>> = vec![vec![]; n_slots];
    for &class in &order {
        let mut vars = vec![];
        for node in egraph.eclass(class).iter() {
            if egraph.is_filtered(node) {
                continue;
            }
            let cost = model.enode_cost_composite(egraph, node);
            if !cost.is_finite() {
                continue;
            }
            let var = problem.add_binary(cost.latency);
            problem.set_name(var, format!("x_{class}_{}", node.display_op()));
            node_vars.push((class, node.clone(), var));
            vars.push(var);
        }
        class_vars[slot(class)] = vars;
    }

    // Constraint (2): exactly one node picked in the root class.
    let root_vars = class_vars[slot(root)].clone();
    if root_vars.is_empty() {
        return Err(ExtractError::NoFiniteTerm);
    }
    problem.add_constraint(root_vars.iter().map(|&v| (v, 1.0)).collect(), Cmp::Eq, 1.0);

    // Constraint (3): a picked node needs one picked node in each child class.
    for (_, node, var) in &node_vars {
        for &child in node.children() {
            let child_vars = &class_vars[slot(child)];
            if child_vars.is_empty() {
                // The child class has no viable candidates: this node can
                // never be selected.
                problem.add_constraint(vec![(*var, 1.0)], Cmp::Le, 0.0);
                continue;
            }
            let mut terms = vec![(*var, 1.0)];
            terms.extend(child_vars.iter().map(|&v| (v, -1.0)));
            problem.add_constraint(terms, Cmp::Le, 0.0);
        }
    }

    // Constraints (4)–(5): topological-order variables rule out cycles.
    if config.cycle_constraints {
        let m = order.len() as f64;
        let mut topo: Vec<Option<VarId>> = vec![None; n_slots];
        for &class in &order {
            let var = if config.integer_topo_vars {
                problem.add_integer(0, order.len() as i64 - 1, 0.0)
            } else {
                problem.add_continuous(0.0, 1.0, 0.0)
            };
            problem.set_name(var, format!("t_{class}"));
            topo[slot(class)] = Some(var);
        }
        let eps = 1.0 / (m + 1.0);
        for (class, node, var) in &node_vars {
            let t_own = topo[slot(*class)].expect("class is in the BFS order");
            for &child in node.children() {
                let t_child = topo[slot(child)].expect("child is in the BFS order");
                if config.integer_topo_vars {
                    // t_own - t_child + A(1 - x) >= 1, A >= M
                    let a = m;
                    problem.add_constraint(
                        vec![(t_own, 1.0), (t_child, -1.0), (*var, -a)],
                        Cmp::Ge,
                        1.0 - a,
                    );
                } else {
                    // t_own - t_child - eps + A(1 - x) >= 0, A > 1 + eps
                    let a = 2.0;
                    problem.add_constraint(
                        vec![(t_own, 1.0), (t_child, -1.0), (*var, -a)],
                        Cmp::Ge,
                        eps - a,
                    );
                }
            }
        }
    }

    // Warm start from the greedy-DAG solution: its DAG cost lower-bounds
    // the tree-greedy incumbent the solver used to receive, so the solver
    // starts from a no-worse incumbent.
    let greedy = if config.warm_start_with_greedy {
        extract_greedy_dag(egraph, root, model).ok()
    } else {
        None
    };
    let hint = greedy.as_ref().map(|greedy| {
        let mut values = vec![0.0; problem.num_vars()];
        // Map the greedy expression's nodes back to (class, canonical node)
        // pairs: children in the expression are expression-local ids, so
        // translate them to e-class ids bottom-up first.
        let mut selected: std::collections::HashSet<(Id, TensorLang)> = Default::default();
        let mut expr_to_class: Vec<Id> = Vec::with_capacity(greedy.expr.len());
        for (_, node) in greedy.expr.iter() {
            let mapped = node.map_children(|c| expr_to_class[usize::from(c)]);
            match egraph.lookup(&mapped) {
                Some(class) => {
                    let class = egraph.find(class);
                    selected.insert((class, egraph.canonicalize(&mapped)));
                    expr_to_class.push(class);
                }
                None => expr_to_class.push(egraph.find(root)),
            }
        }
        for (class, node, var) in &node_vars {
            if selected.contains(&(egraph.find(*class), egraph.canonicalize(node))) {
                values[var.0] = 1.0;
            }
        }
        values
    });

    let solver = Solver::with_time_limit(config.time_limit);
    let solution = match &hint {
        Some(h) => solver.solve_with_hint(&problem, h),
        None => solver.solve(&problem),
    };
    let stats = IlpStats {
        num_vars: problem.num_vars(),
        num_constraints: problem.num_constraints(),
        status: solution.status,
        nodes_explored: solution.nodes_explored,
        solve_time: solution.solve_time,
    };
    if !solution.has_solution() {
        return Err(ExtractError::Infeasible);
    }

    // Read the selection back: for each class (slot), the chosen e-node.
    let mut choice: Vec<Option<TensorLang>> = vec![None; n_slots];
    for (class, node, var) in &node_vars {
        let s = slot(*class);
        if solution.value(*var) > 0.5 && choice[s].is_none() {
            choice[s] = Some(node.clone());
        }
    }
    let expr = build_selection(egraph, root, &choice)?;
    let mut outcome = ExtractionOutcome::measure(expr, model, start.elapsed());
    // The solver is an any-time procedure: if it hit its budget before
    // re-discovering the greedy incumbent (e.g. the warm start could not be
    // translated into a feasible assignment), keep whichever graph is
    // cheaper so ILP extraction never regresses below greedy.
    if let Some(greedy) = greedy {
        if greedy.cost.total_order(&outcome.cost) == Ordering::Less {
            outcome.expr = greedy.expr;
            outcome.cost = greedy.cost;
            outcome.dag_cost = greedy.dag_cost;
            outcome.tree_cost = greedy.tree_cost;
        }
    }
    outcome.ilp = Some(stats);
    Ok(outcome)
}

/// Builds the extracted expression from a per-slot node choice, detecting
/// cyclic selections. Iterative (one explicit frame per class on a heap
/// stack), so arbitrarily deep selections cannot overflow the thread stack.
fn build_selection(
    egraph: &TensorEGraph,
    root: Id,
    choice: &[Option<TensorLang>],
) -> Result<RecExpr<TensorLang>, ExtractError> {
    struct Frame {
        slot: usize,
        node: TensorLang,
        next_child: usize,
        children: Vec<Id>,
    }
    let frame = |slot: usize, node: TensorLang| Frame {
        slot,
        node,
        next_child: 0,
        children: vec![],
    };
    let pick = |slot: usize| -> Result<TensorLang, ExtractError> {
        choice
            .get(slot)
            .and_then(|c| c.clone())
            .ok_or(ExtractError::Infeasible)
    };

    let mut expr = RecExpr::default();
    let mut done: Vec<Option<Id>> = vec![None; egraph.num_slots()];
    let mut on_stack = BitSet::new(egraph.num_slots());
    let root_slot = egraph.slot_index(root).ok_or(ExtractError::Infeasible)?;
    on_stack.insert(root_slot);
    let mut stack = vec![frame(root_slot, pick(root_slot)?)];
    loop {
        let top = stack.last_mut().expect("loop returns before emptying");
        if let Some(&child) = top.node.children().get(top.next_child) {
            top.next_child += 1;
            let slot = egraph
                .slot_index(egraph.find(child))
                .ok_or(ExtractError::Infeasible)?;
            if let Some(id) = done[slot] {
                top.children.push(id);
            } else {
                if !on_stack.insert(slot) {
                    return Err(ExtractError::CyclicSelection);
                }
                stack.push(frame(slot, pick(slot)?));
            }
            continue;
        }
        let finished = stack.pop().expect("a frame is always on the stack");
        let mut i = 0;
        let node = finished.node.map_children(|_| {
            let id = finished.children[i];
            i += 1;
            id
        });
        let id = expr.add(node);
        done[finished.slot] = Some(id);
        match stack.last_mut() {
            Some(parent) => parent.children.push(id),
            None => return Ok(expr),
        }
    }
}

/// The single extraction seam: every strategy maps `(e-graph, root, cost
/// model)` to an [`ExtractionOutcome`] with honest tree/DAG costs, so the
/// optimizer, the benches, and future strategies (e.g. the MCTS scorer)
/// all call extraction the same way.
pub trait ExtractionStrategy: std::fmt::Debug {
    /// Short stable name used in reports and the `TENSAT_EXTRACTOR`
    /// environment override.
    fn name(&self) -> &'static str;

    /// Extracts the best graph for `root` under this strategy.
    fn extract(
        &self,
        egraph: &TensorEGraph,
        root: Id,
        model: &CostModel,
    ) -> Result<ExtractionOutcome, ExtractError>;
}

/// The tree-greedy strategy ([`extract_greedy`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct TreeGreedy;

impl ExtractionStrategy for TreeGreedy {
    fn name(&self) -> &'static str {
        "tree-greedy"
    }
    fn extract(
        &self,
        egraph: &TensorEGraph,
        root: Id,
        model: &CostModel,
    ) -> Result<ExtractionOutcome, ExtractError> {
        extract_greedy(egraph, root, model)
    }
}

/// The global greedy DAG strategy ([`extract_greedy_dag`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyDag;

impl ExtractionStrategy for GreedyDag {
    fn name(&self) -> &'static str {
        "greedy-dag"
    }
    fn extract(
        &self,
        egraph: &TensorEGraph,
        root: Id,
        model: &CostModel,
    ) -> Result<ExtractionOutcome, ExtractError> {
        extract_greedy_dag(egraph, root, model)
    }
}

/// The ILP strategy ([`extract_ilp`]) with its configuration.
#[derive(Debug, Clone, Default)]
pub struct IlpExtraction {
    /// The solver configuration.
    pub config: IlpConfig,
}

impl ExtractionStrategy for IlpExtraction {
    fn name(&self) -> &'static str {
        "ilp"
    }
    fn extract(
        &self,
        egraph: &TensorEGraph,
        root: Id,
        model: &CostModel,
    ) -> Result<ExtractionOutcome, ExtractError> {
        extract_ilp(egraph, root, model, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExplorationConfig};
    use tensat_ir::{GraphBuilder, TensorAnalysis};
    use tensat_rules::{multi_rules, single_rules};

    /// Two matmuls sharing an input: the case where greedy fails to pick
    /// the merged form but ILP succeeds (paper §5.1 and Table 4).
    fn explored_two_matmuls() -> (TensorEGraph, Id, f64) {
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let w1 = g.weight("w1", &[256, 128]);
        let w2 = g.weight("w2", &[256, 128]);
        let m1 = g.matmul(x, w1);
        let m2 = g.matmul(x, w2);
        let expr = g.finish(&[m1, m2]);
        let model = CostModel::default();
        let original = model.graph_cost(&expr);
        let mut eg = TensorEGraph::new(TensorAnalysis);
        let root = eg.add_expr(&expr);
        eg.rebuild();
        explore(
            &mut eg,
            root,
            &single_rules(),
            &multi_rules(),
            &ExplorationConfig {
                k_multi: 1,
                max_iter: 4,
                node_limit: 10_000,
                ..Default::default()
            },
        );
        (eg, root, original)
    }

    #[test]
    fn greedy_extracts_a_valid_graph() {
        let (eg, root, original) = explored_two_matmuls();
        let model = CostModel::default();
        let out = extract_greedy(&eg, root, &model).unwrap();
        assert!(out.dag_cost.is_finite());
        assert!(out.dag_cost <= original * 1.001);
        // The outcome reports both views and they are consistent.
        assert_eq!(out.dag_cost, out.cost.latency);
        assert!(out.tree_cost >= out.dag_cost);
        let data = tensat_ir::infer_recexpr(&out.expr);
        assert!(data.iter().all(|d| d.is_valid()));
    }

    #[test]
    fn greedy_dag_never_worse_than_tree_greedy() {
        let (eg, root, _) = explored_two_matmuls();
        let model = CostModel::default();
        let tree = extract_greedy(&eg, root, &model).unwrap();
        let dag = extract_greedy_dag(&eg, root, &model).unwrap();
        assert!(
            dag.dag_cost <= tree.dag_cost + 1e-9,
            "greedy-DAG ({}) must not lose to tree-greedy ({}) on DAG cost",
            dag.dag_cost,
            tree.dag_cost
        );
        let data = tensat_ir::infer_recexpr(&dag.expr);
        assert!(data.iter().all(|d| d.is_valid()));
    }

    #[test]
    fn ilp_beats_greedy_on_shared_subgraphs() {
        let (eg, root, original) = explored_two_matmuls();
        let model = CostModel::default();
        let greedy = extract_greedy(&eg, root, &model).unwrap();
        let ilp = extract_ilp(&eg, root, &model, &IlpConfig::default()).unwrap();
        let stats = ilp.ilp.as_ref().expect("ILP outcome carries solver stats");
        assert!(stats.num_vars > 0);
        assert!(
            ilp.dag_cost < greedy.dag_cost,
            "ILP ({}) should beat greedy ({}) by picking the merged matmul",
            ilp.dag_cost,
            greedy.dag_cost
        );
        assert!(ilp.dag_cost < original);
        // The ILP graph must contain the split form.
        assert!(ilp.expr.to_string().contains("split"));
        let data = tensat_ir::infer_recexpr(&ilp.expr);
        assert!(data.iter().all(|d| d.is_valid()));
    }

    #[test]
    fn ilp_with_cycle_constraints_matches_without_on_acyclic_egraph() {
        let (eg, root, _) = explored_two_matmuls();
        let model = CostModel::default();
        let plain = extract_ilp(&eg, root, &model, &IlpConfig::default()).unwrap();
        let with_cycles = extract_ilp(
            &eg,
            root,
            &model,
            &IlpConfig {
                cycle_constraints: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((plain.dag_cost - with_cycles.dag_cost).abs() < 1e-6);
        let int_topo = extract_ilp(
            &eg,
            root,
            &model,
            &IlpConfig {
                cycle_constraints: true,
                integer_topo_vars: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((plain.dag_cost - int_topo.dag_cost).abs() < 1e-6);
    }

    #[test]
    fn extraction_on_unexplored_graph_returns_input() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[8, 8]);
        let r = g.relu(x);
        let expr = g.finish(&[r]);
        let model = CostModel::default();
        let mut eg = TensorEGraph::new(TensorAnalysis);
        let root = eg.add_expr(&expr);
        eg.rebuild();
        let greedy = extract_greedy(&eg, root, &model).unwrap();
        assert!((greedy.dag_cost - model.graph_cost(&expr)).abs() < 1e-6);
        let ilp = extract_ilp(&eg, root, &model, &IlpConfig::default()).unwrap();
        assert!((ilp.dag_cost - greedy.dag_cost).abs() < 1e-6);
        assert_eq!(ilp.ilp.as_ref().unwrap().status, Status::Optimal);
    }

    #[test]
    fn strategies_share_one_seam() {
        let (eg, root, _) = explored_two_matmuls();
        let model = CostModel::default();
        let strategies: Vec<Box<dyn ExtractionStrategy>> = vec![
            Box::new(TreeGreedy),
            Box::new(GreedyDag),
            Box::new(IlpExtraction::default()),
        ];
        let names: Vec<_> = strategies.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["tree-greedy", "greedy-dag", "ilp"]);
        let outcomes: Vec<_> = strategies
            .iter()
            .map(|s| s.extract(&eg, root, &model).unwrap())
            .collect();
        // DAG-cost dominance chain: ILP ≤ greedy-DAG ≤ tree-greedy.
        assert!(outcomes[2].dag_cost <= outcomes[1].dag_cost + 1e-9);
        assert!(outcomes[1].dag_cost <= outcomes[0].dag_cost + 1e-9);
        // Only the ILP outcome carries solver stats.
        assert!(outcomes[0].ilp.is_none());
        assert!(outcomes[1].ilp.is_none());
        assert!(outcomes[2].ilp.is_some());
    }
}
