//! Cycle handling for the exploration phase (paper §5.2).
//!
//! Valid rewrites can introduce cycles into the e-graph (paper Fig. 3).
//! The extracted graph must be a DAG, so TENSAT either encodes acyclicity
//! in the ILP (slow) or filters cycles during exploration. This module
//! implements the machinery for both cycle-filtering algorithms:
//!
//! * the *descendants map* used by the pre-filtering step of the efficient
//!   algorithm (Algorithm 2, line 3),
//! * the single-candidate cycle check used by both vanilla (recomputed per
//!   candidate) and efficient (pre-computed once per iteration) filtering,
//! * the DFS cycle collection and resolution used by the post-processing
//!   step (Algorithm 2, lines 10–18).

use std::collections::HashMap;
use tensat_egraph::{ENodeOrVar, Id, Language, Pattern, Subst};
use tensat_ir::{TensorEGraph, TensorLang};

/// The dense bit set over e-class slots. Moved into `tensat-egraph` when
/// the DAG extractor's reachability sets joined the slot tables there;
/// re-exported here so existing `tensat_core::cycles::BitSet` paths keep
/// working.
pub use tensat_egraph::BitSet;

/// The per-iteration descendants map: for every e-class, the set of
/// e-classes reachable through (unfiltered) e-node child edges.
///
/// Classes are addressed by the e-graph's own dense slot space
/// ([`tensat_egraph::EGraph::slot_index`]) — the bit sets, the e-graph's
/// class tables, and the extractors' cost tables all index the same slots,
/// so translating between them is a `find` plus an array read instead of a
/// per-class hash lookup.
#[derive(Debug, Clone)]
pub struct DescendantsMap {
    /// Number of slots when the map was computed. Classes created after
    /// that (slot >= `n`) have no recorded descendants — the pre-filter is
    /// sound but not complete, as the paper notes.
    n: usize,
    /// `desc[s]` is the descendant set of the class in e-graph slot `s`.
    pub desc: Vec<BitSet>,
}

impl DescendantsMap {
    /// Computes the descendants map with a fixpoint over the class graph
    /// (one pass per longest chain; cycles converge because bit sets only
    /// grow).
    pub fn compute(egraph: &TensorEGraph) -> Self {
        let n = egraph.num_slots();
        // Direct child edges.
        let mut children: Vec<Vec<usize>> = vec![vec![]; n];
        for class in egraph.classes() {
            let ci = egraph.slot_index(class.id).expect("iterated class is live");
            for node in class.iter() {
                if egraph.is_filtered(node) {
                    continue;
                }
                for &child in node.children() {
                    let child = egraph.slot_index(child).expect("child class is live");
                    children[ci].push(child);
                }
            }
        }
        for c in &mut children {
            c.sort_unstable();
            c.dedup();
        }
        let mut desc: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for (i, ch) in children.iter().enumerate() {
            for &c in ch {
                desc[i].insert(c);
            }
        }
        // Fixpoint: desc[i] |= desc[child] for every child.
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                for &c in &children[i] {
                    if c == i {
                        continue;
                    }
                    // Split borrows: clone the child's set (sets are dense
                    // words, and the loop converges quickly on DAG-like
                    // e-graphs).
                    let child_set = desc[c].clone();
                    if desc[i].union_with(&child_set) {
                        changed = true;
                    }
                }
            }
        }
        DescendantsMap { n, desc }
    }

    /// True if `descendant` is reachable from `ancestor` (strictly below).
    pub fn is_descendant(&self, egraph: &TensorEGraph, ancestor: Id, descendant: Id) -> bool {
        match (egraph.slot_index(ancestor), egraph.slot_index(descendant)) {
            // Classes created after the map was built (slots past its end)
            // are treated as having no recorded descendants; slots are
            // stable between rebuilds, so mid-iteration unions keep
            // resolving to the slot recorded at build time.
            (Some(ai), Some(di)) if ai < self.n && di < self.n => self.desc[ai].contains(di),
            _ => false,
        }
    }
}

/// Checks whether applying `target` under `subst` at `matched_class` would
/// introduce a cycle, using a descendants map.
///
/// The instantiated target's root joins `matched_class`; its leaves are the
/// e-classes bound to the pattern variables. A cycle appears exactly when
/// some bound class can already reach `matched_class` (or is it).
pub fn would_create_cycle(
    egraph: &TensorEGraph,
    desc: &DescendantsMap,
    matched_class: Id,
    target: &Pattern<TensorLang>,
    subst: &Subst,
) -> bool {
    let matched = egraph.find(matched_class);
    for (_, node) in target.ast.iter() {
        if let ENodeOrVar::Var(v) = node {
            if let Some(bound) = subst.get(*v) {
                let bound = egraph.find(bound);
                // A variable bound to a parameter class (Num/Str) can never
                // form a cycle through tensors, but the generic check is
                // still correct for it.
                if bound == matched || desc.is_descendant(egraph, bound, matched) {
                    return true;
                }
            }
        }
    }
    false
}

/// Staged-apply variant of [`would_create_cycle`]: a staged application
/// carries the classes bound to every variable occurrence of its target
/// ([`tensat_egraph::StagedApp::bound`]), so the same leaf-reaches-root
/// check runs at commit time — against the evolving e-graph, exactly where
/// the in-place apply loop ran it — without re-walking the pattern AST.
pub fn staged_would_create_cycle(
    egraph: &TensorEGraph,
    desc: &DescendantsMap,
    app: &tensat_egraph::StagedApp<TensorLang>,
) -> bool {
    let matched = egraph.find(app.eclass);
    app.bound.iter().any(|&bound| {
        let bound = egraph.find(bound);
        bound == matched || desc.is_descendant(egraph, bound, matched)
    })
}

/// One cycle in the e-graph: the sequence of `(class, e-node)` edges whose
/// child pointers close the loop.
pub type Cycle = Vec<(Id, TensorLang)>;

/// Collects a set of cycles reachable from `root` with a DFS over
/// unfiltered e-nodes (Algorithm 2, `DFSGetCycles`). Each invocation finds
/// the cycles visible to one DFS pass; callers loop until none remain.
pub fn find_cycles(egraph: &TensorEGraph, root: Id) -> Vec<Cycle> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        OnStack,
        Done,
    }
    /// One in-progress class visit: iterates its (unfiltered) nodes and,
    /// per node, its children. While `node_i` points at a node, the pair
    /// `(class, nodes[node_i])` sits on `path`.
    struct Frame {
        class: Id,
        nodes: Vec<TensorLang>,
        node_i: usize,
        child_i: usize,
    }
    let mut marks: HashMap<Id, Mark> = HashMap::new();
    let mut cycles: Vec<Cycle> = vec![];
    // Path of (class, enode chosen at that class) currently on the DFS stack.
    let mut path: Vec<(Id, TensorLang)> = vec![];
    // The DFS uses an explicit frame stack: its depth scales with the
    // longest acyclic path through the e-graph, which grows past thread
    // stack limits on saturated model e-graphs.
    let mut stack: Vec<Frame> = vec![];

    let enter = |class: Id,
                 marks: &mut HashMap<Id, Mark>,
                 path: &[(Id, TensorLang)],
                 cycles: &mut Vec<Cycle>|
     -> Option<Frame> {
        match marks.get(&class).copied() {
            Some(Mark::Done) => None,
            Some(Mark::OnStack) => {
                // Found a cycle: everything on the path from the previous
                // occurrence of `class` onwards.
                if let Some(pos) = path.iter().position(|(c, _)| *c == class) {
                    cycles.push(path[pos..].to_vec());
                }
                None
            }
            None => {
                marks.insert(class, Mark::OnStack);
                let nodes: Vec<TensorLang> = egraph
                    .eclass(class)
                    .iter()
                    .filter(|n| !egraph.is_filtered(n))
                    .cloned()
                    .collect();
                Some(Frame {
                    class,
                    nodes,
                    node_i: 0,
                    child_i: 0,
                })
            }
        }
    };

    let root = egraph.find(root);
    if let Some(frame) = enter(root, &mut marks, &path, &mut cycles) {
        stack.push(frame);
    }
    while let Some(top) = stack.last_mut() {
        if top.node_i >= top.nodes.len() {
            marks.insert(top.class, Mark::Done);
            stack.pop();
            continue;
        }
        let node = top.nodes[top.node_i].clone();
        if top.child_i == 0 {
            path.push((top.class, node.clone()));
        }
        if top.child_i < node.children().len() {
            let child = egraph.find(node.children()[top.child_i]);
            top.child_i += 1;
            if let Some(frame) = enter(child, &mut marks, &path, &mut cycles) {
                stack.push(frame);
            }
        } else {
            path.pop();
            top.node_i += 1;
            top.child_i = 0;
        }
    }
    cycles
}

/// Resolves a cycle by filtering the most recently added e-node on it
/// (Algorithm 2, `ResolveCycLE`). If any edge of the cycle has already been
/// filtered (by resolving an earlier cycle in the same pass), the cycle is
/// already broken and nothing is filtered.
pub fn resolve_cycle(egraph: &mut TensorEGraph, cycle: &Cycle) -> Option<TensorLang> {
    if cycle.iter().any(|(_, node)| egraph.is_filtered(node)) {
        return None;
    }
    let mut newest: Option<(u64, Id, TensorLang)> = None;
    for (class, node) in cycle {
        let birth = egraph.node_birth(*class, node).unwrap_or(0);
        if newest.as_ref().is_none_or(|(b, _, _)| birth > *b) {
            newest = Some((birth, *class, node.clone()));
        }
    }
    let (_, _, node) = newest?;
    egraph.filter_node(&node);
    Some(node)
}

/// Removes every cycle reachable from `root`, returning the number of
/// e-nodes filtered (the post-processing loop of Algorithm 2).
pub fn remove_all_cycles(egraph: &mut TensorEGraph, root: Id) -> usize {
    let mut filtered = 0;
    loop {
        let cycles = find_cycles(egraph, root);
        if cycles.is_empty() {
            return filtered;
        }
        for cycle in &cycles {
            if resolve_cycle(egraph, cycle).is_some() {
                filtered += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensat_ir::{GraphBuilder, TensorAnalysis};

    fn simple_egraph() -> (TensorEGraph, Id) {
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[8, 32]);
        let w1 = g.weight("w1", &[32, 16]);
        let w2 = g.weight("w2", &[32, 16]);
        let m1 = g.matmul(x, w1);
        let m2 = g.matmul(x, w2);
        let expr = g.finish(&[m1, m2]);
        let mut eg = TensorEGraph::new(TensorAnalysis);
        let root = eg.add_expr(&expr);
        eg.rebuild();
        (eg, root)
    }

    #[test]
    fn bitset_basics() {
        let mut b = BitSet::new(130);
        assert!(!b.contains(5));
        assert!(b.insert(5));
        assert!(!b.insert(5));
        assert!(b.insert(129));
        assert!(b.contains(129));
        assert_eq!(b.count(), 2);
        let mut c = BitSet::new(130);
        c.insert(7);
        assert!(b.union_with(&c));
        assert!(!b.union_with(&c));
        assert_eq!(b.count(), 3);
    }

    #[test]
    fn descendants_map_of_a_dag() {
        let (eg, root) = simple_egraph();
        let desc = DescendantsMap::compute(&eg);
        // The root (noop) reaches every other class; no class reaches the root.
        for class in eg.classes() {
            if eg.find(class.id) != eg.find(root) {
                assert!(desc.is_descendant(&eg, root, class.id));
                assert!(!desc.is_descendant(&eg, class.id, root));
            }
        }
    }

    #[test]
    fn dag_has_no_cycles() {
        let (eg, root) = simple_egraph();
        assert!(find_cycles(&eg, root).is_empty());
    }

    #[test]
    fn introduced_cycle_is_found_and_resolved() {
        let (mut eg, root) = simple_egraph();
        // Manufacture a cycle: claim that x is equal to relu(m1), making
        // m1's class an ancestor and descendant of x's class.
        let x = {
            let sym = tensat_ir::encode_identifier("x", &[8, 32]);
            let s = eg.lookup(&TensorLang::Str(sym)).unwrap();
            eg.lookup(&TensorLang::Input([s])).unwrap()
        };
        // Find m1's class: any matmul node.
        let m1 = eg
            .classes()
            .find(|c| c.iter().any(|n| matches!(n, TensorLang::Matmul(_))))
            .map(|c| c.id)
            .unwrap();
        let relu = eg.add(TensorLang::Relu([m1]));
        eg.union(x, relu);
        eg.rebuild();
        let cycles = find_cycles(&eg, root);
        assert!(!cycles.is_empty());
        let filtered = remove_all_cycles(&mut eg, root);
        assert!(filtered >= 1);
        assert!(find_cycles(&eg, root).is_empty());
        // The filtered node is the newest one (the relu), not the original
        // graph nodes.
        assert!(eg.is_filtered(&eg.canonicalize(&TensorLang::Relu([m1]))));
    }

    #[test]
    fn would_create_cycle_detects_self_reference() {
        let (eg, root) = simple_egraph();
        let desc = DescendantsMap::compute(&eg);
        // A pattern variable bound to the root itself trivially cycles.
        let pat = tensat_rules::parse_pattern("(relu ?x)").unwrap();
        let mut subst = Subst::new();
        subst.insert(tensat_egraph::Var::new("x"), root);
        assert!(would_create_cycle(&eg, &desc, root, &pat, &subst));
        // Bound to a leaf, applying at the root is fine.
        let x = {
            let sym = tensat_ir::encode_identifier("x", &[8, 32]);
            let s = eg.lookup(&TensorLang::Str(sym)).unwrap();
            eg.lookup(&TensorLang::Input([s])).unwrap()
        };
        let mut subst = Subst::new();
        subst.insert(tensat_egraph::Var::new("x"), x);
        assert!(!would_create_cycle(&eg, &desc, root, &pat, &subst));
        // But applying at the leaf a pattern bound to the root cycles.
        let mut subst = Subst::new();
        subst.insert(tensat_egraph::Var::new("x"), root);
        assert!(would_create_cycle(&eg, &desc, x, &pat, &subst));
    }
}
