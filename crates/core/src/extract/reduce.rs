//! Extraction problem reduction: shrink the ILP selection problem between
//! the e-graph and the encoder while *provably preserving the optimal
//! cost*. The monolithic encoding (one binary per viable e-node, one
//! implication row per (node, child-class) edge) hands the branch-and-bound
//! solver a search lattice exponential in the number of multi-candidate
//! classes; on the benchmark models almost all of that lattice is
//! irrelevant. The pipeline here runs four passes:
//!
//! 1. **Root-reachable restriction + viability trim** — only classes
//!    reachable from the root through *viable* candidates are encoded, and
//!    candidates with an empty (all-filtered / infinite-cost) child class
//!    are removed up front instead of being encoded and constrained to 0.
//! 2. **Dominated-candidate pruning** — within a class, a candidate whose
//!    cost is no better than a sibling's and whose *needs* (the forced
//!    closures of its child classes) cover the sibling's needs can never
//!    appear in an optimum: swapping the sibling in is feasible (its needs
//!    are already selected) and no more expensive. Exact ties on both cost
//!    and needs keep the first candidate in class order, deterministically;
//!    cost-tied candidates with incomparable needs both survive.
//! 3. **Single-candidate forcing** — the root class must select; a required
//!    class with exactly one surviving candidate selects it in *every*
//!    feasible solution, so it is fixed outside the ILP and its children
//!    become required transitively.
//! 4. **Decomposition** — fixing a class satisfies every implication row
//!    pointing into it, severing the variable-interaction edge; the
//!    residual classes fall apart into connected components that are
//!    independent ILPs (the constraint matrix is block-diagonal and the
//!    objective is additive), solved separately and stitched.
//!
//! The *forced closure* underpinning pass 2 is the least fixpoint of
//! `forced(i) = {i} ∪ ⋂_{candidates n of i} ⋃_{children c of n} forced(c)`,
//! computed by chaotic iteration from `forced(i) = {i}`. Every intermediate
//! stage is sound — `forced(i) ⊆ selected(S)` for any feasible solution `S`
//! selecting class `i` — by induction on update steps: `S` selects *some*
//! candidate of `i`, whose child classes are all selected (constraint (3)),
//! so the union over that candidate's children is selected, and the
//! intersection over all candidates is contained in it. The sets are
//! [`BitSet`]s over the problem's class indices (the same dense-bitset
//! machinery the greedy DAG extractor's reachability tables use).

use super::ExtractError;
use std::collections::HashMap;
use tensat_egraph::{BitSet, Id, Language};
use tensat_ir::{CostModel, TensorEGraph, TensorLang};

/// One viable e-node candidate of a class.
#[derive(Debug, Clone)]
pub(crate) struct Candidate {
    /// The e-node as stored in its class (not canonicalized).
    pub(crate) node: TensorLang,
    /// Latency cost: the candidate's ILP objective coefficient.
    pub(crate) cost: f64,
    /// Deduped, ascending problem-local indices of the child classes.
    pub(crate) children: Vec<usize>,
}

/// Reduction statistics, surfaced through `IlpStats`.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ReduceStats {
    /// Variables the monolithic encoding would have created.
    pub(crate) vars_before: usize,
    /// Constraints the monolithic encoding would have created.
    pub(crate) constraints_before: usize,
    /// Candidates removed by dominance pruning.
    pub(crate) dominated_pruned: usize,
    /// Candidates removed by the incumbent cost bound.
    pub(crate) bound_pruned: usize,
    /// Classes fixed by single-candidate forcing.
    pub(crate) forced_classes: usize,
}

/// The abstract selection problem: per-class candidate lists plus the
/// reduction state (liveness, reachability, forcing) the encoder consumes.
#[derive(Debug, Clone)]
pub(crate) struct ExtractionProblem {
    /// Per-class candidates, classes in BFS order from the root (index 0).
    /// Pruned candidates stay in place with `alive` false so indices remain
    /// stable for `rep` chains.
    pub(crate) candidates: Vec<Vec<Candidate>>,
    /// Liveness mask parallel to `candidates`.
    pub(crate) alive: Vec<Vec<bool>>,
    /// For a dominance-pruned candidate: the sibling that dominated it
    /// (identity for live candidates). Chased transitively to repair
    /// warm-start hints whose greedy pick was pruned.
    pub(crate) rep: Vec<Vec<usize>>,
    /// The e-class id of each problem index.
    pub(crate) class_ids: Vec<Id>,
    /// Classes reachable from the root through live candidates.
    pub(crate) reachable: Vec<bool>,
    /// Classes guaranteed to carry a selection in every feasible solution
    /// (the root, plus children of fixed classes, transitively).
    pub(crate) required: Vec<bool>,
    /// Classes fixed by forcing: the index of their single live candidate.
    pub(crate) fixed: Vec<Option<usize>>,
    /// Reduction counters.
    pub(crate) stats: ReduceStats,
}

impl ExtractionProblem {
    /// Builds the unreduced problem from the e-graph: the same class walk
    /// and candidate filter as the monolithic ILP encoder, so
    /// `stats.vars_before`/`constraints_before` are exactly that encoding's
    /// size.
    pub(crate) fn from_egraph(
        egraph: &TensorEGraph,
        root: Id,
        model: &CostModel,
    ) -> Result<Self, ExtractError> {
        let root = egraph.find(root);
        let mut order: Vec<Id> = vec![root];
        let mut index: HashMap<Id, usize> = HashMap::from([(root, 0)]);
        let mut i = 0;
        while i < order.len() {
            let class = order[i];
            i += 1;
            for node in egraph.eclass(class).iter() {
                if egraph.is_filtered(node) {
                    continue;
                }
                for &child in node.children() {
                    let child = egraph.find(child);
                    let next = order.len();
                    if let std::collections::hash_map::Entry::Vacant(e) = index.entry(child) {
                        e.insert(next);
                        order.push(child);
                    }
                }
            }
        }

        let mut candidates: Vec<Vec<Candidate>> = Vec::with_capacity(order.len());
        let mut vars_before = 0;
        let mut constraints_before = 1; // the root exactly-one row
        for &class in &order {
            let mut list = vec![];
            for node in egraph.eclass(class).iter() {
                if egraph.is_filtered(node) {
                    continue;
                }
                let cost = model.enode_cost_composite(egraph, node);
                if !cost.is_finite() {
                    continue;
                }
                vars_before += 1;
                constraints_before += node.children().len();
                let mut children: Vec<usize> = node
                    .children()
                    .iter()
                    .map(|&c| index[&egraph.find(c)])
                    .collect();
                children.sort_unstable();
                children.dedup();
                list.push(Candidate {
                    node: node.clone(),
                    cost: cost.latency,
                    children,
                });
            }
            candidates.push(list);
        }
        if candidates[0].is_empty() {
            return Err(ExtractError::NoFiniteTerm);
        }
        let n = order.len();
        Ok(ExtractionProblem {
            alive: candidates.iter().map(|c| vec![true; c.len()]).collect(),
            rep: candidates.iter().map(|c| (0..c.len()).collect()).collect(),
            candidates,
            class_ids: order,
            reachable: vec![true; n],
            required: vec![false; n],
            fixed: vec![None; n],
            stats: ReduceStats {
                vars_before,
                constraints_before,
                ..Default::default()
            },
        })
    }

    /// Runs the reduction pipeline: trim, [dominance + incumbent-bound ⇄
    /// forced-closure] fixpoint, reachability restriction, forcing. `ub`,
    /// when given, is a known-achievable solution value (the greedy-DAG
    /// incumbent) used for cost-bound pruning. Errs when the root class has
    /// no viable candidate left (the monolithic encoding would be
    /// infeasible).
    pub(crate) fn reduce(&mut self, ub: Option<f64>) -> Result<(), ExtractError> {
        self.trim_nonviable();
        if self.live_count(0) == 0 {
            return Err(ExtractError::Infeasible);
        }
        self.mark_reachable();
        // Pruning can leave a class single-candidate, which grows the
        // forced closures, which both strengthen dominance and tighten the
        // cost bound — iterate to fixpoint (each round removes at least one
        // candidate, so it terminates).
        loop {
            let forced = self.forced_closures();
            let mut removed = self.prune_dominated(&forced);
            if let Some(ub) = ub {
                removed += self.prune_by_bound(&forced, ub);
            }
            if removed == 0 {
                break;
            }
            // Pruned candidates may have been the only path to a class.
            self.mark_reachable();
        }
        let forced = self.forced_closures();
        self.force_singletons(&forced[0]);
        Ok(())
    }

    /// Number of live candidates in class `i`.
    pub(crate) fn live_count(&self, i: usize) -> usize {
        self.alive[i].iter().filter(|&&a| a).count()
    }

    /// Chases `rep` chains to the surviving dominator of candidate `j` of
    /// class `i` (may be `j` itself; may be dead if `j` was trimmed as
    /// nonviable rather than dominated).
    pub(crate) fn resolve_rep(&self, i: usize, j: usize) -> usize {
        let mut r = j;
        while self.rep[i][r] != r {
            r = self.rep[i][r];
        }
        r
    }

    /// Kills candidates whose child classes have no live candidates, to
    /// fixpoint (a kill can empty a class, killing its parents' candidates
    /// in turn).
    fn trim_nonviable(&mut self) {
        loop {
            let mut changed = false;
            for i in 0..self.candidates.len() {
                for j in 0..self.candidates[i].len() {
                    if !self.alive[i][j] {
                        continue;
                    }
                    let nonviable = self.candidates[i][j]
                        .children
                        .iter()
                        .any(|&c| self.live_count(c) == 0);
                    if nonviable {
                        self.alive[i][j] = false;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Recomputes which classes are reachable from the root through live
    /// candidates; only reachable classes are encoded.
    fn mark_reachable(&mut self) {
        let mut reach = vec![false; self.candidates.len()];
        reach[0] = true;
        let mut stack = vec![0];
        while let Some(i) = stack.pop() {
            for (j, cand) in self.candidates[i].iter().enumerate() {
                if !self.alive[i][j] {
                    continue;
                }
                for &c in &cand.children {
                    if !reach[c] {
                        reach[c] = true;
                        stack.push(c);
                    }
                }
            }
        }
        self.reachable = reach;
    }

    /// Computes the forced closures (see the module docs): `forced(i)` is a
    /// set of classes guaranteed selected by any feasible solution that
    /// selects class `i`. Chaotic iteration of the monotone update from
    /// `{i}` below the least fixpoint, so every stage is a sound
    /// under-approximation; classes are swept in reverse BFS order
    /// (children largely before parents) so acyclic chains converge in one
    /// pass.
    fn forced_closures(&self) -> Vec<BitSet> {
        let n = self.candidates.len();
        let mut forced: Vec<BitSet> = (0..n)
            .map(|i| {
                let mut b = BitSet::new(n);
                b.insert(i);
                b
            })
            .collect();
        let mut acc = BitSet::new(n);
        let mut union = BitSet::new(n);
        loop {
            let mut changed = false;
            for i in (0..n).rev() {
                if !self.reachable[i] {
                    continue;
                }
                let mut first = true;
                for (j, cand) in self.candidates[i].iter().enumerate() {
                    if !self.alive[i][j] {
                        continue;
                    }
                    union.clear();
                    for &c in &cand.children {
                        union.union_with(&forced[c]);
                    }
                    if first {
                        acc.clear();
                        acc.union_with(&union);
                        first = false;
                    } else {
                        acc.intersect_with(&union);
                    }
                }
                if !first {
                    changed |= forced[i].union_with(&acc);
                }
            }
            if !changed {
                break;
            }
        }
        forced
    }

    /// One dominance-pruning sweep: within each class, a candidate `b` dies
    /// when a live sibling `a` has `cost(a) <= cost(b)` and
    /// `needs(a) ⊆ needs(b)`, where `needs(x)` is the union of the forced
    /// closures of `x`'s children. On an exact tie (equal cost, equal
    /// needs) only the later candidate dies, so the sweep is deterministic
    /// and always leaves a survivor. Returns the number pruned.
    fn prune_dominated(&mut self, forced: &[BitSet]) -> usize {
        let n = self.candidates.len();
        let mut pruned = 0;
        for i in 0..n {
            if !self.reachable[i] {
                continue;
            }
            let live: Vec<usize> = (0..self.candidates[i].len())
                .filter(|&j| self.alive[i][j])
                .collect();
            if live.len() < 2 {
                continue;
            }
            let needs: Vec<BitSet> = live
                .iter()
                .map(|&j| {
                    let mut b = BitSet::new(n);
                    for &c in &self.candidates[i][j].children {
                        b.union_with(&forced[c]);
                    }
                    b
                })
                .collect();
            for (bi, &b) in live.iter().enumerate() {
                for (ai, &a) in live.iter().enumerate() {
                    if a == b || !self.alive[i][a] {
                        continue;
                    }
                    let (ca, cb) = (self.candidates[i][a].cost, self.candidates[i][b].cost);
                    if ca > cb || !needs[ai].is_subset(&needs[bi]) {
                        continue;
                    }
                    if ca == cb && needs[bi].is_subset(&needs[ai]) && a > b {
                        continue; // exact tie: the earlier candidate wins
                    }
                    self.alive[i][b] = false;
                    self.rep[i][b] = a;
                    pruned += 1;
                    break;
                }
            }
        }
        self.stats.dominated_pruned += pruned;
        pruned
    }

    /// Incumbent cost-bound pruning (cost-bounded search in the style of
    /// arXiv:2410.05534): any solution selecting candidate `j` of class `i`
    /// selects at least `forced(root) ∪ {i} ∪ needs(j)` — so it costs at
    /// least `cost(j)` plus each other such class's cheapest live
    /// candidate. When that lower bound exceeds `ub` (a known-achievable
    /// value), `j` appears in no optimum and is pruned.
    ///
    /// Two guards keep this exact: pruning needs a strictly greater bound
    /// (with a small tolerance, so a candidate on the incumbent's own path
    /// — whose bound is ≤ the incumbent by construction — never dies), and
    /// the candidate with the smallest bound in each class is always kept,
    /// so no class is emptied even if `ub` is not ILP-achievable (e.g. the
    /// greedy graph used a node the candidate filter rejected).
    fn prune_by_bound(&mut self, forced: &[BitSet], ub: f64) -> usize {
        let n = self.candidates.len();
        let min_cost: Vec<f64> = (0..n)
            .map(|i| {
                (0..self.candidates[i].len())
                    .filter(|&j| self.alive[i][j])
                    .map(|j| self.candidates[i][j].cost)
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let cutoff = ub + ub.abs() * 1e-9 + 1e-9;
        let mut pruned = 0;
        let mut need = BitSet::new(n);
        for i in 0..n {
            if !self.reachable[i] {
                continue;
            }
            let live: Vec<usize> = (0..self.candidates[i].len())
                .filter(|&j| self.alive[i][j])
                .collect();
            if live.len() < 2 {
                continue;
            }
            let bounds: Vec<f64> = live
                .iter()
                .map(|&j| {
                    need.clear();
                    need.union_with(&forced[0]);
                    need.insert(i);
                    for &c in &self.candidates[i][j].children {
                        need.union_with(&forced[c]);
                    }
                    let mut lb = self.candidates[i][j].cost;
                    for c in need.iter_ones() {
                        if c != i {
                            lb += min_cost[c];
                        }
                    }
                    lb
                })
                .collect();
            let best = (0..live.len())
                .min_by(|&a, &b| bounds[a].total_cmp(&bounds[b]))
                .expect("class has live candidates");
            for (k, &j) in live.iter().enumerate() {
                if k != best && bounds[k] > cutoff {
                    self.alive[i][j] = false;
                    self.rep[i][j] = live[best];
                    pruned += 1;
                }
            }
        }
        self.stats.bound_pruned += pruned;
        pruned
    }

    /// Marks required classes and fixes every required class with exactly
    /// one live candidate, making its children required transitively. A
    /// class is required when every feasible solution selects it: the root
    /// (constraint (2)), everything in the root's forced closure `always`
    /// (sound by the closure's invariant — the root always selects), and
    /// the children of a fixed class (its implication rows). Fixing a
    /// required singleton removes no solution's residual freedom — it only
    /// subtracts a constant from the objective — and each required class
    /// contributes a `>= 1` row the solver's cover-group bound can count.
    fn force_singletons(&mut self, always: &BitSet) {
        self.required[0] = true;
        let mut stack = vec![0];
        for c in always.iter_ones() {
            if self.reachable[c] && !self.required[c] {
                self.required[c] = true;
                stack.push(c);
            }
        }
        while let Some(i) = stack.pop() {
            if self.live_count(i) != 1 {
                continue;
            }
            let j = (0..self.candidates[i].len())
                .find(|&j| self.alive[i][j])
                .expect("live_count == 1");
            self.fixed[i] = Some(j);
            self.stats.forced_classes += 1;
            for &c in &self.candidates[i][j].children {
                if !self.required[c] {
                    self.required[c] = true;
                    stack.push(c);
                }
            }
        }
    }

    /// Connected components of the residual (reachable, unfixed) classes
    /// under the "shares an ILP row" relation: a live candidate links its
    /// class to each unfixed child class. Each component is an independent
    /// ILP — the constraint matrix is block-diagonal across components and
    /// the objective is additive — so they are solved separately and
    /// stitched. Components are returned with ascending class indices,
    /// ordered by smallest member, so encoding order is deterministic.
    pub(crate) fn components(&self) -> Vec<Vec<usize>> {
        let n = self.candidates.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]]; // path halving
                x = parent[x];
            }
            x
        }
        let encoded: Vec<bool> = (0..n)
            .map(|i| self.reachable[i] && self.fixed[i].is_none())
            .collect();
        for i in 0..n {
            if !encoded[i] {
                continue;
            }
            for (j, cand) in self.candidates[i].iter().enumerate() {
                if !self.alive[i][j] {
                    continue;
                }
                for &c in &cand.children {
                    if encoded[c] {
                        let (ra, rb) = (find(&mut parent, i), find(&mut parent, c));
                        if ra != rb {
                            // Union by smaller index keeps roots minimal.
                            parent[ra.max(rb)] = ra.min(rb);
                        }
                    }
                }
            }
        }
        let mut comp_of_root: HashMap<usize, usize> = HashMap::new();
        let mut comps: Vec<Vec<usize>> = vec![];
        for (i, &enc) in encoded.iter().enumerate() {
            if !enc {
                continue;
            }
            let r = find(&mut parent, i);
            let slot = *comp_of_root.entry(r).or_insert_with(|| {
                comps.push(vec![]);
                comps.len() - 1
            });
            comps[slot].push(i);
        }
        comps
    }

    /// Total cost of the fixed classes' selections (the constant the
    /// reduction removed from the ILP objective).
    #[cfg(test)]
    pub(crate) fn fixed_cost(&self) -> f64 {
        (0..self.candidates.len())
            .filter_map(|i| self.fixed[i].map(|j| self.candidates[i][j].cost))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-builds a problem from (cost, children) per candidate per class;
    /// class 0 is the root. Nodes are dummies — the reduction passes never
    /// look at them.
    fn problem(classes: &[&[(f64, &[usize])]]) -> ExtractionProblem {
        let candidates: Vec<Vec<Candidate>> = classes
            .iter()
            .map(|cands| {
                cands
                    .iter()
                    .map(|&(cost, children)| Candidate {
                        node: TensorLang::Num(0),
                        cost,
                        children: children.to_vec(),
                    })
                    .collect()
            })
            .collect();
        let n = candidates.len();
        ExtractionProblem {
            alive: candidates.iter().map(|c| vec![true; c.len()]).collect(),
            rep: candidates.iter().map(|c| (0..c.len()).collect()).collect(),
            candidates,
            class_ids: (0..n).map(Id::from).collect(),
            reachable: vec![true; n],
            required: vec![false; n],
            fixed: vec![None; n],
            stats: ReduceStats::default(),
        }
    }

    #[test]
    fn dominance_must_not_fire_on_incomparable_needs() {
        // Root picks between two cost-tied candidates needing disjoint
        // leaf classes: neither needs-set contains the other, so both must
        // survive — pruning either could lose the optimum when leaf costs
        // differ.
        let mut p = problem(&[&[(5.0, &[1]), (5.0, &[2])], &[(1.0, &[])], &[(9.0, &[])]]);
        p.reduce(None).unwrap();
        assert_eq!(p.live_count(0), 2, "incomparable candidates must survive");
        assert_eq!(p.stats.dominated_pruned, 0);
        // The root stays a real ILP decision.
        assert!(p.fixed[0].is_none());
    }

    #[test]
    fn dominance_fires_on_superset_needs() {
        // Candidate 1 costs the same but needs a superset of classes:
        // dominated. The forced closure makes class 1's own need {1}
        // transitively include nothing else, so {1} ⊆ {1, 2}.
        let mut p = problem(&[&[(5.0, &[1]), (5.0, &[1, 2])], &[(1.0, &[])], &[(1.0, &[])]]);
        p.reduce(None).unwrap();
        assert_eq!(p.stats.dominated_pruned, 1);
        assert!(p.alive[0][0] && !p.alive[0][1]);
        assert_eq!(p.resolve_rep(0, 1), 0);
        // Pruning left the root single-candidate: forcing fixes the whole
        // chain and nothing is left to encode.
        assert_eq!(p.fixed[0], Some(0));
        assert!(p.components().is_empty());
        assert_eq!(p.fixed_cost(), 6.0);
    }

    #[test]
    fn exact_ties_keep_the_first_candidate() {
        let mut p = problem(&[&[(5.0, &[1]), (5.0, &[1])], &[(1.0, &[])]]);
        p.reduce(None).unwrap();
        assert!(p.alive[0][0] && !p.alive[0][1]);
        assert_eq!(p.resolve_rep(0, 1), 0);
    }

    #[test]
    fn cheaper_candidate_with_subset_needs_dominates() {
        let mut p = problem(&[&[(7.0, &[1]), (5.0, &[1])], &[(1.0, &[])]]);
        p.reduce(None).unwrap();
        assert!(!p.alive[0][0] && p.alive[0][1]);
        assert_eq!(p.resolve_rep(0, 0), 1);
    }

    #[test]
    fn forcing_propagates_through_single_candidate_chains() {
        // root -> {1, 2}; 1 -> {3}; classes 0..=2 single-candidate; class 3
        // picks between a cheap candidate needing class 4 and a pricier one
        // needing class 5 — incomparable needs, so dominance cannot fire
        // and the class stays a real ILP decision.
        let mut p = problem(&[
            &[(1.0, &[1, 2])],
            &[(1.0, &[3])],
            &[(1.0, &[])],
            &[(2.0, &[4]), (3.0, &[5])],
            &[(1.0, &[])],
            &[(1.0, &[])],
        ]);
        p.reduce(None).unwrap();
        assert_eq!(p.fixed[0], Some(0));
        assert_eq!(p.fixed[1], Some(0));
        assert_eq!(p.fixed[2], Some(0));
        assert!(p.fixed[3].is_none(), "multi-candidate class stays an ILP");
        assert!(p.required[3]);
        assert_eq!(p.stats.forced_classes, 3);
        assert_eq!(p.stats.dominated_pruned, 0);
        assert!((p.fixed_cost() - 3.0).abs() < 1e-12);
        // The residue (class 3 and its leaf alternatives) is one component.
        assert_eq!(p.components(), vec![vec![3, 4, 5]]);
    }

    #[test]
    fn independent_choices_decompose_into_components() {
        // A fixed root fans out to two unrelated two-way choices; each
        // choice's candidates have incomparable needs so neither collapses.
        let mut p = problem(&[
            &[(1.0, &[1, 2])],
            &[(4.0, &[3]), (4.0, &[4])],
            &[(4.0, &[5]), (4.0, &[6])],
            &[(1.0, &[])],
            &[(2.0, &[])],
            &[(1.0, &[])],
            &[(2.0, &[])],
        ]);
        p.reduce(None).unwrap();
        assert_eq!(p.fixed[0], Some(0));
        let comps = p.components();
        assert_eq!(comps.len(), 2, "unrelated choices split: {comps:?}");
        assert_eq!(comps[0], vec![1, 3, 4]);
        assert_eq!(comps[1], vec![2, 5, 6]);
        assert!(p.required[1] && p.required[2]);
        assert!(!p.required[3] && !p.required[4]);
    }

    #[test]
    fn nonviable_candidates_are_trimmed() {
        // Class 1 has only a candidate pointing at the empty class 2, so it
        // empties; the root candidate needing class 1 dies with it and the
        // root falls back to its other candidate.
        let mut p = problem(&[&[(1.0, &[1]), (9.0, &[])], &[(1.0, &[2])], &[]]);
        p.reduce(None).unwrap();
        assert!(!p.alive[0][0] && p.alive[0][1]);
        assert!(!p.reachable[1] && !p.reachable[2]);
        assert_eq!(p.fixed[0], Some(1));
    }

    #[test]
    fn empty_root_after_trim_is_infeasible() {
        let mut p = problem(&[&[(1.0, &[1])], &[]]);
        assert_eq!(p.reduce(None), Err(ExtractError::Infeasible));
    }
}
