//! The extraction phase (paper §5): pick one e-node per e-class so that the
//! resulting graph minimizes the cost model.
//!
//! Three extraction strategies are provided behind one seam
//! ([`ExtractionStrategy`]), all reporting the composite
//! [`Cost`] and both honest costs of their result
//! (see [`ExtractionOutcome`]):
//!
//! * [`TreeGreedy`] — per e-class minimum *subtree* cost (paper §5.1).
//!   Fast, but it charges shared subgraphs once per use, so it never
//!   chooses the `split` form of a merged operator (Table 4).
//! * [`GreedyDag`] — the worklist-driven global greedy DAG extractor
//!   ([`tensat_egraph::DagExtractor`]) which charges each e-node once
//!   regardless of sharing. To make `dag_cost(GreedyDag) ≤
//!   dag_cost(TreeGreedy)` unconditional, the strategy also runs
//!   tree-greedy and returns whichever result has the lower DAG cost.
//! * [`IlpExtraction`] — the integer-linear-program encoding of
//!   constraints (1)–(5), with the cycle constraints (4)–(5) optional,
//!   solved by `tensat-ilp` and warm-started from the greedy-DAG solution
//!   (which dominates the tree-greedy warm start it replaced).
//!
//! Extraction minimizes the *lexicographic* composite order (latency, then
//! peak memory, then launches — see [`Cost`]); the scalar
//! `dag_cost`/`tree_cost` fields report plain latency for paper-style
//! comparisons.

mod reduce;

use crate::cycles::BitSet;
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};
use tensat_egraph::{
    CostFunction, DagCostFunction, DagExtractor, Extractor, Id, Language, RecExpr,
};
use tensat_ilp::{Cmp, Problem, Solver, Status, VarId};
use tensat_ir::{Cost, CostModel, TensorData, TensorEGraph, TensorLang};

/// The result of one extraction.
///
/// Both cost views of the extracted graph are reported so strategies are
/// never compared apples-to-oranges: `tree_cost` charges shared subgraphs
/// once per use (the objective tree-greedy actually minimizes), `dag_cost`
/// charges each node once (what the graph actually costs to run, and the
/// objective the DAG-aware strategies minimize). Earlier revisions reported
/// a single scalar that meant tree cost for greedy and DAG cost for ILP.
#[derive(Debug, Clone)]
pub struct ExtractionOutcome {
    /// The extracted graph.
    pub expr: RecExpr<TensorLang>,
    /// Composite DAG-counted cost of `expr` (latency µs, peak-memory
    /// bytes, kernel launches), each node charged once.
    pub cost: Cost,
    /// DAG cost in µs: each node charged once (`cost.latency`).
    pub dag_cost: f64,
    /// Tree cost in µs: each node charged once per use.
    pub tree_cost: f64,
    /// Wall-clock time spent extracting.
    pub time: Duration,
    /// Solver statistics when the ILP strategy produced this outcome.
    pub ilp: Option<IlpStats>,
}

impl ExtractionOutcome {
    /// Builds an outcome for `expr`, measuring both honest costs under the
    /// model.
    fn measure(expr: RecExpr<TensorLang>, model: &CostModel, time: Duration) -> Self {
        let cost = model.graph_cost_composite(&expr);
        let tree_cost = model.tree_cost(&expr);
        ExtractionOutcome {
            dag_cost: cost.latency,
            tree_cost,
            cost,
            expr,
            time,
            ilp: None,
        }
    }
}

/// Statistics of an ILP extraction.
///
/// The `*_before` fields report the size of the paper's monolithic §5.1
/// encoding for the same e-graph; the plain `num_vars`/`num_constraints`
/// report what was actually handed to the solver after the reduction
/// pipeline (equal to the `*_before` fields when reduction is off).
#[derive(Debug, Clone)]
pub struct IlpStats {
    /// ILP variables handed to the solver (summed over components).
    pub num_vars: usize,
    /// ILP constraints handed to the solver (summed over components).
    pub num_constraints: usize,
    /// Variables the monolithic encoding would create for this e-graph.
    pub vars_before: usize,
    /// Constraints the monolithic encoding would create.
    pub constraints_before: usize,
    /// Variables fixed by the solver's presolve propagation at the root
    /// (summed over components).
    pub presolve_fixed: usize,
    /// Candidates removed by dominated-candidate pruning (0 when reduction
    /// is off).
    pub dominated_pruned: usize,
    /// Candidates removed by incumbent cost-bound pruning: their forced-
    /// closure lower bound exceeds the greedy warm-start value, so they
    /// appear in no optimum (0 when reduction or the warm start is off).
    pub bound_pruned: usize,
    /// Classes fixed outside the ILP by single-candidate forcing (0 when
    /// reduction is off).
    pub forced_classes: usize,
    /// Independent subproblems solved after decomposition (1 when
    /// reduction is off).
    pub components: usize,
    /// Solver status — `Optimal` only if every component solved to
    /// optimality.
    pub status: Status,
    /// Branch-and-bound nodes explored (summed over components).
    pub nodes_explored: usize,
    /// Solver wall-clock time (summed over components).
    pub solve_time: Duration,
}

/// Errors from extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// No finite-cost term is represented for the root class.
    NoFiniteTerm,
    /// The ILP solver proved the encoding infeasible (can happen when every
    /// candidate in some required class was filtered).
    Infeasible,
    /// The selected nodes contain a cycle (only possible when both cycle
    /// filtering and the ILP cycle constraints are disabled).
    CyclicSelection,
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractError::NoFiniteTerm => write!(f, "no finite-cost term represented by the root"),
            ExtractError::Infeasible => write!(f, "ILP extraction is infeasible"),
            ExtractError::CyclicSelection => write!(f, "selected e-nodes form a cycle"),
        }
    }
}

impl std::error::Error for ExtractError {}

/// A [`CostFunction`] charging each e-node its cost-model cost plus the sum
/// of its children's costs (tree cost — the greedy approximation).
///
/// Reads class analysis data straight from the (shared, immutable) e-graph
/// — an O(1) dense-slot access — instead of snapshotting every class's
/// `TensorData` into a private hash map up front, as it did before the
/// dense storage refactor.
#[derive(Debug, Clone)]
pub struct TreeCost<'a> {
    model: CostModel,
    egraph: &'a TensorEGraph,
}

impl<'a> TreeCost<'a> {
    /// A tree-cost function over the given e-graph's analysis data.
    pub fn new(model: CostModel, egraph: &'a TensorEGraph) -> Self {
        TreeCost { model, egraph }
    }
}

impl CostFunction<TensorLang> for TreeCost<'_> {
    type Cost = f64;
    fn cost<C>(&mut self, enode: &TensorLang, mut costs: C) -> f64
    where
        C: FnMut(Id) -> f64,
    {
        let get = |id: Id| {
            if self.egraph.slot_index(id).is_some() {
                self.egraph.eclass(id).data.clone()
            } else {
                TensorData::invalid("unknown class")
            }
        };
        let own = self.model.node_cost(enode, &get);
        enode.children().iter().fold(own, |acc, &c| acc + costs(c))
    }

    /// Total order on float costs: NaN sorts above `+inf`, so a NaN from a
    /// degenerate cost model can never displace a finite per-class best.
    fn cmp(a: &f64, b: &f64) -> Ordering {
        a.total_cmp(b)
    }
}

/// A [`DagCostFunction`] charging each e-node its *own* composite
/// cost-model cost; the DAG extractor sums it over the set of selected
/// classes, so sharing is charged once.
#[derive(Debug, Clone)]
pub struct DagCost<'a> {
    model: CostModel,
    egraph: &'a TensorEGraph,
}

impl<'a> DagCost<'a> {
    /// A per-node composite cost function over the given e-graph's analysis
    /// data.
    pub fn new(model: CostModel, egraph: &'a TensorEGraph) -> Self {
        DagCost { model, egraph }
    }
}

impl DagCostFunction<TensorLang> for DagCost<'_> {
    type Cost = Cost;

    fn node_cost(&mut self, enode: &TensorLang) -> Cost {
        let get = |id: Id| {
            if self.egraph.slot_index(id).is_some() {
                self.egraph.eclass(id).data.clone()
            } else {
                TensorData::invalid("unknown class")
            }
        };
        self.model.node_cost_composite(enode, &get)
    }

    fn zero(&self) -> Cost {
        Cost::ZERO
    }

    fn add_assign(&self, acc: &mut Cost, item: &Cost) {
        *acc += *item;
    }

    /// The lexicographic total order of [`Cost`] (latency, memory,
    /// launches), NaN-safe via `total_cmp` per component.
    fn cmp(a: &Cost, b: &Cost) -> Ordering {
        a.total_order(b)
    }
}

/// Tree-greedy extraction (paper §5.1): per e-class, pick the e-node with
/// the smallest subtree cost.
pub fn extract_greedy(
    egraph: &TensorEGraph,
    root: Id,
    model: &CostModel,
) -> Result<ExtractionOutcome, ExtractError> {
    let start = Instant::now();
    let extractor = Extractor::new(egraph, TreeCost::new(model.clone(), egraph));
    let (_, expr) = extractor
        .find_best(root)
        .ok_or(ExtractError::NoFiniteTerm)?;
    Ok(ExtractionOutcome::measure(expr, model, start.elapsed()))
}

/// Global greedy DAG extraction: the worklist extractor charging each
/// e-node once (see [`tensat_egraph::DagExtractor`]), minimizing the
/// composite cost.
///
/// Both greedy extractors run and the result with the lower composite DAG
/// cost is returned, so `dag_cost(extract_greedy_dag) ≤
/// dag_cost(extract_greedy)` holds by construction — the DAG extractor is
/// a heuristic, and on e-graphs where profitable sharing requires several
/// classes to switch candidates *jointly* (the merged-matmul economics only
/// the ILP captures), its per-class-at-a-time fixpoint can lose to the tree
/// choice. The reported `time` covers both runs.
pub fn extract_greedy_dag(
    egraph: &TensorEGraph,
    root: Id,
    model: &CostModel,
) -> Result<ExtractionOutcome, ExtractError> {
    let start = Instant::now();
    let extractor = DagExtractor::new(egraph, DagCost::new(model.clone(), egraph));
    let dag = extractor.find_best(root);
    let tree = Extractor::new(egraph, TreeCost::new(model.clone(), egraph)).find_best(root);
    let best = match (dag, tree) {
        (Some((_, d)), Some((_, t))) => {
            // Compare by honest composite DAG cost of the built graphs, not
            // the extractors' internal objectives (which disagree on what a
            // "cost" is).
            if model
                .graph_cost_composite(&d)
                .total_order(&model.graph_cost_composite(&t))
                != Ordering::Greater
            {
                d
            } else {
                t
            }
        }
        (Some((_, d)), None) => d,
        (None, Some((_, t))) => t,
        (None, None) => return Err(ExtractError::NoFiniteTerm),
    };
    Ok(ExtractionOutcome::measure(best, model, start.elapsed()))
}

/// Configuration for ILP extraction.
#[derive(Debug, Clone)]
pub struct IlpConfig {
    /// Include the acyclicity constraints (4)–(5). Required when the
    /// e-graph may contain cycles (no cycle filtering during exploration).
    pub cycle_constraints: bool,
    /// Use integer topological-order variables instead of reals.
    pub integer_topo_vars: bool,
    /// Wall-clock limit for the ILP solver.
    pub time_limit: Duration,
    /// Seed the solver with the greedy-DAG solution as a warm start (and
    /// keep it as the incumbent if the solver's budget runs out first).
    pub warm_start_with_greedy: bool,
    /// Run the problem-reduction pipeline (see the `reduce` module) before
    /// encoding: restrict to the root-reachable subgraph, prune dominated
    /// candidates, fix single-candidate classes transitively, and decompose
    /// the residue into independent components solved separately. `false`
    /// encodes the paper's monolithic program directly — the oracle the
    /// differential tests compare the reduced optimum against. Ignored
    /// (treated as `false`) when `cycle_constraints` is on: the dominance
    /// argument reasons about the acyclic selection semantics.
    pub reduce: bool,
}

impl Default for IlpConfig {
    fn default() -> Self {
        IlpConfig {
            cycle_constraints: false,
            integer_topo_vars: false,
            time_limit: Duration::from_secs(60),
            warm_start_with_greedy: true,
            reduce: true,
        }
    }
}

/// ILP extraction (paper §5.1): encode node selection as a 0/1 program and
/// solve it with the `tensat-ilp` branch-and-bound solver. Solver
/// statistics are reported in the outcome's [`ExtractionOutcome::ilp`].
///
/// By default the abstract selection problem is *reduced* before encoding
/// (see [`IlpConfig::reduce`]); the monolithic encoding below remains both
/// the `reduce: false` path and the oracle for the differential tests.
pub fn extract_ilp(
    egraph: &TensorEGraph,
    root: Id,
    model: &CostModel,
    config: &IlpConfig,
) -> Result<ExtractionOutcome, ExtractError> {
    if config.reduce && !config.cycle_constraints {
        extract_ilp_reduced(egraph, root, model, config)
    } else {
        extract_ilp_monolithic(egraph, root, model, config)
    }
}

/// The monolithic §5.1 encoding: one binary per viable e-node, one
/// implication row per (node, child-class) edge, solved as a single ILP.
fn extract_ilp_monolithic(
    egraph: &TensorEGraph,
    root: Id,
    model: &CostModel,
    config: &IlpConfig,
) -> Result<ExtractionOutcome, ExtractError> {
    let start = Instant::now();
    let root = egraph.find(root);

    // Collect the classes reachable from the root through unfiltered,
    // finite-cost e-nodes, in BFS order (a good branching order for the
    // solver: decisions near the root come first). All per-class tables
    // below are indexed by the e-graph's dense slot space
    // ([`tensat_egraph::EGraph::slot_index`]) — the same index space the
    // cycle bit sets and the greedy extractors use.
    let slot = |id: Id| egraph.slot_index(id).expect("reachable class is live");
    let n_slots = egraph.num_slots();
    let mut order: Vec<Id> = vec![root];
    let mut seen = BitSet::new(n_slots);
    seen.insert(slot(root));
    let mut i = 0;
    while i < order.len() {
        let class = order[i];
        i += 1;
        for node in egraph.eclass(class).iter() {
            if egraph.is_filtered(node) {
                continue;
            }
            for &child in node.children() {
                let child = egraph.find(child);
                if seen.insert(slot(child)) {
                    order.push(child);
                }
            }
        }
    }

    // Candidate e-nodes per class. The objective coefficient is the
    // latency component of the composite cost — the solver minimizes the
    // primary objective; memory and launches ride along in the outcome.
    let mut problem = Problem::new();
    let mut node_vars: Vec<(Id, TensorLang, VarId)> = vec![];
    let mut class_vars: Vec<Vec<VarId>> = vec![vec![]; n_slots];
    for &class in &order {
        let mut vars = vec![];
        for node in egraph.eclass(class).iter() {
            if egraph.is_filtered(node) {
                continue;
            }
            let cost = model.enode_cost_composite(egraph, node);
            if !cost.is_finite() {
                continue;
            }
            let var = problem.add_binary(cost.latency);
            problem.set_name(var, format!("x_{class}_{}", node.display_op()));
            node_vars.push((class, node.clone(), var));
            vars.push(var);
        }
        class_vars[slot(class)] = vars;
    }

    // Constraint (2): exactly one node picked in the root class.
    let root_vars = class_vars[slot(root)].clone();
    if root_vars.is_empty() {
        return Err(ExtractError::NoFiniteTerm);
    }
    problem.add_constraint(root_vars.iter().map(|&v| (v, 1.0)).collect(), Cmp::Eq, 1.0);

    // Constraint (3): a picked node needs one picked node in each child class.
    for (_, node, var) in &node_vars {
        for &child in node.children() {
            let child_vars = &class_vars[slot(child)];
            if child_vars.is_empty() {
                // The child class has no viable candidates: this node can
                // never be selected.
                problem.add_constraint(vec![(*var, 1.0)], Cmp::Le, 0.0);
                continue;
            }
            let mut terms = vec![(*var, 1.0)];
            terms.extend(child_vars.iter().map(|&v| (v, -1.0)));
            problem.add_constraint(terms, Cmp::Le, 0.0);
        }
    }

    // Constraints (4)–(5): topological-order variables rule out cycles.
    if config.cycle_constraints {
        let m = order.len() as f64;
        let mut topo: Vec<Option<VarId>> = vec![None; n_slots];
        for &class in &order {
            let var = if config.integer_topo_vars {
                problem.add_integer(0, order.len() as i64 - 1, 0.0)
            } else {
                problem.add_continuous(0.0, 1.0, 0.0)
            };
            problem.set_name(var, format!("t_{class}"));
            topo[slot(class)] = Some(var);
        }
        let eps = 1.0 / (m + 1.0);
        for (class, node, var) in &node_vars {
            let t_own = topo[slot(*class)].expect("class is in the BFS order");
            for &child in node.children() {
                let t_child = topo[slot(child)].expect("child is in the BFS order");
                if config.integer_topo_vars {
                    // t_own - t_child + A(1 - x) >= 1, A >= M
                    let a = m;
                    problem.add_constraint(
                        vec![(t_own, 1.0), (t_child, -1.0), (*var, -a)],
                        Cmp::Ge,
                        1.0 - a,
                    );
                } else {
                    // t_own - t_child - eps + A(1 - x) >= 0, A > 1 + eps
                    let a = 2.0;
                    problem.add_constraint(
                        vec![(t_own, 1.0), (t_child, -1.0), (*var, -a)],
                        Cmp::Ge,
                        eps - a,
                    );
                }
            }
        }
    }

    // Warm start from the greedy-DAG solution: its DAG cost lower-bounds
    // the tree-greedy incumbent the solver used to receive, so the solver
    // starts from a no-worse incumbent.
    let greedy = if config.warm_start_with_greedy {
        extract_greedy_dag(egraph, root, model).ok()
    } else {
        None
    };
    let hint = greedy.as_ref().map(|greedy| {
        let mut values = vec![0.0; problem.num_vars()];
        // Map the greedy expression's nodes back to (class, canonical node)
        // pairs: children in the expression are expression-local ids, so
        // translate them to e-class ids bottom-up first.
        let mut selected: std::collections::HashSet<(Id, TensorLang)> = Default::default();
        let mut expr_to_class: Vec<Id> = Vec::with_capacity(greedy.expr.len());
        for (_, node) in greedy.expr.iter() {
            let mapped = node.map_children(|c| expr_to_class[usize::from(c)]);
            match egraph.lookup(&mapped) {
                Some(class) => {
                    let class = egraph.find(class);
                    selected.insert((class, egraph.canonicalize(&mapped)));
                    expr_to_class.push(class);
                }
                None => expr_to_class.push(egraph.find(root)),
            }
        }
        for (class, node, var) in &node_vars {
            if selected.contains(&(egraph.find(*class), egraph.canonicalize(node))) {
                values[var.0] = 1.0;
            }
        }
        values
    });

    let solver = Solver::with_time_limit(config.time_limit);
    let solution = match &hint {
        Some(h) => solver.solve_with_hint(&problem, h),
        None => solver.solve(&problem),
    };
    let stats = IlpStats {
        num_vars: problem.num_vars(),
        num_constraints: problem.num_constraints(),
        vars_before: problem.num_vars(),
        constraints_before: problem.num_constraints(),
        presolve_fixed: solution.presolve_fixed,
        dominated_pruned: 0,
        bound_pruned: 0,
        forced_classes: 0,
        components: 1,
        status: solution.status,
        nodes_explored: solution.nodes_explored,
        solve_time: solution.solve_time,
    };
    if !solution.has_solution() {
        return Err(ExtractError::Infeasible);
    }

    // Read the selection back: for each class (slot), the chosen e-node.
    let mut choice: Vec<Option<TensorLang>> = vec![None; n_slots];
    for (class, node, var) in &node_vars {
        let s = slot(*class);
        if solution.value(*var) > 0.5 && choice[s].is_none() {
            choice[s] = Some(node.clone());
        }
    }
    let expr = build_selection(egraph, root, &choice)?;
    let mut outcome = ExtractionOutcome::measure(expr, model, start.elapsed());
    // The solver is an any-time procedure: if it hit its budget before
    // re-discovering the greedy incumbent (e.g. the warm start could not be
    // translated into a feasible assignment), keep whichever graph is
    // cheaper so ILP extraction never regresses below greedy.
    if let Some(greedy) = greedy {
        if greedy.cost.total_order(&outcome.cost) == Ordering::Less {
            outcome.expr = greedy.expr;
            outcome.cost = greedy.cost;
            outcome.dag_cost = greedy.dag_cost;
            outcome.tree_cost = greedy.tree_cost;
        }
    }
    outcome.ilp = Some(stats);
    Ok(outcome)
}

/// The reduced path: build the abstract selection problem, run the
/// reduction pipeline (trim → dominance/forced-closure fixpoint → forcing →
/// decomposition), encode and solve each residual component independently,
/// and stitch the fixed selections with the per-component optima.
///
/// Soundness of the stitch: the fixed classes select their single surviving
/// candidate in *some* optimal solution of the monolithic program (the
/// dominance swap argument shows an optimum avoiding pruned candidates
/// exists; forcing is then literal constraint propagation on it), and the
/// residual constraint matrix is block-diagonal across components with an
/// additive objective — so `optimum = Σ fixed costs + Σ component optima`,
/// which the differential tests check against the monolithic oracle.
fn extract_ilp_reduced(
    egraph: &TensorEGraph,
    root: Id,
    model: &CostModel,
    config: &IlpConfig,
) -> Result<ExtractionOutcome, ExtractError> {
    let start = Instant::now();
    let root = egraph.find(root);

    // The greedy-DAG solution serves double duty: its value is the
    // incumbent upper bound the reduction's cost-bound pruning compares
    // forced-closure lower bounds against, and its selection warm-starts
    // every component's solver.
    let greedy = if config.warm_start_with_greedy {
        extract_greedy_dag(egraph, root, model).ok()
    } else {
        None
    };

    let mut rp = reduce::ExtractionProblem::from_egraph(egraph, root, model)?;
    rp.reduce(greedy.as_ref().map(|g| g.dag_cost))?;
    let n = rp.candidates.len();

    // Map the greedy expression back to one candidate per class (the same
    // canonical-node lookup as the monolithic path); when the greedy pick
    // was dominance-pruned, chase `rep` to the sibling that dominated it —
    // the dominator's needs are a subset of the pruned pick's, which the
    // greedy solution satisfies, so the repaired hint stays closed.
    let mut hint_choice: Vec<Option<usize>> = vec![None; n];
    if let Some(greedy) = &greedy {
        let mut selected: HashSet<(Id, TensorLang)> = Default::default();
        let mut expr_to_class: Vec<Id> = Vec::with_capacity(greedy.expr.len());
        for (_, node) in greedy.expr.iter() {
            let mapped = node.map_children(|c| expr_to_class[usize::from(c)]);
            match egraph.lookup(&mapped) {
                Some(class) => {
                    let class = egraph.find(class);
                    selected.insert((class, egraph.canonicalize(&mapped)));
                    expr_to_class.push(class);
                }
                None => expr_to_class.push(root),
            }
        }
        for (i, hint) in hint_choice.iter_mut().enumerate() {
            if !rp.reachable[i] {
                continue;
            }
            for j in 0..rp.candidates[i].len() {
                let node = &rp.candidates[i][j].node;
                if selected.contains(&(rp.class_ids[i], egraph.canonicalize(node))) {
                    let r = rp.resolve_rep(i, j);
                    if rp.alive[i][r] {
                        *hint = Some(r);
                    }
                    break;
                }
            }
        }
    }

    // Encode and solve each component independently, splitting the wall
    // clock budget first-come (components are tiny after reduction).
    let comps = rp.components();
    let mut choice: Vec<Option<usize>> = rp.fixed.clone();
    let mut stats = IlpStats {
        num_vars: 0,
        num_constraints: 0,
        vars_before: rp.stats.vars_before,
        constraints_before: rp.stats.constraints_before,
        presolve_fixed: 0,
        dominated_pruned: rp.stats.dominated_pruned,
        bound_pruned: rp.stats.bound_pruned,
        forced_classes: rp.stats.forced_classes,
        components: comps.len(),
        status: Status::Optimal,
        nodes_explored: 0,
        solve_time: Duration::ZERO,
    };
    for comp in &comps {
        let mut problem = Problem::new();
        let mut comp_vars: HashMap<usize, Vec<(usize, VarId)>> = HashMap::new();
        for &i in comp {
            let mut vars = vec![];
            for (j, cand) in rp.candidates[i].iter().enumerate() {
                if !rp.alive[i][j] {
                    continue;
                }
                let var = problem.add_binary(cand.cost);
                problem.set_name(
                    var,
                    format!("x_{}_{}", rp.class_ids[i], cand.node.display_op()),
                );
                vars.push((j, var));
            }
            comp_vars.insert(i, vars);
        }
        for &i in comp {
            let vars = &comp_vars[&i];
            if i == 0 {
                // Constraint (2): exactly one node picked in the root class.
                problem.add_constraint(vars.iter().map(|&(_, v)| (v, 1.0)).collect(), Cmp::Eq, 1.0);
            } else if rp.required[i] {
                // Implied by a fixed parent's constraint (3); stating it
                // lets the solver's cover-group bound see the class.
                problem.add_constraint(vars.iter().map(|&(_, v)| (v, 1.0)).collect(), Cmp::Ge, 1.0);
            }
            // Constraint (3): a picked node needs one picked node in each
            // non-fixed child class (fixed children are always selected).
            for &(j, var) in vars {
                for &c in &rp.candidates[i][j].children {
                    if rp.fixed[c].is_some() {
                        continue;
                    }
                    let mut terms = vec![(var, 1.0)];
                    terms.extend(comp_vars[&c].iter().map(|&(_, v)| (v, -1.0)));
                    problem.add_constraint(terms, Cmp::Le, 0.0);
                }
            }
        }
        let hint = greedy.as_ref().map(|_| {
            let mut values = vec![0.0; problem.num_vars()];
            for &i in comp {
                if let Some(h) = hint_choice[i] {
                    if let Some(&(_, v)) = comp_vars[&i].iter().find(|&&(j, _)| j == h) {
                        values[v.0] = 1.0;
                    }
                }
            }
            values
        });
        let solver = Solver::with_time_limit(config.time_limit.saturating_sub(start.elapsed()));
        let solution = match &hint {
            Some(h) => solver.solve_with_hint(&problem, h),
            None => solver.solve(&problem),
        };
        stats.num_vars += problem.num_vars();
        stats.num_constraints += problem.num_constraints();
        stats.presolve_fixed += solution.presolve_fixed;
        stats.nodes_explored += solution.nodes_explored;
        stats.solve_time += solution.solve_time;
        if !solution.has_solution() {
            // Out of budget with no incumbent for this component: fall back
            // to the greedy graph (the monolithic path's any-time contract)
            // if there is one.
            stats.status = solution.status;
            let Some(greedy) = greedy else {
                return Err(ExtractError::Infeasible);
            };
            let mut outcome = ExtractionOutcome::measure(greedy.expr, model, start.elapsed());
            outcome.ilp = Some(stats);
            return Ok(outcome);
        }
        if solution.status != Status::Optimal {
            stats.status = solution.status;
        }
        for &i in comp {
            for &(j, var) in &comp_vars[&i] {
                if solution.value(var) > 0.5 {
                    choice[i] = Some(j);
                    break;
                }
            }
        }
    }

    // Stitch: fixed selections plus the per-component optima, mapped into
    // the slot space `build_selection` walks.
    let mut slot_choice: Vec<Option<TensorLang>> = vec![None; egraph.num_slots()];
    for (i, &ch) in choice.iter().enumerate() {
        if let Some(j) = ch {
            let s = egraph
                .slot_index(rp.class_ids[i])
                .expect("reachable class is live");
            slot_choice[s] = Some(rp.candidates[i][j].node.clone());
        }
    }
    let expr = build_selection(egraph, root, &slot_choice)?;
    let mut outcome = ExtractionOutcome::measure(expr, model, start.elapsed());
    if let Some(greedy) = greedy {
        if greedy.cost.total_order(&outcome.cost) == Ordering::Less {
            outcome.expr = greedy.expr;
            outcome.cost = greedy.cost;
            outcome.dag_cost = greedy.dag_cost;
            outcome.tree_cost = greedy.tree_cost;
        }
    }
    outcome.ilp = Some(stats);
    Ok(outcome)
}

/// Builds the extracted expression from a per-slot node choice, detecting
/// cyclic selections. Iterative (one explicit frame per class on a heap
/// stack), so arbitrarily deep selections cannot overflow the thread stack.
fn build_selection(
    egraph: &TensorEGraph,
    root: Id,
    choice: &[Option<TensorLang>],
) -> Result<RecExpr<TensorLang>, ExtractError> {
    struct Frame {
        slot: usize,
        node: TensorLang,
        next_child: usize,
        children: Vec<Id>,
    }
    let frame = |slot: usize, node: TensorLang| Frame {
        slot,
        node,
        next_child: 0,
        children: vec![],
    };
    let pick = |slot: usize| -> Result<TensorLang, ExtractError> {
        choice
            .get(slot)
            .and_then(|c| c.clone())
            .ok_or(ExtractError::Infeasible)
    };

    let mut expr = RecExpr::default();
    let mut done: Vec<Option<Id>> = vec![None; egraph.num_slots()];
    let mut on_stack = BitSet::new(egraph.num_slots());
    let root_slot = egraph.slot_index(root).ok_or(ExtractError::Infeasible)?;
    on_stack.insert(root_slot);
    let mut stack = vec![frame(root_slot, pick(root_slot)?)];
    loop {
        let top = stack.last_mut().expect("loop returns before emptying");
        if let Some(&child) = top.node.children().get(top.next_child) {
            top.next_child += 1;
            let slot = egraph
                .slot_index(egraph.find(child))
                .ok_or(ExtractError::Infeasible)?;
            if let Some(id) = done[slot] {
                top.children.push(id);
            } else {
                if !on_stack.insert(slot) {
                    return Err(ExtractError::CyclicSelection);
                }
                stack.push(frame(slot, pick(slot)?));
            }
            continue;
        }
        let finished = stack.pop().expect("a frame is always on the stack");
        let mut i = 0;
        let node = finished.node.map_children(|_| {
            let id = finished.children[i];
            i += 1;
            id
        });
        let id = expr.add(node);
        done[finished.slot] = Some(id);
        match stack.last_mut() {
            Some(parent) => parent.children.push(id),
            None => return Ok(expr),
        }
    }
}

/// The single extraction seam: every strategy maps `(e-graph, root, cost
/// model)` to an [`ExtractionOutcome`] with honest tree/DAG costs, so the
/// optimizer, the benches, and future strategies (e.g. the MCTS scorer)
/// all call extraction the same way.
pub trait ExtractionStrategy: std::fmt::Debug {
    /// Short stable name used in reports and the `TENSAT_EXTRACTOR`
    /// environment override.
    fn name(&self) -> &'static str;

    /// Extracts the best graph for `root` under this strategy.
    fn extract(
        &self,
        egraph: &TensorEGraph,
        root: Id,
        model: &CostModel,
    ) -> Result<ExtractionOutcome, ExtractError>;
}

/// The tree-greedy strategy ([`extract_greedy`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct TreeGreedy;

impl ExtractionStrategy for TreeGreedy {
    fn name(&self) -> &'static str {
        "tree-greedy"
    }
    fn extract(
        &self,
        egraph: &TensorEGraph,
        root: Id,
        model: &CostModel,
    ) -> Result<ExtractionOutcome, ExtractError> {
        extract_greedy(egraph, root, model)
    }
}

/// The global greedy DAG strategy ([`extract_greedy_dag`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyDag;

impl ExtractionStrategy for GreedyDag {
    fn name(&self) -> &'static str {
        "greedy-dag"
    }
    fn extract(
        &self,
        egraph: &TensorEGraph,
        root: Id,
        model: &CostModel,
    ) -> Result<ExtractionOutcome, ExtractError> {
        extract_greedy_dag(egraph, root, model)
    }
}

/// The ILP strategy ([`extract_ilp`]) with its configuration.
#[derive(Debug, Clone, Default)]
pub struct IlpExtraction {
    /// The solver configuration.
    pub config: IlpConfig,
}

impl ExtractionStrategy for IlpExtraction {
    fn name(&self) -> &'static str {
        "ilp"
    }
    fn extract(
        &self,
        egraph: &TensorEGraph,
        root: Id,
        model: &CostModel,
    ) -> Result<ExtractionOutcome, ExtractError> {
        extract_ilp(egraph, root, model, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExplorationConfig};
    use tensat_ir::{GraphBuilder, TensorAnalysis};
    use tensat_rules::{multi_rules, single_rules};

    /// Two matmuls sharing an input: the case where greedy fails to pick
    /// the merged form but ILP succeeds (paper §5.1 and Table 4).
    fn explored_two_matmuls() -> (TensorEGraph, Id, f64) {
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let w1 = g.weight("w1", &[256, 128]);
        let w2 = g.weight("w2", &[256, 128]);
        let m1 = g.matmul(x, w1);
        let m2 = g.matmul(x, w2);
        let expr = g.finish(&[m1, m2]);
        let model = CostModel::default();
        let original = model.graph_cost(&expr);
        let mut eg = TensorEGraph::new(TensorAnalysis);
        let root = eg.add_expr(&expr);
        eg.rebuild();
        explore(
            &mut eg,
            root,
            &single_rules(),
            &multi_rules(),
            &ExplorationConfig {
                k_multi: 1,
                max_iter: 4,
                node_limit: 10_000,
                ..Default::default()
            },
        );
        (eg, root, original)
    }

    #[test]
    fn greedy_extracts_a_valid_graph() {
        let (eg, root, original) = explored_two_matmuls();
        let model = CostModel::default();
        let out = extract_greedy(&eg, root, &model).unwrap();
        assert!(out.dag_cost.is_finite());
        assert!(out.dag_cost <= original * 1.001);
        // The outcome reports both views and they are consistent.
        assert_eq!(out.dag_cost, out.cost.latency);
        assert!(out.tree_cost >= out.dag_cost);
        let data = tensat_ir::infer_recexpr(&out.expr);
        assert!(data.iter().all(|d| d.is_valid()));
    }

    #[test]
    fn greedy_dag_never_worse_than_tree_greedy() {
        let (eg, root, _) = explored_two_matmuls();
        let model = CostModel::default();
        let tree = extract_greedy(&eg, root, &model).unwrap();
        let dag = extract_greedy_dag(&eg, root, &model).unwrap();
        assert!(
            dag.dag_cost <= tree.dag_cost + 1e-9,
            "greedy-DAG ({}) must not lose to tree-greedy ({}) on DAG cost",
            dag.dag_cost,
            tree.dag_cost
        );
        let data = tensat_ir::infer_recexpr(&dag.expr);
        assert!(data.iter().all(|d| d.is_valid()));
    }

    #[test]
    fn ilp_beats_greedy_on_shared_subgraphs() {
        let (eg, root, original) = explored_two_matmuls();
        let model = CostModel::default();
        let greedy = extract_greedy(&eg, root, &model).unwrap();
        let ilp = extract_ilp(&eg, root, &model, &IlpConfig::default()).unwrap();
        let stats = ilp.ilp.as_ref().expect("ILP outcome carries solver stats");
        assert!(stats.vars_before > 0);
        assert!(
            stats.num_vars <= stats.vars_before,
            "reduction must never grow the problem ({} vs {})",
            stats.num_vars,
            stats.vars_before
        );
        assert!(
            ilp.dag_cost < greedy.dag_cost,
            "ILP ({}) should beat greedy ({}) by picking the merged matmul",
            ilp.dag_cost,
            greedy.dag_cost
        );
        assert!(ilp.dag_cost < original);
        // The ILP graph must contain the split form.
        assert!(ilp.expr.to_string().contains("split"));
        let data = tensat_ir::infer_recexpr(&ilp.expr);
        assert!(data.iter().all(|d| d.is_valid()));
    }

    #[test]
    fn reduced_ilp_matches_monolithic_optimum() {
        let (eg, root, _) = explored_two_matmuls();
        let model = CostModel::default();
        let reduced = extract_ilp(&eg, root, &model, &IlpConfig::default()).unwrap();
        let monolithic = extract_ilp(
            &eg,
            root,
            &model,
            &IlpConfig {
                reduce: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            (reduced.dag_cost - monolithic.dag_cost).abs() < 1e-9,
            "reduced optimum ({}) must equal the monolithic oracle ({})",
            reduced.dag_cost,
            monolithic.dag_cost
        );
        let rs = reduced.ilp.unwrap();
        let ms = monolithic.ilp.unwrap();
        assert_eq!(rs.status, Status::Optimal);
        assert_eq!(ms.status, Status::Optimal);
        // The "before" stats are exactly the monolithic encoding's size.
        assert_eq!(rs.vars_before, ms.num_vars);
        assert_eq!(rs.constraints_before, ms.num_constraints);
        assert!(rs.num_vars <= ms.num_vars);
        assert!(rs.num_constraints <= ms.num_constraints);
    }

    #[test]
    fn ilp_with_cycle_constraints_matches_without_on_acyclic_egraph() {
        let (eg, root, _) = explored_two_matmuls();
        let model = CostModel::default();
        let plain = extract_ilp(&eg, root, &model, &IlpConfig::default()).unwrap();
        let with_cycles = extract_ilp(
            &eg,
            root,
            &model,
            &IlpConfig {
                cycle_constraints: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((plain.dag_cost - with_cycles.dag_cost).abs() < 1e-6);
        let int_topo = extract_ilp(
            &eg,
            root,
            &model,
            &IlpConfig {
                cycle_constraints: true,
                integer_topo_vars: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((plain.dag_cost - int_topo.dag_cost).abs() < 1e-6);
    }

    #[test]
    fn extraction_on_unexplored_graph_returns_input() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[8, 8]);
        let r = g.relu(x);
        let expr = g.finish(&[r]);
        let model = CostModel::default();
        let mut eg = TensorEGraph::new(TensorAnalysis);
        let root = eg.add_expr(&expr);
        eg.rebuild();
        let greedy = extract_greedy(&eg, root, &model).unwrap();
        assert!((greedy.dag_cost - model.graph_cost(&expr)).abs() < 1e-6);
        let ilp = extract_ilp(&eg, root, &model, &IlpConfig::default()).unwrap();
        assert!((ilp.dag_cost - greedy.dag_cost).abs() < 1e-6);
        assert_eq!(ilp.ilp.as_ref().unwrap().status, Status::Optimal);
    }

    #[test]
    fn strategies_share_one_seam() {
        let (eg, root, _) = explored_two_matmuls();
        let model = CostModel::default();
        let strategies: Vec<Box<dyn ExtractionStrategy>> = vec![
            Box::new(TreeGreedy),
            Box::new(GreedyDag),
            Box::new(IlpExtraction::default()),
        ];
        let names: Vec<_> = strategies.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["tree-greedy", "greedy-dag", "ilp"]);
        let outcomes: Vec<_> = strategies
            .iter()
            .map(|s| s.extract(&eg, root, &model).unwrap())
            .collect();
        // DAG-cost dominance chain: ILP ≤ greedy-DAG ≤ tree-greedy.
        assert!(outcomes[2].dag_cost <= outcomes[1].dag_cost + 1e-9);
        assert!(outcomes[1].dag_cost <= outcomes[0].dag_cost + 1e-9);
        // Only the ILP outcome carries solver stats.
        assert!(outcomes[0].ilp.is_none());
        assert!(outcomes[1].ilp.is_none());
        assert!(outcomes[2].ilp.is_some());
    }
}
