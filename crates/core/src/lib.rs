//! # tensat-core
//!
//! The core of the TENSAT reproduction: tensor-graph superoptimization via
//! equality saturation (MLSys 2021). This crate implements the paper's
//! contributions on top of the `tensat-egraph`, `tensat-ir`, `tensat-rules`
//! and `tensat-ilp` substrates:
//!
//! * the **exploration phase** with single- and multi-pattern rewrites
//!   (Algorithm 1) and a separate `k_multi` limit (§4), behind an
//!   [`ExplorationStrategy`] seam with saturate-all, guided beam-search,
//!   and TASO-backtracking strategies,
//! * **cycle filtering** — both the vanilla and the efficient algorithm
//!   (Algorithm 2) — so extraction can drop the ILP cycle constraints (§5.2),
//! * the **extraction phase** — tree-greedy, global greedy DAG, and ILP
//!   (constraints (1)–(5)) behind one [`ExtractionStrategy`] seam (§5.1),
//! * the end-to-end [`Optimizer`] pipeline with the paper's default
//!   configuration.
//!
//! ```
//! use tensat_core::{Optimizer, OptimizerConfig};
//! use tensat_ir::GraphBuilder;
//! let mut g = GraphBuilder::new();
//! let x = g.input("x", &[32, 64]);
//! let w1 = g.weight("w1", &[64, 64]);
//! let w2 = g.weight("w2", &[64, 64]);
//! let m1 = g.matmul(x, w1);
//! let m2 = g.matmul(x, w2);
//! let graph = g.finish(&[m1, m2]);
//! let result = Optimizer::new(OptimizerConfig::default()).optimize(&graph).unwrap();
//! assert!(result.optimized_cost <= result.original_cost);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cycles;
pub mod explore;
pub mod extract;
pub mod optimizer;

pub use cycles::{find_cycles, remove_all_cycles, would_create_cycle, DescendantsMap};
pub use explore::{
    default_search_threads, explore, explore_with, CycleFilter, ExplorationConfig,
    ExplorationContext, ExplorationMode, ExplorationStats, ExplorationStrategy, Guided,
    GuidedConfig, Saturate, TasoBacktracking, TasoConfig,
};
pub use extract::{
    extract_greedy, extract_greedy_dag, extract_ilp, DagCost, ExtractError, ExtractionOutcome,
    ExtractionStrategy, GreedyDag, IlpConfig, IlpExtraction, IlpStats, TreeCost, TreeGreedy,
};
pub use optimizer::{
    ExtractionMode, OptimizationResult, OptimizationStats, Optimizer, OptimizerConfig,
};
