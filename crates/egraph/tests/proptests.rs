//! Property-based tests of the e-graph invariants: hash-consing,
//! congruence closure, and extraction soundness under random workloads.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use tensat_egraph::doctest_lang::SimpleMath as Math;
use tensat_egraph::{
    search_all_guarded_since_parallel, search_all_guarded_since_parallel_with_threshold,
    search_all_parallel, stage_matches_parallel, Analysis, AstSize, DidMerge, EGraph, ENodeOrVar,
    Extractor, Guard, GuardedProgram, Id, Language, Pattern, RecExpr, Rewrite, SearchMatches,
    Subst, Symbol, Var,
};

/// A random expression generator: a sequence of build steps referencing
/// earlier nodes only.
#[derive(Debug, Clone)]
enum Step {
    Num(i64),
    Sym(u8),
    Add(usize, usize),
    Mul(usize, usize),
    Div(usize, usize),
}

fn steps_strategy(max_len: usize) -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (-4i64..=4).prop_map(Step::Num),
            (0u8..4).prop_map(Step::Sym),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Add(a, b)),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Mul(a, b)),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Div(a, b)),
        ],
        1..max_len,
    )
}

fn build_expr(steps: &[Step]) -> RecExpr<Math> {
    let mut e = RecExpr::default();
    for (i, step) in steps.iter().enumerate() {
        let pick = |r: usize| Id::from(if i == 0 { 0 } else { r % i });
        let node = match step {
            Step::Num(n) => Math::Num(*n),
            Step::Sym(s) => Math::Sym(Symbol::new(format!("s{s}"))),
            Step::Add(a, b) if i > 0 => Math::Add([pick(*a), pick(*b)]),
            Step::Mul(a, b) if i > 0 => Math::Mul([pick(*a), pick(*b)]),
            Step::Div(a, b) if i > 0 => Math::Div([pick(*a), pick(*b)]),
            // Fall back to a leaf when there is no earlier node to refer to.
            _ => Math::Num(0),
        };
        e.add(node);
    }
    e
}

/// A random pattern generator, mirroring [`Step`]: a linear build sequence
/// whose nodes reference earlier nodes only. Variables come from a pool of
/// three names, so repeated draws produce non-linear patterns like
/// `(+ ?x ?x)` naturally.
#[derive(Debug, Clone)]
enum PatStep {
    Var(u8),
    Num(i64),
    Sym(u8),
    Add(usize, usize),
    Mul(usize, usize),
    Div(usize, usize),
}

fn pattern_strategy(max_len: usize) -> impl Strategy<Value = Vec<PatStep>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..3).prop_map(PatStep::Var),
            (-4i64..=4).prop_map(PatStep::Num),
            (0u8..4).prop_map(PatStep::Sym),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| PatStep::Add(a, b)),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| PatStep::Mul(a, b)),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| PatStep::Div(a, b)),
        ],
        1..max_len,
    )
}

fn build_pattern(steps: &[PatStep]) -> Pattern<Math> {
    let mut ast = RecExpr::default();
    for (i, step) in steps.iter().enumerate() {
        let pick = |r: usize| Id::from(if i == 0 { 0 } else { r % i });
        let node = match step {
            PatStep::Var(v) => ENodeOrVar::Var(Var::new(format!("v{v}"))),
            PatStep::Num(n) => ENodeOrVar::ENode(Math::Num(*n)),
            PatStep::Sym(s) => ENodeOrVar::ENode(Math::Sym(Symbol::new(format!("s{s}")))),
            PatStep::Add(a, b) if i > 0 => ENodeOrVar::ENode(Math::Add([pick(*a), pick(*b)])),
            PatStep::Mul(a, b) if i > 0 => ENodeOrVar::ENode(Math::Mul([pick(*a), pick(*b)])),
            PatStep::Div(a, b) if i > 0 => ENodeOrVar::ENode(Math::Div([pick(*a), pick(*b)])),
            _ => ENodeOrVar::Var(Var::new("v0")),
        };
        ast.add(node);
    }
    Pattern::new(ast)
}

/// Normalizes a match list into a canonical set representation: canonical
/// class id -> set of substitutions, each a sorted list of canonical
/// `(variable, class)` bindings. Two searches are equivalent iff their
/// normal forms are equal.
type NormalMatches = BTreeMap<Id, BTreeSet<Vec<(Var, Id)>>>;

fn normalize(eg: &EGraph<Math, ()>, matches: &[SearchMatches]) -> NormalMatches {
    let mut out: NormalMatches = BTreeMap::new();
    for m in matches {
        let substs = out.entry(eg.find(m.eclass)).or_default();
        for s in &m.substs {
            let mut bindings: Vec<(Var, Id)> = s.iter().map(|(v, id)| (v, eg.find(id))).collect();
            bindings.sort();
            substs.insert(bindings);
        }
    }
    out
}

proptest! {
    /// Differential test of the tentpole: the compiled, op-indexed
    /// e-matching machine and the legacy recursive matcher must return
    /// identical match sets (same classes, same substitution sets) on
    /// random e-graphs and random patterns — including non-linear patterns,
    /// which the small variable pool generates frequently.
    #[test]
    fn machine_search_equals_naive_search(
        steps in steps_strategy(40),
        pat_steps in pattern_strategy(12),
        unions in prop::collection::vec((any::<usize>(), any::<usize>()), 0..6)
    ) {
        let expr = build_expr(&steps);
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        eg.add_expr(&expr);
        eg.rebuild();
        let class_ids: Vec<Id> = eg.classes().map(|c| c.id).collect();
        for (a, b) in unions {
            let a = class_ids[a % class_ids.len()];
            let b = class_ids[b % class_ids.len()];
            eg.union(a, b);
        }
        eg.rebuild();
        let pattern = build_pattern(&pat_steps);
        let machine = pattern.search(&eg);
        let naive = pattern.search_naive(&eg);
        prop_assert_eq!(normalize(&eg, &machine), normalize(&eg, &naive));
    }

    /// Same differential property with a random subset of e-nodes filtered:
    /// both matchers must skip filtered nodes identically (the machine's
    /// ground-term `Lookup` instruction checks the filter set node by node).
    #[test]
    fn machine_search_equals_naive_search_with_filtered_nodes(
        steps in steps_strategy(40),
        pat_steps in pattern_strategy(12),
        filter_picks in prop::collection::vec(any::<usize>(), 0..8)
    ) {
        let expr = build_expr(&steps);
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        eg.add_expr(&expr);
        eg.rebuild();
        let all_nodes: Vec<Math> = eg
            .classes()
            .flat_map(|c| c.iter().cloned())
            .collect();
        for pick in filter_picks {
            let node = all_nodes[pick % all_nodes.len()].clone();
            eg.filter_node(&node);
        }
        let pattern = build_pattern(&pat_steps);
        let machine = pattern.search(&eg);
        let naive = pattern.search_naive(&eg);
        prop_assert_eq!(normalize(&eg, &machine), normalize(&eg, &naive));
    }

    /// Differential test of the parallel search driver against the
    /// sequential machine, mirroring the machine-vs-naive oracle above:
    /// on random e-graphs (with random unions and a random filter set) and
    /// random patterns — including non-linear ones — `search_parallel(n)`
    /// must return *bit-identical* match lists (same class order, same
    /// substitution order) for every thread count 1..=8, not merely
    /// set-equal ones.
    #[test]
    fn parallel_search_is_bit_identical_to_sequential(
        steps in steps_strategy(40),
        pat_steps in pattern_strategy(12),
        n_threads in 1usize..=8,
        unions in prop::collection::vec((any::<usize>(), any::<usize>()), 0..6),
        filter_picks in prop::collection::vec(any::<usize>(), 0..6)
    ) {
        let expr = build_expr(&steps);
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        eg.add_expr(&expr);
        eg.rebuild();
        let class_ids: Vec<Id> = eg.classes().map(|c| c.id).collect();
        for (a, b) in unions {
            let a = class_ids[a % class_ids.len()];
            let b = class_ids[b % class_ids.len()];
            eg.union(a, b);
        }
        eg.rebuild();
        let all_nodes: Vec<Math> = eg.classes().flat_map(|c| c.iter().cloned()).collect();
        for pick in filter_picks {
            let node = all_nodes[pick % all_nodes.len()].clone();
            eg.filter_node(&node);
        }
        let pattern = build_pattern(&pat_steps);
        let sequential = pattern.search(&eg);
        let parallel = pattern.search_parallel(&eg, n_threads);
        prop_assert_eq!(&sequential, &parallel);
        // And therefore also set-equal to the naive oracle.
        prop_assert_eq!(normalize(&eg, &parallel), normalize(&eg, &pattern.search_naive(&eg)));
    }

    /// The batch driver (one shared work queue across many patterns) must
    /// hand each pattern exactly the match list its standalone sequential
    /// search produces, in pattern order.
    #[test]
    fn batch_parallel_search_matches_per_pattern_search(
        steps in steps_strategy(40),
        pats in prop::collection::vec(pattern_strategy(10), 1..4),
        n_threads in 1usize..=8
    ) {
        let expr = build_expr(&steps);
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        eg.add_expr(&expr);
        eg.rebuild();
        let patterns: Vec<Pattern<Math>> = pats.iter().map(|p| build_pattern(p)).collect();
        let refs: Vec<&Pattern<Math>> = patterns.iter().collect();
        let batch = search_all_parallel(&refs, &eg, n_threads);
        prop_assert_eq!(batch.len(), patterns.len());
        for (pattern, got) in patterns.iter().zip(&batch) {
            prop_assert_eq!(&pattern.search(&eg), got);
        }
    }

    /// The spawn-threshold dispatch in the batch driver must be invisible:
    /// whatever path the candidate count selects, the result must be
    /// bit-identical to both the forced-parallel driver (threshold 0) and
    /// the forced-sequential fallback (threshold `usize::MAX`). The small
    /// random e-graphs here always fall below
    /// `PARALLEL_SEARCH_SPAWN_THRESHOLD`, so the default dispatch takes the
    /// sequential fallback while the threshold-0 run still exercises the
    /// real worker spawn/merge machinery — making this the differential
    /// test between the two.
    #[test]
    fn spawn_threshold_dispatch_is_bit_identical(
        steps in steps_strategy(40),
        pats in prop::collection::vec(pattern_strategy(10), 1..4),
        n_threads in 2usize..=8
    ) {
        let expr = build_expr(&steps);
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        eg.add_expr(&expr);
        eg.rebuild();
        let patterns: Vec<Pattern<Math>> = pats.iter().map(|p| build_pattern(p)).collect();
        let queries: Vec<_> = patterns
            .iter()
            .map(|p| (p.program(), &[] as &[Guard<()>]))
            .collect();
        let dispatched = search_all_guarded_since_parallel(&queries, &eg, 0, n_threads);
        let forced_parallel =
            search_all_guarded_since_parallel_with_threshold(&queries, &eg, 0, n_threads, 0);
        let forced_sequential = search_all_guarded_since_parallel_with_threshold(
            &queries,
            &eg,
            0,
            n_threads,
            usize::MAX,
        );
        prop_assert_eq!(&dispatched, &forced_parallel);
        prop_assert_eq!(&dispatched, &forced_sequential);
        for (pattern, got) in patterns.iter().zip(&dispatched) {
            prop_assert_eq!(&pattern.search(&eg), got);
        }
    }

    /// Honesty of watermark-restricted incremental search: after arbitrary
    /// unions, a full search returns exactly the union of (a) the matches
    /// already present before the mutation (mapped through the union-find)
    /// and (b) the matches found by `search_since` from the pre-mutation
    /// watermark. If touch propagation missed an ancestor class, (b) would
    /// lose a match and the equality would fail.
    #[test]
    fn incremental_search_is_honest(
        steps in steps_strategy(40),
        pat_steps in pattern_strategy(12),
        unions in prop::collection::vec((any::<usize>(), any::<usize>()), 1..6)
    ) {
        let expr = build_expr(&steps);
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        eg.add_expr(&expr);
        eg.rebuild();
        let pattern = build_pattern(&pat_steps);
        let before = pattern.search(&eg);
        let watermark = eg.watermark();

        let class_ids: Vec<Id> = eg.classes().map(|c| c.id).collect();
        for (a, b) in unions {
            let a = class_ids[a % class_ids.len()];
            let b = class_ids[b % class_ids.len()];
            eg.union(a, b);
        }
        eg.rebuild();

        let full = normalize(&eg, &pattern.search(&eg));
        let since = pattern.search_since(&eg, watermark);
        // union of `before` (re-canonicalized) and `since`:
        let mut combined = normalize(&eg, &before);
        for (class, substs) in normalize(&eg, &since) {
            combined.entry(class).or_default().extend(substs);
        }
        prop_assert_eq!(full, combined);
    }
}

// ---------------------------------------------------------------------------
// Staged-parallel apply + rebuild
// ---------------------------------------------------------------------------

/// Builds a rewrite whose applier only uses variables bound by the
/// searcher: applier variable draws are remapped into the searcher's
/// variable pool (or degrade to a literal leaf when the searcher binds
/// nothing), so `Rewrite::new`'s unbound-variable check always passes.
fn build_rewrite(search_steps: &[PatStep], apply_steps: &[PatStep]) -> Rewrite<Math, ()> {
    let searcher = build_pattern(search_steps);
    // Only variables *reachable from the pattern root* are bound by a
    // match: the linear generator can leave dead nodes in the AST, and
    // `Pattern::vars` reports those too, so walk from the root instead.
    let lhs_vars = {
        let nodes: Vec<&ENodeOrVar<Math>> = searcher.ast.iter().map(|(_, n)| n).collect();
        let mut live = vec![false; nodes.len()];
        let mut stack = vec![nodes.len() - 1];
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut live[i], true) {
                continue;
            }
            if let ENodeOrVar::ENode(n) = nodes[i] {
                n.for_each(|c| stack.push(usize::from(c)));
            }
        }
        let mut vars: Vec<Var> = vec![];
        for (i, node) in nodes.iter().enumerate() {
            if let ENodeOrVar::Var(v) = node {
                if live[i] && !vars.contains(v) {
                    vars.push(*v);
                }
            }
        }
        vars
    };
    let mut ast = RecExpr::default();
    for (i, step) in apply_steps.iter().enumerate() {
        let pick = |r: usize| Id::from(if i == 0 { 0 } else { r % i });
        let node = match step {
            PatStep::Var(v) if !lhs_vars.is_empty() => {
                ENodeOrVar::Var(lhs_vars[*v as usize % lhs_vars.len()])
            }
            PatStep::Var(_) => ENodeOrVar::ENode(Math::Num(0)),
            PatStep::Num(n) => ENodeOrVar::ENode(Math::Num(*n)),
            PatStep::Sym(s) => ENodeOrVar::ENode(Math::Sym(Symbol::new(format!("s{s}")))),
            PatStep::Add(a, b) if i > 0 => ENodeOrVar::ENode(Math::Add([pick(*a), pick(*b)])),
            PatStep::Mul(a, b) if i > 0 => ENodeOrVar::ENode(Math::Mul([pick(*a), pick(*b)])),
            PatStep::Div(a, b) if i > 0 => ENodeOrVar::ENode(Math::Div([pick(*a), pick(*b)])),
            _ => ENodeOrVar::ENode(Math::Num(0)),
        };
        ast.add(node);
    }
    Rewrite::new("r", searcher, Pattern::new(ast))
}

proptest! {
    /// The staged-apply acceptance property: running rounds of
    /// search-then-apply over random e-graphs (random seed expression,
    /// unions, and filtered nodes) with the staged-parallel path —
    /// [`stage_matches_parallel`] into [`EGraph::commit_log`] at 1–8
    /// threads — must be *bit-identical* to the sequential in-place
    /// [`Rewrite::apply_capped`] loop over the same matches: the two
    /// e-graphs end every round with equal id spaces and union-find
    /// partitions, equal class/node counts, equal memo contents, equal
    /// watermark stamps on every class, and equal machine match lists for
    /// every rule. Both sides pass the storage-invariant validator after
    /// every commit+rebuild.
    #[test]
    fn staged_parallel_apply_is_bit_identical_to_sequential(
        steps in steps_strategy(30),
        rules in prop::collection::vec((pattern_strategy(8), pattern_strategy(8)), 1..4),
        n_threads in 1usize..=8,
        unions in prop::collection::vec((any::<usize>(), any::<usize>()), 0..4),
        filter_picks in prop::collection::vec(any::<usize>(), 0..4),
        rounds in 1usize..=3,
        node_limit in 60usize..300,
    ) {
        let expr = build_expr(&steps);
        // Two identically seeded e-graphs: same adds, unions, and filters
        // in the same order.
        let build = || {
            let mut eg: EGraph<Math, ()> = EGraph::new(());
            eg.add_expr(&expr);
            eg.rebuild();
            let class_ids: Vec<Id> = eg.classes().map(|c| c.id).collect();
            for (a, b) in &unions {
                let a = class_ids[a % class_ids.len()];
                let b = class_ids[b % class_ids.len()];
                eg.union(a, b);
            }
            eg.rebuild();
            let all_nodes: Vec<Math> = eg.classes().flat_map(|c| c.iter().cloned()).collect();
            for pick in &filter_picks {
                let node = all_nodes[pick % all_nodes.len()].clone();
                eg.filter_node(&node);
            }
            eg
        };
        let mut seq = build();
        let mut par = build();
        let rewrites: Vec<Rewrite<Math, ()>> =
            rules.iter().map(|(s, a)| build_rewrite(s, a)).collect();

        for _round in 0..rounds {
            // Both sides search their own graph; the searches must agree
            // before the apply phase even runs (they do — the graphs are
            // bit-identical by induction).
            let matches: Vec<Vec<SearchMatches>> =
                rewrites.iter().map(|r| r.search(&seq)).collect();
            for (r, m) in rewrites.iter().zip(&matches) {
                prop_assert_eq!(&r.search(&par), m);
            }

            // Sequential baseline: in-place per-rule apply with the shared
            // node cap (the pre-staging apply loop).
            for (r, m) in rewrites.iter().zip(&matches) {
                let (_, hit) = r.apply_capped(&mut seq, m, node_limit);
                if hit {
                    break;
                }
            }
            seq.rebuild();
            seq.check_invariants();

            // Staged path: stage every candidate against the read-only
            // graph, then commit the merged log sequentially.
            let batch: Vec<(&Rewrite<Math, ()>, &[SearchMatches])> = rewrites
                .iter()
                .zip(matches.iter().map(Vec::as_slice))
                .collect();
            let log = stage_matches_parallel(&batch, &par, n_threads, None);
            par.commit_log(&log, node_limit);
            par.rebuild();
            par.check_invariants();

            // Bit-identity of the full e-graph state.
            prop_assert_eq!(seq.id_space_size(), par.id_space_size());
            for i in 0..seq.id_space_size() {
                prop_assert_eq!(seq.find(Id::from(i)), par.find(Id::from(i)),
                    "union-find diverged at id {}", i);
            }
            prop_assert_eq!(seq.number_of_classes(), par.number_of_classes());
            prop_assert_eq!(seq.total_number_of_nodes(), par.total_number_of_nodes());
            prop_assert_eq!(seq.num_unfiltered_nodes(), par.num_unfiltered_nodes());
            prop_assert_eq!(seq.filtered_count(), par.filtered_count());
            let mut memo_seq = seq.memo_snapshot();
            let mut memo_par = par.memo_snapshot();
            memo_seq.sort();
            memo_par.sort();
            prop_assert_eq!(memo_seq, memo_par);
            // Watermark stamps: same counter value and the same
            // last-touched stamp on every class.
            prop_assert_eq!(seq.watermark(), par.watermark());
            for class in seq.classes() {
                prop_assert_eq!(
                    seq.last_touched(class.id), par.last_touched(class.id),
                    "touch stamp diverged on class {:?}", class.id
                );
            }
            // Machine match lists stay bit-identical going into the next
            // round (same class order, same substitution order).
            for r in &rewrites {
                prop_assert_eq!(r.search(&seq), r.search(&par));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Analysis-guided (guarded) search
// ---------------------------------------------------------------------------

/// A constant-folding-flavoured analysis for the guard proptests: a class's
/// data is `Some(value)` when a constant value is known for it. Random
/// unions can merge classes with conflicting constants — `merge` then keeps
/// the existing value; guards only need the data to be *deterministic*, not
/// semantically meaningful.
#[derive(Clone, Copy, Default)]
struct ConstAnalysis;

impl Analysis<Math> for ConstAnalysis {
    type Data = Option<i64>;
    fn make(egraph: &EGraph<Math, Self>, enode: &Math) -> Option<i64> {
        let c = |id: &Id| egraph.eclass(*id).data;
        match enode {
            Math::Num(n) => Some(*n),
            Math::Sym(_) => None,
            Math::Add([a, b]) => c(a)?.checked_add(c(b)?),
            Math::Mul([a, b]) => c(a)?.checked_mul(c(b)?),
            Math::Div([a, b]) => c(a)?.checked_div(c(b)?),
            Math::Shl([_, _]) => None,
        }
    }
    fn merge(&mut self, to: &mut Option<i64>, from: Option<i64>) -> DidMerge {
        match (&to, from) {
            (None, Some(v)) => {
                *to = Some(v);
                DidMerge(true, false)
            }
            (Some(a), Some(b)) if *a != b => DidMerge(false, true),
            (Some(_), None) => DidMerge(false, true),
            _ => DidMerge(false, false),
        }
    }
    /// Tag 1 for known constants, 0 for unknown — so the "is a constant"
    /// guard below compiles to a pure tag mask and the proptests cover the
    /// dense tag-table fast path alongside dynamic predicates.
    fn kind_tag(data: &Option<i64>) -> u8 {
        data.is_some() as u8
    }
}

/// The pool of guards the proptests draw from (index 0 = no guard). All
/// are pure functions of the class data, as guards must be. Case 1 is a
/// pure *tag-mask* guard ("the class holds a known constant", tag 1 under
/// [`ConstAnalysis::kind_tag`]); the rest are dynamic predicates, and case
/// 4 mixes a mask with a predicate the way TENSAT's double-transpose guard
/// does.
fn guard_pool(choice: u8) -> Option<Guard<Option<i64>>> {
    match choice % 5 {
        0 => None,
        1 => Some(Guard::tags(1 << 1)),
        2 => Some(Guard::from_fn(
            |d: &Option<i64>| matches!(d, Some(v) if v % 2 == 0),
        )),
        3 => Some(Guard::from_fn(|d: &Option<i64>| !matches!(d, Some(0)))),
        _ => Some(Guard::tags(1 << 1).and(Guard::from_fn(|d: &Option<i64>| !matches!(d, Some(0))))),
    }
}

/// Post-filters an unguarded match list by the guards — the reference
/// semantics guarded search must reproduce *bit-identically*: a
/// substitution survives iff every guarded variable it binds maps to a
/// class whose analysis data passes [`Guard::check`]. The kind tag is
/// recomputed here from the data (not read from the e-graph's side table),
/// so a stale tag table would show up as a mismatch.
fn filter_by_guards(
    eg: &EGraph<Math, ConstAnalysis>,
    matches: &[SearchMatches],
    guards: &[(Var, Guard<Option<i64>>)],
) -> Vec<SearchMatches> {
    matches
        .iter()
        .filter_map(|m| {
            let substs: Vec<Subst> = m
                .substs
                .iter()
                .filter(|s| {
                    guards.iter().all(|(v, g)| match s.get(*v) {
                        Some(id) => {
                            let data = &eg.eclass(id).data;
                            g.check(ConstAnalysis::kind_tag(data), data)
                        }
                        None => true,
                    })
                })
                .cloned()
                .collect();
            (!substs.is_empty()).then_some(SearchMatches {
                eclass: m.eclass,
                substs,
            })
        })
        .collect()
}

proptest! {
    /// The tentpole equivalence: on random e-graphs (random unions, random
    /// analysis data) and random patterns, guarded search returns exactly
    /// the unguarded match list post-filtered by the same predicates — same
    /// class order, same substitution order — and the parallel guarded
    /// driver is bit-identical to the sequential one for 1–8 threads.
    #[test]
    fn guarded_search_equals_filtered_search_and_parallel_is_bit_identical(
        steps in steps_strategy(40),
        pat_steps in pattern_strategy(12),
        guard_choices in prop::collection::vec(0u8..5, 3),
        n_threads in 1usize..=8,
        unions in prop::collection::vec((any::<usize>(), any::<usize>()), 0..6)
    ) {
        let expr = build_expr(&steps);
        let mut eg: EGraph<Math, ConstAnalysis> = EGraph::new(ConstAnalysis);
        eg.add_expr(&expr);
        eg.rebuild();
        let class_ids: Vec<Id> = eg.classes().map(|c| c.id).collect();
        for (a, b) in unions {
            let a = class_ids[a % class_ids.len()];
            let b = class_ids[b % class_ids.len()];
            eg.union(a, b);
        }
        eg.rebuild();

        let pattern = build_pattern(&pat_steps);
        // Draw a guard (or none) for each of the three possible variables.
        let guards: Vec<(Var, Guard<Option<i64>>)> = guard_choices
            .iter()
            .enumerate()
            .filter_map(|(i, &choice)| {
                guard_pool(choice).map(|g| (Var::new(format!("v{i}")), g))
            })
            .collect();
        let guarded = GuardedProgram::compile(&pattern.ast, &guards);

        let unguarded = pattern.search(&eg);
        let expected = filter_by_guards(&eg, &unguarded, &guards);
        let got = guarded.search(&eg);
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(guarded.search_parallel(&eg, n_threads), got);
    }
}

proptest! {
    /// Adding the same expression twice always yields the same root class,
    /// and the node count does not grow the second time (hash-consing).
    #[test]
    fn adding_twice_is_idempotent(steps in steps_strategy(40)) {
        let expr = build_expr(&steps);
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let r1 = eg.add_expr(&expr);
        let nodes_after_first = eg.total_number_of_nodes();
        let r2 = eg.add_expr(&expr);
        prop_assert_eq!(eg.find(r1), eg.find(r2));
        prop_assert_eq!(eg.total_number_of_nodes(), nodes_after_first);
    }

    /// The number of e-nodes never exceeds the number of added nodes, and
    /// extraction returns a term no larger than the input (AstSize is
    /// monotone under equality saturation with no rules: it is the input).
    #[test]
    fn extraction_roundtrips_without_rules(steps in steps_strategy(40)) {
        let expr = build_expr(&steps);
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let root = eg.add_expr(&expr);
        eg.rebuild();
        prop_assert!(eg.total_number_of_nodes() <= expr.len());
        let ex = Extractor::new(&eg, AstSize);
        let (cost, best) = ex.find_best(root).unwrap();
        prop_assert!(cost >= 1);
        // Extracted term must itself be representable and re-add to the
        // same class.
        let again = eg.add_expr(&best);
        prop_assert_eq!(eg.find(again), eg.find(root));
    }

    /// Random unions never break the congruence invariant: after rebuild,
    /// congruent nodes (same op, equivalent children) are in the same class.
    #[test]
    fn rebuild_restores_congruence(
        steps in steps_strategy(30),
        unions in prop::collection::vec((any::<usize>(), any::<usize>()), 1..10)
    ) {
        let expr = build_expr(&steps);
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        eg.add_expr(&expr);
        eg.rebuild();
        let class_ids: Vec<Id> = eg.classes().map(|c| c.id).collect();
        for (a, b) in unions {
            let a = class_ids[a % class_ids.len()];
            let b = class_ids[b % class_ids.len()];
            eg.union(a, b);
        }
        eg.rebuild();
        prop_assert!(eg.is_clean());
        // Check congruence: collect all (canonical node -> class) pairs; a
        // canonical node must never appear in two different classes.
        let mut seen: std::collections::HashMap<Math, Id> = Default::default();
        for class in eg.classes() {
            for node in class.iter() {
                let canon = eg.canonicalize(node);
                if let Some(prev) = seen.insert(canon, eg.find(class.id)) {
                    prop_assert_eq!(prev, eg.find(class.id),
                        "congruent node appears in two distinct classes");
                }
            }
        }
    }

    /// Union is order-insensitive: performing the same set of unions in any
    /// order yields the same partition of classes.
    #[test]
    fn union_order_does_not_matter(
        steps in steps_strategy(25),
        mut unions in prop::collection::vec((any::<usize>(), any::<usize>()), 1..8)
    ) {
        let expr = build_expr(&steps);
        let build = |pairs: &[(usize, usize)]| {
            let mut eg: EGraph<Math, ()> = EGraph::new(());
            let root = eg.add_expr(&expr);
            eg.rebuild();
            let ids: Vec<Id> = eg.classes().map(|c| c.id).collect();
            for &(a, b) in pairs {
                let a = ids[a % ids.len()];
                let b = ids[b % ids.len()];
                eg.union(a, b);
            }
            eg.rebuild();
            (eg, root)
        };
        let (eg1, root1) = build(&unions);
        unions.reverse();
        let (eg2, root2) = build(&unions);
        prop_assert_eq!(eg1.number_of_classes(), eg2.number_of_classes());
        prop_assert_eq!(eg1.total_number_of_nodes(), eg2.total_number_of_nodes());
        // The root must extract to the same minimal cost in both.
        let c1 = Extractor::new(&eg1, AstSize).best_cost(root1);
        let c2 = Extractor::new(&eg2, AstSize).best_cost(root2);
        prop_assert_eq!(c1, c2);
    }
}

// ---------------------------------------------------------------------------
// Dense slot-indexed storage: rebuild-schedule independence
// ---------------------------------------------------------------------------

/// One step of a refactor-era operation sequence over an e-graph: add the
/// next node of a pre-generated expression, union two previously added
/// nodes' classes, rebuild, filter a previously added node, or clear the
/// filter set. Operations are expressed against *expression node indices*
/// (not raw ids), so the identical semantic sequence can be replayed
/// against e-graphs with different rebuild schedules — whose internal ids
/// and slots legitimately diverge.
#[derive(Debug, Clone)]
enum SeqOp {
    Add,
    Union(usize, usize),
    Rebuild,
    Filter(usize),
    ClearFiltered,
}

fn seq_strategy(max_len: usize) -> impl Strategy<Value = Vec<SeqOp>> {
    // The vendored proptest stub has no weighted `prop_oneof!`; bias
    // towards adds by listing the variant several times.
    prop::collection::vec(
        prop_oneof![
            Just(SeqOp::Add),
            Just(SeqOp::Add),
            Just(SeqOp::Add),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| SeqOp::Union(a, b)),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| SeqOp::Union(a, b)),
            Just(SeqOp::Rebuild),
            any::<usize>().prop_map(SeqOp::Filter),
            Just(SeqOp::ClearFiltered),
        ],
        1..max_len,
    )
}

/// Replays `ops` against a fresh e-graph. `rebuild_every_op` is the
/// per-operation-rebuild baseline schedule; `false` rebuilds only at
/// explicit `Rebuild` ops (and both schedules end with a final rebuild).
/// Returns the e-graph and the expr-index → id map.
fn replay(
    expr: &RecExpr<Math>,
    ops: &[SeqOp],
    rebuild_every_op: bool,
) -> (EGraph<Math, ()>, Vec<Id>) {
    let mut eg: EGraph<Math, ()> = EGraph::new(());
    let mut ids: Vec<Id> = vec![];
    let nodes: Vec<(Id, &Math)> = expr.iter().collect();
    // Always seed at least one node so Union/Filter have a target.
    let mut next_add = 0usize;
    let mut add_one = |eg: &mut EGraph<Math, ()>, ids: &mut Vec<Id>| {
        if next_add < nodes.len() {
            let node = nodes[next_add].1.map_children(|c| ids[usize::from(c)]);
            ids.push(eg.add(node));
            next_add += 1;
        }
    };
    add_one(&mut eg, &mut ids);
    for op in ops {
        match op {
            SeqOp::Add => add_one(&mut eg, &mut ids),
            SeqOp::Union(a, b) => {
                let a = ids[a % ids.len()];
                let b = ids[b % ids.len()];
                eg.union(a, b);
            }
            SeqOp::Rebuild => {
                eg.rebuild();
            }
            SeqOp::Filter(k) => {
                // Filter the semantic node at expr index k (reconstructed
                // from the expression, so both schedules filter the same
                // term; `filter_node` canonicalizes internally).
                let k = *k % ids.len();
                let node = nodes[k].1.map_children(|c| ids[usize::from(c)]);
                eg.filter_node(&node);
            }
            SeqOp::ClearFiltered => eg.clear_filtered(),
        }
        if rebuild_every_op {
            eg.rebuild();
        }
    }
    eg.rebuild();
    (eg, ids)
}

/// The schedule-independent name of a class: the sorted set of expression
/// node indices whose classes merged into it. Two e-graphs built from the
/// same semantic sequence are compared through these keys, because raw ids
/// (and union-find roots) legitimately differ between rebuild schedules.
fn class_key(eg: &EGraph<Math, ()>, ids: &[Id], id: Id) -> Vec<usize> {
    let root = eg.find(id);
    (0..ids.len())
        .filter(|&i| eg.find(ids[i]) == root)
        .collect()
}

/// Normalizes a match list into schedule-independent form: class key →
/// set of substitutions over class keys.
type IndexedMatches = BTreeMap<Vec<usize>, BTreeSet<Vec<(Var, Vec<usize>)>>>;

fn normalize_by_index(
    eg: &EGraph<Math, ()>,
    ids: &[Id],
    matches: &[SearchMatches],
) -> IndexedMatches {
    let mut out: IndexedMatches = BTreeMap::new();
    for m in matches {
        let substs = out.entry(class_key(eg, ids, m.eclass)).or_default();
        for s in &m.substs {
            let mut bindings: Vec<(Var, Vec<usize>)> = s
                .iter()
                .map(|(v, id)| (v, class_key(eg, ids, id)))
                .collect();
            bindings.sort();
            substs.insert(bindings);
        }
    }
    out
}

proptest! {
    /// The dense-storage acceptance property: an e-graph driven through a
    /// random refactor-era operation sequence (add / union / rebuild /
    /// filter / clear-filter) with the *incremental* rebuild schedule must
    /// be indistinguishable from the per-op-rebuild sequential baseline —
    /// same class partition, same class count, same node count, same match
    /// sets (machine *and* naive oracle), same greedy extraction costs —
    /// and both must pass the full storage-invariant validator.
    #[test]
    fn rebuild_schedule_does_not_change_the_egraph(
        steps in steps_strategy(30),
        ops in seq_strategy(40),
        pat_steps in pattern_strategy(10),
    ) {
        let expr = build_expr(&steps);
        let (a, ids_a) = replay(&expr, &ops, false);
        let (b, ids_b) = replay(&expr, &ops, true);
        a.check_invariants();
        b.check_invariants();
        prop_assert_eq!(ids_a.len(), ids_b.len());
        let n = ids_a.len();

        // Identical class partitions over the added nodes...
        for i in 0..n {
            for j in (i + 1)..n {
                prop_assert_eq!(
                    a.find(ids_a[i]) == a.find(ids_a[j]),
                    b.find(ids_b[i]) == b.find(ids_b[j]),
                    "partition diverged at indices {} / {}", i, j
                );
            }
        }
        // ...and identical aggregate shape.
        prop_assert_eq!(a.number_of_classes(), b.number_of_classes());
        prop_assert_eq!(a.classes().count(), b.classes().count());
        prop_assert_eq!(a.total_number_of_nodes(), b.total_number_of_nodes());
        prop_assert_eq!(a.filtered_count(), b.filtered_count());
        prop_assert_eq!(a.num_unfiltered_nodes(), b.num_unfiltered_nodes());

        // Identical match sets, by the machine and by the naive oracle.
        let pattern = build_pattern(&pat_steps);
        prop_assert_eq!(
            normalize_by_index(&a, &ids_a, &pattern.search(&a)),
            normalize_by_index(&b, &ids_b, &pattern.search(&b))
        );
        prop_assert_eq!(
            normalize_by_index(&a, &ids_a, &pattern.search_naive(&a)),
            normalize_by_index(&b, &ids_b, &pattern.search_naive(&b))
        );

        // Identical greedy extraction costs for every added node's class.
        let ex_a = Extractor::new(&a, AstSize);
        let ex_b = Extractor::new(&b, AstSize);
        for i in 0..n {
            prop_assert_eq!(
                ex_a.best_cost(ids_a[i]),
                ex_b.best_cost(ids_b[i]),
                "extraction cost diverged at index {}", i
            );
        }
    }

    /// Watermark honesty holds through full refactor-era sequences too:
    /// a watermark taken mid-sequence (on a clean e-graph) plus the
    /// matches already present at that point reconstructs the final full
    /// search exactly, even across interleaved rebuilds, filters, and
    /// filter clears.
    #[test]
    fn incremental_search_is_honest_across_op_sequences(
        steps in steps_strategy(30),
        ops in seq_strategy(30),
        pat_steps in pattern_strategy(10),
        cut in any::<usize>(),
    ) {
        let expr = build_expr(&steps);
        let cut = cut % (ops.len() + 1);
        // Replay the prefix, snapshot, then replay the suffix against the
        // same e-graph.
        let (mut eg, mut ids) = replay(&expr, &ops[..cut], false);
        let pattern = build_pattern(&pat_steps);
        let before = pattern.search(&eg);
        let watermark = eg.watermark();

        // Continue with the suffix against the same e-graph.
        let nodes: Vec<(Id, &Math)> = expr.iter().collect();
        for op in &ops[cut..] {
            match op {
                SeqOp::Add => {
                    if ids.len() < nodes.len() {
                        let node = nodes[ids.len()].1.map_children(|c| ids[usize::from(c)]);
                        let id = eg.add(node);
                        ids.push(id);
                    }
                }
                SeqOp::Union(a, b) => {
                    let a = ids[a % ids.len()];
                    let b = ids[b % ids.len()];
                    eg.union(a, b);
                }
                SeqOp::Rebuild => {
                    eg.rebuild();
                }
                SeqOp::Filter(k) => {
                    let k = *k % ids.len();
                    let node = nodes[k].1.map_children(|c| ids[usize::from(c)]);
                    eg.filter_node(&node);
                }
                SeqOp::ClearFiltered => eg.clear_filtered(),
            }
        }
        eg.rebuild();
        eg.check_invariants();

        // Filtering can *remove* matches, which incremental search models
        // as "the class is touched, re-search it": the final full search
        // must equal the union of still-valid old matches and the
        // re-searched touched classes. Old matches rooted in touched
        // classes are superseded by the re-search, so drop them from the
        // `before` side first (exactly what Runner's incremental loop does
        // implicitly by only acting on new search results).
        let full = normalize(&eg, &pattern.search(&eg));
        let since = pattern.search_since(&eg, watermark);
        let mut combined: NormalMatches = BTreeMap::new();
        for m in &before {
            let class = eg.find(m.eclass);
            if eg.last_touched(class) >= watermark {
                continue; // superseded: search_since revisits this class
            }
            let substs = combined.entry(class).or_default();
            for s in &m.substs {
                let mut bindings: Vec<(Var, Id)> =
                    s.iter().map(|(v, id)| (v, eg.find(id))).collect();
                bindings.sort();
                substs.insert(bindings);
            }
        }
        for (class, substs) in normalize(&eg, &since) {
            combined.entry(class).or_default().extend(substs);
        }
        prop_assert_eq!(full, combined);
    }
}
