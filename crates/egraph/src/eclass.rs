//! [`EClass`]: an equivalence class of e-nodes plus its analysis data.

use crate::{Id, Language};

/// An equivalence class of e-nodes.
///
/// Every e-node in the class represents the same value (with respect to the
/// rewrites applied so far). The class also carries the analysis data `D`
/// and a parent list used for congruence repair during
/// [`EGraph::rebuild`](crate::EGraph::rebuild).
#[derive(Debug, Clone)]
pub struct EClass<L, D> {
    /// The canonical id of this class at the time of the last rebuild.
    pub id: Id,
    /// The e-nodes in this class. After a rebuild these are canonical and
    /// deduplicated.
    pub nodes: Vec<L>,
    /// Birth stamps parallel to `nodes`: the global insertion counter value
    /// at which each e-node was first added to the e-graph. Used by
    /// TENSAT's cycle-resolution step ("filter the last-added node").
    pub node_birth: Vec<u64>,
    /// The analysis data for this class.
    pub data: D,
    /// Parent e-nodes (and the class they live in) that reference this
    /// class as a child. Entries may be stale — non-canonical node forms,
    /// absorbed target ids, duplicates — even on a clean e-graph: rebuild
    /// repair only canonicalizes the parent lists of classes touched by a
    /// union, and every internal consumer canonicalizes on use.
    pub(crate) parents: Vec<(L, Id)>,
}

impl<L: Language, D> EClass<L, D> {
    /// Number of e-nodes in the class.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the class has no e-nodes (never the case for a live class).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over the e-nodes in this class.
    pub fn iter(&self) -> impl Iterator<Item = &L> {
        self.nodes.iter()
    }

    /// Iterates over `(e-node, birth stamp)` pairs.
    pub fn iter_with_birth(&self) -> impl Iterator<Item = (&L, u64)> {
        self.nodes.iter().zip(self.node_birth.iter().copied())
    }

    /// True if the class contains only leaf e-nodes.
    pub fn is_leaf_class(&self) -> bool {
        self.nodes.iter().all(|n| n.is_leaf())
    }

    /// The parents recorded for congruence repair. Exposed for diagnostics
    /// only: entries may hold non-canonical node forms, absorbed class
    /// ids, or duplicates — even on a clean e-graph (rebuild repair only
    /// canonicalizes the parent lists of classes touched by a union) —
    /// so canonicalize both components before comparing them against memo
    /// keys or class node lists.
    pub fn parents(&self) -> impl Iterator<Item = (&L, Id)> {
        self.parents.iter().map(|(n, id)| (n, *id))
    }
}
