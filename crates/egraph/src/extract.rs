//! Extraction: choosing one e-node per e-class to produce the best concrete
//! term represented by an e-graph.
//!
//! This module provides the *greedy* extractor (per-class minimum subtree
//! cost, paper §5.1). The ILP extractor, which accounts for sharing and
//! acyclicity, lives in `tensat-core` because it depends on the ILP solver
//! substrate.

use crate::{Analysis, EGraph, Id, Language, RecExpr};
use std::collections::HashMap;

/// A cost function over e-nodes.
///
/// `cost` receives the e-node and a callback giving the already-computed
/// cost of each child *e-class*; it returns the total cost of the subtree
/// rooted at this node.
pub trait CostFunction<L: Language> {
    /// The cost type; must be totally ordered for extraction to pick minima.
    type Cost: PartialOrd + Clone + std::fmt::Debug;

    /// Computes the cost of `enode` given a function yielding the best known
    /// cost of each child class.
    fn cost<C>(&mut self, enode: &L, costs: C) -> Self::Cost
    where
        C: FnMut(Id) -> Self::Cost;
}

/// Counts AST nodes: the classic "smallest term" cost function.
#[derive(Debug, Clone, Copy, Default)]
pub struct AstSize;

impl<L: Language> CostFunction<L> for AstSize {
    type Cost = usize;
    fn cost<C>(&mut self, enode: &L, mut costs: C) -> usize
    where
        C: FnMut(Id) -> usize,
    {
        enode
            .children()
            .iter()
            .fold(1usize, |acc, &c| acc.saturating_add(costs(c)))
    }
}

/// AST depth cost function (useful in tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct AstDepth;

impl<L: Language> CostFunction<L> for AstDepth {
    type Cost = usize;
    fn cost<C>(&mut self, enode: &L, mut costs: C) -> usize
    where
        C: FnMut(Id) -> usize,
    {
        1 + enode
            .children()
            .iter()
            .map(|&c| costs(c))
            .max()
            .unwrap_or(0)
    }
}

/// Greedy bottom-up extractor.
///
/// For every e-class it computes the e-node with the smallest subtree cost
/// (a fixpoint over the e-graph, since classes may be mutually recursive).
/// Filtered e-nodes are ignored. Greedy extraction treats children
/// independently, so it over-counts shared subgraphs — exactly the weakness
/// the paper's ILP extraction addresses (paper §5.1, Table 4).
///
/// # Examples
///
/// ```
/// use tensat_egraph::{EGraph, Extractor, AstSize, Symbol};
/// use tensat_egraph::doctest_lang::SimpleMath as Math;
/// let mut eg: EGraph<Math, ()> = EGraph::new(());
/// let a = eg.add(Math::Sym(Symbol::new("a")));
/// let two = eg.add(Math::Num(2));
/// let mul = eg.add(Math::Mul([a, two]));
/// eg.union(mul, a); // pretend we proved (* a 2) == a
/// eg.rebuild();
/// let extractor = Extractor::new(&eg, AstSize);
/// let (cost, expr) = extractor.find_best(mul).unwrap();
/// assert_eq!(cost, 1);
/// assert_eq!(expr.to_string(), "a");
/// ```
pub struct Extractor<'a, L: Language, N: Analysis<L>, CF: CostFunction<L>> {
    egraph: &'a EGraph<L, N>,
    cost_fn: std::cell::RefCell<CF>,
    /// Best (cost, node) per class, indexed by the e-graph's dense slot
    /// space ([`EGraph::slot_index`]) — no hashing on the extraction path.
    best: Vec<Option<(CF::Cost, L)>>,
}

impl<L: Language, N: Analysis<L>, CF: CostFunction<L>> std::fmt::Debug for Extractor<'_, L, N, CF> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Extractor")
            .field(
                "classes_with_cost",
                &self.best.iter().filter(|b| b.is_some()).count(),
            )
            .finish()
    }
}

impl<'a, L: Language, N: Analysis<L>, CF: CostFunction<L>> Extractor<'a, L, N, CF> {
    /// Computes best costs for every e-class of the e-graph.
    pub fn new(egraph: &'a EGraph<L, N>, cost_fn: CF) -> Self {
        let mut extractor = Extractor {
            egraph,
            cost_fn: std::cell::RefCell::new(cost_fn),
            best: (0..egraph.num_slots()).map(|_| None).collect(),
        };
        extractor.compute_costs();
        extractor
    }

    fn compute_costs(&mut self) {
        // Fixpoint: keep sweeping until no class's best cost improves.
        let mut changed = true;
        while changed {
            changed = false;
            for class in self.egraph.classes() {
                let slot = self
                    .egraph
                    .slot_index(class.id)
                    .expect("iterated class is live");
                for node in class.iter() {
                    if self.egraph.is_filtered(node) {
                        continue;
                    }
                    if let Some(cost) = self.node_cost(node) {
                        match &self.best[slot] {
                            Some((best, _)) if *best <= cost => {}
                            _ => {
                                self.best[slot] = Some((cost, node.clone()));
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
    }

    /// The best entry recorded for a class's slot, if any.
    fn best_entry(&self, id: Id) -> Option<&(CF::Cost, L)> {
        self.best[self.egraph.slot_index(id)?].as_ref()
    }

    /// Cost of an e-node if all its children already have best costs.
    fn node_cost(&self, node: &L) -> Option<CF::Cost> {
        let all_known = node.all(|c| self.best_entry(c).is_some());
        if !all_known {
            return None;
        }
        let mut cf = self.cost_fn.borrow_mut();
        Some(cf.cost(node, |c| {
            self.best_entry(c).expect("checked above").0.clone()
        }))
    }

    /// The best cost of a class, if any finite term is represented.
    pub fn best_cost(&self, id: Id) -> Option<CF::Cost> {
        self.best_entry(id).map(|(c, _)| c.clone())
    }

    /// The chosen e-node for a class.
    pub fn best_node(&self, id: Id) -> Option<&L> {
        self.best_entry(id).map(|(_, n)| n)
    }

    /// Extracts the best term rooted at `root`, returning its cost and the
    /// term itself. Returns `None` if the class represents no finite term
    /// (possible when every candidate node was filtered or participates in
    /// an unavoidable cycle).
    pub fn find_best(&self, root: Id) -> Option<(CF::Cost, RecExpr<L>)> {
        let root = self.egraph.find(root);
        let cost = self.best_cost(root)?;
        let mut expr = RecExpr::default();
        let mut cache: HashMap<Id, Id> = HashMap::new();
        let id = self.build_expr(root, &mut expr, &mut cache)?;
        debug_assert_eq!(usize::from(id), expr.len() - 1);
        Some((cost, expr))
    }

    fn build_expr(
        &self,
        root: Id,
        expr: &mut RecExpr<L>,
        cache: &mut HashMap<Id, Id>,
    ) -> Option<Id> {
        // One explicit frame per partially-built class instead of recursing
        // per term-depth level: extracted terms can be deeper than a thread
        // stack (a ~100k-deep chain overflows the 2 MiB test-thread stack).
        struct Frame<L> {
            class: Id,
            node: L,
            next_child: usize,
            children: Vec<Id>,
        }
        let frame = |class: Id, node: L| Frame {
            class,
            node,
            next_child: 0,
            children: vec![],
        };

        let root = self.egraph.find(root);
        if let Some(&done) = cache.get(&root) {
            return Some(done);
        }
        let mut stack = vec![frame(root, self.best_node(root)?.clone())];
        loop {
            let top = stack.last_mut().expect("loop returns before emptying");
            if let Some(&child) = top.node.children().get(top.next_child) {
                top.next_child += 1;
                let child = self.egraph.find(child);
                if let Some(&done) = cache.get(&child) {
                    top.children.push(done);
                } else {
                    let node = self.best_node(child)?.clone();
                    stack.push(frame(child, node));
                }
                continue;
            }
            // All children resolved: emit this node and hand the expression
            // id to the parent frame (or return it for the root).
            let done = stack.pop().expect("a frame is always on the stack");
            let mut i = 0;
            let node = done.node.map_children(|_| {
                let id = done.children[i];
                i += 1;
                id
            });
            let id = expr.add(node);
            cache.insert(done.class, id);
            match stack.last_mut() {
                Some(parent) => parent.children.push(id),
                None => return Some(id),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::test_lang::Math;
    use crate::Symbol;

    fn sym(s: &str) -> Math {
        Math::Sym(Symbol::new(s))
    }

    #[test]
    fn astsize_prefers_smaller_term() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let mul = eg.add(Math::Mul([a, two]));
        let div = eg.add(Math::Div([mul, two]));
        // Teach the e-graph that (/ (* a 2) 2) == a.
        eg.union(div, a);
        eg.rebuild();
        let ex = Extractor::new(&eg, AstSize);
        let (cost, best) = ex.find_best(div).unwrap();
        assert_eq!(cost, 1);
        assert_eq!(best.to_string(), "a");
    }

    #[test]
    fn extraction_handles_cycles_in_egraph() {
        // A cyclic e-class (a == f(a)) still extracts the finite term `a`.
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let one = eg.add(Math::Num(1));
        let fa = eg.add(Math::Mul([a, one]));
        eg.union(a, fa);
        eg.rebuild();
        let ex = Extractor::new(&eg, AstSize);
        let (cost, best) = ex.find_best(a).unwrap();
        assert_eq!(cost, 1);
        assert_eq!(best.to_string(), "a");
    }

    #[test]
    fn extraction_skips_filtered_nodes() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let mul = eg.add(Math::Mul([a, two]));
        let one = eg.add(Math::Num(1));
        let shl = eg.add(Math::Shl([a, one]));
        eg.union(mul, shl);
        eg.rebuild();
        // Filter the shl node; extraction must fall back to the mul node.
        let one = eg.lookup(&Math::Num(1)).unwrap();
        eg.filter_node(&Math::Shl([a, one]));
        let ex = Extractor::new(&eg, AstSize);
        let (_, best) = ex.find_best(mul).unwrap();
        assert_eq!(best.to_string(), "(* a 2)");
    }

    #[test]
    fn find_best_none_when_everything_filtered() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        eg.rebuild();
        eg.filter_node(&sym("a"));
        let ex = Extractor::new(&eg, AstSize);
        assert!(ex.find_best(a).is_none());
    }

    #[test]
    fn astdepth_differs_from_astsize() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let b = eg.add(sym("b"));
        let ab = eg.add(Math::Add([a, b]));
        let abab = eg.add(Math::Add([ab, ab]));
        eg.rebuild();
        let size = Extractor::new(&eg, AstSize).best_cost(abab).unwrap();
        let depth = Extractor::new(&eg, AstDepth).best_cost(abab).unwrap();
        assert_eq!(depth, 3);
        assert_eq!(size, 7); // tree size double counts the shared (+ a b)
    }

    /// Regression test: `build_expr` recursed once per term-depth level —
    /// the last deep recursion left after the cycle finder and the ILP
    /// branch-and-bound were converted to explicit stacks — and overflowed
    /// the 2 MiB test-thread stack on chains ~100k nodes deep. The explicit
    /// stack handles arbitrary depth.
    #[test]
    fn extraction_survives_very_deep_chains() {
        const DEPTH: usize = 100_000;
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let one = eg.add(Math::Num(1));
        let mut id = eg.add(sym("a"));
        for _ in 0..DEPTH {
            id = eg.add(Math::Mul([id, one]));
        }
        eg.rebuild();
        let ex = Extractor::new(&eg, AstSize);
        let (cost, expr) = ex.find_best(id).unwrap();
        // Tree size of the chain: leaf (1) plus 2 per Mul level.
        assert_eq!(cost, 2 * DEPTH + 1);
        // DAG size: the two leaves plus one Mul node per level.
        assert_eq!(expr.len(), DEPTH + 2);
        // The rebuilt term must re-add into the original class.
        let mut check = eg.clone();
        let again = check.add_expr(&expr);
        assert_eq!(check.find(again), check.find(id));
    }

    #[test]
    fn shared_subterms_extract_as_dag() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let b = eg.add(sym("b"));
        let ab = eg.add(Math::Add([a, b]));
        let abab = eg.add(Math::Mul([ab, ab]));
        eg.rebuild();
        let ex = Extractor::new(&eg, AstSize);
        let (_, expr) = ex.find_best(abab).unwrap();
        // The extracted RecExpr shares the (+ a b) node.
        assert_eq!(expr.len(), 4);
        assert_eq!(expr.to_string(), "(* (+ a b) (+ a b))");
    }
}
