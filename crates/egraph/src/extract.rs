//! Extraction: choosing one e-node per e-class to produce the best concrete
//! term represented by an e-graph.
//!
//! This module provides two extractors:
//!
//! * [`Extractor`] — the *tree-greedy* extractor (per-class minimum subtree
//!   cost, paper §5.1). Fast, but it treats children independently, so
//!   shared subgraphs are charged once per use.
//! * [`DagExtractor`] — the *global greedy DAG* extractor: a worklist-driven
//!   fixpoint that charges every e-node **once** regardless of how many
//!   selected parents share it, tracking per-class reachability sets over
//!   the e-graph's dense slot space.
//!
//! The ILP extractor, which is DAG-exact, lives in `tensat-core` because it
//! depends on the ILP solver substrate; `tensat-core` also wraps all three
//! behind its `ExtractionStrategy` seam.

use crate::{Analysis, BitSet, EGraph, Id, Language, RecExpr};
use std::cmp::Ordering;
use std::collections::HashMap;

/// A cost function over e-nodes.
///
/// `cost` receives the e-node and a callback giving the already-computed
/// cost of each child *e-class*; it returns the total cost of the subtree
/// rooted at this node.
pub trait CostFunction<L: Language> {
    /// The cost type; must be totally ordered (see [`CostFunction::cmp`])
    /// for extraction to pick minima.
    type Cost: PartialOrd + Clone + std::fmt::Debug;

    /// Computes the cost of `enode` given a function yielding the best known
    /// cost of each child class.
    fn cost<C>(&mut self, enode: &L, costs: C) -> Self::Cost
    where
        C: FnMut(Id) -> Self::Cost;

    /// Total-order comparison used to pick per-class minima.
    ///
    /// The default falls back to `partial_cmp`. `PartialOrd` alone is a
    /// hazard for float costs: a NaN from a degenerate cost model makes
    /// every comparison false, which under the old `best <= cost` guard
    /// silently *replaced* a finite best with NaN and poisoned every
    /// ancestor class. Incomparable pairs now debug-assert and are treated
    /// as [`Ordering::Greater`] (an incomparable candidate never wins), and
    /// float-costed implementations should override this with
    /// [`f64::total_cmp`], under which NaN orders above `+inf` and loses to
    /// every finite cost.
    fn cmp(a: &Self::Cost, b: &Self::Cost) -> Ordering {
        match a.partial_cmp(b) {
            Some(o) => o,
            None => {
                debug_assert!(
                    false,
                    "incomparable extraction costs (NaN?): {a:?} vs {b:?}"
                );
                Ordering::Greater
            }
        }
    }
}

/// Counts AST nodes: the classic "smallest term" cost function.
#[derive(Debug, Clone, Copy, Default)]
pub struct AstSize;

impl<L: Language> CostFunction<L> for AstSize {
    type Cost = usize;
    fn cost<C>(&mut self, enode: &L, mut costs: C) -> usize
    where
        C: FnMut(Id) -> usize,
    {
        enode
            .children()
            .iter()
            .fold(1usize, |acc, &c| acc.saturating_add(costs(c)))
    }
}

/// AST depth cost function (useful in tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct AstDepth;

impl<L: Language> CostFunction<L> for AstDepth {
    type Cost = usize;
    fn cost<C>(&mut self, enode: &L, mut costs: C) -> usize
    where
        C: FnMut(Id) -> usize,
    {
        1 + enode
            .children()
            .iter()
            .map(|&c| costs(c))
            .max()
            .unwrap_or(0)
    }
}

/// Greedy bottom-up extractor.
///
/// For every e-class it computes the e-node with the smallest subtree cost
/// (a fixpoint over the e-graph, since classes may be mutually recursive).
/// Filtered e-nodes are ignored. Greedy extraction treats children
/// independently, so it over-counts shared subgraphs — exactly the weakness
/// the paper's ILP extraction addresses (paper §5.1, Table 4).
///
/// # Examples
///
/// ```
/// use tensat_egraph::{EGraph, Extractor, AstSize, Symbol};
/// use tensat_egraph::doctest_lang::SimpleMath as Math;
/// let mut eg: EGraph<Math, ()> = EGraph::new(());
/// let a = eg.add(Math::Sym(Symbol::new("a")));
/// let two = eg.add(Math::Num(2));
/// let mul = eg.add(Math::Mul([a, two]));
/// eg.union(mul, a); // pretend we proved (* a 2) == a
/// eg.rebuild();
/// let extractor = Extractor::new(&eg, AstSize);
/// let (cost, expr) = extractor.find_best(mul).unwrap();
/// assert_eq!(cost, 1);
/// assert_eq!(expr.to_string(), "a");
/// ```
pub struct Extractor<'a, L: Language, N: Analysis<L>, CF: CostFunction<L>> {
    egraph: &'a EGraph<L, N>,
    cost_fn: std::cell::RefCell<CF>,
    /// Best (cost, node) per class, indexed by the e-graph's dense slot
    /// space ([`EGraph::slot_index`]) — no hashing on the extraction path.
    best: Vec<Option<(CF::Cost, L)>>,
}

impl<L: Language, N: Analysis<L>, CF: CostFunction<L>> std::fmt::Debug for Extractor<'_, L, N, CF> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Extractor")
            .field(
                "classes_with_cost",
                &self.best.iter().filter(|b| b.is_some()).count(),
            )
            .finish()
    }
}

impl<'a, L: Language, N: Analysis<L>, CF: CostFunction<L>> Extractor<'a, L, N, CF> {
    /// Computes best costs for every e-class of the e-graph.
    pub fn new(egraph: &'a EGraph<L, N>, cost_fn: CF) -> Self {
        let mut extractor = Extractor {
            egraph,
            cost_fn: std::cell::RefCell::new(cost_fn),
            best: (0..egraph.num_slots()).map(|_| None).collect(),
        };
        extractor.compute_costs();
        extractor
    }

    fn compute_costs(&mut self) {
        // Fixpoint: keep sweeping until no class's best cost improves.
        let mut changed = true;
        while changed {
            changed = false;
            for class in self.egraph.classes() {
                let slot = self
                    .egraph
                    .slot_index(class.id)
                    .expect("iterated class is live");
                for node in class.iter() {
                    if self.egraph.is_filtered(node) {
                        continue;
                    }
                    if let Some(cost) = self.node_cost(node) {
                        // Total-order comparison: replace only on a strict
                        // improvement, so NaN (incomparable / ordered above
                        // +inf) can never displace a finite best.
                        match &self.best[slot] {
                            Some((best, _)) if CF::cmp(&cost, best) != Ordering::Less => {}
                            _ => {
                                self.best[slot] = Some((cost, node.clone()));
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
    }

    /// The best entry recorded for a class's slot, if any.
    fn best_entry(&self, id: Id) -> Option<&(CF::Cost, L)> {
        self.best[self.egraph.slot_index(id)?].as_ref()
    }

    /// Cost of an e-node if all its children already have best costs.
    fn node_cost(&self, node: &L) -> Option<CF::Cost> {
        let all_known = node.all(|c| self.best_entry(c).is_some());
        if !all_known {
            return None;
        }
        let mut cf = self.cost_fn.borrow_mut();
        Some(cf.cost(node, |c| {
            self.best_entry(c).expect("checked above").0.clone()
        }))
    }

    /// The best cost of a class, if any finite term is represented.
    pub fn best_cost(&self, id: Id) -> Option<CF::Cost> {
        self.best_entry(id).map(|(c, _)| c.clone())
    }

    /// The chosen e-node for a class.
    pub fn best_node(&self, id: Id) -> Option<&L> {
        self.best_entry(id).map(|(_, n)| n)
    }

    /// Extracts the best term rooted at `root`, returning its cost and the
    /// term itself. Returns `None` if the class represents no finite term
    /// (possible when every candidate node was filtered or participates in
    /// an unavoidable cycle).
    pub fn find_best(&self, root: Id) -> Option<(CF::Cost, RecExpr<L>)> {
        let root = self.egraph.find(root);
        let cost = self.best_cost(root)?;
        let mut expr = RecExpr::default();
        let mut cache: HashMap<Id, Id> = HashMap::new();
        let id = self.build_expr(root, &mut expr, &mut cache)?;
        debug_assert_eq!(usize::from(id), expr.len() - 1);
        Some((cost, expr))
    }

    fn build_expr(
        &self,
        root: Id,
        expr: &mut RecExpr<L>,
        cache: &mut HashMap<Id, Id>,
    ) -> Option<Id> {
        // One explicit frame per partially-built class instead of recursing
        // per term-depth level: extracted terms can be deeper than a thread
        // stack (a ~100k-deep chain overflows the 2 MiB test-thread stack).
        struct Frame<L> {
            class: Id,
            node: L,
            next_child: usize,
            children: Vec<Id>,
        }
        let frame = |class: Id, node: L| Frame {
            class,
            node,
            next_child: 0,
            children: vec![],
        };

        let root = self.egraph.find(root);
        if let Some(&done) = cache.get(&root) {
            return Some(done);
        }
        let mut stack = vec![frame(root, self.best_node(root)?.clone())];
        loop {
            let top = stack.last_mut().expect("loop returns before emptying");
            if let Some(&child) = top.node.children().get(top.next_child) {
                top.next_child += 1;
                let child = self.egraph.find(child);
                if let Some(&done) = cache.get(&child) {
                    top.children.push(done);
                } else {
                    let node = self.best_node(child)?.clone();
                    stack.push(frame(child, node));
                }
                continue;
            }
            // All children resolved: emit this node and hand the expression
            // id to the parent frame (or return it for the root).
            let done = stack.pop().expect("a frame is always on the stack");
            let mut i = 0;
            let node = done.node.map_children(|_| {
                let id = done.children[i];
                i += 1;
                id
            });
            let id = expr.add(node);
            cache.insert(done.class, id);
            match stack.last_mut() {
                Some(parent) => parent.children.push(id),
                None => return Some(id),
            }
        }
    }
}

/// A per-node cost function for DAG-aware extraction.
///
/// Unlike [`CostFunction`], which costs a whole *subtree* given child
/// subtree costs, a `DagCostFunction` prices a single e-node in isolation;
/// the [`DagExtractor`] sums node costs over the *set* of selected classes,
/// charging shared subgraphs once. Costs therefore need an additive monoid
/// ([`DagCostFunction::zero`] / [`DagCostFunction::add_assign`]) on top of
/// the total order.
pub trait DagCostFunction<L: Language> {
    /// The cost type.
    type Cost: PartialOrd + Clone + std::fmt::Debug;

    /// The cost of this single e-node, children excluded. Must be
    /// deterministic: the extractor calls it repeatedly during the
    /// fixpoint and once more when costing the final selection.
    fn node_cost(&mut self, enode: &L) -> Self::Cost;

    /// The additive identity.
    fn zero(&self) -> Self::Cost;

    /// Accumulates `item` into `acc`.
    fn add_assign(&self, acc: &mut Self::Cost, item: &Self::Cost);

    /// Total-order comparison; same contract as [`CostFunction::cmp`].
    fn cmp(a: &Self::Cost, b: &Self::Cost) -> Ordering {
        match a.partial_cmp(b) {
            Some(o) => o,
            None => {
                debug_assert!(
                    false,
                    "incomparable extraction costs (NaN?): {a:?} vs {b:?}"
                );
                Ordering::Greater
            }
        }
    }
}

/// DAG size: [`AstSize`]'s sharing-aware counterpart (each node counts 1,
/// shared nodes once).
impl<L: Language> DagCostFunction<L> for AstSize {
    type Cost = usize;
    fn node_cost(&mut self, _enode: &L) -> usize {
        1
    }
    fn zero(&self) -> usize {
        0
    }
    fn add_assign(&self, acc: &mut usize, item: &usize) {
        *acc = acc.saturating_add(*item);
    }
}

/// The per-class state of a [`DagExtractor`] entry.
struct DagEntry<L, C> {
    /// The chosen e-node.
    choice: L,
    /// This node's own (children-excluded) cost.
    own: C,
    /// Slots of every class in the chosen sub-DAG, including this one.
    reach: BitSet,
    /// Total cost of the sub-DAG: own costs summed over `reach`, each
    /// class charged once.
    total: C,
}

/// Global greedy DAG extractor (ROADMAP "DAG-aware global extraction").
///
/// The tree-greedy [`Extractor`] double-counts shared subgraphs, so it
/// never pays a small up-front cost (e.g. the `split` form of a merged
/// matmul) to share a large subgraph between two consumers — the weakness
/// the paper's ILP extraction exists to fix (paper §5.1, Table 4). This
/// extractor closes most of that gap at greedy speed: for every e-class it
/// keeps the best known *sub-DAG* — a chosen e-node, the [`BitSet`] of
/// classes its selection reaches (over [`EGraph::slot_index`]'s dense slot
/// space), and the cost of that set with every class charged **once**.
///
/// Candidates are evaluated bottom-up in a topological order of the class
/// dependency graph (Kahn's algorithm over unfiltered e-node child edges),
/// then a FIFO worklist propagates strict improvements to parent classes
/// until fixpoint. A candidate node is viable only when all its child
/// classes have entries and the union of their reach sets does not contain
/// the candidate's own class (which would make the selection cyclic). On
/// an acyclic e-graph — what cycle filtering guarantees during exploration
/// — the topological pass alone reaches the fixpoint and the worklist
/// drains immediately; on cyclic e-graphs the worklist resolves the
/// stragglers best-effort and [`DagExtractor::find_best`] re-verifies
/// acyclicity of the final selection.
///
/// Everything is slot-indexed flat arrays — no per-call hash maps — and
/// every iteration order (class slots, in-class node order, FIFO worklist)
/// is deterministic, so repeated runs return bit-identical expressions.
///
/// # Examples
///
/// ```
/// use tensat_egraph::{EGraph, DagExtractor, AstSize, Symbol};
/// use tensat_egraph::doctest_lang::SimpleMath as Math;
/// let mut eg: EGraph<Math, ()> = EGraph::new(());
/// let a = eg.add(Math::Sym(Symbol::new("a")));
/// let two = eg.add(Math::Num(2));
/// let mul = eg.add(Math::Mul([a, two]));
/// eg.union(mul, a); // pretend we proved (* a 2) == a
/// eg.rebuild();
/// let extractor = DagExtractor::new(&eg, AstSize);
/// let (dag_size, expr) = extractor.find_best(mul).unwrap();
/// assert_eq!(dag_size, 1);
/// assert_eq!(expr.to_string(), "a");
/// ```
pub struct DagExtractor<'a, L: Language, N: Analysis<L>, DF: DagCostFunction<L>> {
    egraph: &'a EGraph<L, N>,
    cost_fn: std::cell::RefCell<DF>,
    /// Best sub-DAG per class, indexed by the e-graph's dense slot space.
    entries: Vec<Option<DagEntry<L, DF::Cost>>>,
    /// Canonical class id per slot (`None` for dead slots).
    slot_id: Vec<Option<Id>>,
}

impl<L: Language, N: Analysis<L>, DF: DagCostFunction<L>> std::fmt::Debug
    for DagExtractor<'_, L, N, DF>
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DagExtractor")
            .field(
                "classes_with_entry",
                &self.entries.iter().filter(|e| e.is_some()).count(),
            )
            .finish()
    }
}

impl<'a, L: Language, N: Analysis<L>, DF: DagCostFunction<L>> DagExtractor<'a, L, N, DF> {
    /// Computes the best sub-DAG for every e-class of the e-graph.
    pub fn new(egraph: &'a EGraph<L, N>, cost_fn: DF) -> Self {
        let mut slot_id: Vec<Option<Id>> = vec![None; egraph.num_slots()];
        for class in egraph.classes() {
            slot_id[egraph.slot_index(class.id).expect("iterated class is live")] = Some(class.id);
        }
        let mut extractor = DagExtractor {
            egraph,
            cost_fn: std::cell::RefCell::new(cost_fn),
            entries: (0..egraph.num_slots()).map(|_| None).collect(),
            slot_id,
        };
        extractor.run_worklist();
        extractor
    }

    /// Builds the deduplicated class-level child/parent adjacency over
    /// unfiltered e-nodes (self-edges excluded; a node whose child is its
    /// own class is rejected per-candidate by the reach-set check instead).
    fn adjacency(&self) -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
        let n = self.egraph.num_slots();
        let mut children: Vec<Vec<u32>> = vec![vec![]; n];
        let mut parents: Vec<Vec<u32>> = vec![vec![]; n];
        for class in self.egraph.classes() {
            let s = self
                .egraph
                .slot_index(class.id)
                .expect("iterated class is live");
            for node in class.iter() {
                if self.egraph.is_filtered(node) {
                    continue;
                }
                for &child in node.children() {
                    let c = self
                        .egraph
                        .slot_index(self.egraph.find(child))
                        .expect("child of a live class is live");
                    if c != s {
                        children[s].push(c as u32);
                    }
                }
            }
            children[s].sort_unstable();
            children[s].dedup();
            for &c in &children[s] {
                parents[c as usize].push(s as u32);
            }
        }
        // Parents were appended in ascending `s` per child, so each list is
        // already sorted and duplicate-free.
        (children, parents)
    }

    fn run_worklist(&mut self) {
        let n = self.egraph.num_slots();
        let (children, parents) = self.adjacency();

        // Kahn's algorithm: children-before-parents order. Classes caught
        // in dependency cycles keep a nonzero indegree and are appended in
        // slot order; the worklist phase handles them best-effort.
        let mut indeg: Vec<u32> = children.iter().map(|c| c.len() as u32).collect();
        let live = |s: u32| self.slot_id[s as usize].is_some();
        let mut order: Vec<u32> = (0..n as u32)
            .filter(|&s| live(s) && indeg[s as usize] == 0)
            .collect();
        let mut i = 0;
        while i < order.len() {
            let s = order[i] as usize;
            i += 1;
            for &p in &parents[s] {
                indeg[p as usize] -= 1;
                if indeg[p as usize] == 0 {
                    order.push(p);
                }
            }
        }
        let mut in_order = vec![false; n];
        for &s in &order {
            in_order[s as usize] = true;
        }
        order.extend((0..n as u32).filter(|&s| live(s) && !in_order[s as usize]));

        // Seed the worklist with the topological order, then drain FIFO.
        let mut queue: std::collections::VecDeque<u32> = order.into();
        let mut in_queue = vec![true; n];
        let mut scratch = BitSet::new(n);
        while let Some(s) = queue.pop_front() {
            let s = s as usize;
            in_queue[s] = false;
            if self.evaluate(s, &mut scratch) {
                for &p in &parents[s] {
                    if !in_queue[p as usize] {
                        in_queue[p as usize] = true;
                        queue.push_back(p);
                    }
                }
            }
        }
    }

    /// Re-evaluates every candidate node of the class in slot `s` and
    /// installs the cheapest viable one if it strictly improves on the
    /// current entry. Returns true on improvement.
    fn evaluate(&mut self, s: usize, scratch: &mut BitSet) -> bool {
        let id = match self.slot_id[s] {
            Some(id) => id,
            None => return false,
        };
        let class = self.egraph.eclass(id);
        let mut best: Option<(DF::Cost, &L, BitSet)> = None;
        'candidates: for node in class.iter() {
            if self.egraph.is_filtered(node) {
                continue;
            }
            scratch.clear();
            for &child in node.children() {
                let c = match self.egraph.slot_index(self.egraph.find(child)) {
                    Some(c) => c,
                    None => continue 'candidates,
                };
                match &self.entries[c] {
                    Some(entry) => {
                        scratch.union_with(&entry.reach);
                    }
                    None => continue 'candidates,
                }
            }
            if scratch.contains(s) {
                // The children's combined sub-DAG already reaches this
                // class: selecting this node would close a cycle.
                continue;
            }
            let mut total = self.cost_fn.borrow_mut().node_cost(node);
            {
                let cf = self.cost_fn.borrow();
                for d in scratch.iter_ones() {
                    let own = &self.entries[d].as_ref().expect("unioned entry exists").own;
                    cf.add_assign(&mut total, own);
                }
            }
            let better = match &best {
                None => true,
                Some((cost, _, _)) => DF::cmp(&total, cost) == Ordering::Less,
            };
            if better {
                best = Some((total, node, scratch.clone()));
            }
        }
        let (total, node, mut reach) = match best {
            Some(b) => b,
            None => return false,
        };
        let improved = match &self.entries[s] {
            None => true,
            Some(entry) => DF::cmp(&total, &entry.total) == Ordering::Less,
        };
        if improved {
            reach.insert(s);
            let node = node.clone();
            let own = self.cost_fn.borrow_mut().node_cost(&node);
            self.entries[s] = Some(DagEntry {
                choice: node,
                own,
                reach,
                total,
            });
        }
        improved
    }

    /// The best DAG cost recorded for a class, if any.
    pub fn best_cost(&self, id: Id) -> Option<DF::Cost> {
        let slot = self.egraph.slot_index(self.egraph.find(id))?;
        self.entries[slot].as_ref().map(|e| e.total.clone())
    }

    /// The chosen e-node for a class.
    pub fn best_node(&self, id: Id) -> Option<&L> {
        let slot = self.egraph.slot_index(self.egraph.find(id))?;
        self.entries[slot].as_ref().map(|e| &e.choice)
    }

    /// Extracts the best DAG rooted at `root`: the cost (each selected
    /// e-node charged once) and the expression. The cost is recomputed
    /// from the final selection rather than read from the fixpoint cache,
    /// so it is honest even when a cyclic e-graph left stale entries.
    /// Returns `None` if the class has no viable selection or (possible
    /// only without cycle filtering) the per-class choices form a cycle.
    pub fn find_best(&self, root: Id) -> Option<(DF::Cost, RecExpr<L>)> {
        let root = self.egraph.find(root);
        let n = self.egraph.num_slots();
        let mut expr = RecExpr::default();
        let mut done: Vec<Option<Id>> = vec![None; n];
        let mut on_stack = BitSet::new(n);
        let mut cost = self.cost_fn.borrow().zero();

        // Explicit stack: extracted DAGs can be deeper than a thread stack.
        struct Frame<L> {
            slot: usize,
            node: L,
            next_child: usize,
            children: Vec<Id>,
        }
        let frame = |slot: usize, node: L| Frame {
            slot,
            node,
            next_child: 0,
            children: vec![],
        };

        let root_slot = self.egraph.slot_index(root)?;
        let mut stack = vec![frame(
            root_slot,
            self.entries[root_slot].as_ref()?.choice.clone(),
        )];
        if !on_stack.insert(root_slot) {
            return None;
        }
        loop {
            let top = stack.last_mut().expect("loop returns before emptying");
            if let Some(&child) = top.node.children().get(top.next_child) {
                top.next_child += 1;
                let slot = self.egraph.slot_index(self.egraph.find(child))?;
                if let Some(done) = done[slot] {
                    top.children.push(done);
                } else {
                    if !on_stack.insert(slot) {
                        // A selection cycle (stale entries on a cyclic
                        // e-graph): no finite term.
                        return None;
                    }
                    let node = self.entries[slot].as_ref()?.choice.clone();
                    stack.push(frame(slot, node));
                }
                continue;
            }
            let finished = stack.pop().expect("a frame is always on the stack");
            {
                let mut cf = self.cost_fn.borrow_mut();
                let own = cf.node_cost(&finished.node);
                cf.add_assign(&mut cost, &own);
            }
            let mut i = 0;
            let node = finished.node.map_children(|_| {
                let id = finished.children[i];
                i += 1;
                id
            });
            let id = expr.add(node);
            done[finished.slot] = Some(id);
            match stack.last_mut() {
                Some(parent) => parent.children.push(id),
                None => return Some((cost, expr)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::test_lang::Math;
    use crate::Symbol;

    fn sym(s: &str) -> Math {
        Math::Sym(Symbol::new(s))
    }

    #[test]
    fn astsize_prefers_smaller_term() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let mul = eg.add(Math::Mul([a, two]));
        let div = eg.add(Math::Div([mul, two]));
        // Teach the e-graph that (/ (* a 2) 2) == a.
        eg.union(div, a);
        eg.rebuild();
        let ex = Extractor::new(&eg, AstSize);
        let (cost, best) = ex.find_best(div).unwrap();
        assert_eq!(cost, 1);
        assert_eq!(best.to_string(), "a");
    }

    #[test]
    fn extraction_handles_cycles_in_egraph() {
        // A cyclic e-class (a == f(a)) still extracts the finite term `a`.
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let one = eg.add(Math::Num(1));
        let fa = eg.add(Math::Mul([a, one]));
        eg.union(a, fa);
        eg.rebuild();
        let ex = Extractor::new(&eg, AstSize);
        let (cost, best) = ex.find_best(a).unwrap();
        assert_eq!(cost, 1);
        assert_eq!(best.to_string(), "a");
    }

    #[test]
    fn extraction_skips_filtered_nodes() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let mul = eg.add(Math::Mul([a, two]));
        let one = eg.add(Math::Num(1));
        let shl = eg.add(Math::Shl([a, one]));
        eg.union(mul, shl);
        eg.rebuild();
        // Filter the shl node; extraction must fall back to the mul node.
        let one = eg.lookup(&Math::Num(1)).unwrap();
        eg.filter_node(&Math::Shl([a, one]));
        let ex = Extractor::new(&eg, AstSize);
        let (_, best) = ex.find_best(mul).unwrap();
        assert_eq!(best.to_string(), "(* a 2)");
    }

    #[test]
    fn find_best_none_when_everything_filtered() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        eg.rebuild();
        eg.filter_node(&sym("a"));
        let ex = Extractor::new(&eg, AstSize);
        assert!(ex.find_best(a).is_none());
    }

    #[test]
    fn astdepth_differs_from_astsize() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let b = eg.add(sym("b"));
        let ab = eg.add(Math::Add([a, b]));
        let abab = eg.add(Math::Add([ab, ab]));
        eg.rebuild();
        let size = Extractor::new(&eg, AstSize).best_cost(abab).unwrap();
        let depth = Extractor::new(&eg, AstDepth).best_cost(abab).unwrap();
        assert_eq!(depth, 3);
        assert_eq!(size, 7); // tree size double counts the shared (+ a b)
    }

    /// Regression test: `build_expr` recursed once per term-depth level —
    /// the last deep recursion left after the cycle finder and the ILP
    /// branch-and-bound were converted to explicit stacks — and overflowed
    /// the 2 MiB test-thread stack on chains ~100k nodes deep. The explicit
    /// stack handles arbitrary depth.
    #[test]
    fn extraction_survives_very_deep_chains() {
        const DEPTH: usize = 100_000;
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let one = eg.add(Math::Num(1));
        let mut id = eg.add(sym("a"));
        for _ in 0..DEPTH {
            id = eg.add(Math::Mul([id, one]));
        }
        eg.rebuild();
        let ex = Extractor::new(&eg, AstSize);
        let (cost, expr) = ex.find_best(id).unwrap();
        // Tree size of the chain: leaf (1) plus 2 per Mul level.
        assert_eq!(cost, 2 * DEPTH + 1);
        // DAG size: the two leaves plus one Mul node per level.
        assert_eq!(expr.len(), DEPTH + 2);
        // The rebuilt term must re-add into the original class.
        let mut check = eg.clone();
        let again = check.add_expr(&expr);
        assert_eq!(check.find(again), check.find(id));
    }

    #[test]
    fn shared_subterms_extract_as_dag() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let b = eg.add(sym("b"));
        let ab = eg.add(Math::Add([a, b]));
        let abab = eg.add(Math::Mul([ab, ab]));
        eg.rebuild();
        let ex = Extractor::new(&eg, AstSize);
        let (_, expr) = ex.find_best(abab).unwrap();
        // The extracted RecExpr shares the (+ a b) node.
        assert_eq!(expr.len(), 4);
        assert_eq!(expr.to_string(), "(* (+ a b) (+ a b))");
    }

    /// Regression test for the `f64` total-order hazard: under the old
    /// `best <= cost` guard, a NaN candidate made the comparison false and
    /// *replaced* a finite best, poisoning every ancestor class. With
    /// total-order comparison an incomparable candidate never wins.
    #[test]
    fn nan_cost_cannot_displace_a_finite_best() {
        struct NanOnShl;
        impl CostFunction<Math> for NanOnShl {
            type Cost = f64;
            fn cost<C>(&mut self, enode: &Math, mut costs: C) -> f64
            where
                C: FnMut(Id) -> f64,
            {
                let own = match enode {
                    Math::Shl(..) => f64::NAN, // degenerate cost model
                    _ => 1.0,
                };
                enode.children().iter().fold(own, |acc, &c| acc + costs(c))
            }
            // Override like `TreeCost` does, so NaN orders above +inf
            // instead of tripping the default's debug assertion.
            fn cmp(a: &f64, b: &f64) -> Ordering {
                a.total_cmp(b)
            }
        }

        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let one = eg.add(Math::Num(1));
        let mul = eg.add(Math::Mul([a, two]));
        let shl = eg.add(Math::Shl([a, one]));
        eg.union(mul, shl);
        // A parent so the poison would have propagated upward.
        let root = eg.add(Math::Add([mul, a]));
        eg.rebuild();

        let ex = Extractor::new(&eg, NanOnShl);
        let (cost, best) = ex.find_best(root).unwrap();
        assert!(cost.is_finite(), "NaN displaced the finite best: {cost}");
        assert_eq!(best.to_string(), "(+ (* a 2) a)");
    }

    #[test]
    fn dag_extractor_agrees_with_tree_on_unshared_terms() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let mul = eg.add(Math::Mul([a, two]));
        let div = eg.add(Math::Div([mul, two]));
        eg.union(div, a);
        eg.rebuild();
        let ex = DagExtractor::new(&eg, AstSize);
        let (cost, best) = ex.find_best(div).unwrap();
        assert_eq!(cost, 1);
        assert_eq!(best.to_string(), "a");
        assert_eq!(ex.best_cost(div), Some(1));
        assert!(matches!(ex.best_node(div), Some(Math::Sym(_))));
    }

    #[test]
    fn dag_extractor_charges_shared_subgraphs_once() {
        // Tree-greedy pays the big subgraph once per use; the DAG extractor
        // charges it once. Build a root class with two candidates:
        //   (* big big)        tree cost 23, DAG cost 8   (big = 5-deep chain)
        //   9-deep chain on b  tree cost 19, DAG cost 11
        // Tree-greedy prefers the chain (19 < 23); the DAG extractor must
        // prefer the shared form (8 < 11).
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let one = eg.add(Math::Num(1));
        let mut big = eg.add(sym("a"));
        for _ in 0..5 {
            big = eg.add(Math::Mul([big, one]));
        }
        let shared = eg.add(Math::Mul([big, big]));
        let mut chain = eg.add(sym("b"));
        for _ in 0..9 {
            chain = eg.add(Math::Add([chain, one]));
        }
        eg.union(shared, chain);
        eg.rebuild();

        let tree = Extractor::new(&eg, AstSize);
        let (tree_cost, tree_expr) = tree.find_best(shared).unwrap();
        assert_eq!(tree_cost, 19);
        assert!(tree_expr.to_string().contains('b'));

        let dag = DagExtractor::new(&eg, AstSize);
        let (dag_cost, dag_expr) = dag.find_best(shared).unwrap();
        assert_eq!(dag_cost, 8);
        assert!(dag_expr.to_string().contains('a'));
        // The expression is a genuine DAG: 8 distinct nodes, each stored once.
        assert_eq!(dag_expr.len(), 8);
    }

    #[test]
    fn dag_extractor_handles_cycles_in_egraph() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let one = eg.add(Math::Num(1));
        let fa = eg.add(Math::Mul([a, one]));
        eg.union(a, fa);
        eg.rebuild();
        let ex = DagExtractor::new(&eg, AstSize);
        let (cost, best) = ex.find_best(a).unwrap();
        assert_eq!(cost, 1);
        assert_eq!(best.to_string(), "a");
    }

    #[test]
    fn dag_extractor_skips_filtered_nodes() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let mul = eg.add(Math::Mul([a, two]));
        let one = eg.add(Math::Num(1));
        let shl = eg.add(Math::Shl([a, one]));
        eg.union(mul, shl);
        eg.rebuild();
        let one = eg.lookup(&Math::Num(1)).unwrap();
        eg.filter_node(&Math::Shl([a, one]));
        let ex = DagExtractor::new(&eg, AstSize);
        let (_, best) = ex.find_best(mul).unwrap();
        assert_eq!(best.to_string(), "(* a 2)");

        let mut all_filtered: EGraph<Math, ()> = EGraph::new(());
        let a = all_filtered.add(sym("a"));
        all_filtered.rebuild();
        all_filtered.filter_node(&sym("a"));
        assert!(DagExtractor::new(&all_filtered, AstSize)
            .find_best(a)
            .is_none());
    }

    #[test]
    fn dag_extractor_is_deterministic() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let b = eg.add(sym("b"));
        let ab = eg.add(Math::Add([a, b]));
        let ba = eg.add(Math::Add([b, a]));
        eg.union(ab, ba); // two equal-cost candidates in one class
        let root = eg.add(Math::Mul([ab, ab]));
        eg.rebuild();
        let first = DagExtractor::new(&eg, AstSize).find_best(root).unwrap();
        for _ in 0..3 {
            let again = DagExtractor::new(&eg, AstSize).find_best(root).unwrap();
            assert_eq!(again.0, first.0);
            // Bit-identical expression, not just equal cost.
            assert_eq!(
                again
                    .1
                    .iter()
                    .map(|(i, n)| (i, n.clone()))
                    .collect::<Vec<_>>(),
                first
                    .1
                    .iter()
                    .map(|(i, n)| (i, n.clone()))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn dag_extractor_survives_deep_chains() {
        // The worklist and the expression builder are both iterative; only
        // the reach sets grow with depth (O(depth²/64) bits total here).
        const DEPTH: usize = 2_000;
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let one = eg.add(Math::Num(1));
        let mut id = eg.add(sym("a"));
        for _ in 0..DEPTH {
            id = eg.add(Math::Mul([id, one]));
        }
        eg.rebuild();
        let ex = DagExtractor::new(&eg, AstSize);
        let (cost, expr) = ex.find_best(id).unwrap();
        // DAG cost charges each node once: two leaves + one Mul per level.
        assert_eq!(cost, DEPTH + 2);
        assert_eq!(expr.len(), DEPTH + 2);
    }
}
