//! Rewrite rules: a searcher pattern, an applier pattern, and an optional
//! side condition (used by TENSAT for shape checking).

use crate::{Analysis, EGraph, Id, Language, Pattern, SearchMatches, Subst};
use std::fmt;
use std::sync::Arc;

/// A side condition evaluated on each match before the rewrite is applied.
///
/// Receives the e-graph, the e-class the left-hand side matched in, and the
/// substitution; returns true if the rewrite may fire. TENSAT uses this for
/// tensor shape checking (paper §4).
pub type Condition<L, N> = Arc<dyn Fn(&EGraph<L, N>, Id, &Subst) -> bool + Send + Sync>;

/// A single-pattern rewrite rule `lhs => rhs` with an optional condition.
///
/// Multi-pattern rules (several simultaneous left-hand sides, paper §4
/// Algorithm 1) are built on top of these primitives in `tensat-core`.
#[derive(Clone)]
pub struct Rewrite<L: Language, N: Analysis<L>> {
    /// Human-readable rule name (used in reports and iteration stats).
    pub name: String,
    /// The pattern searched for.
    pub searcher: Pattern<L>,
    /// The pattern instantiated and unioned with each match.
    pub applier: Pattern<L>,
    /// Optional side condition; `None` means always applicable.
    pub condition: Option<Condition<L, N>>,
}

impl<L: Language, N: Analysis<L>> fmt::Debug for Rewrite<L, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rewrite")
            .field("name", &self.name)
            .field("searcher", &self.searcher.to_string())
            .field("applier", &self.applier.to_string())
            .field("conditional", &self.condition.is_some())
            .finish()
    }
}

impl<L: Language, N: Analysis<L>> Rewrite<L, N> {
    /// Creates an unconditional rewrite.
    ///
    /// # Panics
    ///
    /// Panics if the right-hand side uses a variable that does not occur on
    /// the left-hand side.
    pub fn new(name: impl Into<String>, searcher: Pattern<L>, applier: Pattern<L>) -> Self {
        let lhs_vars = searcher.vars();
        for v in applier.vars() {
            assert!(
                lhs_vars.contains(&v),
                "rewrite right-hand side uses unbound variable {v}"
            );
        }
        Rewrite {
            name: name.into(),
            searcher,
            applier,
            condition: None,
        }
    }

    /// Creates a conditional rewrite.
    pub fn new_conditional(
        name: impl Into<String>,
        searcher: Pattern<L>,
        applier: Pattern<L>,
        condition: Condition<L, N>,
    ) -> Self {
        let mut rw = Self::new(name, searcher, applier);
        rw.condition = Some(condition);
        rw
    }

    /// Searches the e-graph for matches of the left-hand side.
    pub fn search(&self, egraph: &EGraph<L, N>) -> Vec<SearchMatches> {
        self.searcher.search(egraph)
    }

    /// Searches only e-classes touched since `watermark` (a snapshot of
    /// [`EGraph::watermark`]); see [`crate::Pattern::search_since`].
    pub fn search_since(&self, egraph: &EGraph<L, N>, watermark: u64) -> Vec<SearchMatches> {
        self.searcher.search_since(egraph, watermark)
    }

    /// Applies the rewrite to the given matches, returning the number of
    /// applications that changed the e-graph (i.e. caused a union).
    pub fn apply(&self, egraph: &mut EGraph<L, N>, matches: &[SearchMatches]) -> usize {
        self.apply_capped(egraph, matches, usize::MAX).0
    }

    /// Like [`Rewrite::apply`], but checks the e-graph's total node count
    /// against `node_limit` before every application and stops as soon as
    /// the limit is reached (the check is O(1)). Returns the number of
    /// effective applications and whether the limit cut the loop short; a
    /// single application can overshoot the limit by at most the applier
    /// pattern's size.
    pub fn apply_capped(
        &self,
        egraph: &mut EGraph<L, N>,
        matches: &[SearchMatches],
        node_limit: usize,
    ) -> (usize, bool) {
        let mut changed = 0;
        for m in matches {
            for subst in &m.substs {
                if egraph.total_number_of_nodes() >= node_limit {
                    return (changed, true);
                }
                if let Some(cond) = &self.condition {
                    if !cond(egraph, m.eclass, subst) {
                        continue;
                    }
                }
                let (_, did) = self.applier.apply_one(egraph, m.eclass, subst);
                if did {
                    changed += 1;
                }
            }
        }
        (changed, false)
    }

    /// Searches and applies in one step, returning the number of effective
    /// applications. Does not rebuild.
    pub fn run(&self, egraph: &mut EGraph<L, N>) -> usize {
        let matches = self.search(egraph);
        self.apply(egraph, &matches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::test_lang::Math;
    use crate::{ENodeOrVar, RecExpr, Symbol, Var};

    fn sym(s: &str) -> Math {
        Math::Sym(Symbol::new(s))
    }

    fn pat_mul_two() -> Pattern<Math> {
        let mut ast = RecExpr::default();
        let x = ast.add(ENodeOrVar::Var(Var::new("x")));
        let two = ast.add(ENodeOrVar::ENode(Math::Num(2)));
        ast.add(ENodeOrVar::ENode(Math::Mul([x, two])));
        Pattern::new(ast)
    }

    fn pat_shl_one() -> Pattern<Math> {
        let mut ast = RecExpr::default();
        let x = ast.add(ENodeOrVar::Var(Var::new("x")));
        let one = ast.add(ENodeOrVar::ENode(Math::Num(1)));
        ast.add(ENodeOrVar::ENode(Math::Shl([x, one])));
        Pattern::new(ast)
    }

    #[test]
    fn unconditional_rewrite_fires() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let mul = eg.add(Math::Mul([a, two]));
        eg.rebuild();
        let rw: Rewrite<Math, ()> = Rewrite::new("mul2-to-shl", pat_mul_two(), pat_shl_one());
        let n = rw.run(&mut eg);
        assert_eq!(n, 1);
        eg.rebuild();
        let one = eg.lookup(&Math::Num(1)).unwrap();
        let shl = eg.lookup(&Math::Shl([a, one])).unwrap();
        assert_eq!(eg.find(shl), eg.find(mul));
        // Running again changes nothing (already equal).
        assert_eq!(rw.run(&mut eg), 0);
    }

    #[test]
    fn conditional_rewrite_respects_condition() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        eg.add(Math::Mul([a, two]));
        eg.rebuild();
        let rw: Rewrite<Math, ()> = Rewrite::new_conditional(
            "never",
            pat_mul_two(),
            pat_shl_one(),
            Arc::new(|_, _, _| false),
        );
        assert_eq!(rw.run(&mut eg), 0);
    }

    #[test]
    #[should_panic]
    fn rhs_with_unbound_var_panics() {
        let mut rhs = RecExpr::default();
        rhs.add(ENodeOrVar::Var(Var::new("zzz")));
        let _rw: Rewrite<Math, ()> = Rewrite::new("bad", pat_mul_two(), Pattern::new(rhs));
    }

    #[test]
    fn debug_is_informative() {
        let rw: Rewrite<Math, ()> = Rewrite::new("mul2-to-shl", pat_mul_two(), pat_shl_one());
        let dbg = format!("{rw:?}");
        assert!(dbg.contains("mul2-to-shl"));
        assert!(dbg.contains("?x"));
    }
}
