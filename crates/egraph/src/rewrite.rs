//! Rewrite rules: a searcher pattern, an applier pattern, an optional
//! side condition (used by TENSAT for shape checking), and optional
//! per-variable analysis guards that push the condition's per-variable
//! part into the e-matching machine.

use crate::machine::{Guard, GuardedProgram, SearchQuery};
use crate::{Analysis, EGraph, Id, Language, Pattern, SearchMatches, Subst, Var};
use std::fmt;
use std::sync::Arc;

/// A side condition evaluated on each match before the rewrite is applied.
///
/// Receives the e-graph, the e-class the left-hand side matched in, and the
/// substitution; returns true if the rewrite may fire. TENSAT uses this for
/// tensor shape checking (paper §4).
///
/// Conditions that only depend on the analysis data of a *single* bound
/// variable's class should be expressed as guards instead
/// ([`Rewrite::with_guards`]): the machine then prunes the branch during
/// matching rather than discarding the finished substitution here.
pub type Condition<L, N> = Arc<dyn Fn(&EGraph<L, N>, Id, &Subst) -> bool + Send + Sync>;

/// A single-pattern rewrite rule `lhs => rhs` with an optional condition.
///
/// Multi-pattern rules (several simultaneous left-hand sides, paper §4
/// Algorithm 1) are built on top of these primitives in `tensat-core`.
#[derive(Clone)]
pub struct Rewrite<L: Language, N: Analysis<L>> {
    /// Human-readable rule name (used in reports and iteration stats).
    pub name: String,
    /// The pattern searched for.
    pub searcher: Pattern<L>,
    /// The pattern instantiated and unioned with each match.
    pub applier: Pattern<L>,
    /// Optional side condition; `None` means always applicable.
    pub condition: Option<Condition<L, N>>,
    /// The guarded searcher program, present when the rule was built with
    /// [`Rewrite::with_guards`]. When present, [`Rewrite::search`] runs it
    /// instead of the plain pattern program.
    guarded: Option<GuardedProgram<L, N::Data>>,
}

impl<L: Language, N: Analysis<L>> fmt::Debug for Rewrite<L, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rewrite")
            .field("name", &self.name)
            .field("searcher", &self.searcher.to_string())
            .field("applier", &self.applier.to_string())
            .field("conditional", &self.condition.is_some())
            .field(
                "guards",
                &self.guarded.as_ref().map_or(0, |g| g.guards().len()),
            )
            .finish()
    }
}

impl<L: Language, N: Analysis<L>> Rewrite<L, N> {
    /// Creates an unconditional rewrite.
    ///
    /// # Panics
    ///
    /// Panics if the right-hand side uses a variable that does not occur on
    /// the left-hand side.
    pub fn new(name: impl Into<String>, searcher: Pattern<L>, applier: Pattern<L>) -> Self {
        let lhs_vars = searcher.vars();
        for v in applier.vars() {
            assert!(
                lhs_vars.contains(&v),
                "rewrite right-hand side uses unbound variable {v}"
            );
        }
        Rewrite {
            name: name.into(),
            searcher,
            applier,
            condition: None,
            guarded: None,
        }
    }

    /// Creates a conditional rewrite.
    pub fn new_conditional(
        name: impl Into<String>,
        searcher: Pattern<L>,
        applier: Pattern<L>,
        condition: Condition<L, N>,
    ) -> Self {
        let mut rw = Self::new(name, searcher, applier);
        rw.condition = Some(condition);
        rw
    }

    /// Attaches per-variable analysis guards and compiles the guarded
    /// searcher program now (rule construction time, like
    /// [`Pattern::precompile`]). Guards for variables that do not occur in
    /// the searcher are dropped; duplicate entries for one variable are
    /// conjoined.
    ///
    /// A guard must be a *sound approximation* of the rule's condition: it
    /// may only reject bindings the condition (or the rule's semantics)
    /// would reject anyway, and it must be a pure function of the class
    /// analysis data. Under that contract, guarded search followed by the
    /// residual condition fires exactly the applications the unguarded rule
    /// fires on any fixed (clean) e-graph — the guard just kills dead
    /// branches inside the machine.
    ///
    /// One timing nuance inside a saturation loop: guards evaluate at
    /// *search* time, the residual condition at *apply* time, and unions
    /// performed earlier in the same apply batch can make a class's data
    /// admissible in between (analysis merges are monotone towards
    /// validity). Such a match, which the unguarded rule would have applied
    /// late in the same iteration, now fires in the next iteration instead —
    /// the e-graph only grows, so the match is re-found and the saturation
    /// fixpoint is unchanged.
    ///
    /// Guards are also safe under watermark-based incremental search
    /// ([`crate::Runner::with_incremental_search`]): they read only the
    /// matched classes' analysis data, and any event that changes that data
    /// (a union, directly or through congruence) touches those classes, so
    /// a flipped guard re-surfaces the match.
    pub fn with_guards(mut self, guards: Vec<(Var, Guard<N::Data>)>) -> Self
    where
        N::Data: 'static,
    {
        let searcher_vars = self.searcher.vars();
        let guards: Vec<(Var, Guard<N::Data>)> = guards
            .into_iter()
            .filter(|(v, _)| searcher_vars.contains(v))
            .collect();
        self.guarded = if guards.is_empty() {
            None
        } else {
            Some(GuardedProgram::compile(&self.searcher.ast, &guards))
        };
        self
    }

    /// The guarded searcher program, if the rule carries guards.
    pub fn guarded_program(&self) -> Option<&GuardedProgram<L, N::Data>> {
        self.guarded.as_ref()
    }

    /// The `(program, guard table)` pair the batch search drivers take
    /// (see [`crate::search_all_guarded_parallel`]): the guarded program
    /// when the rule carries guards, otherwise the plain pattern program
    /// with an empty table.
    pub fn searcher_query(&self) -> SearchQuery<'_, L, N::Data> {
        match &self.guarded {
            Some(g) => g.query(),
            None => (self.searcher.program(), &[]),
        }
    }

    /// Searches the e-graph for matches of the left-hand side, through the
    /// guarded program when the rule carries guards (see
    /// [`Rewrite::with_guards`]).
    pub fn search(&self, egraph: &EGraph<L, N>) -> Vec<SearchMatches> {
        match &self.guarded {
            Some(g) => g.search(egraph),
            None => self.searcher.search(egraph),
        }
    }

    /// Searches only e-classes touched since `watermark` (a snapshot of
    /// [`EGraph::watermark`]); see [`crate::Pattern::search_since`]. Uses
    /// the guarded program when the rule carries guards.
    pub fn search_since(&self, egraph: &EGraph<L, N>, watermark: u64) -> Vec<SearchMatches> {
        match &self.guarded {
            Some(g) => g.search_since(egraph, watermark),
            None => self.searcher.search_since(egraph, watermark),
        }
    }

    /// Applies the rewrite to the given matches, returning the number of
    /// applications that changed the e-graph (i.e. caused a union).
    pub fn apply(&self, egraph: &mut EGraph<L, N>, matches: &[SearchMatches]) -> usize {
        self.apply_capped(egraph, matches, usize::MAX).0
    }

    /// Like [`Rewrite::apply`], but checks the e-graph's total node count
    /// against `node_limit` before every application and stops as soon as
    /// the limit is reached (the check is O(1)). Returns the number of
    /// effective applications and whether the limit cut the loop short; a
    /// single application can overshoot the limit by at most the applier
    /// pattern's size.
    pub fn apply_capped(
        &self,
        egraph: &mut EGraph<L, N>,
        matches: &[SearchMatches],
        node_limit: usize,
    ) -> (usize, bool) {
        let mut changed = 0;
        for m in matches {
            for subst in &m.substs {
                if egraph.total_number_of_nodes() >= node_limit {
                    return (changed, true);
                }
                if let Some(cond) = &self.condition {
                    if !cond(egraph, m.eclass, subst) {
                        continue;
                    }
                }
                let (_, did) = self.applier.apply_one(egraph, m.eclass, subst);
                if did {
                    changed += 1;
                }
            }
        }
        (changed, false)
    }

    /// Searches and applies in one step, returning the number of effective
    /// applications. Does not rebuild.
    pub fn run(&self, egraph: &mut EGraph<L, N>) -> usize {
        let matches = self.search(egraph);
        self.apply(egraph, &matches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::test_lang::Math;
    use crate::{ENodeOrVar, RecExpr, Symbol, Var};

    fn sym(s: &str) -> Math {
        Math::Sym(Symbol::new(s))
    }

    fn pat_mul_two() -> Pattern<Math> {
        let mut ast = RecExpr::default();
        let x = ast.add(ENodeOrVar::Var(Var::new("x")));
        let two = ast.add(ENodeOrVar::ENode(Math::Num(2)));
        ast.add(ENodeOrVar::ENode(Math::Mul([x, two])));
        Pattern::new(ast)
    }

    fn pat_shl_one() -> Pattern<Math> {
        let mut ast = RecExpr::default();
        let x = ast.add(ENodeOrVar::Var(Var::new("x")));
        let one = ast.add(ENodeOrVar::ENode(Math::Num(1)));
        ast.add(ENodeOrVar::ENode(Math::Shl([x, one])));
        Pattern::new(ast)
    }

    #[test]
    fn unconditional_rewrite_fires() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let mul = eg.add(Math::Mul([a, two]));
        eg.rebuild();
        let rw: Rewrite<Math, ()> = Rewrite::new("mul2-to-shl", pat_mul_two(), pat_shl_one());
        let n = rw.run(&mut eg);
        assert_eq!(n, 1);
        eg.rebuild();
        let one = eg.lookup(&Math::Num(1)).unwrap();
        let shl = eg.lookup(&Math::Shl([a, one])).unwrap();
        assert_eq!(eg.find(shl), eg.find(mul));
        // Running again changes nothing (already equal).
        assert_eq!(rw.run(&mut eg), 0);
    }

    #[test]
    fn conditional_rewrite_respects_condition() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        eg.add(Math::Mul([a, two]));
        eg.rebuild();
        let rw: Rewrite<Math, ()> = Rewrite::new_conditional(
            "never",
            pat_mul_two(),
            pat_shl_one(),
            Arc::new(|_, _, _| false),
        );
        assert_eq!(rw.run(&mut eg), 0);
    }

    #[test]
    #[should_panic]
    fn rhs_with_unbound_var_panics() {
        let mut rhs = RecExpr::default();
        rhs.add(ENodeOrVar::Var(Var::new("zzz")));
        let _rw: Rewrite<Math, ()> = Rewrite::new("bad", pat_mul_two(), Pattern::new(rhs));
    }

    #[test]
    fn debug_is_informative() {
        let rw: Rewrite<Math, ()> = Rewrite::new("mul2-to-shl", pat_mul_two(), pat_shl_one());
        let dbg = format!("{rw:?}");
        assert!(dbg.contains("mul2-to-shl"));
        assert!(dbg.contains("?x"));
    }
}
