//! Rewrite rules: a searcher pattern, an applier pattern, an optional
//! side condition (used by TENSAT for shape checking), and optional
//! per-variable analysis guards that push the condition's per-variable
//! part into the e-matching machine.

use crate::machine::{Guard, GuardedProgram, SearchQuery};
use crate::pattern::ENodeOrVar;
use crate::{Analysis, EGraph, Id, Language, Pattern, SearchMatches, Subst, Var};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// A side condition evaluated on each match before the rewrite is applied.
///
/// Receives the e-graph, the e-class the left-hand side matched in, and the
/// substitution; returns true if the rewrite may fire. TENSAT uses this for
/// tensor shape checking (paper §4).
///
/// Conditions that only depend on the analysis data of a *single* bound
/// variable's class should be expressed as guards instead
/// ([`Rewrite::with_guards`]): the machine then prunes the branch during
/// matching rather than discarding the finished substitution here.
pub type Condition<L, N> = Arc<dyn Fn(&EGraph<L, N>, Id, &Subst) -> bool + Send + Sync>;

/// A single-pattern rewrite rule `lhs => rhs` with an optional condition.
///
/// Multi-pattern rules (several simultaneous left-hand sides, paper §4
/// Algorithm 1) are built on top of these primitives in `tensat-core`.
#[derive(Clone)]
pub struct Rewrite<L: Language, N: Analysis<L>> {
    /// Human-readable rule name (used in reports and iteration stats).
    pub name: String,
    /// The pattern searched for.
    pub searcher: Pattern<L>,
    /// The pattern instantiated and unioned with each match.
    pub applier: Pattern<L>,
    /// Optional side condition; `None` means always applicable.
    pub condition: Option<Condition<L, N>>,
    /// The guarded searcher program, present when the rule was built with
    /// [`Rewrite::with_guards`]. When present, [`Rewrite::search`] runs it
    /// instead of the plain pattern program.
    guarded: Option<GuardedProgram<L, N::Data>>,
}

impl<L: Language, N: Analysis<L>> fmt::Debug for Rewrite<L, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rewrite")
            .field("name", &self.name)
            .field("searcher", &self.searcher.to_string())
            .field("applier", &self.applier.to_string())
            .field("conditional", &self.condition.is_some())
            .field(
                "guards",
                &self.guarded.as_ref().map_or(0, |g| g.guards().len()),
            )
            .finish()
    }
}

impl<L: Language, N: Analysis<L>> Rewrite<L, N> {
    /// Creates an unconditional rewrite.
    ///
    /// # Panics
    ///
    /// Panics if the right-hand side uses a variable that does not occur on
    /// the left-hand side.
    pub fn new(name: impl Into<String>, searcher: Pattern<L>, applier: Pattern<L>) -> Self {
        let lhs_vars = searcher.vars();
        for v in applier.vars() {
            assert!(
                lhs_vars.contains(&v),
                "rewrite right-hand side uses unbound variable {v}"
            );
        }
        Rewrite {
            name: name.into(),
            searcher,
            applier,
            condition: None,
            guarded: None,
        }
    }

    /// Creates a conditional rewrite.
    pub fn new_conditional(
        name: impl Into<String>,
        searcher: Pattern<L>,
        applier: Pattern<L>,
        condition: Condition<L, N>,
    ) -> Self {
        let mut rw = Self::new(name, searcher, applier);
        rw.condition = Some(condition);
        rw
    }

    /// Attaches per-variable analysis guards and compiles the guarded
    /// searcher program now (rule construction time, like
    /// [`Pattern::precompile`]). Guards for variables that do not occur in
    /// the searcher are dropped; duplicate entries for one variable are
    /// conjoined.
    ///
    /// A guard must be a *sound approximation* of the rule's condition: it
    /// may only reject bindings the condition (or the rule's semantics)
    /// would reject anyway, and it must be a pure function of the class
    /// analysis data. Under that contract, guarded search followed by the
    /// residual condition fires exactly the applications the unguarded rule
    /// fires on any fixed (clean) e-graph — the guard just kills dead
    /// branches inside the machine.
    ///
    /// One timing nuance inside a saturation loop: guards evaluate at
    /// *search* time, the residual condition at *apply* time, and unions
    /// performed earlier in the same apply batch can make a class's data
    /// admissible in between (analysis merges are monotone towards
    /// validity). Such a match, which the unguarded rule would have applied
    /// late in the same iteration, now fires in the next iteration instead —
    /// the e-graph only grows, so the match is re-found and the saturation
    /// fixpoint is unchanged.
    ///
    /// Guards are also safe under watermark-based incremental search
    /// ([`crate::Runner::with_incremental_search`]): they read only the
    /// matched classes' analysis data, and any event that changes that data
    /// (a union, directly or through congruence) touches those classes, so
    /// a flipped guard re-surfaces the match.
    pub fn with_guards(mut self, guards: Vec<(Var, Guard<N::Data>)>) -> Self
    where
        N::Data: 'static,
    {
        let searcher_vars = self.searcher.vars();
        let guards: Vec<(Var, Guard<N::Data>)> = guards
            .into_iter()
            .filter(|(v, _)| searcher_vars.contains(v))
            .collect();
        self.guarded = if guards.is_empty() {
            None
        } else {
            Some(GuardedProgram::compile(&self.searcher.ast, &guards))
        };
        self
    }

    /// The guarded searcher program, if the rule carries guards.
    pub fn guarded_program(&self) -> Option<&GuardedProgram<L, N::Data>> {
        self.guarded.as_ref()
    }

    /// The `(program, guard table)` pair the batch search drivers take
    /// (see [`crate::search_all_guarded_parallel`]): the guarded program
    /// when the rule carries guards, otherwise the plain pattern program
    /// with an empty table.
    pub fn searcher_query(&self) -> SearchQuery<'_, L, N::Data> {
        match &self.guarded {
            Some(g) => g.query(),
            None => (self.searcher.program(), &[]),
        }
    }

    /// Searches the e-graph for matches of the left-hand side, through the
    /// guarded program when the rule carries guards (see
    /// [`Rewrite::with_guards`]).
    pub fn search(&self, egraph: &EGraph<L, N>) -> Vec<SearchMatches> {
        match &self.guarded {
            Some(g) => g.search(egraph),
            None => self.searcher.search(egraph),
        }
    }

    /// Searches only e-classes touched since `watermark` (a snapshot of
    /// [`EGraph::watermark`]); see [`crate::Pattern::search_since`]. Uses
    /// the guarded program when the rule carries guards.
    pub fn search_since(&self, egraph: &EGraph<L, N>, watermark: u64) -> Vec<SearchMatches> {
        match &self.guarded {
            Some(g) => g.search_since(egraph, watermark),
            None => self.searcher.search_since(egraph, watermark),
        }
    }

    /// Applies the rewrite to the given matches, returning the number of
    /// applications that changed the e-graph (i.e. caused a union).
    pub fn apply(&self, egraph: &mut EGraph<L, N>, matches: &[SearchMatches]) -> usize {
        self.apply_capped(egraph, matches, usize::MAX).0
    }

    /// Like [`Rewrite::apply`], but checks the e-graph's total node count
    /// against `node_limit` before every application and stops as soon as
    /// the limit is reached (the check is O(1)). Returns the number of
    /// effective applications and whether the limit cut the loop short; a
    /// single application can overshoot the limit by at most the applier
    /// pattern's size.
    pub fn apply_capped(
        &self,
        egraph: &mut EGraph<L, N>,
        matches: &[SearchMatches],
        node_limit: usize,
    ) -> (usize, bool) {
        let mut changed = 0;
        for m in matches {
            for subst in &m.substs {
                if egraph.total_number_of_nodes() >= node_limit {
                    return (changed, true);
                }
                if let Some(cond) = &self.condition {
                    if !cond(egraph, m.eclass, subst) {
                        continue;
                    }
                }
                let (_, did) = self.applier.apply_one(egraph, m.eclass, subst);
                if did {
                    changed += 1;
                }
            }
        }
        (changed, false)
    }

    /// Searches and applies in one step, returning the number of effective
    /// applications. Does not rebuild.
    pub fn run(&self, egraph: &mut EGraph<L, N>) -> usize {
        let matches = self.search(egraph);
        self.apply(egraph, &matches)
    }

    /// Stages one application against a *read-only* e-graph: evaluates the
    /// side condition and, if it passes, symbolically instantiates the
    /// right-hand side into a [`StagedApp`] without mutating anything.
    /// Returns `None` when the condition rejects the match.
    ///
    /// `base` must be the e-graph's [`EGraph::id_space_size`] at staging
    /// time; see [`ApplyLog`] for the planned-id encoding. Committing the
    /// staged applications in staging order ([`EGraph::commit_staged`])
    /// reproduces the exact `add`/`union` sequence of
    /// [`Rewrite::apply_capped`] over the same matches.
    pub fn stage(
        &self,
        egraph: &EGraph<L, N>,
        eclass: Id,
        subst: &Subst,
        base: usize,
    ) -> Option<StagedApp<L>> {
        if let Some(cond) = &self.condition {
            if !cond(egraph, eclass, subst) {
                return None;
            }
        }
        Some(self.applier.stage(eclass, subst, base))
    }
}

/// One staged rewrite application: the right-hand side instantiated
/// *symbolically* (no e-graph mutation, no memo probes) plus the union
/// request — the `AddLog`/`UnionLog` pair a parallel apply worker emits.
///
/// Children of the staged e-nodes use the planned-id encoding described on
/// [`ApplyLog`]: an id below the log's `base` names an existing e-class
/// (taken verbatim from the substitution), an id at or above it names an
/// earlier entry of `adds` within this same application.
#[derive(Debug, Clone)]
pub struct StagedApp<L> {
    /// The instantiated right-hand-side e-nodes, in applier AST order
    /// (children before parents). Committing replays one [`EGraph::add`]
    /// per entry, in order.
    pub adds: Vec<L>,
    /// The e-class the left-hand side matched in; committing unions it
    /// with the resolved `root`.
    pub eclass: Id,
    /// The root of the instantiated right-hand side, in planned-id
    /// encoding.
    pub root: Id,
    /// The e-classes the substitution bound to the applier's variables,
    /// one entry per variable *occurrence* in the applier AST (raw ids;
    /// canonicalize at commit time). Cycle filters use these to run their
    /// leaf-reaches-root check against the evolving e-graph at commit
    /// time, exactly where the in-place apply loop ran it.
    pub bound: Vec<Id>,
}

/// A deterministic log of staged applications, ready for a single
/// sequential commit pass ([`EGraph::commit_log`]).
///
/// `base` is the e-graph's [`EGraph::id_space_size`] when the batch was
/// staged. Every id the e-graph had then is below `base`, so staged nodes
/// can mix existing ids with *planned* ids (`base + k` names the `k`-th
/// `adds` entry of the owning [`StagedApp`]) without ambiguity; the commit
/// pass resolves planned ids to the real ids [`EGraph::add`] returns.
#[derive(Debug, Clone)]
pub struct ApplyLog<L> {
    /// Id-space size at staging time; planned ids start here.
    pub base: usize,
    /// Staged applications in batch order (rule-major, then match order) —
    /// the order the sequential apply loop would have used.
    pub apps: Vec<StagedApp<L>>,
}

impl<L: Language> Pattern<L> {
    /// Symbolically instantiates the pattern as a rewrite right-hand side
    /// under `subst`, producing a [`StagedApp`] instead of mutating an
    /// e-graph — the staging half of [`Pattern::apply_one`]. `base` is the
    /// planned-id origin (see [`ApplyLog`]).
    ///
    /// # Panics
    ///
    /// Panics if a pattern variable is unbound in `subst` (as
    /// [`Pattern::instantiate`] would).
    pub fn stage(&self, eclass: Id, subst: &Subst, base: usize) -> StagedApp<L> {
        let mut ids: Vec<Id> = Vec::with_capacity(self.ast.len());
        let mut adds: Vec<L> = Vec::new();
        let mut bound: Vec<Id> = Vec::new();
        for (_, node) in self.ast.iter() {
            let id = match node {
                ENodeOrVar::Var(v) => {
                    let b = subst
                        .get(*v)
                        .unwrap_or_else(|| panic!("unbound pattern variable {v}"));
                    bound.push(b);
                    b
                }
                ENodeOrVar::ENode(n) => {
                    let planned = Id::from(base + adds.len());
                    adds.push(n.map_children(|c| ids[usize::from(c)]));
                    planned
                }
            };
            ids.push(id);
        }
        StagedApp {
            adds,
            eclass,
            root: *ids.last().expect("pattern is non-empty"),
            bound,
        }
    }
}

/// Work-chunk granularity of [`stage_matches_parallel`]: more chunks than
/// threads so workers load-balance when condition costs are skewed across
/// the batch (same rationale as the sharded search driver).
const CHUNKS_PER_THREAD: usize = 8;

/// Stages a whole gathered match batch — `(rule, match list)` pairs, in
/// apply order — against a read-only e-graph, sharding the flattened
/// candidate list across `n_threads` scoped worker threads. Each worker
/// evaluates conditions and instantiates right-hand sides into a private
/// per-chunk log; the chunk logs are then merged in chunk order (worker
/// index is irrelevant: chunks partition the flat candidate list
/// contiguously), so the returned [`ApplyLog`] is **bit-identical for any
/// thread count** — each candidate's staging is a pure function of the
/// batch-start e-graph.
///
/// `should_stop` (when given) is polled before every candidate — the
/// staging-time analogue of the in-place apply loop's per-candidate
/// wall-clock check; once it returns true, workers stop staging further
/// candidates. Like any time limit, it makes the *cut-off point*
/// nondeterministic, never the staged content before it.
///
/// Side conditions run here, against the batch-start e-graph, rather than
/// interleaved with earlier applications of the same batch. This is
/// outcome-preserving for conditions that are *batch-stable*: pure
/// functions of the matched classes whose verdict is not flipped by the
/// unions and adds of the same batch (TENSAT's shape checks qualify —
/// rules only union shape-compatible classes, so mid-batch merges never
/// change a bound class's shape data). The determinism test battery
/// (proptests plus the all-benchmarks differential suite) enforces this
/// equivalence against the in-place sequential oracle.
///
/// # Panics
///
/// Debug-asserts the e-graph is clean, like the search drivers: matches
/// are gathered on a clean e-graph, and staging reads the same snapshot.
pub fn stage_matches_parallel<L, N>(
    batch: &[(&Rewrite<L, N>, &[SearchMatches])],
    egraph: &EGraph<L, N>,
    n_threads: usize,
    should_stop: Option<&(dyn Fn() -> bool + Sync)>,
) -> ApplyLog<L>
where
    L: Language + Send + Sync,
    N: Analysis<L> + Sync,
    N::Data: Sync,
{
    debug_assert!(
        egraph.is_clean(),
        "stage_matches_parallel requires a clean e-graph"
    );
    let base = egraph.id_space_size();
    // Flatten to (rule index, matched class, substitution) in apply order.
    let candidates: Vec<(usize, Id, &Subst)> = batch
        .iter()
        .enumerate()
        .flat_map(|(ri, (_, matches))| {
            matches
                .iter()
                .flat_map(move |m| m.substs.iter().map(move |s| (ri, m.eclass, s)))
        })
        .collect();
    let total = candidates.len();

    let stage_range = |range: std::ops::Range<usize>, apps: &mut Vec<StagedApp<L>>| -> bool {
        for &(ri, eclass, subst) in &candidates[range] {
            if should_stop.is_some_and(|stop| stop()) {
                return false;
            }
            if let Some(app) = batch[ri].0.stage(egraph, eclass, subst, base) {
                apps.push(app);
            }
        }
        true
    };

    let n_threads = {
        // Same clamp as the search driver: never more workers than the
        // machine can run, never more than one per candidate.
        let max_workers = std::thread::available_parallelism().map_or(4, |n| n.get() * 4);
        n_threads.min(max_workers).min(total.max(1))
    };
    if n_threads <= 1 {
        let mut apps = Vec::new();
        stage_range(0..total, &mut apps);
        return ApplyLog { base, apps };
    }

    let chunk_size = total.div_ceil(n_threads * CHUNKS_PER_THREAD).max(1);
    let n_chunks = total.div_ceil(chunk_size);
    let slots: Vec<OnceLock<Vec<StagedApp<L>>>> = (0..n_chunks).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let worker = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n_chunks {
                break;
            }
            let start = i * chunk_size;
            let end = (start + chunk_size).min(total);
            let mut apps = Vec::new();
            stage_range(start..end, &mut apps);
            let _ = slots[i].set(apps);
        };
        for _ in 1..n_threads {
            scope.spawn(worker);
        }
        // The calling thread is the last worker.
        worker();
    });

    // Deterministic merge: chunk order *is* flat candidate order.
    let mut apps = Vec::new();
    for slot in slots {
        apps.extend(slot.into_inner().unwrap_or_default());
    }
    ApplyLog { base, apps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::test_lang::Math;
    use crate::{ENodeOrVar, RecExpr, Symbol, Var};

    fn sym(s: &str) -> Math {
        Math::Sym(Symbol::new(s))
    }

    fn pat_mul_two() -> Pattern<Math> {
        let mut ast = RecExpr::default();
        let x = ast.add(ENodeOrVar::Var(Var::new("x")));
        let two = ast.add(ENodeOrVar::ENode(Math::Num(2)));
        ast.add(ENodeOrVar::ENode(Math::Mul([x, two])));
        Pattern::new(ast)
    }

    fn pat_shl_one() -> Pattern<Math> {
        let mut ast = RecExpr::default();
        let x = ast.add(ENodeOrVar::Var(Var::new("x")));
        let one = ast.add(ENodeOrVar::ENode(Math::Num(1)));
        ast.add(ENodeOrVar::ENode(Math::Shl([x, one])));
        Pattern::new(ast)
    }

    #[test]
    fn unconditional_rewrite_fires() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let mul = eg.add(Math::Mul([a, two]));
        eg.rebuild();
        let rw: Rewrite<Math, ()> = Rewrite::new("mul2-to-shl", pat_mul_two(), pat_shl_one());
        let n = rw.run(&mut eg);
        assert_eq!(n, 1);
        eg.rebuild();
        let one = eg.lookup(&Math::Num(1)).unwrap();
        let shl = eg.lookup(&Math::Shl([a, one])).unwrap();
        assert_eq!(eg.find(shl), eg.find(mul));
        // Running again changes nothing (already equal).
        assert_eq!(rw.run(&mut eg), 0);
    }

    #[test]
    fn conditional_rewrite_respects_condition() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        eg.add(Math::Mul([a, two]));
        eg.rebuild();
        let rw: Rewrite<Math, ()> = Rewrite::new_conditional(
            "never",
            pat_mul_two(),
            pat_shl_one(),
            Arc::new(|_, _, _| false),
        );
        assert_eq!(rw.run(&mut eg), 0);
    }

    #[test]
    #[should_panic]
    fn rhs_with_unbound_var_panics() {
        let mut rhs = RecExpr::default();
        rhs.add(ENodeOrVar::Var(Var::new("zzz")));
        let _rw: Rewrite<Math, ()> = Rewrite::new("bad", pat_mul_two(), Pattern::new(rhs));
    }

    #[test]
    fn debug_is_informative() {
        let rw: Rewrite<Math, ()> = Rewrite::new("mul2-to-shl", pat_mul_two(), pat_shl_one());
        let dbg = format!("{rw:?}");
        assert!(dbg.contains("mul2-to-shl"));
        assert!(dbg.contains("?x"));
    }
}
