//! [`BitSet`]: a dense bit set over the e-graph's slot space.
//!
//! Lived in `tensat-core::cycles` until the DAG-aware extractor moved into
//! this crate; the cycle-filtering machinery, the extractors' reachability
//! sets, and the ILP encoder's tables all index the same dense slot space
//! ([`EGraph::slot_index`](crate::EGraph::slot_index)), so the set type
//! lives beside the slot tables it indexes. `tensat-core` re-exports it
//! under the old path.

/// A dense bit set over e-class indices.
#[derive(Debug, Clone)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates a bit set able to hold `n` bits, all clear.
    pub fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Sets bit `i`. Returns true if it was newly set.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// True if bit `i` is set.
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Unions `other` into `self`; returns true if anything changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            if new != *a {
                *a = new;
                changed = true;
            }
        }
        changed
    }

    /// Intersects `other` into `self`; returns true if anything changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & *b;
            if new != *a {
                *a = new;
                changed = true;
            }
        }
        changed
    }

    /// True if every bit set in `self` is also set in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clears every bit, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let b = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(wi * 64 + b)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn intersect_and_subset() {
        let mut a = BitSet::new(130);
        let mut b = BitSet::new(130);
        for i in [1, 64, 129] {
            a.insert(i);
        }
        for i in [1, 64] {
            b.insert(i);
        }
        assert!(b.is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(a.intersect_with(&b));
        assert!(!a.intersect_with(&b));
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![1, 64]);
        assert!(a.is_subset(&b) && b.is_subset(&a));
    }

    #[test]
    fn union_and_iter() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(3);
        b.insert(3);
        b.insert(70);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![3, 70]);
        a.clear();
        assert_eq!(a.count(), 0);
        assert_eq!(a.iter_ones().count(), 0);
    }
}
