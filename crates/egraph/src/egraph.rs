//! The [`EGraph`] itself: hash-consed e-node storage, unioning, and
//! congruence-closure rebuilding over dense slot-indexed class tables.

use crate::rewrite::{ApplyLog, StagedApp};
use crate::{Analysis, EClass, Id, Language, RecExpr, UnionFind};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::mem::Discriminant;

/// Sentinel for "this raw id is not (or no longer) a canonical class".
const NO_SLOT: u32 = u32::MAX;

/// Whether `TENSAT_CHECK_INVARIANTS=1` forces the (expensive) full
/// invariant check at the end of every [`EGraph::rebuild`] even in release
/// builds. Debug builds always check. Read once and cached: rebuild is a
/// hot path and the environment cannot change mid-process in any supported
/// configuration.
fn invariant_checks_forced() -> bool {
    static FORCED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FORCED.get_or_init(|| std::env::var("TENSAT_CHECK_INVARIANTS").is_ok_and(|v| v == "1"))
}

/// An e-graph: a set of e-classes, each a set of equivalent e-nodes, with
/// hash-consing (structural sharing) and incremental congruence closure.
///
/// The design follows egg (Willsey et al. 2021): mutations (`add`, `union`)
/// are cheap and may temporarily break the congruence invariant; calling
/// [`EGraph::rebuild`] restores it. Searching (pattern matching, extraction)
/// should only be done on a clean (rebuilt) e-graph.
///
/// # Storage layout
///
/// Classes live in a dense slot table: `slots[s]` holds the class occupying
/// slot `s`, and `slot_of[raw_id]` maps a *canonical* id to its slot, so
/// [`EGraph::eclass`] is a `find` plus two array reads — O(1) on the
/// e-matching hot path, where the old `BTreeMap` storage paid a tree walk
/// per [`crate::Instruction`]. Live slots are always in ascending-id order:
/// fresh classes append, a union tombstones the absorbed class's slot in
/// place, and [`EGraph::rebuild`] compacts the tombstones away. Two side
/// tables run parallel to `slots`: per-class touch stamps (incremental
/// search) and the interned analysis *kind tag* ([`Analysis::kind_tag`],
/// read by tag-mask guards), so the hottest per-candidate reads never touch
/// the `EClass` itself. The operator index is maintained incrementally at
/// `add`/`union` time (a class's operator set only ever grows), and
/// `rebuild` repairs congruence with worklists proportional to the classes
/// actually touched instead of re-canonicalizing the whole e-graph.
///
/// In addition to the egg feature set, this e-graph supports a *filter set*
/// of e-nodes that are considered removed: TENSAT's efficient cycle
/// filtering (paper §5.2, Algorithm 2) resolves cycles by adding the
/// offending e-nodes to this set; pattern matching and extraction skip them.
///
/// Every read accessor used by pattern search (`find`, `eclass`, `lookup`,
/// `is_filtered`, `classes_with_op`, `classes`) takes `&self` and avoids
/// interior mutability — in particular [`EGraph::find`] does *not* path
/// compress — so a clean e-graph can be shared across threads: `EGraph` is
/// `Sync` whenever `L`, `N`, and `N::Data` are. The parallel e-matching
/// driver ([`crate::search_all_parallel`]) relies on this.
///
/// # Examples
///
/// ```
/// use tensat_egraph::{EGraph, Id, Symbol};
/// use tensat_egraph::doctest_lang::SimpleMath as Math;
/// let mut eg: EGraph<Math, ()> = EGraph::new(());
/// let a = eg.add(Math::Sym(Symbol::new("a")));
/// let two = eg.add(Math::Num(2));
/// let mul = eg.add(Math::Mul([a, two]));
/// let mul2 = eg.add(Math::Mul([a, two]));
/// assert_eq!(mul, mul2); // hash-consing
/// let one = eg.add(Math::Num(1));
/// let shl = eg.add(Math::Shl([a, one]));
/// eg.union(mul, shl);
/// eg.rebuild();
/// assert_eq!(eg.find(mul), eg.find(shl));
/// ```
#[derive(Clone)]
pub struct EGraph<L: Language, N: Analysis<L>> {
    /// The user-provided analysis value (e.g. configuration for shape
    /// inference). Per-class data lives in each [`EClass`].
    pub analysis: N,
    unionfind: UnionFind,
    memo: HashMap<L, Id>,
    /// Dense class storage in ascending-id order among live entries; `None`
    /// marks a class absorbed by a union since the last rebuild (compacted
    /// away by [`EGraph::rebuild`]).
    slots: Vec<Option<EClass<L, N::Data>>>,
    /// Raw id → slot. Only entries for canonical ids are meaningful;
    /// absorbed ids hold [`NO_SLOT`].
    slot_of: Vec<u32>,
    /// Side table parallel to `slots`: stamp of the last event that could
    /// have changed the matches rooted in the class (see
    /// [`EGraph::watermark`]).
    touch: Vec<u64>,
    /// Side table parallel to `slots`: interned kind tag of the class data
    /// ([`Analysis::kind_tag`]), refreshed whenever the data is written.
    tags: Vec<u8>,
    /// Side table parallel to `slots`: operator discriminants present in
    /// the class. Grow-only (nodes are never removed from a class), which
    /// is what makes incremental operator-index upkeep sound.
    class_ops: Vec<Vec<Discriminant<L>>>,
    /// Number of live (non-tombstoned) slots.
    live: usize,
    /// Worklist of classes whose parent lists must be congruence-repaired:
    /// the surviving root of every union performed since the last rebuild.
    pending: Vec<Id>,
    /// Worklist of (e-node, class) pairs whose analysis data must be
    /// re-computed.
    analysis_pending: Vec<(L, Id)>,
    /// Worklist of classes whose node lists must be re-canonicalized:
    /// union roots plus the owning classes of repaired parent nodes.
    node_repair: Vec<Id>,
    /// E-nodes considered removed (TENSAT cycle filter list). Keys are kept
    /// canonical with respect to the union-find as of the last rebuild.
    filtered: HashSet<L>,
    /// True if a union since the last rebuild may have staled filter keys.
    filtered_dirty: bool,
    /// Global insertion counter used to stamp e-node births and class
    /// touches.
    ticker: u64,
    /// Whether the congruence invariant currently holds.
    clean: bool,
    /// Number of successful (non-trivial) unions performed since creation.
    union_count: usize,
    /// Total e-nodes across all classes, maintained incrementally so limit
    /// checks in hot loops are O(1).
    num_nodes: usize,
    /// Operator index: maps an operator discriminant to the sorted, canonical
    /// ids of the classes containing at least one node with that operator
    /// (filtered nodes included — the matcher re-checks the filter set).
    /// Maintained incrementally by `add` and `union`.
    op_index: HashMap<Discriminant<L>, Vec<Id>>,
    /// Value of `ticker` at the end of the last rebuild; touch propagation
    /// seeds from classes touched since then.
    last_rebuild_ticker: u64,
    /// Whether any caller has taken a watermark ([`EGraph::watermark`]).
    /// Per-class touch *stamping* is always on (O(1) field writes), but the
    /// rebuild-time propagation to transitive parents — an extra pass over
    /// the parent edges — only runs once incremental search is in use.
    touch_tracking: bool,
}

impl<L: Language, N: Analysis<L>> EGraph<L, N> {
    /// Creates an empty e-graph with the given analysis.
    pub fn new(analysis: N) -> Self {
        EGraph {
            analysis,
            unionfind: UnionFind::new(),
            memo: HashMap::new(),
            slots: vec![],
            slot_of: vec![],
            touch: vec![],
            tags: vec![],
            class_ops: vec![],
            live: 0,
            pending: vec![],
            analysis_pending: vec![],
            node_repair: vec![],
            filtered: HashSet::new(),
            filtered_dirty: false,
            ticker: 0,
            clean: true,
            union_count: 0,
            num_nodes: 0,
            op_index: HashMap::new(),
            last_rebuild_ticker: 0,
            touch_tracking: false,
        }
    }

    /// True if the congruence invariant holds (no pending repairs).
    pub fn is_clean(&self) -> bool {
        self.clean
    }

    /// The number of e-classes.
    pub fn number_of_classes(&self) -> usize {
        self.live
    }

    /// The number of slots in the dense class tables — the exclusive upper
    /// bound of [`EGraph::slot_index`]. On a clean e-graph every slot is
    /// live, so this equals [`EGraph::number_of_classes`]; between a union
    /// and the next rebuild it also counts tombstoned slots. Extractors and
    /// cycle analyses size their per-class tables with this so they share
    /// the e-graph's class index space.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// The dense slot of the class containing `id` (canonicalized first),
    /// or `None` if the id does not name a live class. Slots are stable
    /// between rebuilds; [`EGraph::rebuild`] compacts them, so slot indices
    /// must not be held across a rebuild.
    #[inline]
    pub fn slot_index(&self, id: Id) -> Option<usize> {
        let id = self.find(id);
        match self.slot_of.get(usize::from(id)) {
            Some(&s) if s != NO_SLOT => Some(s as usize),
            _ => None,
        }
    }

    /// The total number of e-nodes across all classes (including filtered
    /// nodes; see [`EGraph::num_unfiltered_nodes`]). O(1): the count is
    /// maintained incrementally so it can be polled inside apply loops.
    pub fn total_number_of_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The number of e-nodes not in the filter set.
    pub fn num_unfiltered_nodes(&self) -> usize {
        self.classes()
            .flat_map(|c| c.nodes.iter())
            .filter(|n| !self.filtered.contains(*n))
            .count()
    }

    /// Number of successful unions performed so far.
    pub fn union_count(&self) -> usize {
        self.union_count
    }

    /// A deep copy of the e-graph: the snapshot/replay primitive for
    /// strategies that expand several candidate states from one parent
    /// (e.g. guided exploration). Ids, slots, match results, and the
    /// filter set on the snapshot are identical to the original until
    /// either side is mutated; neither copy observes the other's changes.
    pub fn snapshot(&self) -> Self
    where
        Self: Clone,
    {
        self.clone()
    }

    /// Canonicalizes an e-class id.
    #[inline]
    pub fn find(&self, id: Id) -> Id {
        self.unionfind.find(id)
    }

    /// Canonicalizes an e-class id with path compression.
    pub fn find_mut(&mut self, id: Id) -> Id {
        self.unionfind.find_mut(id)
    }

    /// Returns the canonical form of an e-node (children canonicalized).
    pub fn canonicalize(&self, enode: &L) -> L {
        enode.map_children(|c| self.find(c))
    }

    /// Iterates over all e-classes in ascending id order.
    pub fn classes(&self) -> impl Iterator<Item = &EClass<L, N::Data>> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Iterates mutably over all e-classes in ascending id order.
    pub fn classes_mut(&mut self) -> impl Iterator<Item = &mut EClass<L, N::Data>> {
        self.slots.iter_mut().filter_map(Option::as_mut)
    }

    /// Looks up an e-node, returning the canonical id of its class if it is
    /// already represented.
    pub fn lookup(&self, enode: &L) -> Option<Id> {
        let enode = self.canonicalize(enode);
        self.memo.get(&enode).map(|&id| self.find(id))
    }

    /// Adds an e-node, returning the id of its class. If an equivalent
    /// e-node already exists, no new class is created (hash-consing).
    pub fn add(&mut self, enode: L) -> Id {
        let enode = enode.map_children(|c| self.find_mut(c));
        if let Some(&existing) = self.memo.get(&enode) {
            return self.find_mut(existing);
        }
        let id = self.unionfind.make_set();
        let data = N::make(self, &enode);
        let tag = N::kind_tag(&data);
        debug_assert!(tag < 32, "Analysis::kind_tag must return a tag below 32");
        let birth = self.ticker;
        self.ticker += 1;
        // Register this node as a parent of each child class.
        for &child in enode.children() {
            let child = self.find(child);
            let slot = self.slot_of[usize::from(child)] as usize;
            self.slots[slot]
                .as_mut()
                .expect("child class must exist")
                .parents
                .push((enode.clone(), id));
        }
        let class = EClass {
            id,
            nodes: vec![enode.clone()],
            node_birth: vec![birth],
            data,
            parents: vec![],
        };
        let op = enode.discriminant();
        debug_assert_eq!(usize::from(id), self.slot_of.len());
        self.slot_of.push(self.slots.len() as u32);
        self.slots.push(Some(class));
        self.touch.push(birth);
        self.tags.push(tag);
        self.class_ops.push(vec![op]);
        self.live += 1;
        // Keep the operator index live across adds: plain adds preserve
        // cleanliness (no congruence repair is pending), so searches between
        // adds are legal and must see the new class. Fresh ids are strictly
        // increasing, so pushing keeps each bucket sorted.
        self.op_index.entry(op).or_default().push(id);
        self.memo.insert(enode, id);
        self.num_nodes += 1;
        N::modify(self, id);
        id
    }

    /// Adds every node of `expr`, returning the id of the class containing
    /// the root.
    ///
    /// # Panics
    ///
    /// Panics if `expr` is empty.
    pub fn add_expr(&mut self, expr: &RecExpr<L>) -> Id {
        let mut ids: Vec<Id> = Vec::with_capacity(expr.len());
        for (_, node) in expr.iter() {
            let node = node.map_children(|c| ids[usize::from(c)]);
            ids.push(self.add(node));
        }
        *ids.last().expect("cannot add an empty expression")
    }

    /// Looks up the class of an expression without adding it.
    pub fn lookup_expr(&self, expr: &RecExpr<L>) -> Option<Id> {
        let mut ids: Vec<Id> = Vec::with_capacity(expr.len());
        for (_, node) in expr.iter() {
            let node = node.map_children(|c| ids[usize::from(c)]);
            ids.push(self.lookup(&node)?);
        }
        ids.last().copied()
    }

    /// Unions two e-classes, returning the canonical id of the merged class
    /// and whether anything actually changed.
    ///
    /// The absorbed class's nodes and parent list are *moved* into the
    /// surviving root (no clones); the only copies taken are the parent
    /// snapshots queued for analysis repair, and only when
    /// [`Analysis::merge`] reports the corresponding side changed.
    pub fn union(&mut self, a: Id, b: Id) -> (Id, bool) {
        let a = self.find_mut(a);
        let b = self.find_mut(b);
        if a == b {
            return (a, false);
        }
        self.clean = false;
        self.filtered_dirty = true;
        self.union_count += 1;
        let root = self.unionfind.union(a, b);
        let other = if root == a { b } else { a };

        let other_slot = self.slot_of[usize::from(other)] as usize;
        let other_class = self.slots[other_slot]
            .take()
            .expect("non-root class must exist");
        self.slot_of[usize::from(other)] = NO_SLOT;
        self.live -= 1;
        let root_slot = self.slot_of[usize::from(root)] as usize;

        // Operator-index upkeep: the absorbed id leaves its buckets, the
        // root enters the buckets of any operator it just gained. A class's
        // operator set only ever grows (nodes are never removed), so this
        // is the *only* place merged membership changes.
        let other_ops = std::mem::take(&mut self.class_ops[other_slot]);
        for op in other_ops {
            let bucket = self.op_index.get_mut(&op).expect("op was indexed");
            if let Ok(i) = bucket.binary_search(&other) {
                bucket.remove(i);
            }
            if !self.class_ops[root_slot].contains(&op) {
                self.class_ops[root_slot].push(op);
                if let Err(i) = bucket.binary_search(&root) {
                    bucket.insert(i, root);
                }
            }
        }

        self.touch[root_slot] = self.touch[root_slot]
            .max(self.touch[other_slot])
            .max(self.ticker);
        self.ticker += 1;

        let root_class = self.slots[root_slot]
            .as_mut()
            .expect("root class must exist");
        // Merge the analysis data *before* concatenating the parent lists:
        // at this point `root_class.parents` is exactly the root's previous
        // parent set and `other_class.parents` the absorbed one's, so the
        // analysis worklist can be fed from them directly — no snapshot
        // clones, and none at all when the data is unchanged.
        let did = self.analysis.merge(&mut root_class.data, other_class.data);
        if did.0 {
            self.analysis_pending
                .extend(root_class.parents.iter().cloned());
        }
        if did.1 {
            self.analysis_pending
                .extend(other_class.parents.iter().cloned());
        }
        root_class.nodes.extend(other_class.nodes);
        root_class.node_birth.extend(other_class.node_birth);
        root_class.parents.extend(other_class.parents);
        root_class.id = root;
        self.tags[root_slot] = N::kind_tag(&root_class.data);
        // The root's parent list (now holding the absorbed class's parents
        // too) must be congruence-repaired; its node list (now holding the
        // absorbed nodes) must be re-canonicalized and deduplicated.
        self.pending.push(root);
        self.node_repair.push(root);
        N::modify(self, root);
        (root, true)
    }

    /// The size of the id space: one more than the largest id ever handed
    /// out (live or absorbed). Every id the e-graph has ever returned is
    /// below this bound, which is what lets staged-apply logs
    /// ([`crate::ApplyLog`]) encode *planned* ids as `id_space_size() + k`
    /// without colliding with real ones.
    pub fn id_space_size(&self) -> usize {
        self.unionfind.size()
    }

    /// Commits one staged application ([`crate::StagedApp`]): replays one
    /// [`EGraph::add`] per staged e-node (resolving planned ids against the
    /// nodes materialized so far) and then unions the matched class with
    /// the instantiated root — byte-for-byte the `instantiate` + `union`
    /// sequence the in-place applier would have run. Returns the merged
    /// class and whether the union changed anything.
    ///
    /// `base` must be the owning log's planned-id origin (the id-space size
    /// at staging time). Ids below `base` pass through untouched — `add`
    /// canonicalizes them exactly as the sequential path would; mid-batch
    /// merges of bound classes are therefore observed identically.
    pub fn commit_staged(&mut self, app: &StagedApp<L>, base: usize) -> (Id, bool) {
        let mut materialized: Vec<Id> = Vec::with_capacity(app.adds.len());
        let resolve = |materialized: &[Id], c: Id| {
            if usize::from(c) < base {
                c
            } else {
                materialized[usize::from(c) - base]
            }
        };
        for node in &app.adds {
            let concrete = node.map_children(|c| resolve(&materialized, c));
            let id = self.add(concrete);
            materialized.push(id);
        }
        let root = resolve(&materialized, app.root);
        self.union(app.eclass, root)
    }

    /// Commits a whole staged-apply log ([`crate::ApplyLog`]) in log order,
    /// checking the node limit *before each application* — the same cadence
    /// as [`crate::Rewrite::apply_capped`]. Returns the number of effective
    /// applications (at least one node added or a union that changed
    /// something) and whether the node limit cut the commit short.
    ///
    /// Does not rebuild; the caller runs the normal worklist-based
    /// [`EGraph::rebuild`] after the commit pass, exactly as after an
    /// in-place apply loop.
    pub fn commit_log(&mut self, log: &ApplyLog<L>, node_limit: usize) -> (usize, bool) {
        let mut applied = 0;
        for app in &log.apps {
            if self.total_number_of_nodes() >= node_limit {
                return (applied, true);
            }
            let before = self.num_nodes;
            let (_, did_union) = self.commit_staged(app, log.base);
            if did_union || self.num_nodes > before {
                applied += 1;
            }
        }
        (applied, false)
    }

    /// The memo (hashcons) contents as an owned list of `(e-node, id)`
    /// pairs, in unspecified order. A test/debug accessor: determinism
    /// suites sort and compare it across runs to prove two e-graphs are
    /// bit-identical below the class level.
    pub fn memo_snapshot(&self) -> Vec<(L, Id)> {
        self.memo.iter().map(|(n, &id)| (n.clone(), id)).collect()
    }

    /// Restores the congruence and analysis invariants after a batch of
    /// `add`/`union` calls. Returns the number of unions performed during
    /// the repair.
    ///
    /// Repair work is proportional to the classes actually touched since
    /// the last rebuild: the parent lists of union roots are canonicalized
    /// in place (keeping the memo exact by removing each entry's previous
    /// key form before re-inserting the canonical one), only the node lists
    /// of touched classes are re-canonicalized, the operator index needs no
    /// repair at all (it is maintained by `add`/`union`), and tombstoned
    /// slots are compacted away at the end. In debug builds — or in any
    /// build when `TENSAT_CHECK_INVARIANTS=1` is set — the full
    /// [`EGraph::check_invariants`] validator runs after every rebuild.
    pub fn rebuild(&mut self) -> usize {
        let mut repairs = 0;
        loop {
            // Congruence repair, class-at-a-time over the union roots.
            while let Some(class) = self.pending.pop() {
                repairs += self.repair_parents(class);
            }
            // Analysis repair.
            while let Some((node, class)) = self.analysis_pending.pop() {
                let class = self.find_mut(class);
                let node = node.map_children(|c| self.find_mut(c));
                let data = N::make(self, &node);
                let slot = self.slot_of[usize::from(class)] as usize;
                let class_ref = self.slots[slot].as_mut().expect("class must exist");
                let did = self.analysis.merge(&mut class_ref.data, data);
                self.tags[slot] = N::kind_tag(&class_ref.data);
                if did.0 {
                    let parents = class_ref.parents.clone();
                    self.analysis_pending.extend(parents);
                    N::modify(self, class);
                }
            }
            if self.pending.is_empty() && self.analysis_pending.is_empty() {
                break;
            }
        }
        self.repair_class_nodes();
        self.sweep_memo_if_stale();
        self.refresh_filtered();
        self.compact_slots();
        self.propagate_touches();
        self.clean = true;
        if cfg!(debug_assertions) || invariant_checks_forced() {
            self.check_invariants();
        }
        repairs
    }

    /// Canonicalizes one class's parent list in place and re-establishes
    /// the congruence invariant for it: every entry's previous key form is
    /// removed from the memo, the canonical form re-inserted, and a key
    /// collision (two parents became congruent) triggers a union. Returns
    /// the number of unions performed.
    fn repair_parents(&mut self, class: Id) -> usize {
        let class = self.find_mut(class);
        let slot = self.slot_of[usize::from(class)] as usize;
        let mut parents = std::mem::take(
            &mut self.slots[slot]
                .as_mut()
                .expect("pending class must be live")
                .parents,
        );
        if parents.is_empty() {
            return 0;
        }
        for (n, p) in parents.iter_mut() {
            // Remove the entry under its previous key *before*
            // canonicalizing: the parent list always holds the exact form
            // last inserted into the memo, so the memo never accumulates
            // stale keys from this entry.
            self.memo.remove(n);
            *n = n.map_children(|c| self.unionfind.find_mut(c));
            *p = self.unionfind.find_mut(*p);
        }
        parents.sort_unstable();
        parents.dedup();
        let mut repairs = 0;
        for (n, p) in &parents {
            // The owning class's node list now holds a stale form of `n`.
            self.node_repair.push(*p);
            if let Some(old) = self.memo.insert(n.clone(), *p) {
                let old = self.find_mut(old);
                let p = self.find_mut(*p);
                if old != p {
                    let (_, did) = self.union(old, p);
                    if did {
                        repairs += 1;
                    }
                }
            }
        }
        // The unions above may have absorbed `class` itself; hand the
        // repaired entries to whatever root now owns them (a re-queued root
        // re-processes them — idempotently — on a later pop).
        let root = self.find_mut(class);
        let slot = self.slot_of[usize::from(root)] as usize;
        self.slots[slot]
            .as_mut()
            .expect("union root must be live")
            .parents
            .extend(parents);
        repairs
    }

    /// Re-canonicalizes, deduplicates (keeping the earliest birth stamp),
    /// and sorts the node lists of the classes queued in `node_repair` —
    /// exactly the classes whose nodes could have gone stale: union roots
    /// and owners of repaired parent nodes.
    fn repair_class_nodes(&mut self) {
        let mut ids: Vec<Id> = std::mem::take(&mut self.node_repair)
            .into_iter()
            .map(|id| self.find_mut(id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        for id in ids {
            let slot = self.slot_of[usize::from(id)] as usize;
            let uf = &mut self.unionfind;
            let class = self.slots[slot].as_mut().expect("repaired class is live");
            let old_len = class.nodes.len();
            let mut dedup: HashMap<L, u64> = HashMap::with_capacity(old_len);
            for (node, birth) in class.nodes.drain(..).zip(class.node_birth.drain(..)) {
                let node = node.map_children(|c| uf.find_mut(c));
                let entry = dedup.entry(node).or_insert(birth);
                *entry = (*entry).min(birth);
            }
            let mut pairs: Vec<(L, u64)> = dedup.into_iter().collect();
            pairs.sort();
            class.nodes = pairs.iter().map(|(n, _)| n.clone()).collect();
            class.node_birth = pairs.iter().map(|(_, b)| *b).collect();
            let new_len = class.nodes.len();
            self.num_nodes -= old_len - new_len;
        }
    }

    /// Collapses stale memo keys. Parent repair removes each entry's
    /// previous key eagerly, but a chain of unions in one batch can strand
    /// an intermediate form: a node's key is updated via child `a`'s parent
    /// list, then child `c` is absorbed and `c`'s (older) copy of the entry
    /// no longer names the key that is actually in the map. Stale keys are
    /// harmless for lookups (queries are canonical) but break memo
    /// exactness, so they are swept here. The sweep is skipped entirely
    /// when the count proves the memo exact — `memo.len()` equals the node
    /// count exactly when every canonical node has its one canonical entry
    /// and nothing else — which is the common case for add-only or
    /// shallow-union batches.
    fn sweep_memo_if_stale(&mut self) {
        if self.memo.len() == self.num_nodes {
            return;
        }
        let memo = std::mem::take(&mut self.memo);
        self.memo.reserve(self.num_nodes);
        for (node, id) in memo {
            let node = node.map_children(|c| self.unionfind.find_mut(c));
            let id = self.unionfind.find_mut(id);
            self.memo.insert(node, id);
        }
    }

    /// Re-canonicalizes the filter set, if any union since the last rebuild
    /// could have staled its keys.
    fn refresh_filtered(&mut self) {
        if !self.filtered_dirty {
            return;
        }
        self.filtered_dirty = false;
        if self.filtered.is_empty() {
            return;
        }
        let filtered = std::mem::take(&mut self.filtered);
        self.filtered = filtered
            .into_iter()
            .map(|n| n.map_children(|c| self.unionfind.find_mut(c)))
            .collect();
    }

    /// Removes tombstoned slots, preserving ascending-id order of the
    /// survivors, and rewrites the slot map accordingly.
    fn compact_slots(&mut self) {
        if self.live == self.slots.len() {
            return;
        }
        let mut w = 0;
        for r in 0..self.slots.len() {
            if self.slots[r].is_some() {
                if w != r {
                    self.slots.swap(w, r);
                    self.touch[w] = self.touch[r];
                    self.tags[w] = self.tags[r];
                    self.class_ops[w] = std::mem::take(&mut self.class_ops[r]);
                }
                let id = self.slots[w].as_ref().expect("just checked").id;
                self.slot_of[usize::from(id)] = w as u32;
                w += 1;
            }
        }
        self.slots.truncate(w);
        self.touch.truncate(w);
        self.tags.truncate(w);
        self.class_ops.truncate(w);
    }

    /// Propagates touch stamps to transitive parents: a class whose (direct
    /// or indirect) child gained nodes or was merged can root *new* pattern
    /// matches even though its own node list is unchanged, so incremental
    /// search must revisit it. Runs after the repair passes, when parent
    /// entries canonicalize cleanly. The parent-edge pass is skipped until
    /// a watermark has been taken — non-incremental users pay nothing; the
    /// seed window below only grows while skipped, so the first tracked
    /// rebuild conservatively covers the gap.
    fn propagate_touches(&mut self) {
        if self.touch_tracking {
            let since = self.last_rebuild_ticker;
            let stamp = self.ticker;
            let queue: Vec<Id> = self
                .slots
                .iter()
                .enumerate()
                .filter_map(|(s, slot)| {
                    slot.as_ref()
                        .filter(|_| self.touch[s] >= since)
                        .map(|c| c.id)
                })
                .collect();
            self.propagate_stamp(queue, stamp);
            // Consume the stamp so a watermark taken after this rebuild is
            // strictly greater than every touch recorded so far.
            self.ticker = stamp + 1;
            self.last_rebuild_ticker = self.ticker;
        }
    }

    /// BFS from `queue` through parent edges, stamping every reached class
    /// with `stamp`. Parent targets are canonicalized on the way (entries
    /// may name absorbed classes between repairs of their owners).
    fn propagate_stamp(&mut self, mut queue: Vec<Id>, stamp: u64) {
        while let Some(id) = queue.pop() {
            let slot = self.slot_of[usize::from(id)] as usize;
            let parents: Vec<Id> = self.slots[slot]
                .as_ref()
                .expect("queued class is live")
                .parents
                .iter()
                .map(|&(_, p)| self.find(p))
                .collect();
            for p in parents {
                let pslot = self.slot_of[usize::from(p)] as usize;
                if self.touch[pslot] < stamp {
                    self.touch[pslot] = stamp;
                    queue.push(p);
                }
            }
        }
    }

    /// The current watermark: a stamp strictly greater than every e-node
    /// birth and class touch recorded so far. Snapshot it on a *clean*
    /// e-graph, mutate and [`EGraph::rebuild`], and pass the snapshot to
    /// [`crate::Pattern::search_since`] to restrict matching to classes
    /// whose match set may have changed.
    ///
    /// Taking a watermark enables rebuild-time touch propagation (hence
    /// `&mut self`): events from this point on are propagated to transitive
    /// parent classes, which is what makes `search_since` honest.
    pub fn watermark(&mut self) -> u64 {
        self.touch_tracking = true;
        self.ticker
    }

    /// The stamp of the last event that could have changed the set of
    /// pattern matches rooted in `id`'s class: a node added there, a union
    /// involving it, or (after a rebuild) any such event in a transitive
    /// child class. One `find` plus one dense array read — this is the
    /// incremental-search test on the match hot path.
    ///
    /// # Panics
    ///
    /// Panics if the id does not name a live class.
    #[inline]
    pub fn last_touched(&self, id: Id) -> u64 {
        let id = self.find(id);
        self.touch[self.slot_of[usize::from(id)] as usize]
    }

    /// The interned kind tag ([`Analysis::kind_tag`]) of the class
    /// containing `id`, read from the dense side table. One `find` plus one
    /// array read — tag-mask guards ([`crate::Guard::tags`]) evaluate from
    /// this without borrowing the class data.
    ///
    /// # Panics
    ///
    /// Panics if the id does not name a live class.
    #[inline]
    pub fn kind_tag(&self, id: Id) -> u8 {
        let id = self.find(id);
        self.tags[self.slot_of[usize::from(id)] as usize]
    }

    /// The canonical ids of the classes containing at least one e-node with
    /// the given operator discriminant (see [`Language::discriminant`]), in
    /// ascending id order. Filtered nodes are indexed too — the index
    /// over-approximates, callers must still check the filter set.
    pub fn classes_with_op(&self, op: Discriminant<L>) -> &[Id] {
        self.op_index.get(&op).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Marks an e-node as filtered (treated as removed). The node is
    /// canonicalized before insertion. Filtered nodes are skipped by pattern
    /// matching and extraction but remain stored in their class.
    pub fn filter_node(&mut self, enode: &L) {
        let node = self.canonicalize(enode);
        self.filtered.insert(node);
    }

    /// True if the e-node is in the filter set.
    pub fn is_filtered(&self, enode: &L) -> bool {
        // The common path has no filtered nodes at all; skip the node clone
        // and child canonicalization that the set probe would need.
        if self.filtered.is_empty() {
            return false;
        }
        let node = self.canonicalize(enode);
        self.filtered.contains(&node)
    }

    /// Number of filtered e-nodes.
    pub fn filtered_count(&self) -> usize {
        self.filtered.len()
    }

    /// Clears the filter set.
    ///
    /// Re-enabling nodes creates pattern matches that did not exist before,
    /// so the owning classes (and, on a clean e-graph, their transitive
    /// parents) are stamped as touched — watermark-restricted searches
    /// ([`crate::Pattern::search_since`]) will revisit them.
    pub fn clear_filtered(&mut self) {
        let filtered = std::mem::take(&mut self.filtered);
        let stamp = self.ticker;
        self.ticker += 1;
        let mut seeds = vec![];
        for node in &filtered {
            if let Some(id) = self.lookup(node) {
                let slot = self.slot_of[usize::from(id)] as usize;
                if self.touch[slot] < stamp {
                    self.touch[slot] = stamp;
                    seeds.push(id);
                }
            }
        }
        if self.clean && self.touch_tracking {
            self.propagate_stamp(seeds, stamp);
        }
        // On a dirty e-graph the parents are stale; the seeds' stamps are
        // >= last_rebuild_ticker, so the next rebuild's touch propagation
        // reaches the ancestors instead.
    }

    /// The birth stamp (global insertion counter) of an e-node, if present.
    pub fn node_birth(&self, class: Id, enode: &L) -> Option<u64> {
        let node = self.canonicalize(enode);
        let c = self.eclass(class);
        c.nodes
            .iter()
            .position(|n| *n == node)
            .map(|i| c.node_birth[i])
    }

    /// Access a class by (possibly non-canonical) id: one `find` plus two
    /// dense array reads.
    ///
    /// # Panics
    ///
    /// Panics if the id does not name a live class.
    #[inline]
    pub fn eclass(&self, id: Id) -> &EClass<L, N::Data> {
        let id = self.find(id);
        self.slot_of
            .get(usize::from(id))
            .and_then(|&s| self.slots.get(s as usize))
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("no class for id {id}"))
    }

    /// Mutable access to a class by (possibly non-canonical) id.
    pub fn eclass_mut(&mut self, id: Id) -> &mut EClass<L, N::Data> {
        let id = self.find(id);
        self.slot_of
            .get(usize::from(id))
            .copied()
            .and_then(|s| self.slots.get_mut(s as usize))
            .and_then(Option::as_mut)
            .unwrap_or_else(|| panic!("no class for id {id}"))
    }

    /// Extracts *some* concrete expression represented by `id`, preferring
    /// small terms (useful for debugging and tests; cost-aware extraction
    /// lives in [`crate::Extractor`]).
    pub fn id_to_expr(&self, id: Id) -> RecExpr<L> {
        use crate::extract::{AstSize, Extractor};
        let extractor = Extractor::new(self, AstSize);
        let (_, expr) = extractor
            .find_best(id)
            .expect("every live class should represent at least one finite term");
        expr
    }

    /// Exhaustively validates the storage invariants; panics (with a
    /// description) on the first violation. O(e-graph), so
    /// [`EGraph::rebuild`] calls it after every repair in debug builds
    /// only — plus the proptest suites; release builds skip it unless the
    /// `TENSAT_CHECK_INVARIANTS=1` environment variable forces it on
    /// (useful for validating long release-mode saturation runs).
    ///
    /// Checked: the slot map is total and exact (every canonical id maps to
    /// the live slot holding its class, tombstones only for absorbed ids,
    /// live count right); on a *clean* e-graph additionally: class node
    /// lists are canonical, sorted, deduplicated; the memo holds exactly
    /// one canonical entry per e-node and nothing else; the incremental
    /// node count is right; the kind-tag side table matches the data; the
    /// operator index and per-class operator sets agree exactly with the
    /// node lists (buckets sorted ascending); and every parent list,
    /// canonicalized, equals the parent set derived from the node lists.
    ///
    /// # Panics
    ///
    /// Panics when an invariant is violated.
    pub fn check_invariants(&self) {
        use std::collections::BTreeSet;
        // --- slot map -------------------------------------------------------
        assert_eq!(
            self.slot_of.len(),
            self.unionfind.size(),
            "slot map must cover every id ever created"
        );
        let mut live = 0;
        for (s, slot) in self.slots.iter().enumerate() {
            if let Some(class) = slot {
                live += 1;
                assert_eq!(
                    self.find(class.id),
                    class.id,
                    "slot {s} holds a non-canonical class {}",
                    class.id
                );
                assert_eq!(
                    self.slot_of[usize::from(class.id)] as usize,
                    s,
                    "slot map disagrees with slot {s}"
                );
            }
        }
        assert_eq!(live, self.live, "live-slot count out of sync");
        for raw in 0..self.slot_of.len() {
            let id = Id::from(raw);
            if self.find(id) == id {
                let s = self.slot_of[raw];
                let ok = s != NO_SLOT
                    && self
                        .slots
                        .get(s as usize)
                        .is_some_and(|slot| slot.as_ref().is_some_and(|c| c.id == id));
                assert!(ok, "canonical id {id} has no live slot");
            }
        }
        if !self.clean {
            // Node lists, memo, and parents are allowed to be stale between
            // rebuilds; only the slot map is unconditionally exact.
            return;
        }

        // --- nodes, memo, tags, operator index ------------------------------
        let mut num_nodes = 0;
        let mut expected_parents: HashMap<Id, BTreeSet<(L, Id)>> = HashMap::new();
        for class in self.classes() {
            let slot = self.slot_of[usize::from(class.id)] as usize;
            assert_eq!(
                self.tags[slot],
                N::kind_tag(&class.data),
                "kind-tag side table stale for class {}",
                class.id
            );
            assert_eq!(
                class.nodes.len(),
                class.node_birth.len(),
                "birth stamps must parallel nodes in class {}",
                class.id
            );
            num_nodes += class.nodes.len();
            let mut node_ops: Vec<Discriminant<L>> = vec![];
            let mut prev: Option<&L> = None;
            for node in &class.nodes {
                assert_eq!(
                    &self.canonicalize(node),
                    node,
                    "non-canonical node in class {}",
                    class.id
                );
                if let Some(prev) = prev {
                    assert!(prev < node, "node list of class {} unsorted", class.id);
                }
                prev = Some(node);
                assert_eq!(
                    self.memo.get(node).map(|&v| self.find(v)),
                    Some(class.id),
                    "memo misses node of class {}",
                    class.id
                );
                let op = node.discriminant();
                if !node_ops.contains(&op) {
                    node_ops.push(op);
                }
                for &child in node.children() {
                    expected_parents
                        .entry(self.find(child))
                        .or_default()
                        .insert((node.clone(), class.id));
                }
            }
            let mut class_ops = self.class_ops[slot].clone();
            assert_eq!(
                class_ops.len(),
                node_ops.len(),
                "operator membership wrong for class {}",
                class.id
            );
            class_ops.retain(|op| node_ops.contains(op));
            assert_eq!(
                class_ops.len(),
                node_ops.len(),
                "operator membership lists an absent operator for class {}",
                class.id
            );
            for op in &node_ops {
                assert!(
                    self.op_index
                        .get(op)
                        .is_some_and(|b| b.binary_search(&class.id).is_ok()),
                    "operator index misses class {}",
                    class.id
                );
            }
        }
        assert_eq!(num_nodes, self.num_nodes, "node count out of sync");
        assert_eq!(
            self.memo.len(),
            num_nodes,
            "memo must hold exactly one entry per e-node (stale keys present)"
        );
        for bucket in self.op_index.values() {
            for pair in bucket.windows(2) {
                assert!(pair[0] < pair[1], "operator-index bucket unsorted");
            }
            for &id in bucket {
                assert_eq!(self.find(id), id, "operator index holds a dead id");
            }
        }

        // --- parents --------------------------------------------------------
        for class in self.classes() {
            let got: BTreeSet<(L, Id)> = class
                .parents
                .iter()
                .map(|(n, p)| (self.canonicalize(n), self.find(*p)))
                .collect();
            let want = expected_parents.remove(&class.id).unwrap_or_default();
            assert_eq!(
                got, want,
                "parent list of class {} inconsistent with child membership",
                class.id
            );
        }
        assert!(
            expected_parents.is_empty(),
            "parent edges recorded for dead classes"
        );
    }

    /// Produces a Graphviz dot rendering of the e-graph (classes as
    /// clusters, e-nodes as records).
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph egraph {\n  compound=true;\n  rankdir=TB;\n");
        for class in self.classes() {
            s.push_str(&format!(
                "  subgraph cluster_{} {{\n    label=\"{}\";\n",
                class.id, class.id
            ));
            for (i, node) in class.nodes.iter().enumerate() {
                let style = if self.filtered.contains(node) {
                    ",style=dashed"
                } else {
                    ""
                };
                s.push_str(&format!(
                    "    n_{}_{} [label=\"{}\"{}];\n",
                    class.id,
                    i,
                    node.display_op(),
                    style
                ));
            }
            s.push_str("  }\n");
        }
        for class in self.classes() {
            for (i, node) in class.nodes.iter().enumerate() {
                for &child in node.children() {
                    let child = self.find(child);
                    s.push_str(&format!(
                        "  n_{}_{} -> n_{}_0 [lhead=cluster_{}];\n",
                        class.id, i, child, child
                    ));
                }
            }
        }
        s.push_str("}\n");
        s
    }
}

impl<L: Language, N: Analysis<L>> fmt::Debug for EGraph<L, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EGraph")
            .field("classes", &self.live)
            .field("nodes", &self.total_number_of_nodes())
            .field("filtered", &self.filtered.len())
            .field("clean", &self.clean)
            .finish()
    }
}

impl<L: Language, N: Analysis<L>> std::ops::Index<Id> for EGraph<L, N> {
    type Output = EClass<L, N::Data>;
    fn index(&self, id: Id) -> &Self::Output {
        self.eclass(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::test_lang::Math;
    use crate::{DidMerge, Symbol};

    fn sym(s: &str) -> Math {
        Math::Sym(Symbol::new(s))
    }

    #[test]
    fn hashcons_dedups() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let b = eg.add(sym("a"));
        assert_eq!(a, b);
        assert_eq!(eg.number_of_classes(), 1);
        let two = eg.add(Math::Num(2));
        let m1 = eg.add(Math::Mul([a, two]));
        let m2 = eg.add(Math::Mul([b, two]));
        assert_eq!(m1, m2);
        assert_eq!(eg.total_number_of_nodes(), 3);
    }

    #[test]
    fn union_merges_classes() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let b = eg.add(sym("b"));
        assert_ne!(eg.find(a), eg.find(b));
        let (_, did) = eg.union(a, b);
        assert!(did);
        let (_, did2) = eg.union(a, b);
        assert!(!did2);
        eg.rebuild();
        assert_eq!(eg.find(a), eg.find(b));
        assert_eq!(eg.number_of_classes(), 1);
        assert_eq!(eg.eclass(a).len(), 2);
    }

    #[test]
    fn congruence_closure_via_rebuild() {
        // If a == b then f(a) == f(b) after rebuild.
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let b = eg.add(sym("b"));
        let two = eg.add(Math::Num(2));
        let fa = eg.add(Math::Mul([a, two]));
        let fb = eg.add(Math::Mul([b, two]));
        assert_ne!(eg.find(fa), eg.find(fb));
        eg.union(a, b);
        eg.rebuild();
        assert_eq!(eg.find(fa), eg.find(fb));
        assert!(eg.is_clean());
    }

    #[test]
    fn nested_congruence() {
        // a == b  implies  g(f(a)) == g(f(b)) through two levels.
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let b = eg.add(sym("b"));
        let one = eg.add(Math::Num(1));
        let fa = eg.add(Math::Add([a, one]));
        let fb = eg.add(Math::Add([b, one]));
        let gfa = eg.add(Math::Mul([fa, fa]));
        let gfb = eg.add(Math::Mul([fb, fb]));
        eg.union(a, b);
        eg.rebuild();
        assert_eq!(eg.find(gfa), eg.find(gfb));
    }

    #[test]
    fn add_expr_and_lookup_expr() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let mut e = RecExpr::default();
        let a = e.add(sym("a"));
        let two = e.add(Math::Num(2));
        let m = e.add(Math::Mul([a, two]));
        e.add(Math::Div([m, two]));
        let root = eg.add_expr(&e);
        assert_eq!(eg.lookup_expr(&e), Some(eg.find(root)));
        assert_eq!(eg.number_of_classes(), 4);
        // Extracting it back gives the same term.
        assert_eq!(eg.id_to_expr(root).to_string(), "(/ (* a 2) 2)");
    }

    #[test]
    fn filtered_nodes_are_tracked() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let node = Math::Mul([a, two]);
        assert!(!eg.is_filtered(&node));
        eg.filter_node(&node);
        assert!(eg.is_filtered(&node));
        assert_eq!(eg.filtered_count(), 1);
        assert_eq!(eg.num_unfiltered_nodes(), 2);
        assert_eq!(eg.total_number_of_nodes(), 3);
        // Filter set survives a rebuild.
        let b = eg.add(sym("b"));
        eg.union(a, b);
        eg.rebuild();
        let node2 = eg.canonicalize(&node);
        assert!(eg.is_filtered(&node2));
        let _ = m;
    }

    #[test]
    fn birth_stamps_are_monotone() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let b_a = eg.node_birth(a, &sym("a")).unwrap();
        let b_m = eg.node_birth(m, &Math::Mul([a, two])).unwrap();
        assert!(b_a < b_m);
    }

    #[test]
    fn union_count_tracks_changes() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let b = eg.add(sym("b"));
        let c = eg.add(sym("c"));
        assert_eq!(eg.union_count(), 0);
        eg.union(a, b);
        eg.union(b, c);
        eg.union(a, c);
        assert_eq!(eg.union_count(), 2);
    }

    #[test]
    fn op_index_tracks_classes_per_operator() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let m1 = eg.add(Math::Mul([a, two]));
        let m2 = eg.add(Math::Mul([two, a]));
        eg.rebuild();
        let mul_key = Math::Mul([a, a]).discriminant();
        let ids = eg.classes_with_op(mul_key);
        assert_eq!(ids, &[eg.find(m1), eg.find(m2)]);
        // Add is absent entirely.
        assert!(eg
            .classes_with_op(Math::Add([a, a]).discriminant())
            .is_empty());
        // Merging the two Mul classes shrinks the bucket after rebuild.
        eg.union(m1, m2);
        eg.rebuild();
        assert_eq!(eg.classes_with_op(mul_key).len(), 1);
        // Num and Sym share no bucket even though both are leaves.
        assert_eq!(eg.classes_with_op(Math::Num(0).discriminant()), &[two]);
        assert_eq!(eg.classes_with_op(sym("zz").discriminant()), &[a]);
    }

    /// Plain adds keep the e-graph clean, so searching between adds is
    /// legal — the operator index must cover classes created since the last
    /// rebuild or the machine searcher silently misses their matches.
    #[test]
    fn op_index_covers_adds_since_last_rebuild() {
        use crate::{ENodeOrVar, Pattern, RecExpr, Var};
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        eg.rebuild();
        // Added after the rebuild; no unions, so the e-graph stays clean.
        let mul = eg.add(Math::Mul([a, two]));
        assert!(eg.is_clean());

        let mut ast = RecExpr::default();
        let x = ast.add(ENodeOrVar::Var(Var::new("x")));
        let two_p = ast.add(ENodeOrVar::ENode(Math::Num(2)));
        ast.add(ENodeOrVar::ENode(Math::Mul([x, two_p])));
        let pat = Pattern::new(ast);
        let ms = pat.search(&eg);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].eclass, eg.find(mul));
        assert_eq!(ms.len(), pat.search_naive(&eg).len());
    }

    /// The operator index must stay exact *between* rebuilds too: a union
    /// performed mid-batch moves the absorbed id out of its buckets and
    /// enrolls the root for any operator it gained, so the next rebuild has
    /// nothing to repair.
    #[test]
    fn op_index_is_maintained_across_unions() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let s = eg.add(Math::Shl([a, two]));
        eg.union(m, s);
        let root = eg.find(m);
        let mul_key = Math::Mul([a, a]).discriminant();
        let shl_key = Math::Shl([a, a]).discriminant();
        assert_eq!(eg.classes_with_op(mul_key), &[root]);
        assert_eq!(eg.classes_with_op(shl_key), &[root]);
        eg.rebuild();
        assert_eq!(eg.classes_with_op(mul_key), &[eg.find(m)]);
        assert_eq!(eg.classes_with_op(shl_key), &[eg.find(m)]);
    }

    /// `clear_filtered` re-enables nodes, creating matches that did not
    /// exist before; the owning classes and their ancestors must count as
    /// touched so watermark-restricted searches revisit them.
    #[test]
    fn clear_filtered_touches_owning_classes_and_ancestors() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let mul = eg.add(Math::Mul([a, two]));
        let outer = eg.add(Math::Add([mul, two]));
        eg.rebuild();
        eg.filter_node(&Math::Mul([a, two]));
        let w = eg.watermark();
        eg.clear_filtered();
        assert!(eg.last_touched(mul) >= w);
        assert!(eg.last_touched(outer) >= w, "ancestors must be stamped");
        assert!(eg.last_touched(a) < w, "children are unaffected");
    }

    #[test]
    fn node_count_stays_consistent_across_rebuilds() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let b = eg.add(sym("b"));
        let two = eg.add(Math::Num(2));
        eg.add(Math::Mul([a, two]));
        eg.add(Math::Mul([b, two]));
        let recount = |eg: &EGraph<Math, ()>| -> usize { eg.classes().map(|c| c.len()).sum() };
        assert_eq!(eg.total_number_of_nodes(), recount(&eg));
        // a == b makes the two Mul nodes congruent: the count must reflect
        // the dedup done during rebuild.
        eg.union(a, b);
        assert_eq!(eg.total_number_of_nodes(), recount(&eg));
        eg.rebuild();
        // a, b, 2, and the single surviving Mul node (the two Mul nodes
        // became congruent and were deduplicated by the rebuild).
        assert_eq!(eg.total_number_of_nodes(), 4);
        assert_eq!(eg.total_number_of_nodes(), recount(&eg));
    }

    #[test]
    fn watermark_and_touch_propagation() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let mul = eg.add(Math::Mul([a, two]));
        let outer = eg.add(Math::Add([mul, two]));
        eg.rebuild();
        let w = eg.watermark();
        // Nothing is touched at or after a fresh watermark.
        assert!(eg.classes().all(|c| eg.last_touched(c.id) < w));
        // Touch the leaf `a`: its transitive parents (mul, outer) must be
        // stamped by the rebuild, the unrelated literal must not.
        let b = eg.add(sym("b"));
        eg.union(a, b);
        eg.rebuild();
        assert!(eg.last_touched(a) >= w);
        assert!(eg.last_touched(mul) >= w);
        assert!(eg.last_touched(outer) >= w);
        assert!(eg.last_touched(two) < w);
    }

    /// The parallel search driver shares `&EGraph` across scoped threads;
    /// this compile-time check pins the `Sync`-cleanliness of the read path
    /// (it breaks if anyone adds interior mutability, e.g. a memoizing
    /// `RefCell`, to a field reachable from the search accessors).
    #[test]
    fn egraph_is_sync_for_sync_parameters() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<EGraph<Math, ()>>();
    }

    #[test]
    fn dot_export_mentions_every_op() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        eg.add(Math::Mul([a, two]));
        eg.rebuild();
        let dot = eg.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains('*'));
        assert!(dot.contains('a'));
    }

    /// Analysis that tracks constant values (constant folding lattice).
    #[derive(Clone, Default)]
    struct ConstFold;
    impl Analysis<Math> for ConstFold {
        type Data = Option<i64>;
        fn make(egraph: &EGraph<Math, Self>, enode: &Math) -> Self::Data {
            let c = |id: Id| egraph.eclass(id).data;
            match enode {
                Math::Num(n) => Some(*n),
                Math::Add([a, b]) => Some(c(*a)? + c(*b)?),
                Math::Mul([a, b]) => Some(c(*a)? * c(*b)?),
                Math::Shl([a, b]) => Some(c(*a)? << c(*b)?),
                Math::Div([a, b]) => {
                    let (a, b) = (c(*a)?, c(*b)?);
                    if b != 0 && a % b == 0 {
                        Some(a / b)
                    } else {
                        None
                    }
                }
                Math::Sym(_) => None,
            }
        }
        fn merge(&mut self, to: &mut Self::Data, from: Self::Data) -> DidMerge {
            match (to.as_ref(), from) {
                (None, Some(v)) => {
                    *to = Some(v);
                    DidMerge(true, false)
                }
                (Some(_), None) => DidMerge(false, true),
                (Some(a), Some(b)) => {
                    assert_eq!(*a, b, "merged classes with different constants");
                    DidMerge(false, false)
                }
                (None, None) => DidMerge(false, false),
            }
        }
        fn kind_tag(data: &Self::Data) -> u8 {
            data.is_some() as u8
        }
    }

    #[test]
    fn analysis_data_propagates_through_unions() {
        let mut eg: EGraph<Math, ConstFold> = EGraph::new(ConstFold);
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let a_plus_2 = eg.add(Math::Add([a, two]));
        assert_eq!(eg.eclass(a_plus_2).data, None);
        assert_eq!(eg.kind_tag(a_plus_2), 0);
        // Learn that a == 3; then a + 2 should fold to 5 after rebuild.
        let three = eg.add(Math::Num(3));
        eg.union(a, three);
        eg.rebuild();
        assert_eq!(eg.eclass(a_plus_2).data, Some(5));
        // The dense kind-tag side table follows the data through repair.
        assert_eq!(eg.kind_tag(a_plus_2), 1);
        assert_eq!(eg.kind_tag(a), 1);
    }

    /// The dense slot tables stay exact through add/union/rebuild cycles:
    /// tombstones appear on union, compaction removes them, and the slot
    /// order always matches ascending canonical-id order (which is what
    /// keeps `classes()` iteration — and with it every match and
    /// extraction order — identical to the old `BTreeMap` storage).
    #[test]
    fn slots_compact_and_stay_in_id_order() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let mut ids = vec![];
        for i in 0..10 {
            ids.push(eg.add(sym(&format!("s{i}"))));
        }
        assert_eq!(eg.num_slots(), 10);
        eg.union(ids[3], ids[7]);
        eg.union(ids[1], ids[9]);
        // Tombstones exist until the rebuild; live count is already right.
        assert_eq!(eg.number_of_classes(), 8);
        assert_eq!(eg.num_slots(), 10);
        eg.rebuild();
        assert_eq!(eg.num_slots(), 8);
        let listed: Vec<Id> = eg.classes().map(|c| c.id).collect();
        let mut sorted = listed.clone();
        sorted.sort();
        assert_eq!(listed, sorted, "classes() must iterate in id order");
        for (expect, &id) in listed.iter().enumerate() {
            assert_eq!(eg.slot_index(id), Some(expect));
        }
        // Absorbed ids resolve to their root's slot.
        assert_eq!(eg.slot_index(ids[7]), eg.slot_index(ids[3]));
        eg.check_invariants();
    }
}
