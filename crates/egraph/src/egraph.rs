//! The [`EGraph`] itself: hash-consed e-node storage, unioning, and
//! congruence-closure rebuilding.

use crate::{Analysis, EClass, Id, Language, RecExpr, UnionFind};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::mem::Discriminant;

/// An e-graph: a set of e-classes, each a set of equivalent e-nodes, with
/// hash-consing (structural sharing) and incremental congruence closure.
///
/// The design follows egg (Willsey et al. 2021): mutations (`add`, `union`)
/// are cheap and may temporarily break the congruence invariant; calling
/// [`EGraph::rebuild`] restores it. Searching (pattern matching, extraction)
/// should only be done on a clean (rebuilt) e-graph.
///
/// In addition to the egg feature set, this e-graph supports a *filter set*
/// of e-nodes that are considered removed: TENSAT's efficient cycle
/// filtering (paper §5.2, Algorithm 2) resolves cycles by adding the
/// offending e-nodes to this set; pattern matching and extraction skip them.
///
/// Every read accessor used by pattern search (`find`, `eclass`, `lookup`,
/// `is_filtered`, `classes_with_op`, `classes`) takes `&self` and avoids
/// interior mutability — in particular [`EGraph::find`] does *not* path
/// compress — so a clean e-graph can be shared across threads: `EGraph` is
/// `Sync` whenever `L`, `N`, and `N::Data` are. The parallel e-matching
/// driver ([`crate::search_all_parallel`]) relies on this.
///
/// # Examples
///
/// ```
/// use tensat_egraph::{EGraph, Id, Symbol};
/// use tensat_egraph::doctest_lang::SimpleMath as Math;
/// let mut eg: EGraph<Math, ()> = EGraph::new(());
/// let a = eg.add(Math::Sym(Symbol::new("a")));
/// let two = eg.add(Math::Num(2));
/// let mul = eg.add(Math::Mul([a, two]));
/// let mul2 = eg.add(Math::Mul([a, two]));
/// assert_eq!(mul, mul2); // hash-consing
/// let one = eg.add(Math::Num(1));
/// let shl = eg.add(Math::Shl([a, one]));
/// eg.union(mul, shl);
/// eg.rebuild();
/// assert_eq!(eg.find(mul), eg.find(shl));
/// ```
#[derive(Clone)]
pub struct EGraph<L: Language, N: Analysis<L>> {
    /// The user-provided analysis value (e.g. configuration for shape
    /// inference). Per-class data lives in each [`EClass`].
    pub analysis: N,
    unionfind: UnionFind,
    memo: HashMap<L, Id>,
    classes: BTreeMap<Id, EClass<L, N::Data>>,
    /// Worklist of (e-node, class) pairs whose congruence must be repaired.
    pending: Vec<(L, Id)>,
    /// Worklist of (e-node, class) pairs whose analysis data must be
    /// re-computed.
    analysis_pending: Vec<(L, Id)>,
    /// E-nodes considered removed (TENSAT cycle filter list). Keys are kept
    /// canonical with respect to the current union-find.
    filtered: HashSet<L>,
    /// Global insertion counter used to stamp e-node births and class
    /// touches.
    ticker: u64,
    /// Whether the congruence invariant currently holds.
    clean: bool,
    /// Number of successful (non-trivial) unions performed since creation.
    union_count: usize,
    /// Total e-nodes across all classes, maintained incrementally so limit
    /// checks in hot loops are O(1).
    num_nodes: usize,
    /// Operator index: maps an operator discriminant to the sorted, canonical
    /// ids of the classes containing at least one node with that operator
    /// (filtered nodes included — the matcher re-checks the filter set).
    /// Rebuilt by [`EGraph::rebuild`]; only valid while the e-graph is clean.
    op_index: HashMap<Discriminant<L>, Vec<Id>>,
    /// Value of `ticker` at the end of the last rebuild; touch propagation
    /// seeds from classes touched since then.
    last_rebuild_ticker: u64,
    /// Whether any caller has taken a watermark ([`EGraph::watermark`]).
    /// Per-class touch *stamping* is always on (O(1) field writes), but the
    /// rebuild-time propagation to transitive parents — an extra pass over
    /// the parent edges — only runs once incremental search is in use.
    touch_tracking: bool,
}

impl<L: Language, N: Analysis<L>> EGraph<L, N> {
    /// Creates an empty e-graph with the given analysis.
    pub fn new(analysis: N) -> Self {
        EGraph {
            analysis,
            unionfind: UnionFind::new(),
            memo: HashMap::new(),
            classes: BTreeMap::new(),
            pending: vec![],
            analysis_pending: vec![],
            filtered: HashSet::new(),
            ticker: 0,
            clean: true,
            union_count: 0,
            num_nodes: 0,
            op_index: HashMap::new(),
            last_rebuild_ticker: 0,
            touch_tracking: false,
        }
    }

    /// True if the congruence invariant holds (no pending repairs).
    pub fn is_clean(&self) -> bool {
        self.clean
    }

    /// The number of e-classes.
    pub fn number_of_classes(&self) -> usize {
        self.classes.len()
    }

    /// The total number of e-nodes across all classes (including filtered
    /// nodes; see [`EGraph::num_unfiltered_nodes`]). O(1): the count is
    /// maintained incrementally so it can be polled inside apply loops.
    pub fn total_number_of_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The number of e-nodes not in the filter set.
    pub fn num_unfiltered_nodes(&self) -> usize {
        self.classes
            .values()
            .flat_map(|c| c.nodes.iter())
            .filter(|n| !self.filtered.contains(*n))
            .count()
    }

    /// Number of successful unions performed so far.
    pub fn union_count(&self) -> usize {
        self.union_count
    }

    /// Canonicalizes an e-class id.
    pub fn find(&self, id: Id) -> Id {
        self.unionfind.find(id)
    }

    /// Canonicalizes an e-class id with path compression.
    pub fn find_mut(&mut self, id: Id) -> Id {
        self.unionfind.find_mut(id)
    }

    /// Returns the canonical form of an e-node (children canonicalized).
    pub fn canonicalize(&self, enode: &L) -> L {
        enode.map_children(|c| self.find(c))
    }

    /// Iterates over all e-classes in id order.
    pub fn classes(&self) -> impl Iterator<Item = &EClass<L, N::Data>> {
        self.classes.values()
    }

    /// Iterates mutably over all e-classes in id order.
    pub fn classes_mut(&mut self) -> impl Iterator<Item = &mut EClass<L, N::Data>> {
        self.classes.values_mut()
    }

    /// Looks up an e-node, returning the canonical id of its class if it is
    /// already represented.
    pub fn lookup(&self, enode: &L) -> Option<Id> {
        let enode = self.canonicalize(enode);
        self.memo.get(&enode).map(|&id| self.find(id))
    }

    /// Adds an e-node, returning the id of its class. If an equivalent
    /// e-node already exists, no new class is created (hash-consing).
    pub fn add(&mut self, enode: L) -> Id {
        let enode = enode.map_children(|c| self.find_mut(c));
        if let Some(&existing) = self.memo.get(&enode) {
            return self.find_mut(existing);
        }
        let id = self.unionfind.make_set();
        let data = N::make(self, &enode);
        let birth = self.ticker;
        self.ticker += 1;
        // Register this node as a parent of each child class.
        for &child in enode.children() {
            let child = self.find(child);
            self.classes
                .get_mut(&child)
                .expect("child class must exist")
                .parents
                .push((enode.clone(), id));
        }
        let class = EClass {
            id,
            nodes: vec![enode.clone()],
            node_birth: vec![birth],
            data,
            parents: vec![],
            touched: birth,
        };
        self.classes.insert(id, class);
        // Keep the operator index live across adds: plain adds preserve
        // cleanliness (no congruence repair is pending), so searches between
        // adds are legal and must see the new class. Fresh ids are strictly
        // increasing, so pushing keeps each bucket sorted.
        self.op_index
            .entry(enode.discriminant())
            .or_default()
            .push(id);
        self.memo.insert(enode, id);
        self.num_nodes += 1;
        N::modify(self, id);
        id
    }

    /// Adds every node of `expr`, returning the id of the class containing
    /// the root.
    ///
    /// # Panics
    ///
    /// Panics if `expr` is empty.
    pub fn add_expr(&mut self, expr: &RecExpr<L>) -> Id {
        let mut ids: Vec<Id> = Vec::with_capacity(expr.len());
        for (_, node) in expr.iter() {
            let node = node.map_children(|c| ids[usize::from(c)]);
            ids.push(self.add(node));
        }
        *ids.last().expect("cannot add an empty expression")
    }

    /// Looks up the class of an expression without adding it.
    pub fn lookup_expr(&self, expr: &RecExpr<L>) -> Option<Id> {
        let mut ids: Vec<Id> = Vec::with_capacity(expr.len());
        for (_, node) in expr.iter() {
            let node = node.map_children(|c| ids[usize::from(c)]);
            ids.push(self.lookup(&node)?);
        }
        ids.last().copied()
    }

    /// Unions two e-classes, returning the canonical id of the merged class
    /// and whether anything actually changed.
    pub fn union(&mut self, a: Id, b: Id) -> (Id, bool) {
        let a = self.find_mut(a);
        let b = self.find_mut(b);
        if a == b {
            return (a, false);
        }
        self.clean = false;
        self.union_count += 1;
        let root = self.unionfind.union(a, b);
        let other = if root == a { b } else { a };

        let other_class = self
            .classes
            .remove(&other)
            .expect("non-root class must exist");
        // The absorbed class's parents may now be congruent to existing
        // nodes; queue them for repair.
        self.pending.extend(other_class.parents.iter().cloned());

        let root_class = self.classes.get_mut(&root).expect("root class must exist");
        let root_parents_snapshot: Vec<(L, Id)> = root_class.parents.clone();

        root_class.nodes.extend(other_class.nodes);
        root_class.node_birth.extend(other_class.node_birth);
        root_class.parents.extend(other_class.parents.clone());
        root_class.id = root;
        root_class.touched = root_class.touched.max(other_class.touched).max(self.ticker);
        self.ticker += 1;

        let did = self.analysis.merge(&mut root_class.data, other_class.data);
        // If the kept data changed, the *root's* previous parents may need
        // their data re-made; if the absorbed data changed, the absorbed
        // class's parents do.
        if did.0 {
            self.analysis_pending.extend(root_parents_snapshot);
        }
        if did.1 {
            self.analysis_pending.extend(other_class.parents);
        }
        N::modify(self, root);
        (root, true)
    }

    /// Restores the congruence and analysis invariants after a batch of
    /// `add`/`union` calls. Returns the number of unions performed during
    /// the repair.
    pub fn rebuild(&mut self) -> usize {
        let mut repairs = 0;
        loop {
            // Congruence repair.
            while let Some((node, class)) = self.pending.pop() {
                let node = node.map_children(|c| self.find_mut(c));
                let class = self.find_mut(class);
                if let Some(old) = self.memo.insert(node, class) {
                    let old = self.find_mut(old);
                    if old != class {
                        let (_, did) = self.union(old, class);
                        if did {
                            repairs += 1;
                        }
                    }
                }
            }
            // Analysis repair.
            while let Some((node, class)) = self.analysis_pending.pop() {
                let class = self.find_mut(class);
                let node = node.map_children(|c| self.find_mut(c));
                let data = N::make(self, &node);
                let class_ref = self.classes.get_mut(&class).expect("class must exist");
                let did = self.analysis.merge(&mut class_ref.data, data);
                if did.0 {
                    let parents = class_ref.parents.clone();
                    self.analysis_pending.extend(parents);
                    N::modify(self, class);
                }
            }
            if self.pending.is_empty() && self.analysis_pending.is_empty() {
                break;
            }
        }
        self.finalize_classes();
        self.propagate_touches();
        self.clean = true;
        repairs
    }

    /// Propagates touch stamps to transitive parents: a class whose (direct
    /// or indirect) child gained nodes or was merged can root *new* pattern
    /// matches even though its own node list is unchanged, so incremental
    /// search must revisit it. Runs after [`EGraph::finalize_classes`], when
    /// parent lists are canonical. The parent-edge pass is skipped until a
    /// watermark has been taken — non-incremental users pay nothing; the
    /// seed window below only grows while skipped, so the first tracked
    /// rebuild conservatively covers the gap.
    fn propagate_touches(&mut self) {
        if self.touch_tracking {
            let since = self.last_rebuild_ticker;
            let stamp = self.ticker;
            let queue: Vec<Id> = self
                .classes
                .iter()
                .filter(|(_, c)| c.touched >= since)
                .map(|(&id, _)| id)
                .collect();
            self.propagate_stamp(queue, stamp);
            // Consume the stamp so a watermark taken after this rebuild is
            // strictly greater than every touch recorded so far.
            self.ticker = stamp + 1;
            self.last_rebuild_ticker = self.ticker;
        }
    }

    /// BFS from `queue` through parent edges, stamping every reached class
    /// with `stamp`. Requires canonical parent lists (a clean e-graph, or
    /// right after [`EGraph::finalize_classes`]).
    fn propagate_stamp(&mut self, mut queue: Vec<Id>, stamp: u64) {
        while let Some(id) = queue.pop() {
            let parents: Vec<Id> = self.classes[&id].parents.iter().map(|&(_, p)| p).collect();
            for p in parents {
                let parent = self.classes.get_mut(&p).expect("parent class must exist");
                if parent.touched < stamp {
                    parent.touched = stamp;
                    queue.push(p);
                }
            }
        }
    }

    /// The current watermark: a stamp strictly greater than every e-node
    /// birth and class touch recorded so far. Snapshot it on a *clean*
    /// e-graph, mutate and [`EGraph::rebuild`], and pass the snapshot to
    /// [`crate::Pattern::search_since`] to restrict matching to classes
    /// whose match set may have changed.
    ///
    /// Taking a watermark enables rebuild-time touch propagation (hence
    /// `&mut self`): events from this point on are propagated to transitive
    /// parent classes, which is what makes `search_since` honest.
    pub fn watermark(&mut self) -> u64 {
        self.touch_tracking = true;
        self.ticker
    }

    /// The canonical ids of the classes containing at least one e-node with
    /// the given operator discriminant (see [`Language::discriminant`]), in
    /// ascending id order. Only meaningful on a clean e-graph: the index is
    /// rebuilt by [`EGraph::rebuild`]. Filtered nodes are indexed too — the
    /// index over-approximates, callers must still check the filter set.
    pub fn classes_with_op(&self, op: Discriminant<L>) -> &[Id] {
        self.op_index.get(&op).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Canonicalizes and deduplicates every class's node list, rebuilds the
    /// parent lists, re-canonicalizes memo keys and the filter set.
    fn finalize_classes(&mut self) {
        // Canonicalize & dedup nodes within each class.
        let ids: Vec<Id> = self.classes.keys().copied().collect();
        for id in ids {
            let mut class = self.classes.remove(&id).expect("class exists");
            let mut dedup: HashMap<L, u64> = HashMap::with_capacity(class.nodes.len());
            for (node, birth) in class.nodes.drain(..).zip(class.node_birth.drain(..)) {
                let node = node.map_children(|c| self.unionfind.find_mut(c));
                let entry = dedup.entry(node).or_insert(birth);
                *entry = (*entry).min(birth);
            }
            let mut pairs: Vec<(L, u64)> = dedup.into_iter().collect();
            pairs.sort();
            class.nodes = pairs.iter().map(|(n, _)| n.clone()).collect();
            class.node_birth = pairs.iter().map(|(_, b)| *b).collect();
            class.parents.clear();
            class.id = id;
            self.classes.insert(id, class);
        }
        // Rebuild parent lists from scratch.
        let mut parent_updates: Vec<(Id, L, Id)> = vec![];
        for (&id, class) in &self.classes {
            for node in &class.nodes {
                for &child in node.children() {
                    parent_updates.push((self.unionfind.find(child), node.clone(), id));
                }
            }
        }
        for (child, node, parent) in parent_updates {
            self.classes
                .get_mut(&child)
                .expect("child class must exist")
                .parents
                .push((node, parent));
        }
        // Re-canonicalize memo.
        let memo = std::mem::take(&mut self.memo);
        for (node, id) in memo {
            let node = node.map_children(|c| self.unionfind.find_mut(c));
            let id = self.unionfind.find_mut(id);
            self.memo.insert(node, id);
        }
        // Re-canonicalize the filter set.
        let filtered = std::mem::take(&mut self.filtered);
        self.filtered = filtered
            .into_iter()
            .map(|n| n.map_children(|c| self.unionfind.find_mut(c)))
            .collect();
        // Recount nodes (dedup above may have dropped some) and rebuild the
        // operator index over the now-canonical classes. Iterating the
        // BTreeMap in key order keeps every index bucket sorted by id.
        self.num_nodes = 0;
        self.op_index.clear();
        for (&id, class) in &self.classes {
            self.num_nodes += class.nodes.len();
            let mut seen_ops: Vec<Discriminant<L>> = Vec::new();
            for node in &class.nodes {
                let op = node.discriminant();
                if !seen_ops.contains(&op) {
                    seen_ops.push(op);
                    self.op_index.entry(op).or_default().push(id);
                }
            }
        }
    }

    /// Marks an e-node as filtered (treated as removed). The node is
    /// canonicalized before insertion. Filtered nodes are skipped by pattern
    /// matching and extraction but remain stored in their class.
    pub fn filter_node(&mut self, enode: &L) {
        let node = self.canonicalize(enode);
        self.filtered.insert(node);
    }

    /// True if the e-node is in the filter set.
    pub fn is_filtered(&self, enode: &L) -> bool {
        // The common path has no filtered nodes at all; skip the node clone
        // and child canonicalization that the set probe would need.
        if self.filtered.is_empty() {
            return false;
        }
        let node = self.canonicalize(enode);
        self.filtered.contains(&node)
    }

    /// Number of filtered e-nodes.
    pub fn filtered_count(&self) -> usize {
        self.filtered.len()
    }

    /// Clears the filter set.
    ///
    /// Re-enabling nodes creates pattern matches that did not exist before,
    /// so the owning classes (and, on a clean e-graph, their transitive
    /// parents) are stamped as touched — watermark-restricted searches
    /// ([`crate::Pattern::search_since`]) will revisit them.
    pub fn clear_filtered(&mut self) {
        let filtered = std::mem::take(&mut self.filtered);
        let stamp = self.ticker;
        self.ticker += 1;
        let mut seeds = vec![];
        for node in &filtered {
            if let Some(id) = self.lookup(node) {
                let class = self.classes.get_mut(&id).expect("class must exist");
                if class.touched < stamp {
                    class.touched = stamp;
                    seeds.push(id);
                }
            }
        }
        if self.clean && self.touch_tracking {
            self.propagate_stamp(seeds, stamp);
        }
        // On a dirty e-graph the parents are stale; the seeds' stamps are
        // >= last_rebuild_ticker, so the next rebuild's touch propagation
        // reaches the ancestors instead.
    }

    /// The birth stamp (global insertion counter) of an e-node, if present.
    pub fn node_birth(&self, class: Id, enode: &L) -> Option<u64> {
        let class = self.find(class);
        let node = self.canonicalize(enode);
        let c = self.classes.get(&class)?;
        c.nodes
            .iter()
            .position(|n| *n == node)
            .map(|i| c.node_birth[i])
    }

    /// Access a class by (possibly non-canonical) id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not name a live class.
    pub fn eclass(&self, id: Id) -> &EClass<L, N::Data> {
        let id = self.find(id);
        self.classes
            .get(&id)
            .unwrap_or_else(|| panic!("no class for id {id}"))
    }

    /// Mutable access to a class by (possibly non-canonical) id.
    pub fn eclass_mut(&mut self, id: Id) -> &mut EClass<L, N::Data> {
        let id = self.find(id);
        self.classes
            .get_mut(&id)
            .unwrap_or_else(|| panic!("no class for id {id}"))
    }

    /// Extracts *some* concrete expression represented by `id`, preferring
    /// small terms (useful for debugging and tests; cost-aware extraction
    /// lives in [`crate::Extractor`]).
    pub fn id_to_expr(&self, id: Id) -> RecExpr<L> {
        use crate::extract::{AstSize, Extractor};
        let extractor = Extractor::new(self, AstSize);
        let (_, expr) = extractor
            .find_best(id)
            .expect("every live class should represent at least one finite term");
        expr
    }

    /// Produces a Graphviz dot rendering of the e-graph (classes as
    /// clusters, e-nodes as records).
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph egraph {\n  compound=true;\n  rankdir=TB;\n");
        for class in self.classes.values() {
            s.push_str(&format!(
                "  subgraph cluster_{} {{\n    label=\"{}\";\n",
                class.id, class.id
            ));
            for (i, node) in class.nodes.iter().enumerate() {
                let style = if self.filtered.contains(node) {
                    ",style=dashed"
                } else {
                    ""
                };
                s.push_str(&format!(
                    "    n_{}_{} [label=\"{}\"{}];\n",
                    class.id,
                    i,
                    node.display_op(),
                    style
                ));
            }
            s.push_str("  }\n");
        }
        for class in self.classes.values() {
            for (i, node) in class.nodes.iter().enumerate() {
                for &child in node.children() {
                    let child = self.find(child);
                    s.push_str(&format!(
                        "  n_{}_{} -> n_{}_0 [lhead=cluster_{}];\n",
                        class.id, i, child, child
                    ));
                }
            }
        }
        s.push_str("}\n");
        s
    }
}

impl<L: Language, N: Analysis<L>> fmt::Debug for EGraph<L, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EGraph")
            .field("classes", &self.classes.len())
            .field("nodes", &self.total_number_of_nodes())
            .field("filtered", &self.filtered.len())
            .field("clean", &self.clean)
            .finish()
    }
}

impl<L: Language, N: Analysis<L>> std::ops::Index<Id> for EGraph<L, N> {
    type Output = EClass<L, N::Data>;
    fn index(&self, id: Id) -> &Self::Output {
        self.eclass(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::test_lang::Math;
    use crate::{DidMerge, Symbol};

    fn sym(s: &str) -> Math {
        Math::Sym(Symbol::new(s))
    }

    #[test]
    fn hashcons_dedups() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let b = eg.add(sym("a"));
        assert_eq!(a, b);
        assert_eq!(eg.number_of_classes(), 1);
        let two = eg.add(Math::Num(2));
        let m1 = eg.add(Math::Mul([a, two]));
        let m2 = eg.add(Math::Mul([b, two]));
        assert_eq!(m1, m2);
        assert_eq!(eg.total_number_of_nodes(), 3);
    }

    #[test]
    fn union_merges_classes() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let b = eg.add(sym("b"));
        assert_ne!(eg.find(a), eg.find(b));
        let (_, did) = eg.union(a, b);
        assert!(did);
        let (_, did2) = eg.union(a, b);
        assert!(!did2);
        eg.rebuild();
        assert_eq!(eg.find(a), eg.find(b));
        assert_eq!(eg.number_of_classes(), 1);
        assert_eq!(eg.eclass(a).len(), 2);
    }

    #[test]
    fn congruence_closure_via_rebuild() {
        // If a == b then f(a) == f(b) after rebuild.
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let b = eg.add(sym("b"));
        let two = eg.add(Math::Num(2));
        let fa = eg.add(Math::Mul([a, two]));
        let fb = eg.add(Math::Mul([b, two]));
        assert_ne!(eg.find(fa), eg.find(fb));
        eg.union(a, b);
        eg.rebuild();
        assert_eq!(eg.find(fa), eg.find(fb));
        assert!(eg.is_clean());
    }

    #[test]
    fn nested_congruence() {
        // a == b  implies  g(f(a)) == g(f(b)) through two levels.
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let b = eg.add(sym("b"));
        let one = eg.add(Math::Num(1));
        let fa = eg.add(Math::Add([a, one]));
        let fb = eg.add(Math::Add([b, one]));
        let gfa = eg.add(Math::Mul([fa, fa]));
        let gfb = eg.add(Math::Mul([fb, fb]));
        eg.union(a, b);
        eg.rebuild();
        assert_eq!(eg.find(gfa), eg.find(gfb));
    }

    #[test]
    fn add_expr_and_lookup_expr() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let mut e = RecExpr::default();
        let a = e.add(sym("a"));
        let two = e.add(Math::Num(2));
        let m = e.add(Math::Mul([a, two]));
        e.add(Math::Div([m, two]));
        let root = eg.add_expr(&e);
        assert_eq!(eg.lookup_expr(&e), Some(eg.find(root)));
        assert_eq!(eg.number_of_classes(), 4);
        // Extracting it back gives the same term.
        assert_eq!(eg.id_to_expr(root).to_string(), "(/ (* a 2) 2)");
    }

    #[test]
    fn filtered_nodes_are_tracked() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let node = Math::Mul([a, two]);
        assert!(!eg.is_filtered(&node));
        eg.filter_node(&node);
        assert!(eg.is_filtered(&node));
        assert_eq!(eg.filtered_count(), 1);
        assert_eq!(eg.num_unfiltered_nodes(), 2);
        assert_eq!(eg.total_number_of_nodes(), 3);
        // Filter set survives a rebuild.
        let b = eg.add(sym("b"));
        eg.union(a, b);
        eg.rebuild();
        let node2 = eg.canonicalize(&node);
        assert!(eg.is_filtered(&node2));
        let _ = m;
    }

    #[test]
    fn birth_stamps_are_monotone() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let b_a = eg.node_birth(a, &sym("a")).unwrap();
        let b_m = eg.node_birth(m, &Math::Mul([a, two])).unwrap();
        assert!(b_a < b_m);
    }

    #[test]
    fn union_count_tracks_changes() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let b = eg.add(sym("b"));
        let c = eg.add(sym("c"));
        assert_eq!(eg.union_count(), 0);
        eg.union(a, b);
        eg.union(b, c);
        eg.union(a, c);
        assert_eq!(eg.union_count(), 2);
    }

    #[test]
    fn op_index_tracks_classes_per_operator() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let m1 = eg.add(Math::Mul([a, two]));
        let m2 = eg.add(Math::Mul([two, a]));
        eg.rebuild();
        let mul_key = Math::Mul([a, a]).discriminant();
        let ids = eg.classes_with_op(mul_key);
        assert_eq!(ids, &[eg.find(m1), eg.find(m2)]);
        // Add is absent entirely.
        assert!(eg
            .classes_with_op(Math::Add([a, a]).discriminant())
            .is_empty());
        // Merging the two Mul classes shrinks the bucket after rebuild.
        eg.union(m1, m2);
        eg.rebuild();
        assert_eq!(eg.classes_with_op(mul_key).len(), 1);
        // Num and Sym share no bucket even though both are leaves.
        assert_eq!(eg.classes_with_op(Math::Num(0).discriminant()), &[two]);
        assert_eq!(eg.classes_with_op(sym("zz").discriminant()), &[a]);
    }

    /// Plain adds keep the e-graph clean, so searching between adds is
    /// legal — the operator index must cover classes created since the last
    /// rebuild or the machine searcher silently misses their matches.
    #[test]
    fn op_index_covers_adds_since_last_rebuild() {
        use crate::{ENodeOrVar, Pattern, RecExpr, Var};
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        eg.rebuild();
        // Added after the rebuild; no unions, so the e-graph stays clean.
        let mul = eg.add(Math::Mul([a, two]));
        assert!(eg.is_clean());

        let mut ast = RecExpr::default();
        let x = ast.add(ENodeOrVar::Var(Var::new("x")));
        let two_p = ast.add(ENodeOrVar::ENode(Math::Num(2)));
        ast.add(ENodeOrVar::ENode(Math::Mul([x, two_p])));
        let pat = Pattern::new(ast);
        let ms = pat.search(&eg);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].eclass, eg.find(mul));
        assert_eq!(ms.len(), pat.search_naive(&eg).len());
    }

    /// `clear_filtered` re-enables nodes, creating matches that did not
    /// exist before; the owning classes and their ancestors must count as
    /// touched so watermark-restricted searches revisit them.
    #[test]
    fn clear_filtered_touches_owning_classes_and_ancestors() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let mul = eg.add(Math::Mul([a, two]));
        let outer = eg.add(Math::Add([mul, two]));
        eg.rebuild();
        eg.filter_node(&Math::Mul([a, two]));
        let w = eg.watermark();
        eg.clear_filtered();
        assert!(eg.eclass(mul).last_touched() >= w);
        assert!(
            eg.eclass(outer).last_touched() >= w,
            "ancestors must be stamped"
        );
        assert!(eg.eclass(a).last_touched() < w, "children are unaffected");
    }

    #[test]
    fn node_count_stays_consistent_across_rebuilds() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let b = eg.add(sym("b"));
        let two = eg.add(Math::Num(2));
        eg.add(Math::Mul([a, two]));
        eg.add(Math::Mul([b, two]));
        let recount = |eg: &EGraph<Math, ()>| -> usize { eg.classes().map(|c| c.len()).sum() };
        assert_eq!(eg.total_number_of_nodes(), recount(&eg));
        // a == b makes the two Mul nodes congruent: the count must reflect
        // the dedup done during rebuild.
        eg.union(a, b);
        assert_eq!(eg.total_number_of_nodes(), recount(&eg));
        eg.rebuild();
        // a, b, 2, and the single surviving Mul node (the two Mul nodes
        // became congruent and were deduplicated by the rebuild).
        assert_eq!(eg.total_number_of_nodes(), 4);
        assert_eq!(eg.total_number_of_nodes(), recount(&eg));
    }

    #[test]
    fn watermark_and_touch_propagation() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let mul = eg.add(Math::Mul([a, two]));
        let outer = eg.add(Math::Add([mul, two]));
        eg.rebuild();
        let w = eg.watermark();
        // Nothing is touched at or after a fresh watermark.
        assert!(eg.classes().all(|c| c.last_touched() < w));
        // Touch the leaf `a`: its transitive parents (mul, outer) must be
        // stamped by the rebuild, the unrelated literal must not.
        let b = eg.add(sym("b"));
        eg.union(a, b);
        eg.rebuild();
        assert!(eg.eclass(a).last_touched() >= w);
        assert!(eg.eclass(mul).last_touched() >= w);
        assert!(eg.eclass(outer).last_touched() >= w);
        assert!(eg.eclass(two).last_touched() < w);
    }

    /// The parallel search driver shares `&EGraph` across scoped threads;
    /// this compile-time check pins the `Sync`-cleanliness of the read path
    /// (it breaks if anyone adds interior mutability, e.g. a memoizing
    /// `RefCell`, to a field reachable from the search accessors).
    #[test]
    fn egraph_is_sync_for_sync_parameters() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<EGraph<Math, ()>>();
    }

    #[test]
    fn dot_export_mentions_every_op() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        eg.add(Math::Mul([a, two]));
        eg.rebuild();
        let dot = eg.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains('*'));
        assert!(dot.contains('a'));
    }

    /// Analysis that tracks constant values (constant folding lattice).
    #[derive(Clone, Default)]
    struct ConstFold;
    impl Analysis<Math> for ConstFold {
        type Data = Option<i64>;
        fn make(egraph: &EGraph<Math, Self>, enode: &Math) -> Self::Data {
            let c = |id: Id| egraph.eclass(id).data;
            match enode {
                Math::Num(n) => Some(*n),
                Math::Add([a, b]) => Some(c(*a)? + c(*b)?),
                Math::Mul([a, b]) => Some(c(*a)? * c(*b)?),
                Math::Shl([a, b]) => Some(c(*a)? << c(*b)?),
                Math::Div([a, b]) => {
                    let (a, b) = (c(*a)?, c(*b)?);
                    if b != 0 && a % b == 0 {
                        Some(a / b)
                    } else {
                        None
                    }
                }
                Math::Sym(_) => None,
            }
        }
        fn merge(&mut self, to: &mut Self::Data, from: Self::Data) -> DidMerge {
            match (to.as_ref(), from) {
                (None, Some(v)) => {
                    *to = Some(v);
                    DidMerge(true, false)
                }
                (Some(_), None) => DidMerge(false, true),
                (Some(a), Some(b)) => {
                    assert_eq!(*a, b, "merged classes with different constants");
                    DidMerge(false, false)
                }
                (None, None) => DidMerge(false, false),
            }
        }
    }

    #[test]
    fn analysis_data_propagates_through_unions() {
        let mut eg: EGraph<Math, ConstFold> = EGraph::new(ConstFold);
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let a_plus_2 = eg.add(Math::Add([a, two]));
        assert_eq!(eg.eclass(a_plus_2).data, None);
        // Learn that a == 3; then a + 2 should fold to 5 after rebuild.
        let three = eg.add(Math::Num(3));
        eg.union(a, three);
        eg.rebuild();
        assert_eq!(eg.eclass(a_plus_2).data, Some(5));
    }
}
