//! A compiled e-matching abstract machine (de Moura & Bjørner 2007, as in
//! egg): each [`Pattern`](crate::Pattern) is compiled once into a linear
//! instruction [`Program`] that is executed against candidate e-classes
//! with a single reusable register stack, instead of recursively cloning
//! per-branch substitution vectors.
//!
//! Four instructions suffice:
//!
//! * [`Instruction::Bind`] — enumerate the e-nodes of the class in register
//!   `i` whose operator matches the pattern node, writing each node's
//!   (canonicalized) children into registers `out..`; the machine
//!   backtracks over the alternatives.
//! * [`Instruction::Compare`] — require two registers to hold the same
//!   e-class (non-linear patterns such as `(+ ?x ?x)`).
//! * [`Instruction::Lookup`] — match a variable-free subterm in O(term)
//!   hash-cons lookups instead of enumerating class nodes; on a congruent
//!   e-graph a ground term has exactly one realization, which is also
//!   checked against the filter set node by node.
//! * [`Instruction::Guard`] — *analysis-guided pruning*: fail unless a
//!   predicate accepts the e-class **analysis data** of the class a pattern
//!   variable is bound to. Guards are emitted right after the register is
//!   filled, so a semantically dead binding (e.g. a tensor variable bound to
//!   a class with invalid shape data) kills the whole branch before any
//!   deeper `Bind` fans out — instead of a post-match `Condition` discarding
//!   the finished substitution. See [`GuardedProgram`].
//!
//! Search additionally consults the e-graph's operator index
//! ([`EGraph::classes_with_op`]): only classes containing at least one node
//! with the same operator discriminant as the pattern root are visited.
//!
//! The operator index also yields a natural *parallel* decomposition:
//! programs are immutable and the e-graph's read path is `Sync`-clean, so
//! candidate classes can be split into contiguous chunks and searched by
//! scoped threads, each with its own register stack
//! ([`Program::search_parallel`] and the batch driver behind
//! [`crate::search_all_parallel`]). Merging the chunk outputs in chunk
//! order reproduces the sequential result bit for bit.

use crate::{Analysis, EGraph, ENodeOrVar, Id, Language, RecExpr, SearchMatches, Subst, Var};
use std::collections::{HashMap, VecDeque};
use std::mem::Discriminant;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// A virtual register holding an e-class id during matching.
pub type Reg = usize;

/// An analysis guard predicate: inspects the e-class analysis data (`D` is
/// the [`Analysis::Data`] type) of the class a pattern variable is bound to
/// and returns whether the binding can possibly survive the rule's side
/// condition. Evaluated by [`Instruction::Guard`] *during* matching, so a
/// rejected binding is pruned before deeper `Bind` instructions fan out.
///
/// For guarded search to be equivalent to unguarded-then-filtered search
/// (the invariant the proptests pin down), a guard must be a *pure* function
/// of the class data it is given.
pub type GuardFn<D> = Arc<dyn Fn(&D) -> bool + Send + Sync>;

/// A bitmask over interned analysis kind tags ([`Analysis::kind_tag`]):
/// bit `t` set means a class whose data has kind tag `t` is admissible.
pub type TagMask = u32;

/// An analysis guard: the per-variable admissibility test evaluated by
/// [`Instruction::Guard`] mid-match. A guard is the conjunction of
///
/// * a **tag mask** over the interned per-class kind tags
///   ([`Analysis::kind_tag`], stored in a dense side table read by
///   [`EGraph::kind_tag`]) — evaluated with one array read and one bit
///   test, no dynamic dispatch and no borrow of the class data; and
/// * an optional **dynamic predicate** ([`GuardFn`]) over the full class
///   data, for guards that need more than the coarse kind.
///
/// Guards whose condition is a pure function of the data's kind (e.g.
/// TENSAT's "this variable must bind a valid tensor" shape guards) compile
/// to a bare mask via [`Guard::tags`], which is what erases the
/// `Arc<dyn Fn>` call from the guard hot path. Both parts must be pure
/// functions of the class data for guarded search to stay equivalent to
/// unguarded-then-filtered search.
pub struct Guard<D> {
    mask: TagMask,
    pred: Option<GuardFn<D>>,
}

// Manual impl: `derive` would require `D: Clone`, but only the `Arc` is
// cloned.
impl<D> Clone for Guard<D> {
    fn clone(&self) -> Self {
        Guard {
            mask: self.mask,
            pred: self.pred.clone(),
        }
    }
}

impl<D> Guard<D> {
    /// A guard accepting exactly the classes whose kind tag is in `mask`.
    pub fn tags(mask: TagMask) -> Self {
        Guard { mask, pred: None }
    }

    /// A guard accepting exactly the classes whose data satisfies `f`
    /// (every kind tag is admissible; the predicate alone decides).
    pub fn from_fn(f: impl Fn(&D) -> bool + Send + Sync + 'static) -> Self {
        Guard {
            mask: TagMask::MAX,
            pred: Some(Arc::new(f)),
        }
    }

    /// A guard from an existing shared predicate; see [`Guard::from_fn`].
    pub fn from_arc(f: GuardFn<D>) -> Self {
        Guard {
            mask: TagMask::MAX,
            pred: Some(f),
        }
    }

    /// The conjunction of two guards: masks intersect, predicates compose.
    pub fn and(self, other: Self) -> Self
    where
        D: 'static,
    {
        let pred = match (self.pred, other.pred) {
            (Some(a), Some(b)) => Some(Arc::new(move |d: &D| a(d) && b(d)) as GuardFn<D>),
            (one, None) | (None, one) => one,
        };
        Guard {
            mask: self.mask & other.mask,
            pred,
        }
    }

    /// The tag mask part of the guard ([`TagMask::MAX`] = unconstrained).
    pub fn mask(&self) -> TagMask {
        self.mask
    }

    /// The dynamic-predicate part of the guard, if any.
    pub fn pred(&self) -> Option<&GuardFn<D>> {
        self.pred.as_ref()
    }

    /// True if the mask admits the given kind tag. Tags at or above 32 are
    /// outside the mask's range and never admissible.
    #[inline]
    pub fn admits_tag(&self, tag: u8) -> bool {
        self.mask & 1u32.checked_shl(tag as u32).unwrap_or(0) != 0
    }

    /// The full guard semantics — the reference the differential tests
    /// filter with: the tag passes the mask *and* the data passes the
    /// predicate (if any). `tag` must be the data's [`Analysis::kind_tag`].
    pub fn check(&self, tag: u8, data: &D) -> bool {
        self.admits_tag(tag) && self.pred.as_ref().is_none_or(|p| p(data))
    }
}

impl<D> std::fmt::Debug for Guard<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Guard")
            .field("mask", &format_args!("{:#x}", self.mask))
            .field("dyn", &self.pred.is_some())
            .finish()
    }
}

/// A `(program, guard table)` pair, the unit the batch search drivers take
/// (see [`crate::search_all_guarded_parallel`]). An empty table means the
/// program is unguarded; a guarded program's table must be parallel to its
/// [`Program::guard_vars`]. Obtained from
/// [`GuardedProgram::query`] or
/// [`Rewrite::searcher_query`](crate::Rewrite::searcher_query).
pub type SearchQuery<'a, L, D> = (&'a Program<L>, &'a [Guard<D>]);

/// One step of a compiled pattern program.
#[derive(Debug, Clone)]
pub enum Instruction<L> {
    /// Try every e-node of the class in register `i` that matches `node`
    /// (and is not filtered); write its children into `out..out+arity`.
    Bind {
        /// The pattern node to match (children ids are pattern-internal and
        /// ignored; only the operator matters).
        node: L,
        /// Register holding the class to search.
        i: Reg,
        /// First output register for the matched node's children.
        out: Reg,
    },
    /// Fail unless registers `i` and `j` hold the same e-class.
    Compare {
        /// First register.
        i: Reg,
        /// Second register.
        j: Reg,
    },
    /// Fail unless the ground (variable-free) term is represented,
    /// unfiltered, and lives in the class held by register `i`.
    Lookup {
        /// The ground term, children-first.
        term: RecExpr<L>,
        /// Register the term's class must equal.
        i: Reg,
    },
    /// Fail unless the guard predicate at index `pred` (in the guard table
    /// supplied at search time) accepts the analysis data of the e-class
    /// held by register `i`. Emitted for guarded pattern variables right
    /// after the variable first claims its register, so the branch dies
    /// before deeper binds run.
    Guard {
        /// Register holding the class whose analysis data is inspected.
        i: Reg,
        /// Index into the guard table (parallel to
        /// [`Program::guard_vars`]).
        pred: usize,
    },
}

/// A pattern compiled to a linear instruction sequence.
///
/// Obtained from [`Pattern::program`](crate::Pattern::program) (which
/// compiles lazily and caches) or directly via [`Program::compile`].
#[derive(Debug, Clone)]
pub struct Program<L> {
    instructions: Vec<Instruction<L>>,
    /// `(variable, register)` pairs in first-occurrence (AST) order; read
    /// out at every successful match to build the substitution.
    subst_template: Vec<(Var, Reg)>,
    /// Operator discriminant of the pattern root, if the root is a concrete
    /// node — used to restrict search via the e-graph's operator index.
    root_op: Option<Discriminant<L>>,
    /// The guarded variables, in guard-table order: the `pred` field of
    /// every emitted [`Instruction::Guard`] indexes into this list, and the
    /// guard table supplied at search time must be parallel to it.
    guard_vars: Vec<Var>,
}

impl<L: Language> Program<L> {
    /// Compiles a pattern AST into an instruction program (without guards).
    ///
    /// # Panics
    ///
    /// Panics if the pattern is empty.
    pub fn compile(pattern: &RecExpr<ENodeOrVar<L>>) -> Self {
        Self::compile_guarded(pattern, &[])
    }

    /// Compiles a pattern AST into an instruction program that additionally
    /// checks an analysis guard on each of `guard_vars` (see
    /// [`Instruction::Guard`]). The emitted `Guard` instructions index into
    /// a guard table that must be supplied — parallel to `guard_vars` — at
    /// search time ([`Program::search_guarded`]); [`GuardedProgram`] bundles
    /// the two. Guarded variables that do not occur in the pattern emit no
    /// instruction (their table slot is simply never consulted).
    ///
    /// # Panics
    ///
    /// Panics if the pattern is empty.
    pub fn compile_guarded(pattern: &RecExpr<ENodeOrVar<L>>, guard_vars: &[Var]) -> Self {
        assert!(!pattern.is_empty(), "cannot compile an empty pattern");
        let root = pattern.root();

        // A pattern node is ground if its subtree contains no variables
        // (children precede parents in a RecExpr, so one pass suffices).
        let mut ground = vec![false; pattern.len()];
        for (id, node) in pattern.iter() {
            ground[usize::from(id)] = match node {
                ENodeOrVar::Var(_) => false,
                ENodeOrVar::ENode(n) => n.children().iter().all(|&c| ground[usize::from(c)]),
            };
        }

        let mut instructions = vec![];
        let mut v2r: HashMap<Var, Reg> = HashMap::new();
        let mut todo: VecDeque<(Reg, Id)> = VecDeque::new();
        let mut next_reg: Reg = 1;
        match &pattern[root] {
            ENodeOrVar::Var(v) => {
                // A variable root claims register 0 (the candidate class);
                // its guard, if any, is the very first instruction.
                v2r.insert(*v, 0);
                if let Some(pred) = guard_vars.iter().position(|u| u == v) {
                    instructions.push(Instruction::Guard { i: 0, pred });
                }
            }
            ENodeOrVar::ENode(_) => todo.push_back((0, root)),
        }
        while let Some((reg, pat_id)) = todo.pop_front() {
            let ENodeOrVar::ENode(node) = &pattern[pat_id] else {
                unreachable!("only concrete nodes are queued");
            };
            // Ground subterms become O(term)-time hash-cons lookups.
            // The root stays a Bind so per-candidate work in the
            // search loop does not repeat a whole-term lookup.
            if ground[usize::from(pat_id)] && pat_id != root {
                instructions.push(Instruction::Lookup {
                    term: ground_term(pattern, pat_id),
                    i: reg,
                });
                continue;
            }
            let out = next_reg;
            next_reg += node.children().len();
            instructions.push(Instruction::Bind {
                node: node.clone(),
                i: reg,
                out,
            });
            // Variable children are resolved here, immediately after the
            // Bind that fills their registers: a first occurrence claims
            // the register and emits its guard right away — before any
            // deeper Bind fans out — and a repeat occurrence emits the
            // non-linearity Compare. Concrete children are queued for BFS
            // processing. (The claiming order is identical to the previous
            // pop-time scheme — BFS pops positions in enqueue order — so
            // register assignments and match results are unchanged; only
            // Guard/Compare instructions move earlier in the stream.)
            for (k, &child) in node.children().iter().enumerate() {
                let child_reg = out + k;
                match &pattern[child] {
                    ENodeOrVar::Var(v) => match v2r.get(v) {
                        Some(&bound) => instructions.push(Instruction::Compare {
                            i: bound,
                            j: child_reg,
                        }),
                        None => {
                            v2r.insert(*v, child_reg);
                            if let Some(pred) = guard_vars.iter().position(|u| u == v) {
                                instructions.push(Instruction::Guard { i: child_reg, pred });
                            }
                        }
                    },
                    ENodeOrVar::ENode(_) => todo.push_back((child_reg, child)),
                }
            }
        }

        // Substitution template in AST first-occurrence order. (For the
        // usual bottom-up-built patterns this coincides with the recursive
        // matcher's DFS binding order, but not for every AST layout —
        // comparisons across matchers must normalize binding order.)
        // Variables that only occur in AST nodes unreachable from the root
        // never got a register (the recursive matcher never binds them
        // either).
        let mut subst_template = vec![];
        for (_, node) in pattern.iter() {
            if let ENodeOrVar::Var(v) = node {
                if let Some(&reg) = v2r.get(v) {
                    if !subst_template.iter().any(|(u, _)| u == v) {
                        subst_template.push((*v, reg));
                    }
                }
            }
        }

        let root_op = match &pattern[root] {
            ENodeOrVar::ENode(n) => Some(n.discriminant()),
            ENodeOrVar::Var(_) => None,
        };

        Program {
            instructions,
            subst_template,
            root_op,
            guard_vars: guard_vars.to_vec(),
        }
    }

    /// The compiled instruction sequence.
    pub fn instructions(&self) -> &[Instruction<L>] {
        &self.instructions
    }

    /// The guarded variables in guard-table order: slot `pred` of the guard
    /// table supplied at search time is the predicate for `guard_vars()[pred]`.
    /// Empty for programs compiled without guards.
    pub fn guard_vars(&self) -> &[Var] {
        &self.guard_vars
    }

    /// The operator discriminant of the pattern root, if it is a concrete
    /// node (used as the operator-index key).
    pub fn root_op(&self) -> Option<Discriminant<L>> {
        self.root_op
    }

    /// Searches the whole e-graph, visiting only classes the operator index
    /// deems candidates.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the e-graph is clean: searching a dirty e-graph
    /// silently returns stale or incomplete matches. Panics if the program
    /// was compiled with guards ([`Program::compile_guarded`]) — those
    /// require the guard table, via [`Program::search_guarded`] or
    /// [`GuardedProgram`].
    pub fn search<N: Analysis<L>>(&self, egraph: &EGraph<L, N>) -> Vec<SearchMatches> {
        self.search_since(egraph, 0)
    }

    /// Like [`Program::search`], but every guarded variable's candidate
    /// binding must pass the corresponding predicate of `guards` (parallel
    /// to [`Program::guard_vars`]) — evaluated mid-match by
    /// [`Instruction::Guard`], pruning the branch before deeper binds run.
    ///
    /// # Panics
    ///
    /// Panics if `guards` does not match the compiled guard variables;
    /// debug-asserts that the e-graph is clean (see [`Program::search`]).
    pub fn search_guarded<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        guards: &[Guard<N::Data>],
    ) -> Vec<SearchMatches> {
        self.search_since_guarded(egraph, 0, guards)
    }

    /// Like [`Program::search`], but skips classes untouched since the
    /// given watermark (a snapshot of [`EGraph::watermark`]).
    ///
    /// # Panics
    ///
    /// As for [`Program::search`].
    pub fn search_since<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        watermark: u64,
    ) -> Vec<SearchMatches> {
        self.search_since_guarded(egraph, watermark, &[])
    }

    /// Guarded, watermark-restricted search; see [`Program::search_guarded`]
    /// and [`Program::search_since`].
    ///
    /// # Panics
    ///
    /// As for [`Program::search_guarded`].
    pub fn search_since_guarded<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        watermark: u64,
        guards: &[Guard<N::Data>],
    ) -> Vec<SearchMatches> {
        self.check_guard_table(guards.len());
        debug_assert!(
            egraph.is_clean(),
            "pattern search on a dirty e-graph returns stale matches; call rebuild() first"
        );
        let mut machine = Machine::default();
        let lookups = machine_lookups(egraph, &self.instructions);
        let mut out = vec![];
        match self.root_op {
            Some(op) => {
                for &id in egraph.classes_with_op(op) {
                    if egraph.last_touched(id) < watermark {
                        continue;
                    }
                    if let Some(m) = self.search_class(egraph, &mut machine, &lookups, guards, id) {
                        out.push(m);
                    }
                }
            }
            None => {
                for class in egraph.classes() {
                    if egraph.last_touched(class.id) < watermark {
                        continue;
                    }
                    if let Some(m) =
                        self.search_class(egraph, &mut machine, &lookups, guards, class.id)
                    {
                        out.push(m);
                    }
                }
            }
        }
        out
    }

    /// Asserts that the supplied guard table is parallel to the compiled
    /// guard variables — a mismatch means guarded and unguarded entry
    /// points were mixed up, which would silently change match sets.
    fn check_guard_table(&self, supplied: usize) {
        assert_eq!(
            supplied,
            self.guard_vars.len(),
            "guard table size mismatch: program compiled with {} guarded variable(s), \
             search called with {} predicate(s) — use GuardedProgram (or the \
             *_guarded entry points) for guard-compiled programs",
            self.guard_vars.len(),
            supplied,
        );
    }

    /// Parallel version of [`Program::search`]: candidate classes are split
    /// into contiguous chunks sharded across `n_threads` scoped threads,
    /// each running the (immutable) program with its own register stack.
    /// Chunk outputs are merged in chunk order, so the result is
    /// bit-identical to the sequential search. `n_threads <= 1` runs the
    /// sequential driver.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the e-graph is clean (see [`Program::search`]).
    pub fn search_parallel<N>(&self, egraph: &EGraph<L, N>, n_threads: usize) -> Vec<SearchMatches>
    where
        L: Sync,
        N: Analysis<L> + Sync,
        N::Data: Sync,
    {
        self.search_since_parallel(egraph, 0, n_threads)
    }

    /// Parallel version of [`Program::search_since`]; see
    /// [`Program::search_parallel`].
    pub fn search_since_parallel<N>(
        &self,
        egraph: &EGraph<L, N>,
        watermark: u64,
        n_threads: usize,
    ) -> Vec<SearchMatches>
    where
        L: Sync,
        N: Analysis<L> + Sync,
        N::Data: Sync,
    {
        self.search_since_guarded_parallel(egraph, watermark, &[], n_threads)
    }

    /// Guarded version of [`Program::search_since_parallel`]: the parallel
    /// sharded driver with a guard table (see [`Program::search_guarded`]).
    /// Bit-identical to [`Program::search_since_guarded`] for every thread
    /// count.
    ///
    /// # Panics
    ///
    /// As for [`Program::search_guarded`].
    pub fn search_since_guarded_parallel<N>(
        &self,
        egraph: &EGraph<L, N>,
        watermark: u64,
        guards: &[Guard<N::Data>],
        n_threads: usize,
    ) -> Vec<SearchMatches>
    where
        L: Sync,
        N: Analysis<L> + Sync,
        N::Data: Sync,
    {
        let mut out =
            search_programs_since_parallel(&[(self, guards)], egraph, watermark, n_threads);
        out.pop().expect("one program in, one match list out")
    }

    /// The classes this program's search visits, in the deterministic order
    /// the sequential driver uses (ascending class id, restricted by the
    /// operator index when the root is a concrete node), skipping classes
    /// untouched since `watermark`.
    fn candidate_classes<N: Analysis<L>>(&self, egraph: &EGraph<L, N>, watermark: u64) -> Vec<Id> {
        match self.root_op {
            Some(op) => egraph
                .classes_with_op(op)
                .iter()
                .copied()
                .filter(|&id| egraph.last_touched(id) >= watermark)
                .collect(),
            None => egraph
                .classes()
                .filter(|class| egraph.last_touched(class.id) >= watermark)
                .map(|class| class.id)
                .collect(),
        }
    }

    /// Searches a single e-class.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the e-graph is clean (see [`Program::search`]).
    pub fn search_eclass<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        eclass: Id,
    ) -> Option<SearchMatches> {
        self.check_guard_table(0);
        debug_assert!(
            egraph.is_clean(),
            "pattern search on a dirty e-graph returns stale matches; call rebuild() first"
        );
        let mut machine = Machine::default();
        let lookups = machine_lookups(egraph, &self.instructions);
        self.search_class(egraph, &mut machine, &lookups, &[], egraph.find(eclass))
    }

    fn search_class<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        machine: &mut Machine,
        lookups: &[Option<Id>],
        guards: &[Guard<N::Data>],
        eclass: Id,
    ) -> Option<SearchMatches> {
        machine.regs.clear();
        machine.regs.push(eclass);
        let mut substs = vec![];
        machine.run(
            &MachineCtx {
                egraph,
                instructions: &self.instructions,
                lookups,
                guards,
                subst_template: &self.subst_template,
            },
            0,
            &mut substs,
        );
        // Distinct derivations can in principle yield the same binding;
        // sort before dedup so non-adjacent duplicates are removed too.
        substs.sort_unstable();
        substs.dedup();
        (!substs.is_empty()).then_some(SearchMatches { eclass, substs })
    }
}

/// A compiled *guarded* searcher: a pattern recompiled with
/// [`Instruction::Guard`] instructions plus the guard-predicate table those
/// instructions index (`D` is the e-class analysis data type,
/// [`Analysis::Data`]).
///
/// Guarded search returns exactly the matches of the plain program whose
/// guarded variables all bind to classes whose analysis data passes the
/// corresponding predicate — but prunes failing branches *inside* the
/// machine, before deeper binds fan out, instead of filtering finished
/// substitutions afterwards. The equivalence (and bit-identical parallel
/// behavior) is pinned down by proptests in `tests/proptests.rs`.
///
/// Rewrites carry one of these when constructed with
/// [`Rewrite::with_guards`](crate::Rewrite::with_guards).
#[derive(Clone)]
pub struct GuardedProgram<L, D> {
    program: Program<L>,
    guards: Vec<Guard<D>>,
}

impl<L: Language, D> GuardedProgram<L, D> {
    /// Compiles a pattern AST with one guard per listed variable. Multiple
    /// entries for the same variable are conjoined; entries for variables
    /// that do not occur in the pattern are kept in the table but never
    /// consulted.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is empty.
    pub fn compile(pattern: &RecExpr<ENodeOrVar<L>>, guards: &[(Var, Guard<D>)]) -> Self
    where
        D: 'static,
    {
        let mut vars: Vec<Var> = vec![];
        let mut preds: Vec<Guard<D>> = vec![];
        for (var, guard) in guards {
            let guard: Guard<D> = guard.clone();
            match vars.iter().position(|v| v == var) {
                Some(i) => {
                    // Conjoin duplicate guards for one variable.
                    preds[i] = preds[i].clone().and(guard);
                }
                None => {
                    vars.push(*var);
                    preds.push(guard);
                }
            }
        }
        GuardedProgram {
            program: Program::compile_guarded(pattern, &vars),
            guards: preds,
        }
    }

    /// The underlying guard-compiled program (its
    /// [`Program::guard_vars`] is parallel to [`GuardedProgram::guards`]).
    pub fn program(&self) -> &Program<L> {
        &self.program
    }

    /// The guard table, parallel to
    /// [`Program::guard_vars`](Program::guard_vars).
    pub fn guards(&self) -> &[Guard<D>] {
        &self.guards
    }

    /// The `(program, guard table)` pair in the shape the batch search
    /// drivers take (see
    /// [`search_all_guarded_parallel`](crate::search_all_guarded_parallel)).
    pub fn query(&self) -> SearchQuery<'_, L, D> {
        (&self.program, &self.guards)
    }

    /// Guarded search over the whole e-graph; see
    /// [`Program::search_guarded`].
    pub fn search<N>(&self, egraph: &EGraph<L, N>) -> Vec<SearchMatches>
    where
        N: Analysis<L, Data = D>,
    {
        self.program.search_guarded(egraph, &self.guards)
    }

    /// Guarded watermark-restricted search; see
    /// [`Program::search_since_guarded`].
    pub fn search_since<N>(&self, egraph: &EGraph<L, N>, watermark: u64) -> Vec<SearchMatches>
    where
        N: Analysis<L, Data = D>,
    {
        self.program
            .search_since_guarded(egraph, watermark, &self.guards)
    }

    /// Guarded parallel search, bit-identical to [`GuardedProgram::search`];
    /// see [`Program::search_since_guarded_parallel`].
    pub fn search_parallel<N>(&self, egraph: &EGraph<L, N>, n_threads: usize) -> Vec<SearchMatches>
    where
        L: Sync,
        N: Analysis<L, Data = D> + Sync,
        D: Sync,
    {
        self.program
            .search_since_guarded_parallel(egraph, 0, &self.guards, n_threads)
    }
}

impl<L: Language + std::fmt::Debug, D> std::fmt::Debug for GuardedProgram<L, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuardedProgram")
            .field("program", &self.program)
            .field("guards", &self.guards.len())
            .finish()
    }
}

/// Chunks per worker thread in the parallel search driver. More chunks than
/// threads lets the atomic work queue rebalance when candidate classes have
/// very uneven node counts (common: a few classes hold most of a model's
/// operator nodes); contiguous chunks keep the merge deterministic.
const CHUNKS_PER_THREAD: usize = 8;

/// Candidate-count threshold below which the parallel search driver runs
/// the sequential path even when asked for several threads. Spawning scoped
/// workers, sharding the queue, and merging slots costs a few hundred
/// microseconds; batches this small finish sequentially in less (the
/// benchmark models' full rule batches span 50–1100 candidate classes and
/// search in 7–220 µs), so the threads would only add overhead. Batches at
/// or above the threshold keep the bit-identical chunk-ordered merge path.
pub const PARALLEL_SEARCH_SPAWN_THRESHOLD: usize = 2048;

/// Searches several compiled programs — each paired with its guard table
/// (empty for unguarded programs) — over one e-graph, sharding all their
/// candidate classes across `n_threads` scoped threads.
///
/// Work items — contiguous chunks of each program's candidate list — go
/// into a single atomic queue, so threads load-balance *across* programs:
/// one hot rule's chunks spread over every thread instead of serializing
/// the batch. Each thread owns a private register stack; the shared e-graph
/// is only read (its search accessors are `Sync`-clean) and the guard
/// predicates are pure `Sync` closures. Chunk outputs are written to
/// per-item slots and merged in item order, which reproduces the sequential
/// per-program match lists bit for bit.
///
/// `n_threads <= 1`, an empty candidate set, or a batch below
/// `spawn_threshold` candidates (see [`PARALLEL_SEARCH_SPAWN_THRESHOLD`])
/// runs the sequential driver directly — identical behavior, no thread
/// overhead.
pub(crate) fn search_programs_since_parallel<L, N>(
    queries: &[SearchQuery<'_, L, N::Data>],
    egraph: &EGraph<L, N>,
    watermark: u64,
    n_threads: usize,
) -> Vec<Vec<SearchMatches>>
where
    L: Language + Sync,
    N: Analysis<L> + Sync,
    N::Data: Sync,
{
    search_programs_since_parallel_with_threshold(
        queries,
        egraph,
        watermark,
        n_threads,
        PARALLEL_SEARCH_SPAWN_THRESHOLD,
    )
}

/// [`search_programs_since_parallel`] with an explicit spawn threshold —
/// `0` forces the parallel driver for any nonempty batch, `usize::MAX`
/// forces the sequential driver; both produce bit-identical results.
pub(crate) fn search_programs_since_parallel_with_threshold<L, N>(
    queries: &[SearchQuery<'_, L, N::Data>],
    egraph: &EGraph<L, N>,
    watermark: u64,
    n_threads: usize,
    spawn_threshold: usize,
) -> Vec<Vec<SearchMatches>>
where
    L: Language + Sync,
    N: Analysis<L> + Sync,
    N::Data: Sync,
{
    // The sequential mode IS the sequential driver — no candidate vectors,
    // no duplicated iteration logic that could drift from `search_since`.
    if n_threads <= 1 {
        return queries
            .iter()
            .map(|(p, g)| p.search_since_guarded(egraph, watermark, g))
            .collect();
    }
    for (p, g) in queries {
        p.check_guard_table(g.len());
    }
    debug_assert!(
        egraph.is_clean(),
        "pattern search on a dirty e-graph returns stale matches; call rebuild() first"
    );
    let candidates: Vec<Vec<Id>> = queries
        .iter()
        .map(|(p, _)| p.candidate_classes(egraph, watermark))
        .collect();
    let total: usize = candidates.iter().map(Vec::len).sum();

    // Tiny batches lose more to thread spawn + merge than the threads can
    // win back — run them on the sequential driver (which is the
    // correctness reference, so results are identical by construction).
    if total < spawn_threshold {
        return queries
            .iter()
            .map(|(p, g)| p.search_since_guarded(egraph, watermark, g))
            .collect();
    }

    // Clamp the worker count: more workers than candidate classes would
    // spawn threads with nothing to do, and more than a few per core is
    // pure oversubscription (a caller passing `1000` must not create 999
    // OS threads). The small multiple still lets CI force a >1 count on a
    // single-core runner to exercise this path. A clamp to 1 means every
    // spawned worker would idle — run sequentially.
    let max_workers = std::thread::available_parallelism().map_or(4, |n| n.get() * 4);
    let n_threads = n_threads.min(max_workers).min(total.max(1));
    if n_threads == 1 {
        return queries
            .iter()
            .map(|(p, g)| p.search_since_guarded(egraph, watermark, g))
            .collect();
    }

    // Ground-term lookups are a per-(program, e-graph) constant: resolve
    // them once here and share them read-only with every shard.
    let lookups: Vec<Vec<Option<Id>>> = queries
        .iter()
        .map(|(p, _)| machine_lookups(egraph, &p.instructions))
        .collect();

    let chunk_size = total.div_ceil(n_threads * CHUNKS_PER_THREAD).max(1);
    let mut items: Vec<(usize, std::ops::Range<usize>)> = vec![];
    for (prog_idx, classes) in candidates.iter().enumerate() {
        let mut start = 0;
        while start < classes.len() {
            let end = (start + chunk_size).min(classes.len());
            items.push((prog_idx, start..end));
            start = end;
        }
    }

    // One result slot per work item; each slot is written exactly once, by
    // the thread that claimed the item off the queue.
    let slots: Vec<OnceLock<Vec<SearchMatches>>> = items.iter().map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let work = || {
        let mut machine = Machine::default();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some((prog_idx, range)) = items.get(i) else {
                break;
            };
            let (program, guards) = queries[*prog_idx];
            let found: Vec<SearchMatches> = candidates[*prog_idx][range.clone()]
                .iter()
                .filter_map(|&id| {
                    program.search_class(egraph, &mut machine, &lookups[*prog_idx], guards, id)
                })
                .collect();
            slots[i].set(found).expect("each work item is claimed once");
        }
    };
    std::thread::scope(|scope| {
        // The calling thread is the n-th worker: it drains the queue too,
        // so one spawn is saved and the search still makes progress while
        // the OS brings the workers up.
        for _ in 1..n_threads {
            scope.spawn(work);
        }
        work();
    });

    // Items were generated per program in candidate order, so concatenating
    // the slots in item order reproduces the sequential output exactly.
    let mut out: Vec<Vec<SearchMatches>> = queries.iter().map(|_| vec![]).collect();
    for ((prog_idx, _), slot) in items.iter().zip(slots) {
        out[*prog_idx].extend(slot.into_inner().expect("every work item was processed"));
    }
    out
}

/// Resolves every `Lookup` instruction's ground term to its e-class once
/// per (e-graph, program) pair: the class is a constant for the whole
/// search, so per-visit work reduces to one register compare. `None` marks
/// a term that is absent or filtered — the instruction always fails.
fn machine_lookups<L: Language, N: Analysis<L>>(
    egraph: &EGraph<L, N>,
    instructions: &[Instruction<L>],
) -> Vec<Option<Id>> {
    instructions
        .iter()
        .map(|instruction| match instruction {
            Instruction::Lookup { term, .. } => {
                let mut ids: Vec<Id> = Vec::with_capacity(term.len());
                for (_, node) in term.iter() {
                    let node = node.map_children(|c| ids[usize::from(c)]);
                    // Every node of the (unique) realization must exist and
                    // be unfiltered, exactly as the naive matcher requires.
                    if egraph.is_filtered(&node) {
                        return None;
                    }
                    match egraph.lookup(&node) {
                        Some(found) => ids.push(found),
                        None => return None,
                    }
                }
                ids.last().copied()
            }
            _ => None,
        })
        .collect()
}

/// Builds the standalone `RecExpr` of a ground pattern subtree.
fn ground_term<L: Language>(pattern: &RecExpr<ENodeOrVar<L>>, id: Id) -> RecExpr<L> {
    fn go<L: Language>(
        pattern: &RecExpr<ENodeOrVar<L>>,
        id: Id,
        out: &mut RecExpr<L>,
        memo: &mut HashMap<Id, Id>,
    ) -> Id {
        if let Some(&done) = memo.get(&id) {
            return done;
        }
        let node = match &pattern[id] {
            ENodeOrVar::ENode(n) => n.map_children(|c| go(pattern, c, out, memo)),
            ENodeOrVar::Var(v) => unreachable!("ground subterm contains variable {v}"),
        };
        let added = out.add(node);
        memo.insert(id, added);
        added
    }
    let mut out = RecExpr::default();
    go(pattern, id, &mut out, &mut HashMap::new());
    out
}

/// Read-only per-search state shared by every backtracking frame of one
/// [`Machine::run`] invocation: the e-graph, the compiled instructions, the
/// pre-resolved ground-term lookups, the guard table, and the substitution
/// template.
struct MachineCtx<'a, L: Language, N: Analysis<L>> {
    egraph: &'a EGraph<L, N>,
    instructions: &'a [Instruction<L>],
    lookups: &'a [Option<Id>],
    guards: &'a [Guard<N::Data>],
    subst_template: &'a [(Var, Reg)],
}

/// The register stack. One instance is reused across all candidate classes
/// of a search; backtracking truncates instead of cloning.
#[derive(Debug, Default)]
struct Machine {
    regs: Vec<Id>,
}

impl Machine {
    fn run<L: Language, N: Analysis<L>>(
        &mut self,
        ctx: &MachineCtx<'_, L, N>,
        pc: usize,
        out: &mut Vec<Subst>,
    ) {
        let egraph = ctx.egraph;
        for pc in pc..ctx.instructions.len() {
            match &ctx.instructions[pc] {
                Instruction::Bind { node, i, out: reg } => {
                    let class = egraph.eclass(self.regs[*i]);
                    for enode in class.iter() {
                        if !node.matches(enode) || egraph.is_filtered(enode) {
                            continue;
                        }
                        self.regs.truncate(*reg);
                        for &child in enode.children() {
                            self.regs.push(egraph.find(child));
                        }
                        self.run(ctx, pc + 1, out);
                    }
                    return;
                }
                Instruction::Compare { i, j } => {
                    if egraph.find(self.regs[*i]) != egraph.find(self.regs[*j]) {
                        return;
                    }
                }
                Instruction::Lookup { term: _, i } => {
                    // The term's class was resolved once for this search
                    // (absent/filtered terms resolve to None: always fail).
                    if ctx.lookups[pc] != Some(egraph.find(self.regs[*i])) {
                        return;
                    }
                }
                Instruction::Guard { i, pred } => {
                    // Analysis-guided pruning: reject the branch if the
                    // bound class fails the guard. The interned kind tag is
                    // tested first — one dense array read, which is the
                    // *whole* evaluation for kind-only guards — and only a
                    // guard carrying a dynamic predicate goes on to borrow
                    // the full class data and pay the `Arc<dyn>` call.
                    let guard = &ctx.guards[*pred];
                    let class = self.regs[*i];
                    if !guard.admits_tag(egraph.kind_tag(class)) {
                        return;
                    }
                    if let Some(pred) = guard.pred() {
                        if !pred(&egraph.eclass(class).data) {
                            return;
                        }
                    }
                }
            }
        }
        // All instructions passed: read the bindings out of the registers.
        let mut subst = Subst::new();
        for &(v, r) in ctx.subst_template {
            subst.insert(v, egraph.find(self.regs[r]));
        }
        out.push(subst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::test_lang::Math;
    use crate::{Pattern, Symbol};

    fn sym(s: &str) -> Math {
        Math::Sym(Symbol::new(s))
    }

    fn pat(build: impl FnOnce(&mut RecExpr<ENodeOrVar<Math>>)) -> Pattern<Math> {
        let mut ast = RecExpr::default();
        build(&mut ast);
        Pattern::new(ast)
    }

    /// (* ?x 2)
    fn mul_by_two() -> Pattern<Math> {
        pat(|p| {
            let x = p.add(ENodeOrVar::Var(Var::new("x")));
            let two = p.add(ENodeOrVar::ENode(Math::Num(2)));
            p.add(ENodeOrVar::ENode(Math::Mul([x, two])));
        })
    }

    #[test]
    fn compiles_ground_subterm_to_lookup() {
        let program = Program::compile(&mul_by_two().ast);
        let instrs = program.instructions();
        // Root bind + ground lookup for the literal 2; ?x binds a register
        // without emitting an instruction.
        assert_eq!(instrs.len(), 2);
        assert!(matches!(instrs[0], Instruction::Bind { .. }));
        assert!(matches!(instrs[1], Instruction::Lookup { .. }));
        assert!(program.root_op().is_some());
    }

    #[test]
    fn nonlinear_pattern_compiles_compare() {
        let program = Program::compile(
            &pat(|p| {
                let x1 = p.add(ENodeOrVar::Var(Var::new("x")));
                let x2 = p.add(ENodeOrVar::Var(Var::new("x")));
                p.add(ENodeOrVar::ENode(Math::Add([x1, x2])));
            })
            .ast,
        );
        assert!(program
            .instructions()
            .iter()
            .any(|i| matches!(i, Instruction::Compare { .. })));
    }

    #[test]
    fn var_root_has_no_root_op_and_matches_everything() {
        let program = Program::compile(
            &pat(|p| {
                p.add(ENodeOrVar::Var(Var::new("x")));
            })
            .ast,
        );
        assert!(program.root_op().is_none());
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        eg.add(Math::Mul([eg.find(two), two]));
        eg.rebuild();
        assert_eq!(program.search(&eg).len(), eg.number_of_classes());
    }

    #[test]
    fn machine_search_agrees_with_naive_on_basics() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let mul = eg.add(Math::Mul([a, two]));
        eg.add(Math::Mul([mul, two]));
        eg.rebuild();
        let p = mul_by_two();
        let machine = p.program().search(&eg);
        let naive = p.search_naive(&eg);
        assert_eq!(machine.len(), naive.len());
        for (m, n) in machine.iter().zip(&naive) {
            assert_eq!(m.eclass, n.eclass);
            assert_eq!(m.substs, n.substs);
        }
    }

    #[test]
    fn lookup_respects_filtered_ground_nodes() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        eg.add(Math::Mul([a, two]));
        eg.rebuild();
        let p = mul_by_two();
        assert_eq!(p.program().search(&eg).len(), 1);
        // Filtering the literal 2 kills the ground lookup, exactly like the
        // naive matcher skipping the filtered node.
        eg.filter_node(&Math::Num(2));
        assert_eq!(p.program().search(&eg).len(), 0);
        assert_eq!(p.search_naive(&eg).len(), 0);
    }

    /// The parallel driver must return *bit-identical* output to the
    /// sequential one for every thread count, including counts far above
    /// the candidate count (shards degenerate to single classes) — the
    /// chunk-order merge is what guarantees this.
    #[test]
    fn parallel_search_is_bit_identical_for_all_thread_counts() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let two = eg.add(Math::Num(2));
        for i in 0..37 {
            let s = eg.add(sym(&format!("s{i}")));
            let m = eg.add(Math::Mul([s, two]));
            eg.add(Math::Mul([m, two]));
        }
        eg.rebuild();
        let p = mul_by_two();
        let sequential = p.program().search(&eg);
        assert!(!sequential.is_empty());
        for threads in [1, 2, 3, 4, 8, 64, 1000] {
            let parallel = p.program().search_parallel(&eg, threads);
            assert_eq!(sequential, parallel, "thread count {threads}");
        }
    }

    /// Batch driver: every program's match list equals its standalone
    /// sequential search, even when one "hot" pattern dominates the work.
    #[test]
    fn batch_parallel_search_matches_each_program() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let two = eg.add(Math::Num(2));
        let mut prev = eg.add(sym("seed"));
        for i in 0..25 {
            let s = eg.add(sym(&format!("x{i}")));
            let m = eg.add(Math::Mul([s, two]));
            prev = eg.add(Math::Add([prev, m]));
        }
        eg.rebuild();
        let hot = pat(|p| {
            let x = p.add(ENodeOrVar::Var(Var::new("x")));
            let y = p.add(ENodeOrVar::Var(Var::new("y")));
            p.add(ENodeOrVar::ENode(Math::Add([x, y])));
        });
        let cold = mul_by_two();
        let var_root = pat(|p| {
            p.add(ENodeOrVar::Var(Var::new("x")));
        });
        let programs = [
            (hot.program(), &[] as &[_]),
            (cold.program(), &[] as &[_]),
            (var_root.program(), &[] as &[_]),
        ];
        let batch = search_programs_since_parallel(&programs, &eg, 0, 4);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0], hot.program().search(&eg));
        assert_eq!(batch[1], cold.program().search(&eg));
        assert_eq!(batch[2], var_root.program().search(&eg));
    }

    /// Test analysis: a class's data is the largest integer literal it
    /// contains, or `-1` if it contains none.
    #[derive(Clone, Copy, Default)]
    struct MaxNum;
    impl crate::Analysis<Math> for MaxNum {
        type Data = i64;
        fn make(egraph: &EGraph<Math, Self>, enode: &Math) -> i64 {
            match enode {
                Math::Num(n) => *n,
                _ if enode.children().is_empty() => -1,
                _ => enode
                    .children()
                    .iter()
                    .map(|&c| egraph.eclass(c).data)
                    .max()
                    .unwrap_or(-1)
                    .min(-1), // operators do not inherit literals
            }
        }
        fn merge(&mut self, to: &mut i64, from: i64) -> crate::DidMerge {
            crate::merge_max(to, from)
        }
        fn kind_tag(data: &i64) -> u8 {
            (*data >= 0) as u8
        }
    }

    #[test]
    fn guard_is_emitted_right_after_the_binding() {
        let program = Program::compile_guarded(&mul_by_two().ast, &[Var::new("x")]);
        let instrs = program.instructions();
        // Bind fills register 1 with ?x's class; the guard checks it before
        // the ground lookup for the literal 2 runs.
        assert_eq!(instrs.len(), 3);
        assert!(matches!(instrs[0], Instruction::Bind { .. }));
        assert!(matches!(instrs[1], Instruction::Guard { i: 1, pred: 0 }));
        assert!(matches!(instrs[2], Instruction::Lookup { .. }));
        assert_eq!(program.guard_vars(), &[Var::new("x")]);
    }

    /// Regression test for the guard-placement bug: a variable whose
    /// register is filled by the *root* Bind must be guarded before any
    /// deeper Bind runs. The original compiler emitted the guard at the
    /// variable's BFS visit position, which for (* (* ?x ?p) ?p) put it
    /// *after* the inner Bind — every candidate enumerated the inner
    /// class's nodes before the doomed ?p binding was rejected.
    #[test]
    fn guard_on_shallow_register_precedes_deeper_binds() {
        let p = pat(|pa| {
            let x = pa.add(ENodeOrVar::Var(Var::new("x")));
            let pv = pa.add(ENodeOrVar::Var(Var::new("p")));
            let inner = pa.add(ENodeOrVar::ENode(Math::Mul([x, pv])));
            let pv2 = pa.add(ENodeOrVar::Var(Var::new("p")));
            pa.add(ENodeOrVar::ENode(Math::Mul([inner, pv2])));
        });
        let program = Program::compile_guarded(&p.ast, &[Var::new("p")]);
        let instrs = program.instructions();
        assert_eq!(instrs.len(), 4);
        assert!(matches!(instrs[0], Instruction::Bind { .. }), "root bind");
        assert!(
            matches!(instrs[1], Instruction::Guard { i: 2, pred: 0 }),
            "?p (register 2, filled by the root bind) is guarded before \
             the inner bind, got {instrs:?}"
        );
        assert!(matches!(instrs[2], Instruction::Bind { .. }), "inner bind");
        assert!(matches!(instrs[3], Instruction::Compare { i: 2, j: 4 }));
    }

    #[test]
    fn guarded_search_equals_unguarded_search_filtered_by_predicate() {
        let mut eg: EGraph<Math, MaxNum> = EGraph::new(MaxNum);
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let three = eg.add(Math::Num(3));
        eg.add(Math::Mul([a, two])); // ?x -> a: data -1, pruned
        eg.add(Math::Mul([three, two])); // ?x -> 3: data 3, kept
        eg.rebuild();

        let pattern = mul_by_two();
        let pred = |d: &i64| *d >= 0;
        let guarded =
            GuardedProgram::compile(&pattern.ast, &[(Var::new("x"), Guard::from_fn(pred))]);

        let unguarded = pattern.search(&eg);
        assert_eq!(unguarded.len(), 2);
        let expected: Vec<SearchMatches> = unguarded
            .into_iter()
            .filter(|m| {
                m.substs
                    .iter()
                    .all(|s| pred(&eg.eclass(s[Var::new("x")]).data))
            })
            .collect();
        assert_eq!(expected.len(), 1);
        assert_eq!(guarded.search(&eg), expected);
        // Parallel guarded search is bit-identical too.
        for threads in [1, 2, 4, 8] {
            assert_eq!(guarded.search_parallel(&eg, threads), expected);
        }
    }

    /// A pure tag-mask guard prunes exactly the classes whose interned kind
    /// tag falls outside the mask — with no predicate call at all. MaxNum
    /// tags literal-holding classes 1 and operator classes 0.
    #[test]
    fn tag_mask_guard_prunes_by_interned_tag() {
        let mut eg: EGraph<Math, MaxNum> = EGraph::new(MaxNum);
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let three = eg.add(Math::Num(3));
        eg.add(Math::Mul([a, two])); // ?x -> a: tag 0, pruned
        let kept = eg.add(Math::Mul([three, two])); // ?x -> 3: tag 1, kept
        eg.rebuild();
        assert_eq!(eg.kind_tag(a), 0);
        assert_eq!(eg.kind_tag(three), 1);

        let pattern = mul_by_two();
        let guard: Guard<i64> = Guard::tags(1 << 1);
        assert!(guard.pred().is_none(), "kind-only guard carries no dyn fn");
        let guarded = GuardedProgram::compile(&pattern.ast, &[(Var::new("x"), guard)]);
        let ms = guarded.search(&eg);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].eclass, eg.find(kept));
    }

    #[test]
    fn duplicate_guards_for_one_variable_are_conjoined() {
        let mut eg: EGraph<Math, MaxNum> = EGraph::new(MaxNum);
        let two = eg.add(Math::Num(2));
        let four = eg.add(Math::Num(4));
        eg.add(Math::Mul([two, two])); // 2: even but < 3, pruned
        eg.add(Math::Mul([four, two])); // 4: even and >= 3, kept
        eg.rebuild();
        let pattern = mul_by_two();
        let even = Guard::from_fn(|d: &i64| d % 2 == 0);
        let big = Guard::from_fn(|d: &i64| *d >= 3);
        let guarded =
            GuardedProgram::compile(&pattern.ast, &[(Var::new("x"), even), (Var::new("x"), big)]);
        let ms = guarded.search(&eg);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].substs[0][Var::new("x")], eg.find(four));
    }

    #[test]
    #[should_panic(expected = "guard table size mismatch")]
    fn plain_search_on_guard_compiled_program_panics() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        eg.add(sym("a"));
        eg.rebuild();
        let program = Program::compile_guarded(&mul_by_two().ast, &[Var::new("x")]);
        let _ = program.search(&eg);
    }

    /// The clean check is a `debug_assert!`: the panic only exists in debug
    /// builds, so release builds skip the test.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "dirty")]
    fn machine_search_asserts_clean() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let b = eg.add(sym("b"));
        eg.union(a, b);
        let p = mul_by_two();
        let _ = p.program().search(&eg);
    }
}
